use crate::init::{kaiming_normal, xavier_uniform};
use crate::Module;
use bliss_tensor::{GraphBuilder, NdArray, NodeId, Tensor, TensorError};
use rand::Rng;

/// A fully-connected layer: `y = x W + b` with `W: [in, out]`, `b: [out]`.
///
/// Inputs are `[tokens, in]`; outputs `[tokens, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Linear {
            weight: Tensor::parameter(xavier_uniform(
                rng,
                &[in_features, out_features],
                in_features,
                out_features,
            )),
            bias: Tensor::parameter(NdArray::zeros(&[out_features])),
            in_features,
            out_features,
        }
    }

    /// Applies the layer to a `[tokens, in]` tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input's last dimension is not `in`.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        x.matmul(&self.weight)?.add_row(&self.bias)
    }

    /// Records the layer into a planned-inference graph, mirroring
    /// [`Linear::forward`] exactly (same ops, same operand order), so the
    /// compiled plan is bit-identical to the tape.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input node's last dimension is not `in`.
    pub fn record(&self, g: &mut GraphBuilder, x: NodeId) -> Result<NodeId, TensorError> {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        let mm = g.matmul(x, w)?;
        g.add_row(mm, b)
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Multiply-accumulate operations for `tokens` input rows.
    pub fn macs(&self, tokens: usize) -> u64 {
        tokens as u64 * self.in_features as u64 * self.out_features as u64
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A 2-D convolution layer over single-sample `[c, h, w]` images.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a square-kernel convolution with Kaiming-normal weights.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Tensor::parameter(kaiming_normal(
                rng,
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
            )),
            bias: Tensor::parameter(NdArray::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
        }
    }

    /// Applies the convolution to a `[c, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if channel counts disagree or the kernel does
    /// not fit the padded input.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        x.conv2d(&self.weight, Some(&self.bias), self.stride, self.pad)
    }

    /// Records the convolution into a planned-inference graph, mirroring
    /// the tape lowering of [`Conv2d::forward`] exactly: im2col, the weight
    /// viewed as a `[oc, ic*kh*kw]` matmul operand, a per-channel bias add,
    /// and a reshape (which compiles away as an alias).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input node is not `[in_channels, h, w]`.
    pub fn record(&self, g: &mut GraphBuilder, x: NodeId) -> Result<NodeId, TensorError> {
        let shape = g.shape(x);
        if shape.len() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 3,
                actual: shape.len(),
            });
        }
        if shape[0] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: shape.to_vec(),
                rhs: vec![
                    self.out_channels,
                    self.in_channels,
                    self.kernel,
                    self.kernel,
                ],
            });
        }
        let (h, w) = (shape[1], shape[2]);
        let cols = g.im2col(x, self.kernel, self.kernel, self.stride, self.pad)?;
        let w2 = g.param_view(
            &self.weight,
            &[
                self.out_channels,
                self.in_channels * self.kernel * self.kernel,
            ],
        )?;
        let prod = g.matmul(w2, cols)?;
        let b = g.param(&self.bias);
        let biased = g.add_col_bias(prod, b)?;
        let (oh, ow) = self.out_dims(h, w);
        g.reshape(biased, &[self.out_channels, oh, ow])
    }

    /// Output spatial dimensions for an `h x w` input.
    pub fn out_dims(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Multiply-accumulate operations for an `h x w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_dims(h, w);
        (self.out_channels * self.in_channels * self.kernel * self.kernel) as u64 * (oh * ow) as u64
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for Conv2d {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A depthwise-separable convolution (depthwise `k x k` then pointwise 1x1),
/// the building block of the EdGaze-style baseline (paper §V).
#[derive(Debug, Clone)]
pub struct DepthwiseSeparableConv2d {
    dw_weight: Tensor,
    dw_bias: Tensor,
    pointwise: Conv2d,
    channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
}

impl DepthwiseSeparableConv2d {
    /// Creates the pair of depthwise and pointwise convolutions.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        DepthwiseSeparableConv2d {
            dw_weight: Tensor::parameter(kaiming_normal(
                rng,
                &[in_channels, kernel, kernel],
                kernel * kernel,
            )),
            dw_bias: Tensor::parameter(NdArray::zeros(&[in_channels])),
            pointwise: Conv2d::new(rng, in_channels, out_channels, 1, 1, 0),
            channels: in_channels,
            kernel,
            stride,
            pad,
        }
    }

    /// Applies depthwise then pointwise convolution with a ReLU in between.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input channel count differs.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let dw = x
            .depthwise_conv2d(&self.dw_weight, Some(&self.dw_bias), self.stride, self.pad)?
            .relu();
        self.pointwise.forward(&dw)
    }

    /// Multiply-accumulate operations for an `h x w` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let oh = (h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kernel) / self.stride + 1;
        let dw = (self.channels * self.kernel * self.kernel) as u64 * (oh * ow) as u64;
        dw + self.pointwise.macs(oh, ow)
    }
}

impl Module for DepthwiseSeparableConv2d {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = vec![self.dw_weight.clone(), self.dw_bias.clone()];
        p.extend(self.pointwise.parameters());
        p
    }
}

/// Layer normalisation with learnable scale/shift over the last dimension of
/// `[tokens, features]` tensors.
#[derive(Debug, Clone)]
pub struct LayerNormLayer {
    gamma: Tensor,
    beta: Tensor,
    eps: f32,
}

impl LayerNormLayer {
    /// Creates an identity-initialised layer norm over `features`.
    pub fn new(features: usize) -> Self {
        LayerNormLayer {
            gamma: Tensor::parameter(NdArray::ones(&[features])),
            beta: Tensor::parameter(NdArray::zeros(&[features])),
            eps: 1e-5,
        }
    }

    /// Normalises each row of a `[tokens, features]` tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the feature dimension differs.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        x.layer_norm(&self.gamma, &self.beta, self.eps)
    }

    /// Records the layer norm into a planned-inference graph, mirroring
    /// [`LayerNormLayer::forward`] exactly.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the feature dimension differs.
    pub fn record(&self, g: &mut GraphBuilder, x: NodeId) -> Result<NodeId, TensorError> {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }
}

impl Module for LayerNormLayer {
    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// The two-layer GELU MLP used inside transformer blocks.
#[derive(Debug, Clone)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Creates an MLP `features -> hidden -> features`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, features: usize, hidden: usize) -> Self {
        Mlp {
            fc1: Linear::new(rng, features, hidden),
            fc2: Linear::new(rng, hidden, features),
        }
    }

    /// Applies `fc2(gelu(fc1(x)))`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input feature dimension differs.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        self.fc2.forward(&self.fc1.forward(x)?.gelu())
    }

    /// Records the MLP into a planned-inference graph, mirroring
    /// [`Mlp::forward`] exactly.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input feature dimension differs.
    pub fn record(&self, g: &mut GraphBuilder, x: NodeId) -> Result<NodeId, TensorError> {
        let hidden = self.fc1.record(g, x)?;
        let act = g.gelu(hidden);
        self.fc2.record(g, act)
    }

    /// Multiply-accumulate operations for `tokens` input rows.
    pub fn macs(&self, tokens: usize) -> u64 {
        self.fc1.macs(tokens) + self.fc2.macs(tokens)
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.fc1.parameters();
        p.extend(self.fc2.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_macs() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 8, 3);
        let x = Tensor::constant(NdArray::ones(&[5, 8]));
        let y = l.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![5, 3]);
        assert_eq!(l.macs(5), 5 * 8 * 3);
        assert_eq!(l.num_parameters(), 8 * 3 + 3);
    }

    #[test]
    fn linear_rejects_bad_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(&mut rng, 8, 3);
        let x = Tensor::constant(NdArray::ones(&[5, 7]));
        assert!(l.forward(&x).is_err());
    }

    #[test]
    fn conv_shapes_and_macs() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::new(&mut rng, 2, 4, 3, 2, 1);
        let x = Tensor::constant(NdArray::ones(&[2, 8, 8]));
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![4, 4, 4]);
        assert_eq!(c.out_dims(8, 8), (4, 4));
        assert_eq!(c.macs(8, 8), (4 * 2 * 3 * 3) as u64 * 16);
    }

    #[test]
    fn depthwise_separable_runs_and_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = DepthwiseSeparableConv2d::new(&mut rng, 3, 6, 3, 1, 1);
        let x = Tensor::constant(NdArray::ones(&[3, 5, 5]));
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![6, 5, 5]);
        // Depthwise-separable should use far fewer MACs than a full conv.
        let full = Conv2d::new(&mut rng, 3, 6, 3, 1, 1);
        assert!(c.macs(5, 5) < full.macs(5, 5));
    }

    #[test]
    fn layer_norm_trains() {
        let ln = LayerNormLayer::new(4);
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap());
        let y = ln.forward(&x).unwrap();
        y.sum_all().backward().unwrap();
        // beta grad is all ones; gamma grad is xhat (zero-mean)
        let params = ln.parameters();
        assert!(params[1].grad().is_some());
        assert_eq!(params[1].grad().unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn mlp_round_trip_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&mut rng, 6, 24);
        let x = Tensor::constant(NdArray::ones(&[2, 6]));
        assert_eq!(mlp.forward(&x).unwrap().shape(), vec![2, 6]);
        assert_eq!(mlp.macs(2), 2 * 6 * 24 * 2);
    }

    /// Compiles a single-input recording and checks the plan output is
    /// bit-identical to the tape forward.
    fn assert_plan_matches<F>(x: &NdArray, taped: &Tensor, record: F, exec_rounds: usize)
    where
        F: FnOnce(&mut GraphBuilder, NodeId) -> Result<NodeId, TensorError>,
    {
        let mut g = GraphBuilder::default();
        let xin = g.input(x.shape());
        let out = record(&mut g, xin).unwrap();
        g.mark_output(out);
        let plan = bliss_tensor::ExecPlan::compile(g).unwrap();
        for _ in 0..exec_rounds {
            plan.execute(&[x.data()], &[]).unwrap();
            plan.with_output(0, |data| assert_eq!(data, taped.value().data()));
        }
    }

    #[test]
    fn recorded_linear_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(30);
        let l = Linear::new(&mut rng, 8, 3);
        let x = NdArray::randn(&mut rng, &[5, 8], 1.0);
        let taped = l.forward(&Tensor::constant(x.clone())).unwrap();
        assert_plan_matches(&x, &taped, |g, xin| l.record(g, xin), 2);
    }

    #[test]
    fn recorded_conv_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let c = Conv2d::new(&mut rng, 2, 4, 3, 2, 1);
        let x = NdArray::randn(&mut rng, &[2, 8, 8], 1.0);
        let taped = c.forward(&Tensor::constant(x.clone())).unwrap();
        assert_eq!(taped.shape(), vec![4, 4, 4]);
        assert_plan_matches(&x, &taped, |g, xin| c.record(g, xin), 2);
    }

    #[test]
    fn recorded_layer_norm_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(32);
        let ln = LayerNormLayer::new(6);
        let x = NdArray::randn(&mut rng, &[4, 6], 1.0);
        let taped = ln.forward(&Tensor::constant(x.clone())).unwrap();
        assert_plan_matches(&x, &taped, |g, xin| ln.record(g, xin), 2);
    }

    #[test]
    fn recorded_mlp_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(33);
        let mlp = Mlp::new(&mut rng, 6, 24);
        let x = NdArray::randn(&mut rng, &[3, 6], 1.0);
        let taped = mlp.forward(&Tensor::constant(x.clone())).unwrap();
        assert_plan_matches(&x, &taped, |g, xin| mlp.record(g, xin), 2);
    }

    #[test]
    fn quantized_mlp_tracks_f32_and_is_bit_identical_across_threads() {
        use bliss_tensor::{ExecPlan, QuantCalibration};

        let mut rng = StdRng::seed_from_u64(35);
        let mlp = Mlp::new(&mut rng, 6, 24);
        let x = NdArray::randn(&mut rng, &[3, 6], 1.0);

        let build = || {
            let mut g = GraphBuilder::default();
            let xin = g.input(&[3, 6]);
            let out = mlp.record(&mut g, xin).unwrap();
            g.mark_output(out);
            g
        };

        // f32 reference through the planned path.
        let fplan = ExecPlan::compile(build()).unwrap();
        fplan.execute(&[x.data()], &[]).unwrap();
        let reference = fplan.with_output(0, |d| d.to_vec());

        // Calibrate over the same input distribution, quantise, re-run.
        let mut cal = QuantCalibration::new();
        let mut gi = build();
        let taps = QuantCalibration::instrument(&mut gi);
        let iplan = ExecPlan::compile(gi).unwrap();
        iplan.execute(&[x.data()], &[]).unwrap();
        cal.observe_plan(&iplan, &[x.data()], &taps);
        assert_eq!(cal.observed_sites(), 2, "fc1 and fc2 must both calibrate");
        let spec = cal.finish(&build());
        assert_eq!(spec.len(), 2);

        let qplan = ExecPlan::compile_quantized(build(), &spec).unwrap();
        assert_eq!(qplan.num_quantized_matmuls(), 2);
        qplan.execute(&[x.data()], &[]).unwrap();
        let quantised = qplan.with_output(0, |d| d.to_vec());

        // Accuracy: int8 must track f32 within a small absolute budget at
        // this scale (unit-variance activations, Xavier weights).
        for (r, q) in reference.iter().zip(&quantised) {
            assert!((r - q).abs() < 0.05, "f32 {r} vs int8 {q}");
        }
        let differs = reference.iter().zip(&quantised).any(|(r, q)| r != q);
        assert!(differs, "quantisation must actually change values");

        // Determinism: the int8 plan is bit-identical at every thread count.
        for threads in [1usize, 2, 8] {
            let rerun = bliss_parallel::with_thread_count(threads, || {
                bliss_parallel::with_min_parallel_work(0, || {
                    qplan.execute(&[x.data()], &[]).unwrap();
                    qplan.with_output(0, |d| d.to_vec())
                })
            });
            assert_eq!(rerun, quantised, "threads={threads}");
        }
    }

    #[test]
    fn recorded_conv_rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(34);
        let c = Conv2d::new(&mut rng, 2, 4, 3, 1, 1);
        let mut g = GraphBuilder::default();
        let xin = g.input(&[3, 8, 8]);
        assert!(c.record(&mut g, xin).is_err());
    }
}
