use bliss_tensor::NdArray;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Suited to tanh/sigmoid/linear layers and attention projections.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> NdArray {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    NdArray::uniform(rng, shape, -a, a)
}

/// Kaiming/He normal initialisation: `N(0, sqrt(2 / fan_in))`.
///
/// Suited to ReLU-activated convolutions.
pub fn kaiming_normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> NdArray {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    NdArray::randn(rng, shape, std)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = xavier_uniform(&mut rng, &[100, 100], 100, 100);
        let a = (6.0f32 / 200.0).sqrt();
        assert!(w.max() <= a);
        assert!(w.min() >= -a);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = kaiming_normal(&mut rng, &[20_000], 8);
        let var = w.map(|x| x * x).mean();
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }
}
