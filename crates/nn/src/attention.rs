use crate::layers::{LayerNormLayer, Linear, Mlp};
use crate::Module;
use bliss_parallel::par_map_collect;
use bliss_tensor::{GraphBuilder, NdArray, NodeId, Tensor, TensorError};
use rand::Rng;

/// Saved forward activations of one attention head, reused by the fused
/// backward pass. (The head's output itself is not saved — backward only
/// needs the projections and the per-span attention matrices.)
struct HeadForward {
    q: NdArray,
    k: NdArray,
    v: NdArray,
    /// One attention matrix per row span (block-diagonal attention).
    attns: Vec<NdArray>,
}

/// Shared references to one head's `[wq, bq, wk, bk, wv, bv]` parameter
/// values, extracted from borrow guards on the calling thread so the
/// parallel workers never clone parameter data.
fn head_param_refs<'a>(
    guards: &'a [std::cell::Ref<'_, NdArray>],
    heads: usize,
) -> Vec<[&'a NdArray; 6]> {
    (0..heads)
        .map(|h| {
            let s = &guards[1 + 6 * h..1 + 6 * (h + 1)];
            [&*s[0], &*s[1], &*s[2], &*s[3], &*s[4], &*s[5]]
        })
        .collect()
}

/// Gradients produced by one attention head's backward pass, in the same
/// order the head's parameters appear in the fused op's parent list.
struct HeadGradients {
    dx: NdArray,
    dwq: NdArray,
    dbq: NdArray,
    dwk: NdArray,
    dbk: NdArray,
    dwv: NdArray,
    dbv: NdArray,
}

/// Checks that `spans` is a non-empty, in-order, gap-free exact cover of
/// `0..rows`.
fn validate_spans(
    spans: &[(usize, usize)],
    rows: usize,
    op: &'static str,
) -> Result<(), TensorError> {
    let mut cursor = 0usize;
    for &(s, e) in spans {
        if s != cursor || e <= s {
            return Err(TensorError::InvalidArgument {
                op,
                message: format!(
                    "spans must exactly cover 0..{rows} in order without gaps \
                     or empty entries; got {spans:?}"
                ),
            });
        }
        cursor = e;
    }
    if spans.is_empty() || cursor != rows {
        return Err(TensorError::InvalidArgument {
            op,
            message: format!("spans {spans:?} do not cover all {rows} rows"),
        });
    }
    Ok(())
}

/// `dS` of a row-wise softmax `A = softmax(S)` given `A` and `dA`:
/// `dS_ij = A_ij * (dA_ij - sum_j A_ij * dA_ij)`.
fn softmax_rows_backward(attn: &NdArray, dattn: &NdArray) -> NdArray {
    let (m, n) = (attn.shape()[0], attn.shape()[1]);
    let mut out = NdArray::zeros(&[m, n]);
    for i in 0..m {
        let arow = &attn.data()[i * n..(i + 1) * n];
        let grow = &dattn.data()[i * n..(i + 1) * n];
        let dot: f32 = arow.iter().zip(grow.iter()).map(|(&a, &g)| a * g).sum();
        for j in 0..n {
            out.data_mut()[i * n + j] = arow[j] * (grow[j] - dot);
        }
    }
    out
}

/// Multi-head self-attention over `[tokens, dim]` inputs.
///
/// Each head owns its own query/key/value projections of size
/// `dim -> dim/heads`; head outputs are concatenated and passed through an
/// output projection. This mirrors the paper's MHA modules (3 heads,
/// channel size 192 at paper scale, §III-B).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    query: Vec<Linear>,
    key: Vec<Linear>,
    value: Vec<Linear>,
    proj: Linear,
    dim: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an MHA module with `heads` heads over `dim` channels.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide by heads"
        );
        let head_dim = dim / heads;
        let mk = |rng: &mut R| -> Vec<Linear> {
            (0..heads)
                .map(|_| Linear::new(rng, dim, head_dim))
                .collect()
        };
        MultiHeadAttention {
            query: mk(rng),
            key: mk(rng),
            value: mk(rng),
            proj: Linear::new(rng, dim, dim),
            dim,
            head_dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.query.len()
    }

    /// Channel dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies self-attention to a `[tokens, dim]` tensor.
    ///
    /// Equivalent to [`MultiHeadAttention::forward_spans`] with a single span
    /// covering every row.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input's channel dimension is not `dim`.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let rows = x.shape()[0];
        self.forward_spans(x, &[(0, rows)])
    }

    /// Applies *block-diagonal* self-attention: rows within each
    /// `(start, end)` span attend only to rows of the same span.
    ///
    /// This is the batched-inference primitive of the serving runtime: K
    /// sessions' token sets are stacked into one `[T, dim]` matrix and the
    /// QKV projections, the output projection and (in
    /// [`TransformerBlock::forward_spans`]) the MLP run as *one* GEMM each
    /// instead of K, while the quadratic score/softmax/AV chain stays
    /// per-span so sessions never mix. Because every kernel's per-row
    /// accumulation order is independent of the row count, each span's rows
    /// are **bit-identical** to running that span through
    /// [`MultiHeadAttention::forward`] alone.
    ///
    /// All heads are computed as one fused autograd op. The QKV projections
    /// of every head are evaluated as a single `[dim, 3*dim]` GEMM against
    /// the concatenated weights (three launches fused into one, ROADMAP
    /// PR-2 follow-up); the per-head, per-span `scores -> softmax -> AV`
    /// chains then fan out across the `bliss_parallel` pool in both the
    /// forward and the backward pass (head index order is fixed, so
    /// gradients accumulate identically for every thread count).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input's channel dimension is not `dim`,
    /// or [`TensorError::InvalidArgument`] if `spans` is empty, overlapping,
    /// out of order, or does not exactly cover the input rows.
    pub fn forward_spans(
        &self,
        x: &Tensor,
        spans: &[(usize, usize)],
    ) -> Result<Tensor, TensorError> {
        let rows = x.shape()[0];
        validate_spans(spans, rows, "mha_forward_spans")?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let heads = self.heads();
        let head_dim = self.head_dim;
        let dim = self.dim;
        let spans: Vec<(usize, usize)> = spans.to_vec();

        // Parent order: x, then per head the q/k/v weight and bias tensors.
        // Parameter values are read through borrow guards (here and again in
        // backward) rather than cloned into the graph node.
        let mut parents = Vec::with_capacity(1 + 6 * heads);
        parents.push(x.clone());
        for h in 0..heads {
            parents.extend(self.query[h].parameters());
            parents.extend(self.key[h].parameters());
            parents.extend(self.value[h].parameters());
        }

        let (forwards, concat) = {
            let guards: Vec<std::cell::Ref<'_, NdArray>> =
                parents.iter().map(|p| p.value()).collect();
            let xv: &NdArray = &guards[0];
            let params = head_param_refs(&guards, heads);
            // Fused QKV: all heads' projections as one [dim, 3*dim] GEMM.
            // Column layout [q_0..q_H | k_0..k_H | v_0..v_H]; per-element
            // accumulation order (ascending k) matches the unfused GEMMs, so
            // the slices below are bit-identical to per-head projections.
            let qkv = {
                let mut cols: Vec<&NdArray> = Vec::with_capacity(3 * heads);
                for proj in 0..3 {
                    for p in params.iter() {
                        cols.push(p[2 * proj]);
                    }
                }
                let wqkv = NdArray::concat_cols(&cols)?;
                let mut bias = Vec::with_capacity(3 * dim);
                for proj in 0..3 {
                    for p in params.iter() {
                        bias.extend_from_slice(p[2 * proj + 1].data());
                    }
                }
                let bqkv = NdArray::from_vec(bias, &[3 * dim])?;
                xv.matmul(&wqkv)?.add_row(&bqkv)?
            };
            let spans_f = &spans;
            let results: Result<Vec<(HeadForward, NdArray)>, TensorError> =
                par_map_collect(heads, |h| -> Result<(HeadForward, NdArray), TensorError> {
                    let q = qkv.slice_cols(h * head_dim, (h + 1) * head_dim)?;
                    let k = qkv.slice_cols(dim + h * head_dim, dim + (h + 1) * head_dim)?;
                    let v = qkv.slice_cols(2 * dim + h * head_dim, 2 * dim + (h + 1) * head_dim)?;
                    let mut attns = Vec::with_capacity(spans_f.len());
                    let mut outs = Vec::with_capacity(spans_f.len());
                    for &(s, e) in spans_f {
                        let attn = q
                            .slice_rows(s, e)?
                            .matmul_transposed(&k.slice_rows(s, e)?)?
                            .scale(scale)
                            .softmax_rows()?;
                        outs.push(attn.matmul(&v.slice_rows(s, e)?)?);
                        attns.push(attn);
                    }
                    let out = NdArray::concat_rows(&outs.iter().collect::<Vec<_>>())?;
                    Ok((HeadForward { q, k, v, attns }, out))
                })
                .into_iter()
                .collect();
            let mut forwards = Vec::with_capacity(heads);
            let mut outs = Vec::with_capacity(heads);
            for (f, o) in results? {
                forwards.push(f);
                outs.push(o);
            }
            let concat = NdArray::concat_cols(&outs.iter().collect::<Vec<_>>())?;
            (forwards, concat)
        };

        let fused = Tensor::from_custom_op(concat, parents, move |g, parents| {
            let e = "head shapes fixed by forward";
            let grads: Vec<HeadGradients> = {
                let guards: Vec<std::cell::Ref<'_, NdArray>> =
                    parents.iter().map(|p| p.value()).collect();
                let xv: &NdArray = &guards[0];
                let params = head_param_refs(&guards, heads);
                // Shared by every head's projection gradients.
                let xt = xv.transpose().expect(e);
                let spans_b = &spans;
                par_map_collect(heads, |h| {
                    let f = &forwards[h];
                    let [wq, _, wk, _, wv, _] = params[h];
                    let gh = g
                        .slice_cols(h * head_dim, (h + 1) * head_dim)
                        .expect("gradient columns per head");
                    let mut dqs = Vec::with_capacity(spans_b.len());
                    let mut dks = Vec::with_capacity(spans_b.len());
                    let mut dvs = Vec::with_capacity(spans_b.len());
                    for (si, &(s, en)) in spans_b.iter().enumerate() {
                        let attn = &f.attns[si];
                        let ghs = gh.slice_rows(s, en).expect(e);
                        let dv = attn.transpose().expect(e).matmul(&ghs).expect(e);
                        let dattn = ghs
                            .matmul_transposed(&f.v.slice_rows(s, en).expect(e))
                            .expect(e);
                        let dscores = softmax_rows_backward(attn, &dattn).scale(scale);
                        dqs.push(dscores.matmul(&f.k.slice_rows(s, en).expect(e)).expect(e));
                        dks.push(
                            dscores
                                .transpose()
                                .expect(e)
                                .matmul(&f.q.slice_rows(s, en).expect(e))
                                .expect(e),
                        );
                        dvs.push(dv);
                    }
                    let dq = NdArray::concat_rows(&dqs.iter().collect::<Vec<_>>()).expect(e);
                    let dk = NdArray::concat_rows(&dks.iter().collect::<Vec<_>>()).expect(e);
                    let dv = NdArray::concat_rows(&dvs.iter().collect::<Vec<_>>()).expect(e);
                    let dx = dq
                        .matmul_transposed(wq)
                        .expect(e)
                        .add(&dk.matmul_transposed(wk).expect(e))
                        .expect(e)
                        .add(&dv.matmul_transposed(wv).expect(e))
                        .expect(e);
                    HeadGradients {
                        dx,
                        dwq: xt.matmul(&dq).expect(e),
                        dbq: dq.sum_rows().expect(e),
                        dwk: xt.matmul(&dk).expect(e),
                        dbk: dk.sum_rows().expect(e),
                        dwv: xt.matmul(&dv).expect(e),
                        dbv: dv.sum_rows().expect(e),
                    }
                })
            };
            // Accumulate in fixed head order so results never depend on the
            // thread count.
            let e = "gradient shapes match parameters";
            let mut dx = NdArray::zeros(&parents[0].shape());
            for hg in &grads {
                dx.add_assign(&hg.dx).expect(e);
            }
            parents[0].add_grad(&dx).expect(e);
            for (h, hg) in grads.iter().enumerate() {
                let p = &parents[1 + 6 * h..1 + 6 * (h + 1)];
                p[0].add_grad(&hg.dwq).expect(e);
                p[1].add_grad(&hg.dbq).expect(e);
                p[2].add_grad(&hg.dwk).expect(e);
                p[3].add_grad(&hg.dbk).expect(e);
                p[4].add_grad(&hg.dwv).expect(e);
                p[5].add_grad(&hg.dbv).expect(e);
            }
        });
        self.proj.forward(&fused)
    }

    /// Records block-diagonal self-attention into a planned-inference graph,
    /// mirroring [`MultiHeadAttention::forward_spans`] exactly: the same
    /// fused `[dim, 3*dim]` QKV GEMM (column layout
    /// `[q_0..q_H | k_0..k_H | v_0..v_H]`), the same per-head, per-span
    /// `scores -> softmax -> AV` chain and the same concatenation order, so
    /// the compiled plan is bit-identical to the tape. The forward runs the
    /// heads through the thread pool; the recorded graph lists them in the
    /// same fixed head order, and since the heads are data-independent the
    /// results match bit-for-bit at any thread count.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input's channel dimension is not `dim`,
    /// or [`TensorError::InvalidArgument`] for a malformed `spans` (see
    /// [`MultiHeadAttention::forward_spans`]).
    pub fn record_spans(
        &self,
        g: &mut GraphBuilder,
        x: NodeId,
        spans: &[(usize, usize)],
    ) -> Result<NodeId, TensorError> {
        let rows = g.shape(x)[0];
        validate_spans(spans, rows, "mha_record_spans")?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let heads = self.heads();
        let head_dim = self.head_dim;
        let dim = self.dim;

        // Fused QKV weights/biases in the same [q_0..q_H | k_0..k_H |
        // v_0..v_H] column layout as the forward's concat.
        let mut wcols = Vec::with_capacity(3 * heads);
        let mut bparts = Vec::with_capacity(3 * heads);
        for proj in 0..3 {
            for h in 0..heads {
                let lin = match proj {
                    0 => &self.query[h],
                    1 => &self.key[h],
                    _ => &self.value[h],
                };
                let params = lin.parameters();
                wcols.push(g.param(&params[0]));
                bparts.push(g.param(&params[1]));
            }
        }
        let wqkv = g.concat_cols(&wcols)?;
        let bqkv = g.concat_flat(&bparts)?;
        let mm = g.matmul(x, wqkv)?;
        let qkv = g.add_row(mm, bqkv)?;

        let mut head_outs = Vec::with_capacity(heads);
        for h in 0..heads {
            let q = g.slice_cols(qkv, h * head_dim, (h + 1) * head_dim)?;
            let k = g.slice_cols(qkv, dim + h * head_dim, dim + (h + 1) * head_dim)?;
            let v = g.slice_cols(qkv, 2 * dim + h * head_dim, 2 * dim + (h + 1) * head_dim)?;
            let mut outs = Vec::with_capacity(spans.len());
            for &(s, e) in spans {
                let qs = g.slice_rows(q, s, e)?;
                let ks = g.slice_rows(k, s, e)?;
                let vs = g.slice_rows(v, s, e)?;
                let scores = g.matmul_transposed(qs, ks)?;
                let scaled = g.scale(scores, scale);
                let attn = g.softmax_rows(scaled)?;
                outs.push(g.matmul(attn, vs)?);
            }
            head_outs.push(g.concat_rows(&outs)?);
        }
        let fused = g.concat_cols(&head_outs)?;
        self.proj.record(g, fused)
    }

    /// Multiply-accumulate operations for `tokens` input rows.
    ///
    /// Counts QKV projections, the two attention GEMMs (`QK^T`, `AV`) and the
    /// output projection. The quadratic `tokens^2` terms are why dropping
    /// empty patches under sparse sampling reduces compute super-linearly.
    pub fn macs(&self, tokens: usize) -> u64 {
        let t = tokens as u64;
        let d = self.dim as u64;
        let hd = self.head_dim as u64;
        let heads = self.heads() as u64;
        let qkv = 3 * heads * t * d * hd;
        let attn = 2 * heads * t * t * hd;
        let proj = t * d * d;
        qkv + attn + proj
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for h in 0..self.heads() {
            p.extend(self.query[h].parameters());
            p.extend(self.key[h].parameters());
            p.extend(self.value[h].parameters());
        }
        p.extend(self.proj.parameters());
        p
    }
}

/// A pre-norm transformer block: `x + MHA(LN(x))` then `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    norm1: LayerNormLayer,
    attn: MultiHeadAttention,
    norm2: LayerNormLayer,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a block with `dim` channels, `heads` attention heads and a
    /// 4x MLP expansion (the Segmenter default).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize, heads: usize) -> Self {
        Self::with_mlp_ratio(rng, dim, heads, 4)
    }

    /// Creates a block with an explicit MLP expansion ratio.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads` or `mlp_ratio == 0`.
    pub fn with_mlp_ratio<R: Rng + ?Sized>(
        rng: &mut R,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
    ) -> Self {
        assert!(mlp_ratio > 0, "mlp_ratio must be positive");
        TransformerBlock {
            norm1: LayerNormLayer::new(dim),
            attn: MultiHeadAttention::new(rng, dim, heads),
            norm2: LayerNormLayer::new(dim),
            mlp: Mlp::new(rng, dim, dim * mlp_ratio),
        }
    }

    /// Applies the block to a `[tokens, dim]` tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the channel dimension differs.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let rows = x.shape()[0];
        self.forward_spans(x, &[(0, rows)])
    }

    /// Applies the block with block-diagonal attention over `spans`
    /// (see [`MultiHeadAttention::forward_spans`]): layer norms, the fused
    /// QKV/output projections and the MLP run as single cross-span GEMMs,
    /// while attention never crosses a span boundary. Each span's rows are
    /// bit-identical to a solo [`TransformerBlock::forward`] of that span.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the channel dimension differs, or an
    /// invalid-argument error for a malformed `spans` (see
    /// [`MultiHeadAttention::forward_spans`]).
    pub fn forward_spans(
        &self,
        x: &Tensor,
        spans: &[(usize, usize)],
    ) -> Result<Tensor, TensorError> {
        let attn_out = self.attn.forward_spans(&self.norm1.forward(x)?, spans)?;
        let x = x.add(&attn_out)?;
        let mlp_out = self.mlp.forward(&self.norm2.forward(&x)?)?;
        x.add(&mlp_out)
    }

    /// Records the block into a planned-inference graph, mirroring
    /// [`TransformerBlock::forward_spans`] exactly.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the channel dimension differs, or an
    /// invalid-argument error for a malformed `spans` (see
    /// [`MultiHeadAttention::forward_spans`]).
    pub fn record_spans(
        &self,
        g: &mut GraphBuilder,
        x: NodeId,
        spans: &[(usize, usize)],
    ) -> Result<NodeId, TensorError> {
        let n1 = self.norm1.record(g, x)?;
        let attn_out = self.attn.record_spans(g, n1, spans)?;
        let x1 = g.add(x, attn_out)?;
        let n2 = self.norm2.record(g, x1)?;
        let mlp_out = self.mlp.record(g, n2)?;
        g.add(x1, mlp_out)
    }

    /// Multiply-accumulate operations for `tokens` input rows.
    pub fn macs(&self, tokens: usize) -> u64 {
        self.attn.macs(tokens) + self.mlp.macs(tokens)
    }

    /// The attention module (for inspection).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }
}

impl Module for TransformerBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.norm1.parameters();
        p.extend(self.attn.parameters());
        p.extend(self.norm2.parameters());
        p.extend(self.mlp.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mha_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        let x = Tensor::constant(NdArray::ones(&[7, 12]));
        let y = mha.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![7, 12]);
    }

    #[test]
    fn mha_macs_grow_quadratically_in_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        let m1 = mha.macs(10);
        let m2 = mha.macs(20);
        // Superlinear growth: more than 2x for 2x tokens.
        assert!(m2 > 2 * m1);
    }

    #[test]
    #[should_panic(expected = "dim must divide")]
    fn mha_requires_divisible_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(&mut rng, 10, 3);
    }

    #[test]
    fn transformer_block_trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = TransformerBlock::new(&mut rng, 8, 2);
        let x = Tensor::constant(NdArray::randn(&mut rng, &[5, 8], 1.0));
        let y = block.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![5, 8]);
        y.mean_all().backward().unwrap();
        let grads_present = block
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        assert_eq!(grads_present, block.parameters().len());
    }

    #[test]
    fn attention_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        let mha = MultiHeadAttention::new(&mut rng, 4, 2);
        let x = NdArray::randn(&mut rng, &[3, 4], 1.0);
        let params = mha.parameters();
        let report = bliss_tensor::check_gradients(
            &params,
            || {
                let xin = Tensor::constant(x.clone());
                Ok(mha.forward(&xin)?.mul(&mha.forward(&xin)?)?.mean_all())
            },
            1e-2,
            4,
        )
        .unwrap();
        assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    /// Reference unfused forward: per-head q/k/v GEMMs as three separate
    /// launches, exactly the pre-fusion formulation.
    fn unfused_reference(mha: &MultiHeadAttention, x: &NdArray) -> NdArray {
        let params = mha.parameters();
        let heads = mha.heads();
        let head_dim = mha.dim() / heads;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut outs = Vec::new();
        for h in 0..heads {
            let p = &params[6 * h..6 * (h + 1)];
            let q = x
                .matmul(&p[0].value())
                .unwrap()
                .add_row(&p[1].value())
                .unwrap();
            let k = x
                .matmul(&p[2].value())
                .unwrap()
                .add_row(&p[3].value())
                .unwrap();
            let v = x
                .matmul(&p[4].value())
                .unwrap()
                .add_row(&p[5].value())
                .unwrap();
            let attn = q
                .matmul_transposed(&k)
                .unwrap()
                .scale(scale)
                .softmax_rows()
                .unwrap();
            outs.push(attn.matmul(&v).unwrap());
        }
        let concat = NdArray::concat_cols(&outs.iter().collect::<Vec<_>>()).unwrap();
        let wp = params[6 * heads].value().clone();
        let bp = params[6 * heads + 1].value().clone();
        concat.matmul(&wp).unwrap().add_row(&bp).unwrap()
    }

    #[test]
    fn fused_qkv_matches_unfused_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let mha = MultiHeadAttention::new(&mut rng, 24, 3);
        let x = NdArray::randn(&mut rng, &[11, 24], 1.0);
        let fused = mha.forward(&Tensor::constant(x.clone())).unwrap();
        let reference = unfused_reference(&mha, &x);
        assert!(
            fused.value().approx_eq(&reference, 1e-5),
            "fused QKV output diverged from the unfused formulation"
        );
    }

    #[test]
    fn forward_spans_matches_independent_forwards_bitwise() {
        let mut rng = StdRng::seed_from_u64(10);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        let a = NdArray::randn(&mut rng, &[5, 12], 1.0);
        let b = NdArray::randn(&mut rng, &[3, 12], 1.0);
        let ya = mha.forward(&Tensor::constant(a.clone())).unwrap();
        let yb = mha.forward(&Tensor::constant(b.clone())).unwrap();
        let stacked = NdArray::concat_rows(&[&a, &b]).unwrap();
        let y = mha
            .forward_spans(&Tensor::constant(stacked), &[(0, 5), (5, 8)])
            .unwrap();
        let yv = y.value();
        assert_eq!(&yv.data()[..5 * 12], ya.value().data());
        assert_eq!(&yv.data()[5 * 12..], yb.value().data());
    }

    #[test]
    fn transformer_block_spans_match_solo_blocks_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let block = TransformerBlock::new(&mut rng, 8, 2);
        let a = NdArray::randn(&mut rng, &[4, 8], 1.0);
        let b = NdArray::randn(&mut rng, &[6, 8], 1.0);
        let ya = block.forward(&Tensor::constant(a.clone())).unwrap();
        let yb = block.forward(&Tensor::constant(b.clone())).unwrap();
        let stacked = NdArray::concat_rows(&[&a, &b]).unwrap();
        let y = block
            .forward_spans(&Tensor::constant(stacked), &[(0, 4), (4, 10)])
            .unwrap();
        let yv = y.value();
        assert_eq!(&yv.data()[..4 * 8], ya.value().data());
        assert_eq!(&yv.data()[4 * 8..], yb.value().data());
    }

    #[test]
    fn malformed_spans_are_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2);
        let x = Tensor::constant(NdArray::ones(&[6, 8]));
        for bad in [
            &[][..],
            &[(0, 3)][..],                 // does not cover all rows
            &[(0, 3), (4, 6)][..],         // gap
            &[(0, 4), (3, 6)][..],         // overlap
            &[(0, 3), (3, 3), (3, 6)][..], // empty span
            &[(3, 6), (0, 3)][..],         // out of order
        ] {
            assert!(mha.forward_spans(&x, bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn spanned_attention_gradcheck() {
        let mut rng = StdRng::seed_from_u64(13);
        let mha = MultiHeadAttention::new(&mut rng, 4, 2);
        let x = NdArray::randn(&mut rng, &[5, 4], 1.0);
        let params = mha.parameters();
        let report = bliss_tensor::check_gradients(
            &params,
            || {
                let xin = Tensor::constant(x.clone());
                Ok(mha.forward_spans(&xin, &[(0, 2), (2, 5)])?.mean_all())
            },
            1e-2,
            4,
        )
        .unwrap();
        assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        // 3 heads * 3 projections * (12*4 + 4) + proj (12*12 + 12)
        let expected = 3 * 3 * (12 * 4 + 4) + 12 * 12 + 12;
        assert_eq!(mha.num_parameters(), expected);
    }

    #[test]
    fn recorded_mha_spans_match_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(20);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        let x = NdArray::randn(&mut rng, &[9, 12], 1.0);
        let spans = [(0, 4), (4, 9)];
        let taped = mha
            .forward_spans(&Tensor::constant(x.clone()), &spans)
            .unwrap();

        let mut g = GraphBuilder::default();
        let xin = g.input(&[9, 12]);
        let out = mha.record_spans(&mut g, xin, &spans).unwrap();
        g.mark_output(out);
        let plan = bliss_tensor::ExecPlan::compile(g).unwrap();
        plan.execute(&[x.data()], &[]).unwrap();
        plan.with_output(0, |data| assert_eq!(data, taped.value().data()));
    }

    #[test]
    fn recorded_transformer_block_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let block = TransformerBlock::new(&mut rng, 8, 2);
        let x = NdArray::randn(&mut rng, &[10, 8], 1.0);
        let spans = [(0, 7), (7, 10)];
        let taped = block
            .forward_spans(&Tensor::constant(x.clone()), &spans)
            .unwrap();

        let mut g = GraphBuilder::default();
        let xin = g.input(&[10, 8]);
        let out = block.record_spans(&mut g, xin, &spans).unwrap();
        g.mark_output(out);
        let plan = bliss_tensor::ExecPlan::compile(g).unwrap();
        plan.execute(&[x.data()], &[]).unwrap();
        plan.with_output(0, |data| assert_eq!(data, taped.value().data()));
    }

    #[test]
    fn recorded_mha_rejects_malformed_spans() {
        let mut rng = StdRng::seed_from_u64(22);
        let mha = MultiHeadAttention::new(&mut rng, 8, 2);
        let mut g = GraphBuilder::default();
        let xin = g.input(&[6, 8]);
        assert!(mha.record_spans(&mut g, xin, &[(0, 3)]).is_err());
        assert!(mha.record_spans(&mut g, xin, &[(0, 4), (3, 6)]).is_err());
    }
}
