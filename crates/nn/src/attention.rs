use crate::layers::{LayerNormLayer, Linear, Mlp};
use crate::Module;
use bliss_tensor::{Tensor, TensorError};
use rand::Rng;

/// Multi-head self-attention over `[tokens, dim]` inputs.
///
/// Each head owns its own query/key/value projections of size
/// `dim -> dim/heads`; head outputs are concatenated and passed through an
/// output projection. This mirrors the paper's MHA modules (3 heads,
/// channel size 192 at paper scale, §III-B).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    query: Vec<Linear>,
    key: Vec<Linear>,
    value: Vec<Linear>,
    proj: Linear,
    dim: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an MHA module with `heads` heads over `dim` channels.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "dim must divide by heads"
        );
        let head_dim = dim / heads;
        let mk = |rng: &mut R| -> Vec<Linear> {
            (0..heads)
                .map(|_| Linear::new(rng, dim, head_dim))
                .collect()
        };
        MultiHeadAttention {
            query: mk(rng),
            key: mk(rng),
            value: mk(rng),
            proj: Linear::new(rng, dim, dim),
            dim,
            head_dim,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.query.len()
    }

    /// Channel dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies self-attention to a `[tokens, dim]` tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input's channel dimension is not `dim`.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.heads());
        for h in 0..self.heads() {
            let q = self.query[h].forward(x)?;
            let k = self.key[h].forward(x)?;
            let v = self.value[h].forward(x)?;
            let scores = q.matmul(&k.transpose()?)?.scale(scale);
            let attn = scores.softmax_rows()?;
            head_outputs.push(attn.matmul(&v)?);
        }
        let concat = Tensor::concat_cols(&head_outputs)?;
        self.proj.forward(&concat)
    }

    /// Multiply-accumulate operations for `tokens` input rows.
    ///
    /// Counts QKV projections, the two attention GEMMs (`QK^T`, `AV`) and the
    /// output projection. The quadratic `tokens^2` terms are why dropping
    /// empty patches under sparse sampling reduces compute super-linearly.
    pub fn macs(&self, tokens: usize) -> u64 {
        let t = tokens as u64;
        let d = self.dim as u64;
        let hd = self.head_dim as u64;
        let heads = self.heads() as u64;
        let qkv = 3 * heads * t * d * hd;
        let attn = 2 * heads * t * t * hd;
        let proj = t * d * d;
        qkv + attn + proj
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = Vec::new();
        for h in 0..self.heads() {
            p.extend(self.query[h].parameters());
            p.extend(self.key[h].parameters());
            p.extend(self.value[h].parameters());
        }
        p.extend(self.proj.parameters());
        p
    }
}

/// A pre-norm transformer block: `x + MHA(LN(x))` then `x + MLP(LN(x))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    norm1: LayerNormLayer,
    attn: MultiHeadAttention,
    norm2: LayerNormLayer,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a block with `dim` channels, `heads` attention heads and a
    /// 4x MLP expansion (the Segmenter default).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, dim: usize, heads: usize) -> Self {
        Self::with_mlp_ratio(rng, dim, heads, 4)
    }

    /// Creates a block with an explicit MLP expansion ratio.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads` or `mlp_ratio == 0`.
    pub fn with_mlp_ratio<R: Rng + ?Sized>(
        rng: &mut R,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
    ) -> Self {
        assert!(mlp_ratio > 0, "mlp_ratio must be positive");
        TransformerBlock {
            norm1: LayerNormLayer::new(dim),
            attn: MultiHeadAttention::new(rng, dim, heads),
            norm2: LayerNormLayer::new(dim),
            mlp: Mlp::new(rng, dim, dim * mlp_ratio),
        }
    }

    /// Applies the block to a `[tokens, dim]` tensor.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the channel dimension differs.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, TensorError> {
        let attn_out = self.attn.forward(&self.norm1.forward(x)?)?;
        let x = x.add(&attn_out)?;
        let mlp_out = self.mlp.forward(&self.norm2.forward(&x)?)?;
        x.add(&mlp_out)
    }

    /// Multiply-accumulate operations for `tokens` input rows.
    pub fn macs(&self, tokens: usize) -> u64 {
        self.attn.macs(tokens) + self.mlp.macs(tokens)
    }

    /// The attention module (for inspection).
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attn
    }
}

impl Module for TransformerBlock {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.norm1.parameters();
        p.extend(self.attn.parameters());
        p.extend(self.norm2.parameters());
        p.extend(self.mlp.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mha_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        let x = Tensor::constant(NdArray::ones(&[7, 12]));
        let y = mha.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![7, 12]);
    }

    #[test]
    fn mha_macs_grow_quadratically_in_tokens() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        let m1 = mha.macs(10);
        let m2 = mha.macs(20);
        // Superlinear growth: more than 2x for 2x tokens.
        assert!(m2 > 2 * m1);
    }

    #[test]
    #[should_panic(expected = "dim must divide")]
    fn mha_requires_divisible_heads() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(&mut rng, 10, 3);
    }

    #[test]
    fn transformer_block_trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = TransformerBlock::new(&mut rng, 8, 2);
        let x = Tensor::constant(NdArray::randn(&mut rng, &[5, 8], 1.0));
        let y = block.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![5, 8]);
        y.mean_all().backward().unwrap();
        let grads_present = block
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        assert_eq!(grads_present, block.parameters().len());
    }

    #[test]
    fn attention_gradcheck() {
        let mut rng = StdRng::seed_from_u64(4);
        let mha = MultiHeadAttention::new(&mut rng, 4, 2);
        let x = NdArray::randn(&mut rng, &[3, 4], 1.0);
        let params = mha.parameters();
        let report = bliss_tensor::check_gradients(
            &params,
            || {
                let xin = Tensor::constant(x.clone());
                Ok(mha.forward(&xin)?.mul(&mha.forward(&xin)?)?.mean_all())
            },
            1e-2,
            4,
        )
        .unwrap();
        assert!(report.passes(5e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut rng, 12, 3);
        // 3 heads * 3 projections * (12*4 + 4) + proj (12*12 + 12)
        let expected = 3 * 3 * (12 * 4 + 4) + 12 * 12 + 12;
        assert_eq!(mha.num_parameters(), expected);
    }
}
