//! Weight snapshots: serialisable copies of a [`Module`]'s parameters.
//!
//! A snapshot captures each parameter tensor's shape and data in the
//! module's stable [`Module::parameters`] order — nothing else. Optimizer
//! moments, autograd graphs and gradients are deliberately excluded: the
//! durable-serving layer snapshots *trained* networks whose weights are
//! frozen at inference time, so the parameter values alone reproduce every
//! forward pass bit-for-bit.

use bliss_tensor::{NdArray, TensorError};
use serde::{Deserialize, Serialize};

use crate::Module;

/// One parameter tensor's shape and values, in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSnapshot {
    /// The tensor's shape.
    pub shape: Vec<usize>,
    /// The tensor's values, row-major.
    pub data: Vec<f32>,
}

/// Captures the current values of `module`'s parameters.
///
/// The returned vector follows [`Module::parameters`] order, which every
/// layer documents as stable — [`restore_params`] relies on it.
pub fn snapshot_params<M: Module + ?Sized>(module: &M) -> Vec<ParamSnapshot> {
    module
        .parameters()
        .iter()
        .map(|p| {
            let v = p.value();
            ParamSnapshot {
                shape: v.shape().to_vec(),
                data: v.data().to_vec(),
            }
        })
        .collect()
}

/// Writes snapshotted values back into `module`'s parameters.
///
/// # Errors
///
/// Returns [`TensorError`] when the snapshot's parameter count or any
/// tensor shape does not match the module — a restore into a module built
/// from a different config must fail loudly, never silently truncate.
pub fn restore_params<M: Module + ?Sized>(
    module: &M,
    snapshot: &[ParamSnapshot],
) -> Result<(), TensorError> {
    let params = module.parameters();
    if params.len() != snapshot.len() {
        return Err(TensorError::ShapeMismatch {
            op: "restore_params",
            lhs: vec![params.len()],
            rhs: vec![snapshot.len()],
        });
    }
    for (param, snap) in params.iter().zip(snapshot) {
        param.set_value(NdArray::from_vec(snap.data.clone(), &snap.shape)?)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Linear;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn round_trips_through_json() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = Linear::new(&mut rng, 4, 3);
        let snap = snapshot_params(&layer);
        let json: String = snap.to_json();
        let parsed = Vec::<ParamSnapshot>::from_json(&json).expect("parses");
        assert_eq!(parsed, snap);

        let mut rng2 = StdRng::seed_from_u64(99);
        let other = Linear::new(&mut rng2, 4, 3);
        restore_params(&other, &parsed).expect("shapes match");
        assert_eq!(snapshot_params(&other), snap);
    }

    #[test]
    fn shape_mismatch_fails_loudly() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut rng, 4, 3);
        let narrow = Linear::new(&mut rng, 2, 3);
        assert!(restore_params(&narrow, &snapshot_params(&layer)).is_err());
        assert!(restore_params(&layer, &snapshot_params(&layer)[..1]).is_err());
    }
}
