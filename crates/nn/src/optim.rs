use bliss_tensor::{NdArray, Tensor};

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<NdArray>,
}

impl Sgd {
    /// Creates plain SGD over `params` with learning rate `lr`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self::with_momentum(params, lr, 0.0)
    }

    /// Creates SGD with heavy-ball momentum.
    pub fn with_momentum(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        let velocity = params
            .iter()
            .map(|p| NdArray::zeros(p.value().shape()))
            .collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Clears gradients of all managed parameters.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one update step; parameters without gradients are skipped.
    pub fn step(&mut self) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            if self.momentum > 0.0 {
                *v = v.scale(self.momentum).add(&g).expect("velocity shape");
                let update = v.scale(self.lr);
                p.update_value(|value| {
                    *value = value.sub(&update).expect("sgd update shape");
                });
            } else {
                let update = g.scale(self.lr);
                p.update_value(|value| {
                    *value = value.sub(&update).expect("sgd update shape");
                });
            }
        }
    }
}

/// The Adam optimizer (Kingma & Ba), used for joint training of the ROI and
/// segmentation networks.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    m: Vec<NdArray>,
    v: Vec<NdArray>,
}

impl Adam {
    /// Creates Adam with the conventional defaults `beta1=0.9, beta2=0.999`.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        let m = params
            .iter()
            .map(|p| NdArray::zeros(p.value().shape()))
            .collect();
        let v = params
            .iter()
            .map(|p| NdArray::zeros(p.value().shape()))
            .collect();
        Adam {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m,
            v,
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (e.g. for warmup/decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Clears gradients of all managed parameters.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one bias-corrected Adam step; parameters without gradients are
    /// skipped.
    pub fn step(&mut self) {
        self.step_count += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for ((p, m), v) in self
            .params
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let Some(g) = p.grad() else { continue };
            *m = m
                .scale(self.beta1)
                .add(&g.scale(1.0 - self.beta1))
                .expect("adam m shape");
            *v = v
                .scale(self.beta2)
                .add(&g.mul(&g).expect("adam g^2").scale(1.0 - self.beta2))
                .expect("adam v shape");
            let m_hat = m.scale(1.0 / bc1);
            let v_hat = v.scale(1.0 / bc2);
            let eps = self.eps;
            let lr = self.lr;
            let update = m_hat.zip_with(&v_hat, |mh, vh| lr * mh / (vh.sqrt() + eps));
            p.update_value(|value| {
                *value = value.sub(&update).expect("adam update shape");
            });
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
///
/// Returns the norm before clipping. Parameters without gradients are
/// ignored.
pub fn clip_global_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.data().iter().map(|&x| x * x).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.zero_grad();
                p.add_grad(&g.scale(scale)).expect("clip grad shape");
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_tensor::NdArray;

    fn quad_loss(x: &Tensor) -> Tensor {
        // loss = sum(x^2), minimum at 0
        x.mul(x).unwrap().sum_all()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let x = Tensor::parameter(NdArray::from_vec(vec![4.0, -2.0], &[2]).unwrap());
        let mut opt = Sgd::new(vec![x.clone()], 0.1);
        let initial = quad_loss(&x).value().data()[0];
        for _ in 0..50 {
            opt.zero_grad();
            quad_loss(&x).backward().unwrap();
            opt.step();
        }
        let fin = quad_loss(&x).value().data()[0];
        assert!(fin < initial * 1e-3, "initial={initial} final={fin}");
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let x1 = Tensor::parameter(NdArray::from_vec(vec![4.0], &[1]).unwrap());
        let x2 = Tensor::parameter(NdArray::from_vec(vec![4.0], &[1]).unwrap());
        let mut plain = Sgd::new(vec![x1.clone()], 0.01);
        let mut mom = Sgd::with_momentum(vec![x2.clone()], 0.01, 0.9);
        for _ in 0..20 {
            plain.zero_grad();
            quad_loss(&x1).backward().unwrap();
            plain.step();
            mom.zero_grad();
            quad_loss(&x2).backward().unwrap();
            mom.step();
        }
        assert!(x2.value().data()[0].abs() < x1.value().data()[0].abs());
    }

    #[test]
    fn adam_descends_quadratic() {
        let x = Tensor::parameter(NdArray::from_vec(vec![3.0, -5.0, 1.0], &[3]).unwrap());
        let mut opt = Adam::new(vec![x.clone()], 0.2);
        for _ in 0..200 {
            opt.zero_grad();
            quad_loss(&x).backward().unwrap();
            opt.step();
        }
        for &v in x.value().data() {
            assert!(v.abs() < 0.05, "v={v}");
        }
    }

    #[test]
    fn step_skips_missing_gradients() {
        let x = Tensor::parameter(NdArray::ones(&[2]));
        let mut opt = Adam::new(vec![x.clone()], 0.1);
        opt.step(); // no gradient accumulated; should be a no-op
        assert_eq!(x.value().data(), &[1.0, 1.0]);
    }

    #[test]
    fn clip_global_norm_scales_down() {
        let x = Tensor::parameter(NdArray::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        // loss = sum(x * [3,4]) -> grad = [3, 4], norm 5
        let c = NdArray::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        x.mul_mask(&c).unwrap().sum_all().backward().unwrap();
        let norm = clip_global_norm(std::slice::from_ref(&x), 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let g = x.grad().unwrap();
        let new_norm: f32 = g.data().iter().map(|&v| v * v).sum::<f32>().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let x = Tensor::parameter(NdArray::from_vec(vec![0.1], &[1]).unwrap());
        quad_loss(&x).backward().unwrap();
        let before = x.grad().unwrap();
        clip_global_norm(std::slice::from_ref(&x), 10.0);
        assert_eq!(x.grad().unwrap().data(), before.data());
    }
}
