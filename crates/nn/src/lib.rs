//! Neural-network building blocks for the BlissCam reproduction.
//!
//! Layers are thin, explicitly-parameterised wrappers over
//! [`bliss_tensor::Tensor`] operations. Networks are built define-by-run:
//! every forward call records a fresh autograd graph, while the layer structs
//! own the persistent parameter tensors.
//!
//! The crate provides everything the paper's networks need:
//!
//! * [`Linear`], [`Conv2d`], [`DepthwiseSeparableConv2d`] — the ROI-prediction
//!   CNN (3 Conv + 2 FC, §III-A) and the RITnet/EdGaze-style baselines.
//! * [`MultiHeadAttention`], [`TransformerBlock`], [`LayerNormLayer`] — the
//!   sparse ViT segmenter (12-block encoder + 2-block decoder, §III-B).
//! * [`Adam`], [`Sgd`] — the joint-training optimizers (§III-C).
//!
//! Each layer exposes a `macs(...)` method for multiply-accumulate
//! accounting; the lowered GEMM workload descriptions consumed by the NPU
//! simulator live in `bliss-npu`.
//!
//! # Example
//!
//! ```
//! use bliss_nn::{Linear, Module, Sgd};
//! use bliss_tensor::{NdArray, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), bliss_tensor::TensorError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let layer = Linear::new(&mut rng, 4, 2);
//! let mut opt = Sgd::new(layer.parameters(), 0.1);
//! for _ in 0..10 {
//!     let x = Tensor::constant(NdArray::ones(&[3, 4]));
//!     let loss = layer.forward(&x)?.mse_loss(&NdArray::zeros(&[3, 2]))?;
//!     opt.zero_grad();
//!     loss.backward()?;
//!     opt.step();
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod attention;
mod init;
mod layers;
mod optim;
mod snapshot;

pub use attention::{MultiHeadAttention, TransformerBlock};
pub use init::{kaiming_normal, xavier_uniform};
pub use layers::{Conv2d, DepthwiseSeparableConv2d, LayerNormLayer, Linear, Mlp};
pub use optim::{clip_global_norm, Adam, Sgd};
pub use snapshot::{restore_params, snapshot_params, ParamSnapshot};

use bliss_tensor::Tensor;

/// A set of trainable parameters.
///
/// Every layer implements `Module`; composite networks collect the parameters
/// of their sub-layers. Forward signatures differ per layer (image vs token
/// inputs), so `Module` intentionally only standardises parameter access.
pub trait Module {
    /// All trainable parameter tensors of this module, in a stable order.
    fn parameters(&self) -> Vec<Tensor>;

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().len()).sum()
    }
}
