use serde::{Deserialize, Serialize};

/// LPDDR3-1600 DRAM energy model (Micron 16 Gb, 4 channels).
///
/// The paper computes DRAM energy "based on Micron's System Power
/// Calculators using the memory traffic, including kernels and activations of
/// the segmentation ViT" (§V). We model the same two components: an access
/// energy proportional to traffic and a background (refresh + standby) power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Access (read/write + I/O) energy per byte, in joules.
    pub energy_per_byte_j: f64,
    /// Background power (self-refresh + standby across ranks), in watts.
    pub background_power_w: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel {
            // LPDDR3 sequential-burst access energy ≈ 15 pJ/byte (activate
            // amortised over long weight/activation streams).
            energy_per_byte_j: 15e-12,
            // 4-channel mobile package background.
            background_power_w: 18e-3,
        }
    }
}

impl DramModel {
    /// Creates a model with explicit parameters.
    pub fn new(energy_per_byte_j: f64, background_power_w: f64) -> Self {
        DramModel {
            energy_per_byte_j,
            background_power_w,
        }
    }

    /// Energy for `bytes` of traffic over an interval of `duration_s`
    /// seconds (the background term integrates over the interval).
    pub fn energy_j(&self, bytes: u64, duration_s: f64) -> f64 {
        bytes as f64 * self.energy_per_byte_j + self.background_power_w * duration_s
    }

    /// Pure traffic energy without the background term.
    pub fn traffic_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_energy_scales_linearly() {
        let d = DramModel::default();
        assert_eq!(d.traffic_energy_j(2_048), 2.0 * d.traffic_energy_j(1_024));
    }

    #[test]
    fn background_dominates_idle_interval() {
        let d = DramModel::default();
        let idle = d.energy_j(0, 1.0);
        assert!((idle - 18e-3).abs() < 1e-9);
    }

    #[test]
    fn megabyte_access_is_tens_of_microjoules() {
        let d = DramModel::default();
        let e = d.traffic_energy_j(1 << 20);
        assert!(e > 5e-6 && e < 100e-6, "1 MiB = {e} J");
    }
}
