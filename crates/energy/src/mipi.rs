use serde::{Deserialize, Serialize};

/// Standard video resolutions used by the paper's MIPI latency study (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resolution {
    /// 1280 x 720.
    R720p,
    /// 1920 x 1080.
    R1080p,
    /// 2560 x 1440.
    R2k,
    /// 3840 x 2160.
    R4k,
    /// 7680 x 4320.
    R8k,
}

impl Resolution {
    /// All resolutions in ascending pixel count (the Fig. 3 x-axis).
    pub const ALL: [Resolution; 5] = [
        Resolution::R720p,
        Resolution::R1080p,
        Resolution::R2k,
        Resolution::R4k,
        Resolution::R8k,
    ];

    /// Width and height in pixels.
    pub fn dimensions(&self) -> (usize, usize) {
        match self {
            Resolution::R720p => (1280, 720),
            Resolution::R1080p => (1920, 1080),
            Resolution::R2k => (2560, 1440),
            Resolution::R4k => (3840, 2160),
            Resolution::R8k => (7680, 4320),
        }
    }

    /// Total pixel count.
    pub fn pixels(&self) -> usize {
        let (w, h) = self.dimensions();
        w * h
    }

    /// Conventional label ("720P", "4K", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Resolution::R720p => "720P",
            Resolution::R1080p => "1080P",
            Resolution::R2k => "2K",
            Resolution::R4k => "4K",
            Resolution::R8k => "8K",
        }
    }
}

/// A MIPI CSI-2 sensor-to-host link.
///
/// Two constants drive the paper's analysis:
///
/// * **energy**: ~100 pJ per byte transmitted (Liu et al., ISSCC'22), which
///   turns data-volume reduction directly into energy reduction;
/// * **bandwidth**: the effective link rate determines transfer latency,
///   which at 4K already exceeds the 15 ms end-to-end budget (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MipiLink {
    /// Effective payload bandwidth in bytes/second.
    pub bandwidth_bytes_per_s: f64,
    /// Transfer energy per byte, in joules.
    pub energy_per_byte_j: f64,
    /// Bits per pixel on the wire (RAW10 by default).
    pub bits_per_pixel: u32,
}

impl Default for MipiLink {
    fn default() -> Self {
        MipiLink {
            // ~3.8 Gbps effective (2-lane D-PHY with protocol overhead):
            // calibrated so a 4K RAW10 frame takes ~22 ms as in Fig. 3.
            bandwidth_bytes_per_s: 0.47e9,
            energy_per_byte_j: 100e-12,
            bits_per_pixel: 10,
        }
    }
}

impl MipiLink {
    /// Creates a link with explicit parameters.
    pub fn new(bandwidth_bytes_per_s: f64, energy_per_byte_j: f64, bits_per_pixel: u32) -> Self {
        MipiLink {
            bandwidth_bytes_per_s,
            energy_per_byte_j,
            bits_per_pixel,
        }
    }

    /// Bytes on the wire for `pixels` raw pixels.
    pub fn frame_bytes(&self, pixels: usize) -> u64 {
        (pixels as u64 * self.bits_per_pixel as u64).div_ceil(8)
    }

    /// Transfer time for `bytes` payload bytes, in seconds.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Transfer time for a full frame at `resolution`, in seconds.
    pub fn frame_transfer_time_s(&self, resolution: Resolution) -> f64 {
        self.transfer_time_s(self.frame_bytes(resolution.pixels()))
    }

    /// Transfer energy for `bytes` payload bytes, in joules.
    pub fn transfer_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolutions_ascend() {
        for w in Resolution::ALL.windows(2) {
            assert!(w[0].pixels() < w[1].pixels());
        }
    }

    #[test]
    fn frame_bytes_raw10() {
        let link = MipiLink::default();
        // 640x400 x 10 bit = 320 000 bytes
        assert_eq!(link.frame_bytes(640 * 400), 320_000);
    }

    #[test]
    fn four_k_exceeds_latency_budget() {
        // Fig. 3: at 4K the MIPI transfer alone (~22 ms) exceeds the 15 ms
        // end-to-end requirement.
        let link = MipiLink::default();
        let t_4k = link.frame_transfer_time_s(Resolution::R4k);
        assert!(t_4k > 15e-3, "4K transfer {t_4k}s should exceed 15 ms");
        assert!((t_4k - 22e-3).abs() < 5e-3, "4K transfer should be ~22 ms");
        let t_720 = link.frame_transfer_time_s(Resolution::R720p);
        assert!(t_720 < 15e-3, "720P should fit the budget");
    }

    #[test]
    fn energy_is_linear_in_bytes() {
        let link = MipiLink::default();
        assert_eq!(
            link.transfer_energy_j(2_000),
            2.0 * link.transfer_energy_j(1_000)
        );
        // 100 pJ/byte reference point
        assert!((link.transfer_energy_j(1) - 100e-12).abs() < 1e-18);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Resolution::R4k.label(), "4K");
        assert_eq!(Resolution::R720p.label(), "720P");
    }
}
