//! Embedded survey datasets behind the paper's motivational figures.
//!
//! * Fig. 2 — compute capability of Nvidia Jetson GPUs vs the compute demand
//!   of eye-tracking algorithms at a 120 Hz tracking rate;
//! * Fig. 4 — the fraction of image-sensor power consumed by the readout
//!   circuitry across six recent sensor publications (average ≈ 66 %).
//!
//! Values are approximate, compiled from the public spec sheets and papers
//! the original figure cites; they reproduce the *trend* (GPU capability
//! outpacing algorithm demand; readout dominating sensor power).

use serde::Serialize;

/// One mobile GPU data point for Fig. 2.
// Serialize-only: the `&'static str` names live in const tables compiled
// into the binary — they are reference data, never restored from JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuEntry {
    /// Device name.
    pub name: &'static str,
    /// Release year (Fig. 2 x-axis position).
    pub year: u32,
    /// Peak sustained compute in GFLOPS.
    pub gflops: f64,
}

/// Nvidia Jetson series capability over time (paper Fig. 2, upper series).
pub const JETSON_GPUS: &[GpuEntry] = &[
    GpuEntry {
        name: "TX1",
        year: 2015,
        gflops: 512.0,
    },
    GpuEntry {
        name: "TX2",
        year: 2017,
        gflops: 665.0,
    },
    GpuEntry {
        name: "Xavier",
        year: 2018,
        gflops: 1_410.0,
    },
    GpuEntry {
        name: "Xavier-NX",
        year: 2020,
        gflops: 845.0,
    },
    GpuEntry {
        name: "Orin-NX",
        year: 2022,
        gflops: 1_880.0,
    },
    GpuEntry {
        name: "Orin",
        year: 2023,
        gflops: 5_320.0,
    },
];

/// One eye-tracking algorithm data point for Fig. 2.
// Serialize-only: the `&'static str` names live in const tables compiled
// into the binary — they are reference data, never restored from JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AlgorithmEntry {
    /// Algorithm name.
    pub name: &'static str,
    /// Publication year.
    pub year: u32,
    /// Compute per frame in GFLOPs.
    pub gflop_per_frame: f64,
}

impl AlgorithmEntry {
    /// Compute demand in GFLOPS when tracking at `fps` frames per second.
    pub fn demand_gflops(&self, fps: f64) -> f64 {
        self.gflop_per_frame * fps
    }
}

/// Eye-tracking algorithm demands (paper Fig. 2, lower series).
pub const EYE_TRACKING_ALGORITHMS: &[AlgorithmEntry] = &[
    AlgorithmEntry {
        name: "SegNet",
        year: 2015,
        gflop_per_frame: 30.7,
    },
    AlgorithmEntry {
        name: "DeepVoG",
        year: 2019,
        gflop_per_frame: 4.5,
    },
    AlgorithmEntry {
        name: "RITnet",
        year: 2019,
        gflop_per_frame: 2.5,
    },
    AlgorithmEntry {
        name: "Eye-MS",
        year: 2019,
        gflop_per_frame: 1.2,
    },
    AlgorithmEntry {
        name: "Kim et al.",
        year: 2019,
        gflop_per_frame: 0.8,
    },
    AlgorithmEntry {
        name: "DenseElNet",
        year: 2021,
        gflop_per_frame: 3.5,
    },
    AlgorithmEntry {
        name: "EdGaze",
        year: 2022,
        gflop_per_frame: 0.25,
    },
];

/// One sensor data point for Fig. 4.
// Serialize-only: the `&'static str` names live in const tables compiled
// into the binary — they are reference data, never restored from JSON.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SensorSurveyEntry {
    /// Publication venue and year label as used in the figure.
    pub venue: &'static str,
    /// Publication year.
    pub year: u32,
    /// Percentage of total sensor power attributed to the readout chain.
    pub readout_power_pct: f64,
}

/// Readout power share across six recent sensors (paper Fig. 4).
pub const READOUT_POWER_SURVEY: &[SensorSurveyEntry] = &[
    SensorSurveyEntry {
        venue: "JSSC'19",
        year: 2019,
        readout_power_pct: 72.0,
    },
    SensorSurveyEntry {
        venue: "TCAS-1'20",
        year: 2020,
        readout_power_pct: 60.0,
    },
    SensorSurveyEntry {
        venue: "TCAS-2'21",
        year: 2021,
        readout_power_pct: 71.0,
    },
    SensorSurveyEntry {
        venue: "ISSCC'21",
        year: 2021,
        readout_power_pct: 55.0,
    },
    SensorSurveyEntry {
        venue: "JSSC'22",
        year: 2022,
        readout_power_pct: 66.0,
    },
    SensorSurveyEntry {
        venue: "IISW'23",
        year: 2023,
        readout_power_pct: 72.0,
    },
];

/// Mean readout power share across the survey (the paper quotes 66 %).
pub fn mean_readout_power_pct() -> f64 {
    let total: f64 = READOUT_POWER_SURVEY
        .iter()
        .map(|e| e.readout_power_pct)
        .sum();
    total / READOUT_POWER_SURVEY.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_average_is_66_percent() {
        let avg = mean_readout_power_pct();
        assert!((avg - 66.0).abs() < 1.0, "avg = {avg}");
    }

    #[test]
    fn recent_gpus_meet_recent_algorithm_demand_at_120hz() {
        // Fig. 2's argument: tracking *rate* is not the bottleneck — modern
        // GPUs exceed modern algorithms' 120 Hz demand.
        let newest_gpu = JETSON_GPUS.last().unwrap();
        for alg in EYE_TRACKING_ALGORITHMS.iter().filter(|a| a.year >= 2019) {
            assert!(
                newest_gpu.gflops > alg.demand_gflops(120.0),
                "{} demand exceeds {}",
                alg.name,
                newest_gpu.name
            );
        }
    }

    #[test]
    fn early_algorithms_exceeded_early_gpus() {
        // SegNet at 120 Hz was infeasible on a TX1 — algorithms have become
        // more efficient over time, the other half of the Fig. 2 trend.
        let segnet = &EYE_TRACKING_ALGORITHMS[0];
        let tx1 = &JETSON_GPUS[0];
        assert!(segnet.demand_gflops(120.0) > tx1.gflops);
    }

    #[test]
    fn algorithms_get_cheaper_over_time() {
        let early: f64 = EYE_TRACKING_ALGORITHMS
            .iter()
            .filter(|a| a.year <= 2019)
            .map(|a| a.gflop_per_frame)
            .fold(f64::INFINITY, f64::min);
        let edgaze = EYE_TRACKING_ALGORITHMS.last().unwrap();
        assert!(edgaze.gflop_per_frame < early);
    }
}
