use crate::scaling::ProcessNode;
use serde::{Deserialize, Serialize};

/// Energy model of the pixel readout chain and its BlissCam extensions.
///
/// In a conventional sensor the readout circuitry (per-pixel single-slope
/// ADC plus column chain) consumes on average 66 % of total sensor power
/// (paper Fig. 4). BlissCam time-multiplexes the same comparator between
/// three analog modes (Fig. 10): holding the previous frame, eventification
/// (switched-capacitor subtraction + threshold compare), and normal ADC.
/// Only *sampled* pixels pay the full conversion energy; skipped pixels
/// output constant zero.
///
/// Analog circuits scale far more weakly with process than digital logic;
/// we model analog energy scaling as the square root of the digital factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadoutModel {
    /// Full 10-bit single-slope conversion energy per pixel at the
    /// reference analog node, in joules.
    pub adc_conversion_j: f64,
    /// Analog eventification energy per pixel (two threshold compares on the
    /// existing comparator), in joules at the reference node.
    pub analog_event_j: f64,
    /// Analog memory retention: per-pixel bias power while the previous
    /// frame is held on the auto-zero capacitor, in watts at the reference
    /// node. Scales with the frame interval — shorter exposures at high
    /// frame rates cut this term, the effect behind the paper's Fig. 16
    /// energy trend.
    pub analog_hold_w_per_pixel: f64,
    /// Digital eventification (S+NPU variant): subtract + compare in logic
    /// plus SRAM read/write per pixel, in joules at 16 nm.
    pub digital_event_j: f64,
    /// Reference analog node for the analog constants above.
    pub reference_analog_node: ProcessNode,
}

impl Default for ReadoutModel {
    fn default() -> Self {
        ReadoutModel {
            // 10-bit SS ADC + full column/ramp readout chain overhead:
            // ~1 nJ/conversion (at the 65 nm analog reference), calibrated
            // so the readout chain dominates conventional sensor power as in
            // Fig. 4 and the variant ratios of Fig. 13 hold.
            adc_conversion_j: 1.0e-9,
            // Eventification re-uses the comparator for 2 compares only.
            analog_event_j: 15e-12,
            // Comparator-as-buffer bias current during the hold interval.
            analog_hold_w_per_pixel: 20e-9,
            // Digital: 10-bit subtract+compare + SRAM RW at 16 nm.
            digital_event_j: 12e-12,
            reference_analog_node: ProcessNode::NM65,
        }
    }
}

impl ReadoutModel {
    /// Analog scaling factor between the reference node and `node`
    /// (square root of the digital dynamic-energy ratio).
    fn analog_factor(&self, node: ProcessNode) -> f64 {
        let ratio = node.energy_factor() as f64 / self.reference_analog_node.energy_factor() as f64;
        ratio.sqrt()
    }

    /// Energy to convert `conversions` pixels through the ADC at `node`.
    pub fn adc_energy_j(&self, conversions: u64, node: ProcessNode) -> f64 {
        conversions as f64 * self.adc_conversion_j * self.analog_factor(node)
    }

    /// Energy to eventify `pixels` pixels in the analog domain at `node`.
    pub fn analog_event_energy_j(&self, pixels: u64, node: ProcessNode) -> f64 {
        pixels as f64 * self.analog_event_j * self.analog_factor(node)
    }

    /// Energy to hold `pixels` previous-frame values in analog memory for
    /// `duration_s` seconds at `node`.
    pub fn analog_hold_energy_j(&self, pixels: u64, duration_s: f64, node: ProcessNode) -> f64 {
        pixels as f64 * self.analog_hold_w_per_pixel * duration_s * self.analog_factor(node)
    }

    /// Energy to eventify `pixels` pixels digitally at `node` (used by the
    /// S+NPU variant, which lacks the analog extensions).
    pub fn digital_event_energy_j(&self, pixels: u64, node: ProcessNode) -> f64 {
        pixels as f64 * self.digital_event_j * node.energy_factor() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_fraction_scales_adc_energy() {
        let m = ReadoutModel::default();
        let full = m.adc_energy_j(256_000, ProcessNode::NM22);
        let sparse = m.adc_energy_j(256_000 / 20, ProcessNode::NM22);
        assert!((full / sparse - 20.0).abs() < 1e-6);
    }

    #[test]
    fn analog_scales_weaker_than_digital() {
        let m = ReadoutModel::default();
        let e65 = m.adc_energy_j(1, ProcessNode::NM65);
        let e22 = m.adc_energy_j(1, ProcessNode::NM22);
        let analog_ratio = e65 / e22;
        let digital_ratio =
            (ProcessNode::NM65.energy_factor() / ProcessNode::NM22.energy_factor()) as f64;
        assert!(analog_ratio > 1.0);
        assert!(analog_ratio < digital_ratio);
    }

    #[test]
    fn hold_energy_scales_with_frame_interval() {
        // The Fig. 16 mechanism: halving the frame period halves retention.
        let m = ReadoutModel::default();
        let slow = m.analog_hold_energy_j(256_000, 33e-3, ProcessNode::NM22);
        let fast = m.analog_hold_energy_j(256_000, 2e-3, ProcessNode::NM22);
        assert!((slow / fast - 16.5).abs() < 0.1);
    }

    #[test]
    fn eventification_is_much_cheaper_than_conversion() {
        let m = ReadoutModel::default();
        let ev = m.analog_event_energy_j(1, ProcessNode::NM22);
        let adc = m.adc_energy_j(1, ProcessNode::NM22);
        assert!(ev * 5.0 < adc, "eventify {ev} vs adc {adc}");
    }

    #[test]
    fn analog_eventification_beats_digital_at_reference() {
        // The core Fig. 13 argument: analog eventification avoids the digital
        // frame-buffer path.
        let m = ReadoutModel::default();
        let analog = m.analog_event_energy_j(1, ProcessNode::NM22);
        let digital = m.digital_event_energy_j(1, ProcessNode::NM22);
        assert!(analog < digital);
    }
}
