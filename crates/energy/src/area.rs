use crate::scaling::ProcessNode;
use serde::{Deserialize, Serialize};

/// Silicon area model for the BlissCam sensor (paper §VI-D).
///
/// The paper estimates area from comparable published DPS designs (Meta's
/// 4.6 µm pixel at 65 nm, Samsung's 4.95 µm at 28 nm) and settles on a
/// 5 µm x 5 µm pixel pitch, yielding:
///
/// * pixel array (640x400): **6.4 mm²**
/// * in-sensor NPU (8x8 MACs + 512 KB SRAM): **0.4 mm²**
/// * output buffer incl. run-length encoder: **0.1 mm²**
///
/// and a host-side run-length decoder below 0.1 % of host area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Pixel pitch in micrometres (square pixels).
    pub pixel_pitch_um: f64,
    /// SRAM macro area per KB at 16 nm, in mm².
    pub sram_mm2_per_kb_16nm: f64,
    /// Logic area of one 8-bit MAC unit at 16 nm, in mm².
    pub mac_mm2_16nm: f64,
    /// Output buffer + run-length encoder area at the sensor logic node,
    /// in mm² at 16 nm.
    pub output_buffer_mm2_16nm: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            pixel_pitch_um: 5.0,
            sram_mm2_per_kb_16nm: 4.2e-4,
            mac_mm2_16nm: 6.0e-5,
            output_buffer_mm2_16nm: 0.054,
        }
    }
}

impl AreaModel {
    /// Pixel-array area for a `width x height` sensor, in mm².
    pub fn pixel_array_mm2(&self, width: usize, height: usize) -> f64 {
        width as f64 * height as f64 * self.pixel_pitch_um * self.pixel_pitch_um / 1e6
    }

    /// In-sensor NPU area (MAC array + weight/activation SRAM) at `node`.
    pub fn npu_mm2(
        &self,
        mac_rows: usize,
        mac_cols: usize,
        sram_kb: f64,
        node: ProcessNode,
    ) -> f64 {
        let factor = node.area_factor() as f64 / ProcessNode::NM16.area_factor() as f64;
        let macs = (mac_rows * mac_cols) as f64 * self.mac_mm2_16nm;
        let sram = sram_kb * self.sram_mm2_per_kb_16nm;
        (macs + sram) * factor
    }

    /// Output buffer (+RLE) area at `node`, in mm².
    pub fn output_buffer_mm2(&self, node: ProcessNode) -> f64 {
        self.output_buffer_mm2_16nm * node.area_factor() as f64
            / ProcessNode::NM16.area_factor() as f64
    }

    /// NPU area overhead relative to the pixel array, as a fraction.
    pub fn npu_overhead_fraction(
        &self,
        width: usize,
        height: usize,
        mac_rows: usize,
        mac_cols: usize,
        sram_kb: f64,
        node: ProcessNode,
    ) -> f64 {
        self.npu_mm2(mac_rows, mac_cols, sram_kb, node) / self.pixel_array_mm2(width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_array_matches_paper() {
        let m = AreaModel::default();
        let a = m.pixel_array_mm2(640, 400);
        assert!((a - 6.4).abs() < 1e-9, "array area {a} mm²");
    }

    #[test]
    fn npu_area_matches_paper() {
        // 8x8 MACs + 512 KB SRAM at 22 nm should be ≈ 0.4 mm².
        let m = AreaModel::default();
        let a = m.npu_mm2(8, 8, 512.0, ProcessNode::NM22);
        assert!((a - 0.4).abs() < 0.05, "npu area {a} mm²");
    }

    #[test]
    fn output_buffer_matches_paper() {
        let m = AreaModel::default();
        let a = m.output_buffer_mm2(ProcessNode::NM22);
        assert!((a - 0.1).abs() < 0.02, "output buffer {a} mm²");
    }

    #[test]
    fn npu_overhead_is_small() {
        // Paper §II-B: integrating the DNN processor adds ~5.8 % area.
        let m = AreaModel::default();
        let f = m.npu_overhead_fraction(640, 400, 8, 8, 512.0, ProcessNode::NM22);
        assert!(f > 0.03 && f < 0.09, "overhead {f}");
    }
}
