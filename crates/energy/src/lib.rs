//! Energy, latency-primitive, area and technology-scaling models.
//!
//! The paper's hardware evaluation rests on a handful of published constants
//! and a technology-scaling methodology:
//!
//! * synthesis results at TSMC 16 nm FinFET scaled to other nodes with
//!   **DeepScaleTool** (Sarangi & Baas 2021; Stillmaker & Baas 2017) —
//!   reproduced here as [`ProcessNode`] scaling factors;
//! * **MIPI CSI-2** transfer energy of ~100 pJ/byte (Liu et al., ISSCC'22)
//!   and resolution-dependent transfer latency (paper Fig. 3) — [`MipiLink`];
//! * **LPDDR3-1600** DRAM energy from Micron's power calculators —
//!   [`DramModel`];
//! * per-pixel **readout chain** (single-slope ADC) energy, the dominant
//!   sensor power (66 % on average across recent sensors, paper Fig. 4) —
//!   [`ReadoutModel`];
//! * an **area model** for the DPS pixel array, in-sensor NPU and output
//!   buffer (paper §VI-D) — [`AreaModel`];
//! * the embedded **survey/trend datasets** behind motivational Figs. 2–4 —
//!   [`trends`].
//!
//! All defaults are chosen so that the four system variants reproduce the
//! paper's energy *ratios* (see `blisscam-core`); absolute Joule values are
//! sensitivity-checked rather than claimed.

mod area;
mod dram;
mod mipi;
mod params;
mod readout;
mod scaling;
pub mod trends;

pub use area::AreaModel;
pub use dram::DramModel;
pub use mipi::{MipiLink, Resolution};
pub use params::EnergyParams;
pub use readout::ReadoutModel;
pub use scaling::{ProcessNode, ProcessNodeError};
