use crate::{DramModel, MipiLink, ProcessNode, ReadoutModel};
use serde::{Deserialize, Serialize};

/// The complete set of energy constants used by the system model.
///
/// Digital constants are specified at the 16 nm reference node and scaled
/// with [`ProcessNode::energy_factor`]; analog constants live inside
/// [`ReadoutModel`] with their own (weaker) scaling. Defaults reproduce the
/// paper's energy ratios across variants (Fig. 13); every constant can be
/// overridden for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one 8-bit multiply-accumulate at 16 nm, in joules.
    pub mac_energy_16nm_j: f64,
    /// Small-scratchpad SRAM access energy per byte at 16 nm, in joules
    /// (buffers up to ~128 KB banks).
    pub sram_small_per_byte_16nm_j: f64,
    /// Large global-buffer SRAM access energy per byte at 16 nm, in joules
    /// (MB-scale arrays with long bitlines).
    pub sram_large_per_byte_16nm_j: f64,
    /// SRAM leakage power per kilobyte at 16 nm, in watts. Applied to
    /// buffers that must retain state across a frame (the S+NPU digital
    /// frame buffer, which the paper notes cannot be power-gated).
    pub sram_leakage_w_per_kb_16nm: f64,
    /// Run-length encoder energy per input byte at 16 nm, in joules.
    pub rle_per_byte_16nm_j: f64,
    /// Run-length decoder (host side) energy per output byte at 16 nm.
    pub rld_per_byte_16nm_j: f64,
    /// SRAM power-up/down random bit generation per pixel (10 cells) at
    /// 16 nm, in joules.
    pub sram_rng_per_pixel_16nm_j: f64,
    /// The MIPI CSI-2 link.
    pub mipi: MipiLink,
    /// The LPDDR3 DRAM attached to the host SoC.
    pub dram: DramModel,
    /// The analog readout chain.
    pub readout: ReadoutModel,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            mac_energy_16nm_j: 0.25e-12,
            sram_small_per_byte_16nm_j: 1.0e-12,
            sram_large_per_byte_16nm_j: 2.0e-12,
            sram_leakage_w_per_kb_16nm: 29e-6,
            rle_per_byte_16nm_j: 0.5e-12,
            rld_per_byte_16nm_j: 0.5e-12,
            sram_rng_per_pixel_16nm_j: 0.3e-12,
            mipi: MipiLink::default(),
            dram: DramModel::default(),
            readout: ReadoutModel::default(),
        }
    }
}

impl EnergyParams {
    /// MAC energy at `node`, in joules.
    pub fn mac_energy_j(&self, node: ProcessNode) -> f64 {
        self.mac_energy_16nm_j * node.energy_factor() as f64
    }

    /// Scratchpad SRAM access energy for `bytes` bytes at `node`.
    pub fn sram_small_energy_j(&self, bytes: u64, node: ProcessNode) -> f64 {
        bytes as f64 * self.sram_small_per_byte_16nm_j * node.energy_factor() as f64
    }

    /// Global-buffer SRAM access energy for `bytes` bytes at `node`.
    pub fn sram_large_energy_j(&self, bytes: u64, node: ProcessNode) -> f64 {
        bytes as f64 * self.sram_large_per_byte_16nm_j * node.energy_factor() as f64
    }

    /// Leakage energy of a `capacity_bytes` SRAM retained for `duration_s`
    /// seconds at `node`.
    pub fn sram_leakage_energy_j(
        &self,
        capacity_bytes: u64,
        duration_s: f64,
        node: ProcessNode,
    ) -> f64 {
        let kb = capacity_bytes as f64 / 1024.0;
        kb * self.sram_leakage_w_per_kb_16nm * node.leakage_factor() as f64 * duration_s
    }

    /// Run-length encoding energy for `bytes` input bytes at `node`.
    pub fn rle_energy_j(&self, bytes: u64, node: ProcessNode) -> f64 {
        bytes as f64 * self.rle_per_byte_16nm_j * node.energy_factor() as f64
    }

    /// Run-length decoding energy for `bytes` output bytes at `node`.
    pub fn rld_energy_j(&self, bytes: u64, node: ProcessNode) -> f64 {
        bytes as f64 * self.rld_per_byte_16nm_j * node.energy_factor() as f64
    }

    /// SRAM metastability random-bit generation for `pixels` pixels at `node`.
    pub fn sram_rng_energy_j(&self, pixels: u64, node: ProcessNode) -> f64 {
        pixels as f64 * self.sram_rng_per_pixel_16nm_j * node.energy_factor() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_energy_scales_with_node() {
        let p = EnergyParams::default();
        assert!(p.mac_energy_j(ProcessNode::NM22) > p.mac_energy_j(ProcessNode::NM7));
        assert!((p.mac_energy_j(ProcessNode::NM16) - 0.25e-12).abs() < 1e-20);
    }

    #[test]
    fn frame_buffer_leakage_is_tens_of_microjoules() {
        // The S+NPU penalty: a 320 KB digital frame buffer retained for
        // 8.3 ms at 22 nm should leak tens of microjoules — large enough to
        // flip the S+NPU vs NPU-ROI comparison as in Fig. 13.
        let p = EnergyParams::default();
        let e = p.sram_leakage_energy_j(320_000, 8.33e-3, ProcessNode::NM22);
        assert!(e > 20e-6 && e < 150e-6, "leakage {e} J");
    }

    #[test]
    fn large_buffer_costs_more_than_small() {
        let p = EnergyParams::default();
        assert!(
            p.sram_large_energy_j(100, ProcessNode::NM16)
                > p.sram_small_energy_j(100, ProcessNode::NM16)
        );
    }

    #[test]
    fn rle_energy_is_negligible_vs_mipi() {
        // Paper §VI-B: RLE is 0.04 % of total energy; it must be orders of
        // magnitude below the MIPI energy of the same bytes.
        let p = EnergyParams::default();
        let bytes = 10_000u64;
        let rle = p.rle_energy_j(bytes, ProcessNode::NM22);
        let mipi = p.mipi.transfer_energy_j(bytes);
        assert!(rle * 50.0 < mipi);
    }
}
