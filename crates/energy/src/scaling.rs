use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned for process nodes outside the modelled range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessNodeError {
    nm: u32,
}

impl fmt::Display for ProcessNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process node {} nm outside supported range 7-180 nm",
            self.nm
        )
    }
}

impl Error for ProcessNodeError {}

/// A CMOS technology node, with DeepScaleTool-style scaling factors.
///
/// The paper synthesises all digital logic with a TSMC 16 nm FinFET library
/// and scales results to other nodes with DeepScaleTool, which "fits
/// published data by a leading commercial fabrication company for silicon
/// fabrication technology generations from 130 nm to 7 nm" (§V). We embed an
/// equivalent table of per-operation dynamic energy, gate delay, area and
/// leakage factors, normalised to 16 nm, and interpolate (log-log) between
/// anchor nodes.
///
/// # Example
///
/// ```
/// use bliss_energy::ProcessNode;
///
/// let n22 = ProcessNode::NM22;
/// let n7 = ProcessNode::NM7;
/// assert!(n22.energy_factor() > n7.energy_factor());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcessNode(u32);

/// Anchor table: (nm, energy, delay, area, leakage) relative to 16 nm.
///
/// Energy/delay derived from the Stillmaker & Baas scaling equations
/// (general-purpose logic, nominal voltage); area follows published
/// logic-density ratios; leakage tracks area times per-um^2 leakage trends
/// (FinFET nodes leak less per gate).
const ANCHORS: &[(u32, f32, f32, f32, f32)] = &[
    (7, 0.53, 0.62, 0.28, 0.45),
    (10, 0.72, 0.78, 0.50, 0.65),
    (16, 1.00, 1.00, 1.00, 1.00),
    (22, 1.60, 1.30, 1.85, 1.90),
    (28, 2.10, 1.55, 2.90, 2.60),
    (40, 3.20, 2.00, 5.90, 4.20),
    (65, 5.70, 3.10, 15.0, 8.50),
    (90, 9.00, 4.20, 29.0, 14.0),
    (130, 14.7, 6.00, 60.0, 24.0),
    (180, 23.2, 8.30, 115.0, 40.0),
];

impl ProcessNode {
    /// 7 nm — the paper's host SoC node.
    pub const NM7: ProcessNode = ProcessNode(7);
    /// 10 nm.
    pub const NM10: ProcessNode = ProcessNode(10);
    /// 16 nm — the synthesis reference node.
    pub const NM16: ProcessNode = ProcessNode(16);
    /// 22 nm — the paper's sensor logic/analog layer node.
    pub const NM22: ProcessNode = ProcessNode(22);
    /// 28 nm.
    pub const NM28: ProcessNode = ProcessNode(28);
    /// 40 nm — swept in the paper's Fig. 17.
    pub const NM40: ProcessNode = ProcessNode(40);
    /// 65 nm — the paper's pixel (top) layer node.
    pub const NM65: ProcessNode = ProcessNode(65);
    /// 90 nm.
    pub const NM90: ProcessNode = ProcessNode(90);
    /// 130 nm.
    pub const NM130: ProcessNode = ProcessNode(130);
    /// 180 nm.
    pub const NM180: ProcessNode = ProcessNode(180);

    /// Creates a node from a feature size in nanometres.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessNodeError`] outside the modelled 7–180 nm range.
    pub fn new(nm: u32) -> Result<Self, ProcessNodeError> {
        if !(7..=180).contains(&nm) {
            return Err(ProcessNodeError { nm });
        }
        Ok(ProcessNode(nm))
    }

    /// Feature size in nanometres.
    pub fn nanometers(&self) -> u32 {
        self.0
    }

    fn interpolate(&self, select: impl Fn(&(u32, f32, f32, f32, f32)) -> f32) -> f32 {
        let nm = self.0 as f32;
        // Exact anchor?
        for a in ANCHORS {
            if a.0 == self.0 {
                return select(a);
            }
        }
        // Log-log linear interpolation between surrounding anchors.
        let mut lo = ANCHORS[0];
        let mut hi = *ANCHORS.last().expect("anchors non-empty");
        for w in ANCHORS.windows(2) {
            if (w[0].0 as f32) <= nm && nm <= (w[1].0 as f32) {
                lo = w[0];
                hi = w[1];
                break;
            }
        }
        let (x0, y0) = ((lo.0 as f32).ln(), select(&lo).ln());
        let (x1, y1) = ((hi.0 as f32).ln(), select(&hi).ln());
        let t = (nm.ln() - x0) / (x1 - x0);
        (y0 + t * (y1 - y0)).exp()
    }

    /// Dynamic energy per operation relative to 16 nm.
    pub fn energy_factor(&self) -> f32 {
        self.interpolate(|a| a.1)
    }

    /// Gate delay relative to 16 nm.
    pub fn delay_factor(&self) -> f32 {
        self.interpolate(|a| a.2)
    }

    /// Logic area relative to 16 nm.
    pub fn area_factor(&self) -> f32 {
        self.interpolate(|a| a.3)
    }

    /// Static (leakage) power per equivalent design relative to 16 nm.
    pub fn leakage_factor(&self) -> f32 {
        self.interpolate(|a| a.4)
    }
}

impl fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_is_unity() {
        let n = ProcessNode::NM16;
        assert_eq!(n.energy_factor(), 1.0);
        assert_eq!(n.delay_factor(), 1.0);
        assert_eq!(n.area_factor(), 1.0);
        assert_eq!(n.leakage_factor(), 1.0);
    }

    #[test]
    fn factors_monotonic_in_feature_size() {
        let nodes = [7u32, 10, 16, 22, 28, 40, 65, 90, 130, 180];
        for w in nodes.windows(2) {
            let a = ProcessNode::new(w[0]).unwrap();
            let b = ProcessNode::new(w[1]).unwrap();
            assert!(a.energy_factor() < b.energy_factor());
            assert!(a.delay_factor() < b.delay_factor());
            assert!(a.area_factor() < b.area_factor());
            assert!(a.leakage_factor() < b.leakage_factor());
        }
    }

    #[test]
    fn interpolation_between_anchors_is_bounded() {
        let mid = ProcessNode::new(50).unwrap();
        assert!(mid.energy_factor() > ProcessNode::NM40.energy_factor());
        assert!(mid.energy_factor() < ProcessNode::NM65.energy_factor());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(ProcessNode::new(5).is_err());
        assert!(ProcessNode::new(250).is_err());
        assert!(ProcessNode::new(7).is_ok());
        assert!(ProcessNode::new(180).is_ok());
    }

    #[test]
    fn paper_nodes_energy_ordering() {
        // 22 nm sensor logic burns more energy per op than the 7 nm SoC —
        // the reason S+NPU loses to NPU-ROI in Fig. 13.
        assert!(ProcessNode::NM22.energy_factor() > 2.5 * ProcessNode::NM7.energy_factor());
    }

    #[test]
    fn display_contains_units() {
        assert_eq!(ProcessNode::NM22.to_string(), "22 nm");
    }
}
