//! Property-based tests of the energy models.

use bliss_energy::{DramModel, EnergyParams, MipiLink, ProcessNode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_factors_monotone(a in 7u32..180, b in 7u32..180) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assume!(lo != hi);
        let n_lo = ProcessNode::new(lo).unwrap();
        let n_hi = ProcessNode::new(hi).unwrap();
        prop_assert!(n_lo.energy_factor() <= n_hi.energy_factor());
        prop_assert!(n_lo.delay_factor() <= n_hi.delay_factor());
        prop_assert!(n_lo.area_factor() <= n_hi.area_factor());
    }

    #[test]
    fn mipi_energy_and_time_linear(bytes in 1u64..10_000_000) {
        let link = MipiLink::default();
        let e1 = link.transfer_energy_j(bytes);
        let e2 = link.transfer_energy_j(2 * bytes);
        prop_assert!((e2 / e1 - 2.0).abs() < 1e-9);
        let t1 = link.transfer_time_s(bytes);
        prop_assert!(t1 > 0.0 && t1.is_finite());
    }

    #[test]
    fn dram_energy_additive(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let d = DramModel::default();
        let sum = d.traffic_energy_j(a) + d.traffic_energy_j(b);
        prop_assert!((d.traffic_energy_j(a + b) - sum).abs() < 1e-12);
    }

    #[test]
    fn leakage_proportional_to_time_and_capacity(
        kb in 1u64..2_000, t in 1e-4f64..0.1
    ) {
        let p = EnergyParams::default();
        let e1 = p.sram_leakage_energy_j(kb * 1024, t, ProcessNode::NM22);
        let e2 = p.sram_leakage_energy_j(kb * 1024, 2.0 * t, ProcessNode::NM22);
        let e3 = p.sram_leakage_energy_j(2 * kb * 1024, t, ProcessNode::NM22);
        prop_assert!((e2 / e1 - 2.0).abs() < 1e-6);
        prop_assert!((e3 / e1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn adc_energy_nonnegative_and_monotone(
        conv in 0u64..1_000_000, nm in 7u32..180
    ) {
        let p = EnergyParams::default();
        let node = ProcessNode::new(nm).unwrap();
        let e = p.readout.adc_energy_j(conv, node);
        prop_assert!(e >= 0.0);
        prop_assert!(p.readout.adc_energy_j(conv + 1, node) >= e);
    }
}
