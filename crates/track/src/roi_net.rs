use crate::util::denormalize_box;
use bliss_nn::{Conv2d, Linear, Module};
use bliss_npu::WorkloadDesc;
use bliss_sensor::RoiBox;
use bliss_tensor::{
    take_f32_buffer, ExecPlan, GraphBuilder, NdArray, PlanCache, PlanCacheStats, Tensor,
    TensorError,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of the ROI-prediction network.
///
/// The paper's network is intentionally tiny — "three convolution layers
/// followed by two fully-connected layers, amounting to only 2.1e7 MAC
/// operations" (§III-A) — so it fits the in-sensor 8x8 NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoiNetConfig {
    /// Sensor frame width the predictions map back onto.
    pub frame_width: usize,
    /// Sensor frame height.
    pub frame_height: usize,
    /// Downsampling factor from the frame to the network input.
    pub input_downsample: usize,
    /// Channel widths of the three convolutions.
    pub channels: [usize; 3],
    /// Hidden width of the first fully-connected layer.
    pub hidden: usize,
    /// Margin (in frame pixels) added around the predicted box.
    pub margin: usize,
    /// Minimum box side length in frame pixels.
    pub min_box: usize,
}

impl RoiNetConfig {
    /// Paper-scale configuration: 640x400 frames, 160x100 input
    /// (4x downsampled event map), ≈2.1e7 MACs as quoted in §III-A. The
    /// MACs live in the convolutions and the FCs stay small, so the
    /// ~450 KB of weights fit the 512 KB in-sensor SRAM.
    pub fn paper() -> Self {
        RoiNetConfig {
            frame_width: 640,
            frame_height: 400,
            input_downsample: 4,
            channels: [24, 48, 96],
            hidden: 16,
            margin: 12,
            min_box: 48,
        }
    }

    /// Miniature configuration for CPU training at the given frame size.
    ///
    /// The margin is deliberately small (PR 5): with the longer miniature
    /// training schedule the predictor no longer needs a wide safety halo,
    /// and every margin pixel inflates the readout box area — the quantity
    /// that sets the host's per-frame attention cost and therefore the
    /// serving saturation knee.
    pub fn miniature(frame_width: usize, frame_height: usize) -> Self {
        RoiNetConfig {
            frame_width,
            frame_height,
            input_downsample: 4,
            channels: [6, 12, 24],
            hidden: 96,
            margin: 3,
            min_box: 12,
        }
    }

    /// Network input dimensions (after downsampling).
    pub fn input_dims(&self) -> (usize, usize) {
        (
            self.frame_width.div_ceil(self.input_downsample),
            self.frame_height.div_ceil(self.input_downsample),
        )
    }

    /// Output spatial dims of a 3x3 stride-2 pad-1 convolution.
    fn conv_s2(h: usize, w: usize) -> (usize, usize) {
        ((h + 2 - 3) / 2 + 1, (w + 2 - 3) / 2 + 1)
    }

    /// Builds the 2-channel network input from a full-resolution event map
    /// and the previous segmentation mask (pure buffer math — no parameters
    /// needed, so per-session pipelines can run it off the network).
    pub fn make_input(&self, events: &[f32], prev_seg: &[u8]) -> NdArray {
        let (w, h) = (self.frame_width, self.frame_height);
        assert_eq!(events.len(), w * h, "image size mismatch");
        assert_eq!(prev_seg.len(), w * h, "mask size mismatch");
        let f = self.input_downsample;
        let (iw, ih) = self.input_dims();
        // Stage through the shared buffer pool: the NdArray returns the
        // backing store on drop, so steady-state serving builds ROI inputs
        // without touching the global allocator at any geometry.
        let mut data = take_f32_buffer(2 * iw * ih);
        // Channel 0: block-average of the event map (row-major).
        for oy in 0..ih {
            for ox in 0..iw {
                let mut sum = 0.0f32;
                let mut count = 0u32;
                for dy in 0..f {
                    let y = oy * f + dy;
                    if y >= h {
                        break;
                    }
                    for dx in 0..f {
                        let x = ox * f + dx;
                        if x >= w {
                            break;
                        }
                        sum += events[y * w + x];
                        count += 1;
                    }
                }
                data.push(sum / count.max(1) as f32);
            }
        }
        // Channel 1: max-downsampled segmentation labels normalised to
        // [0, 1] (max commutes with the monotone /3.0 scaling).
        data.resize(2 * iw * ih, 0.0);
        for (i, &c) in prev_seg.iter().enumerate() {
            let x = i % w;
            let y = i / w;
            let o = iw * ih + (y / f) * iw + x / f;
            let v = c as f32 / 3.0;
            if v > data[o] {
                data[o] = v;
            }
        }
        NdArray::from_vec(data, &[2, ih, iw]).expect("roi input shape")
    }

    /// Lowered workload of one inference (pure shape math — no parameters
    /// are allocated), used by the NPU energy/latency model.
    pub fn workload(&self) -> WorkloadDesc {
        let (iw, ih) = self.input_dims();
        let c = self.channels;
        let mut w = WorkloadDesc::new("roi-prediction");
        let (h1, w1) = Self::conv_s2(ih, iw);
        let (h2, w2) = Self::conv_s2(h1, w1);
        let (h3, w3) = Self::conv_s2(h2, w2);
        w.push_conv(c[0], 2, 3, h1, w1);
        w.push_conv(c[1], c[0], 3, h2, w2);
        w.push_conv(c[2], c[1], 3, h3, w3);
        w.push_linear(1, c[2] * h3 * w3, self.hidden);
        w.push_linear(1, self.hidden, 4);
        w
    }
}

/// The lightweight ROI-prediction CNN.
///
/// Input: a 2-channel image — the (downsampled) binary event map and the
/// previous frame's segmentation map as a corrective cue for blinks and
/// saccades (§III-A). Output: a normalised `(cx, cy, w, h)` box through a
/// sigmoid.
#[derive(Debug, Clone)]
pub struct RoiPredictionNet {
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    fc1: Linear,
    fc2: Linear,
    config: RoiNetConfig,
    /// Planned-inference cache, shared by clones. The network has one fixed
    /// input shape, so at most one plan ever lives here.
    plans: Rc<RefCell<PlanCache>>,
}

impl RoiPredictionNet {
    /// Creates the network with random initialisation.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: RoiNetConfig) -> Self {
        let (iw, ih) = config.input_dims();
        let conv1 = Conv2d::new(rng, 2, config.channels[0], 3, 2, 1);
        let (h1, w1) = conv1.out_dims(ih, iw);
        let conv2 = Conv2d::new(rng, config.channels[0], config.channels[1], 3, 2, 1);
        let (h2, w2) = conv2.out_dims(h1, w1);
        let conv3 = Conv2d::new(rng, config.channels[1], config.channels[2], 3, 2, 1);
        let (h3, w3) = conv3.out_dims(h2, w2);
        let flat = config.channels[2] * h3 * w3;
        RoiPredictionNet {
            conv1,
            conv2,
            conv3,
            fc1: Linear::new(rng, flat, config.hidden),
            fc2: Linear::new(rng, config.hidden, 4),
            config,
            plans: Rc::new(RefCell::new(PlanCache::new())),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RoiNetConfig {
        &self.config
    }

    /// Builds the 2-channel network input from a full-resolution event map
    /// and the previous segmentation mask.
    pub fn make_input(&self, events: &[f32], prev_seg: &[u8]) -> NdArray {
        self.config.make_input(events, prev_seg)
    }

    /// Forward pass producing the normalised `(cx, cy, w, h)` box as a
    /// `[1, 4]` tensor in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `input` is not the `[2, ih, iw]` layout from
    /// [`RoiPredictionNet::make_input`].
    pub fn forward(&self, input: &NdArray) -> Result<Tensor, TensorError> {
        if bliss_tensor::in_inference_mode() {
            return self.forward_planned(input);
        }
        let x = Tensor::constant(input.clone());
        let x = self.conv1.forward(&x)?.relu();
        let x = self.conv2.forward(&x)?.relu();
        let x = self.conv3.forward(&x)?.relu();
        let flat = x.reshape(&[1, self.fc1.in_features()])?;
        let h = self.fc1.forward(&flat)?.relu();
        Ok(self.fc2.forward(&h)?.sigmoid())
    }

    /// Planned counterpart of [`RoiPredictionNet::forward`]: compiles the
    /// fixed-shape conv/FC graph once, then each call executes the cached
    /// plan (zero allocations in the plan itself; only the tiny `[1, 4]`
    /// result tensor is materialised, from a pooled buffer). Bit-identical
    /// to the tape forward at any thread count.
    fn forward_planned(&self, input: &NdArray) -> Result<Tensor, TensorError> {
        let (iw, ih) = self.config.input_dims();
        let plan = self
            .plans
            .borrow_mut()
            .get_or_build(&[2, ih, iw], || self.record_graph())?;
        plan.execute(&[input.data()], &[])?;
        let out = plan.with_output(0, |data| {
            let mut buf = take_f32_buffer(data.len());
            buf.extend_from_slice(data);
            NdArray::from_vec(buf, &[1, 4])
        })?;
        Ok(Tensor::constant(out))
    }

    /// Records the network (conv x3 with ReLU, flatten, FC-ReLU, FC-sigmoid)
    /// into a planned-inference graph, mirroring the tape forward exactly.
    fn record_graph(&self) -> Result<ExecPlan, TensorError> {
        let (iw, ih) = self.config.input_dims();
        let mut g = GraphBuilder::default();
        let x = g.input(&[2, ih, iw]);
        let c1 = self.conv1.record(&mut g, x)?;
        let r1 = g.relu(c1);
        let c2 = self.conv2.record(&mut g, r1)?;
        let r2 = g.relu(c2);
        let c3 = self.conv3.record(&mut g, r2)?;
        let r3 = g.relu(c3);
        let flat = g.reshape(r3, &[1, self.fc1.in_features()])?;
        let h = self.fc1.record(&mut g, flat)?;
        let hr = g.relu(h);
        let o = self.fc2.record(&mut g, hr)?;
        let s = g.sigmoid(o);
        g.mark_output(s);
        ExecPlan::compile(g)
    }

    /// Plan-cache counters (the soak harness gates on the plan count
    /// staying at one and the arena not growing).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.borrow().stats()
    }

    /// Hard ROI box from a forward pass: denormalised, margin-expanded and
    /// clamped to the frame.
    pub fn predict_box(&self, output: &Tensor) -> RoiBox {
        let v = output.value();
        let arr = [v.data()[0], v.data()[1], v.data()[2], v.data()[3]];
        let b = denormalize_box(
            &arr,
            self.config.frame_width,
            self.config.frame_height,
            self.config.min_box,
        );
        b.expand(
            self.config.margin,
            self.config.frame_width,
            self.config.frame_height,
        )
    }

    /// Lowered workload of one inference, for the NPU simulator.
    pub fn workload(&self) -> WorkloadDesc {
        self.config.workload()
    }
}

impl Module for RoiPredictionNet {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.conv1.parameters();
        p.extend(self.conv2.parameters());
        p.extend(self.conv3.parameters());
        p.extend(self.fc1.parameters());
        p.extend(self.fc2.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> RoiPredictionNet {
        let mut rng = StdRng::seed_from_u64(0);
        RoiPredictionNet::new(&mut rng, RoiNetConfig::miniature(160, 100))
    }

    #[test]
    fn forward_emits_unit_box() {
        let n = net();
        let events = vec![0.0f32; 160 * 100];
        let seg = vec![0u8; 160 * 100];
        let input = n.make_input(&events, &seg);
        let out = n.forward(&input).unwrap();
        assert_eq!(out.shape(), vec![1, 4]);
        for &v in out.value().data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn predicted_box_is_valid() {
        let n = net();
        let input = n.make_input(&vec![1.0; 16_000], &vec![0u8; 16_000]);
        let out = n.forward(&input).unwrap();
        let b = n.predict_box(&out);
        assert!(b.x2 <= 160 && b.y2 <= 100);
        assert!(b.width() >= 12);
        assert!(b.height() >= 12);
    }

    #[test]
    fn paper_scale_macs_match_quote() {
        // §III-A: "only 2.1e7 MAC operations". Accept the right magnitude.
        let mut rng = StdRng::seed_from_u64(1);
        let n = RoiPredictionNet::new(&mut rng, RoiNetConfig::paper());
        let macs = n.workload().total_macs();
        assert!(
            (1.0e7..4.0e7).contains(&(macs as f64)),
            "paper-scale ROI net macs = {macs}"
        );
    }

    #[test]
    fn workload_matches_network_dims() {
        let n = net();
        let w = n.workload();
        assert_eq!(w.gemms.len(), 5);
        assert!(w.total_macs() > 0);
    }

    #[test]
    fn trainable_end_to_end() {
        let n = net();
        let input = n.make_input(&vec![0.5; 16_000], &vec![1u8; 16_000]);
        let out = n.forward(&input).unwrap();
        let target = NdArray::from_vec(vec![0.5, 0.5, 0.3, 0.3], &[1, 4]).unwrap();
        let loss = out.mse_loss(&target).unwrap();
        loss.backward().unwrap();
        let with_grads = n.parameters().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grads, n.parameters().len());
    }

    #[test]
    fn planned_forward_matches_tape_bitwise() {
        let n = net();
        let input = n.make_input(&vec![0.7; 16_000], &vec![2u8; 16_000]);
        let taped = n.forward(&input).unwrap();
        let planned = bliss_tensor::inference_mode(|| n.forward(&input)).unwrap();
        assert_eq!(taped.value().data(), planned.value().data());
        // Repeated planned calls hit the single cached plan.
        let again = bliss_tensor::inference_mode(|| n.forward(&input)).unwrap();
        assert_eq!(taped.value().data(), again.value().data());
        let stats = n.plan_stats();
        assert_eq!((stats.plans, stats.misses, stats.hits), (1, 1, 1));
    }

    #[test]
    fn planned_forward_is_thread_count_invariant() {
        let n = net();
        let input = n.make_input(&vec![0.3; 16_000], &vec![1u8; 16_000]);
        let run = || {
            bliss_tensor::inference_mode(|| n.forward(&input))
                .unwrap()
                .value()
                .data()
                .to_vec()
        };
        let serial = bliss_parallel::with_thread_count(1, run);
        for threads in [2, 8] {
            assert_eq!(
                serial,
                bliss_parallel::with_thread_count(threads, run),
                "t={threads}"
            );
        }
    }

    #[test]
    fn make_input_has_two_channels() {
        let n = net();
        let input = n.make_input(&vec![0.0; 16_000], &vec![3u8; 16_000]);
        assert_eq!(input.shape()[0], 2);
        // second channel normalised to 1.0 for pupil class
        let ch = input.shape()[1] * input.shape()[2];
        assert!((input.data()[ch] - 1.0).abs() < 1e-6);
    }
}
