use crate::gaze::GazeEstimator;
use crate::metrics::{seg_accuracy, AngularErrorStats, EvalResult};
use crate::roi_net::{RoiNetConfig, RoiPredictionNet};
use crate::sampling::{apply_strategy, SamplingStrategy};
use crate::util::{frame_difference_events, normalize_box};
use crate::vit::{SparseViT, ViTConfig};
use bliss_eye::{EyeSequence, ImagingNoise, NoiseConfig};
use bliss_nn::{clip_global_norm, Adam, Module};
use bliss_tensor::{NdArray, Tensor, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the joint training procedure (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// ViT segmenter configuration.
    pub vit: ViTConfig,
    /// ROI-prediction network configuration.
    pub roi: RoiNetConfig,
    /// In-ROI random sampling rate (paper: ~20 % of ROI pixels ≈ 5 % of the
    /// frame).
    pub sample_rate: f32,
    /// Passes over the training sequence.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the ROI MSE loss relative to the segmentation loss.
    pub lambda_roi: f32,
    /// Sharpness of the differentiable ROI gate's sigmoids (in normalised
    /// coordinate units).
    pub gate_sharpness: f32,
    /// Eventification threshold σ (normalised scale; paper: 15/255).
    pub event_sigma: f32,
    /// Imaging noise model.
    pub noise: NoiseConfig,
    /// Exposure relative to the 8.3 ms reference (couples frame rate→SNR).
    pub exposure_scale: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Frames whose gradients are accumulated into one optimizer step
    /// (reduces the gradient noise of single-frame updates).
    pub grad_accum: usize,
    /// Per-class loss weights (skin, sclera, iris, pupil). The pupil is a
    /// tiny minority class yet carries all the gaze information, so it is
    /// upweighted, as is common for eye segmentation losses.
    pub class_weights: [f32; 4],
    /// RNG seed for initialisation, sampling and noise.
    pub seed: u64,
}

impl TrainConfig {
    /// Miniature configuration for a given frame size — trains in seconds
    /// on a laptop CPU.
    pub fn miniature(frame_width: usize, frame_height: usize) -> Self {
        TrainConfig {
            vit: ViTConfig::miniature(frame_width, frame_height),
            roi: RoiNetConfig::miniature(frame_width, frame_height),
            sample_rate: 0.2,
            // Two passes (PR 5): the second, halved-LR epoch tightens the
            // ROI regression substantially (predicted-box area drops from
            // ~2-3x ground truth toward ~1.5x) at a one-off training cost of
            // seconds — directly raising the serving saturation knee.
            epochs: 2,
            lr: 1.4e-3,
            lambda_roi: 6.0,
            gate_sharpness: 40.0,
            event_sigma: 15.0 / 255.0,
            noise: NoiseConfig::default(),
            exposure_scale: 1.0,
            grad_clip: 5.0,
            grad_accum: 2,
            class_weights: [0.4, 1.0, 1.5, 6.0],
            seed: 7,
        }
    }

    /// A deliberately tiny configuration for doc tests and smoke tests.
    pub fn smoke_test() -> Self {
        let mut cfg = Self::miniature(160, 100);
        cfg.vit.dim = 24;
        cfg.vit.enc_depth = 1;
        cfg.vit.dec_depth = 1;
        cfg.roi.hidden = 32;
        cfg
    }
}

/// Jointly trains the ROI-prediction network and the sparse ViT segmenter.
///
/// Each step reproduces the paper's computation flow (Fig. 5):
///
/// 1. eventify consecutive (noisy) frames;
/// 2. predict a normalised ROI box from the event map + previous
///    segmentation map; compute the **ROI loss** (MSE to ground truth);
/// 3. randomly sample pixels inside the (hard) predicted box;
/// 4. segment the sparse pixels with the ViT; compute the **segmentation
///    loss** — a cross-entropy *gated* by a differentiable soft-box weight,
///    so its gradient flows back into the ROI network while unsampled pixels
///    are masked out (§III-C's gradient masking);
/// 5. descend both losses with Adam.
#[derive(Debug)]
pub struct JointTrainer {
    vit: SparseViT,
    roi_net: RoiPredictionNet,
    optimizer: Adam,
    config: TrainConfig,
    noise: ImagingNoise,
    rng: StdRng,
}

impl JointTrainer {
    /// Initialises both networks and the optimizer.
    ///
    /// # Errors
    ///
    /// Currently infallible; kept fallible for future config validation.
    pub fn new(config: TrainConfig) -> Result<Self, TensorError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let vit = SparseViT::new(&mut rng, config.vit);
        let roi_net = RoiPredictionNet::new(&mut rng, config.roi);
        let mut params = vit.parameters();
        params.extend(roi_net.parameters());
        let optimizer = Adam::new(params, config.lr);
        Ok(JointTrainer {
            vit,
            roi_net,
            optimizer,
            config,
            noise: ImagingNoise::new(config.noise),
            rng,
        })
    }

    /// The segmenter (e.g. for workload accounting).
    pub fn vit(&self) -> &SparseViT {
        &self.vit
    }

    /// The ROI network.
    pub fn roi_net(&self) -> &RoiPredictionNet {
        &self.roi_net
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Overrides the exposure scale for subsequent training/evaluation —
    /// the frame-rate→SNR coupling of the paper's Fig. 16 study.
    pub fn set_exposure_scale(&mut self, scale: f32) {
        self.config.exposure_scale = scale.max(1e-3);
    }

    /// Overrides the in-ROI sampling rate for subsequent runs.
    pub fn set_sample_rate(&mut self, rate: f32) {
        self.config.sample_rate = rate.clamp(0.0, 1.0);
    }

    /// Trains over the sequence for `config.epochs` passes; returns the loss
    /// at every step.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (none occur for well-formed configs).
    pub fn train_on(&mut self, seq: &EyeSequence) -> Result<Vec<f32>, TensorError> {
        let mut losses = Vec::new();
        let mut step = 0usize;
        for epoch in 0..self.config.epochs {
            // Halve the learning rate every epoch: the loss landscape of the
            // tiny joint model is sharp and a constant rate oscillates.
            let epoch_lr = self.config.lr * 0.5f32.powi(epoch as i32);
            self.optimizer.set_learning_rate(epoch_lr);
            let mut prev = self.noise.apply(
                &seq.frames[0].clean,
                self.config.exposure_scale,
                &mut self.rng,
            );
            for t in 1..seq.frames.len() {
                // Linear warmup over the first 20 steps of the run.
                if step < 20 {
                    self.optimizer
                        .set_learning_rate(epoch_lr * (step as f32 + 1.0) / 20.0);
                } else if step == 20 {
                    self.optimizer.set_learning_rate(epoch_lr);
                }
                step += 1;
                let frame = &seq.frames[t];
                let cur = self
                    .noise
                    .apply(&frame.clean, self.config.exposure_scale, &mut self.rng);
                let loss = self.train_step(seq, t, &prev, &cur)?;
                if let Some(l) = loss {
                    losses.push(l);
                }
                if step.is_multiple_of(self.config.grad_accum.max(1)) {
                    let mut params = self.vit.parameters();
                    params.extend(self.roi_net.parameters());
                    clip_global_norm(&params, self.config.grad_clip);
                    self.optimizer.step();
                    self.optimizer.zero_grad();
                }
                prev = cur;
            }
        }
        Ok(losses)
    }

    fn train_step(
        &mut self,
        seq: &EyeSequence,
        t: usize,
        prev: &[f32],
        cur: &[f32],
    ) -> Result<Option<f32>, TensorError> {
        let frame = &seq.frames[t];
        let events = frame_difference_events(cur, prev, self.config.event_sigma);
        // Teacher forcing with scheduled degradation: the previous frame's
        // ground-truth segmentation map stands in for the fed-back
        // prediction, but a quarter of the steps see an empty feedback map so
        // the ROI network stays robust to poor predictions at run time
        // (closed-loop evaluation feeds back its own output).
        let empty_seg;
        let prev_seg: &[u8] = if self.rng.gen::<f32>() < 0.25 {
            empty_seg = vec![0u8; cur.len()];
            &empty_seg
        } else {
            &seq.frames[t - 1].mask
        };
        let roi_input = self.roi_net.make_input(&events, prev_seg);
        let roi_out = self.roi_net.forward(&roi_input)?;
        let gt_box = normalize_box(&frame.roi, seq.width, seq.height);
        let roi_target = NdArray::from_vec(gt_box.to_vec(), &[1, 4])?;
        let roi_loss = roi_out.mse_loss(&roi_target)?;

        // Hard sampling inside the predicted box (forward path). A fraction
        // of steps sample the whole frame instead — the cold-start bootstrap
        // the deployed system performs before the first segmentation map
        // exists — so the ViT learns to handle full-frame token sets too.
        let hard_box = if self.rng.gen::<f32>() < 0.15 {
            bliss_sensor::RoiBox::full(seq.width, seq.height)
        } else {
            self.roi_net.predict_box(&roi_out)
        };
        let mut mask = vec![0.0f32; cur.len()];
        let mut values = vec![0.0f32; cur.len()];
        for y in hard_box.y1..hard_box.y2 {
            for x in hard_box.x1..hard_box.x2 {
                if self.rng.gen::<f32>() < self.config.sample_rate {
                    let i = y * seq.width + x;
                    mask[i] = 1.0;
                    values[i] = cur[i];
                }
            }
        }

        let total = match self.vit.forward(&values, &mask)? {
            Some(pred) => {
                let targets: Vec<usize> = pred
                    .pixel_indices
                    .iter()
                    .map(|&i| frame.mask[i] as usize)
                    .collect();
                let gate = self.soft_gate(&roi_out, &pred.pixel_indices, seq.width, seq.height)?;
                // Bound the gate's dynamic range: a raw weighted mean lets
                // the box shrink away from hard pixels (the pupil boundary)
                // to reduce the loss. With weights in [0.75, 1], gradients
                // still reach the ROI network but cannot overpower the
                // explicit ROI regression loss.
                let gate = gate.scale(0.25).add_scalar(0.75);
                // Fold the per-class weights into the gate (constant factor,
                // so gradients still reach the ROI network through the gate).
                let cw: Vec<f32> = targets
                    .iter()
                    .map(|&t| self.config.class_weights[t.min(3)])
                    .collect();
                let cw = NdArray::from_vec(cw, &[targets.len()])?;
                let gate = gate.mul_mask(&cw)?;
                let seg_loss = pred.logits.cross_entropy_rows_gated(&targets, &gate)?;
                seg_loss.add(&roi_loss.scale(self.config.lambda_roi))?
            }
            // Eye fully closed and nothing sampled: only the ROI loss learns.
            None => roi_loss.scale(self.config.lambda_roi),
        };

        // Gradients accumulate across `grad_accum` frames; the optimizer
        // steps (and clears) at the accumulation boundary in `train_on`.
        total
            .scale(1.0 / self.config.grad_accum.max(1) as f32)
            .backward()?;
        let loss_value = total.value().data()[0];
        Ok(Some(loss_value))
    }

    /// The differentiable soft-box gate: for each queried pixel, the product
    /// of four sigmoids measuring how far inside the predicted box it lies.
    /// Gradients flow through the box coordinates into the ROI network.
    fn soft_gate(
        &self,
        roi_out: &Tensor,
        pixel_indices: &[usize],
        width: usize,
        height: usize,
    ) -> Result<Tensor, TensorError> {
        let s = pixel_indices.len();
        let k = self.config.gate_sharpness;
        let b = roi_out.transpose()?; // [4, 1]
        let cx = b.slice_rows(0, 1)?;
        let cy = b.slice_rows(1, 2)?;
        let bw = b.slice_rows(2, 3)?;
        let bh = b.slice_rows(3, 4)?;
        let x1 = cx.sub(&bw.scale(0.5))?.broadcast_to(&[s, 1])?;
        let x2 = cx.add(&bw.scale(0.5))?.broadcast_to(&[s, 1])?;
        let y1 = cy.sub(&bh.scale(0.5))?.broadcast_to(&[s, 1])?;
        let y2 = cy.add(&bh.scale(0.5))?.broadcast_to(&[s, 1])?;

        let xs: Vec<f32> = pixel_indices
            .iter()
            .map(|&i| ((i % width) as f32 + 0.5) / width as f32)
            .collect();
        let ys: Vec<f32> = pixel_indices
            .iter()
            .map(|&i| ((i / width) as f32 + 0.5) / height as f32)
            .collect();
        let xs = Tensor::constant(NdArray::from_vec(xs, &[s, 1])?);
        let ys = Tensor::constant(NdArray::from_vec(ys, &[s, 1])?);

        let gx = xs
            .sub(&x1)?
            .scale(k)
            .sigmoid()
            .mul(&x2.sub(&xs)?.scale(k).sigmoid())?;
        let gy = ys
            .sub(&y1)?
            .scale(k)
            .sigmoid()
            .mul(&y2.sub(&ys)?.scale(k).sigmoid())?;
        gx.mul(&gy)?.reshape(&[s])
    }

    /// Evaluates the full closed-loop pipeline: predicted segmentation maps
    /// feed back into the next frame's ROI prediction, exactly as the
    /// deployed system runs.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn evaluate(&mut self, seq: &EyeSequence) -> Result<EvalResult, TensorError> {
        let strategy = SamplingStrategy::RoiRandom {
            rate: self.config.sample_rate,
        };
        self.evaluate_with_strategy(seq, &strategy, None)
    }

    /// Evaluates with an arbitrary sampling strategy (the Fig. 15 study).
    ///
    /// `importance` supplies the offline mask for `RoiFixed`/`RoiLearned`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn evaluate_with_strategy(
        &mut self,
        seq: &EyeSequence,
        strategy: &SamplingStrategy,
        importance: Option<&[f32]>,
    ) -> Result<EvalResult, TensorError> {
        let (w, h) = (seq.width, seq.height);
        let mut estimator = GazeEstimator::new(seq.model.clone());
        let mut prev = self.noise.apply(
            &seq.frames[0].clean,
            self.config.exposure_scale,
            &mut self.rng,
        );
        let mut prev_seg = vec![0u8; w * h];
        // Cold start: until the first segmentation map exists, the ROI
        // prediction has no corrective cue and fixation frames carry no
        // events — read the full frame, as the sensor's bootstrap (all-events
        // first map) does in hardware.
        let mut have_seg = false;
        let mut err_h = Vec::new();
        let mut err_v = Vec::new();
        let mut seg_accs = Vec::new();
        let mut tokens_total = 0usize;
        let mut sampled_total = 0u64;
        let mut frames = 0usize;
        let mut last_classes: Vec<(usize, u8)> = Vec::new();

        for t in 1..seq.frames.len() {
            let frame = &seq.frames[t];
            let cur = self
                .noise
                .apply(&frame.clean, self.config.exposure_scale, &mut self.rng);
            let events = frame_difference_events(&cur, &prev, self.config.event_sigma);
            let density = events.iter().sum::<f32>() / events.len() as f32;

            let roi_input = self.roi_net.make_input(&events, &prev_seg);
            let roi_out = self.roi_net.forward(&roi_input)?;
            let roi_box = if have_seg {
                self.roi_net.predict_box(&roi_out)
            } else {
                bliss_sensor::RoiBox::full(w, h)
            };

            let sampled = apply_strategy(
                strategy,
                &cur,
                w,
                h,
                roi_box,
                importance,
                density,
                &mut self.rng,
            );
            sampled_total += sampled.sampled as u64;

            let gaze = if sampled.skipped {
                // Skip strategy: reuse the previous result wholesale.
                seg_accs.push(seg_accuracy(&last_classes, &frame.mask));
                estimator.last()
            } else {
                match self.vit.forward(&sampled.values, &sampled.mask)? {
                    Some(pred) => {
                        tokens_total += pred.tokens;
                        let classes = pred.classes();
                        seg_accs.push(seg_accuracy(&classes, &frame.mask));
                        let seg = pred.seg_map(w, h);
                        // Only adopt feedback that actually found the eye.
                        if seg.iter().any(|&c| c != 0) {
                            prev_seg = seg;
                            have_seg = true;
                        }
                        let g = estimator.estimate_from_pairs(&classes, w);
                        last_classes = classes;
                        g
                    }
                    None => estimator.last(),
                }
            };

            err_h.push((gaze.horizontal_deg - frame.gaze.horizontal_deg).abs());
            err_v.push((gaze.vertical_deg - frame.gaze.vertical_deg).abs());
            frames += 1;
            prev = cur;
        }

        let total_pixels = (w * h * frames) as f32;
        Ok(EvalResult {
            horizontal: AngularErrorStats::from_errors(&err_h),
            vertical: AngularErrorStats::from_errors(&err_v),
            seg_accuracy: if seg_accs.is_empty() {
                f32::NAN
            } else {
                seg_accs.iter().sum::<f32>() / seg_accs.len() as f32
            },
            mean_compression: total_pixels / sampled_total.max(1) as f32,
            mean_tokens: tokens_total as f32 / frames.max(1) as f32,
            frames,
        })
    }
}

/// Trains and evaluates a dense CNN baseline (RITnet- or EdGaze-style) at a
/// fixed downsampling factor — the paper's NPU-Full / NPU-ROI accuracy
/// baselines, where compression comes from image downsampling instead of
/// sparse sampling.
#[derive(Debug)]
pub struct DenseTrainer {
    net: crate::baselines::CnnBaseline,
    optimizer: Adam,
    downsample: usize,
    roi_only: bool,
    noise: ImagingNoise,
    exposure_scale: f32,
    epochs: usize,
    rng: StdRng,
}

impl DenseTrainer {
    /// Creates a dense baseline trainer.
    ///
    /// * `arch` — `"ritnet"` or `"edgaze"`;
    /// * `downsample` — integer image downsampling factor (compression =
    ///   `downsample²` for full frames);
    /// * `roi_only` — when true, pixels outside the ground-truth ROI are
    ///   zeroed before downsampling (the NPU-ROI variant); compression then
    ///   counts only ROI pixels.
    pub fn new(
        arch: &str,
        frame_width: usize,
        frame_height: usize,
        downsample: usize,
        roi_only: bool,
        seed: u64,
    ) -> Self {
        assert!(downsample > 0, "downsample must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let config = crate::baselines::CnnSegConfig::miniature(
            frame_width.div_ceil(downsample),
            frame_height.div_ceil(downsample),
        );
        let net = crate::baselines::CnnBaseline::by_name(arch, &mut rng, config);
        let optimizer = Adam::new(net.parameters(), 1e-3);
        DenseTrainer {
            net,
            optimizer,
            downsample,
            roi_only,
            noise: ImagingNoise::default(),
            exposure_scale: 1.0,
            epochs: 1,
            rng,
        }
    }

    /// Overrides the number of training epochs.
    pub fn set_epochs(&mut self, epochs: usize) {
        self.epochs = epochs.max(1);
    }

    /// Overrides the exposure scale (frame-rate/SNR coupling).
    pub fn set_exposure_scale(&mut self, scale: f32) {
        self.exposure_scale = scale;
    }

    /// The wrapped network.
    pub fn network(&self) -> &crate::baselines::CnnBaseline {
        &self.net
    }

    fn prepare(&mut self, frame: &bliss_eye::EyeFrame, w: usize, h: usize) -> (Vec<f32>, Vec<u8>) {
        let mut img = self
            .noise
            .apply(&frame.clean, self.exposure_scale, &mut self.rng);
        if self.roi_only {
            for y in 0..h {
                for x in 0..w {
                    if !frame.roi.contains(x, y) {
                        img[y * w + x] = 0.0;
                    }
                }
            }
        }
        let (ds, dw, dh) = crate::util::block_downsample(&img, w, h, self.downsample);
        debug_assert_eq!((dw, dh), {
            let c = self.net.config();
            (c.width, c.height)
        });
        let (gt, _, _) = crate::util::downsample_mask_max(&frame.mask, w, h, self.downsample);
        (ds, gt)
    }

    /// Trains over the sequence; returns per-step losses.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn train_on(&mut self, seq: &EyeSequence) -> Result<Vec<f32>, TensorError> {
        let (w, h) = (seq.width, seq.height);
        let mut losses = Vec::new();
        for _ in 0..self.epochs {
            for frame in &seq.frames {
                let (img, gt) = self.prepare(frame, w, h);
                let logits = self.net.forward_dense(&img)?;
                let targets: Vec<usize> = gt.iter().map(|&c| c as usize).collect();
                let class_weights = [0.4f32, 1.0, 1.5, 6.0];
                let weights: Vec<f32> = targets.iter().map(|&t| class_weights[t.min(3)]).collect();
                let loss = logits.cross_entropy_rows(&targets, Some(&weights))?;
                self.optimizer.zero_grad();
                loss.backward()?;
                clip_global_norm(&self.net.parameters(), 5.0);
                self.optimizer.step();
                losses.push(loss.value().data()[0]);
            }
        }
        Ok(losses)
    }

    /// Evaluates gaze accuracy over the sequence.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn evaluate(&mut self, seq: &EyeSequence) -> Result<EvalResult, TensorError> {
        let (w, h) = (seq.width, seq.height);
        let mut estimator = GazeEstimator::new(seq.model.clone());
        let mut err_h = Vec::new();
        let mut err_v = Vec::new();
        let mut seg_accs = Vec::new();
        let mut transmitted = 0u64;
        for frame in seq.frames.iter().skip(1) {
            let (img, gt) = self.prepare(frame, w, h);
            let logits = self.net.forward_dense(&img)?;
            let classes = logits.value().argmax_rows().expect("rank-2 logits");
            let seg: Vec<u8> = classes.iter().map(|&c| c as u8).collect();
            let pairs: Vec<(usize, u8)> = seg.iter().enumerate().map(|(i, &c)| (i, c)).collect();
            seg_accs.push(seg_accuracy(&pairs, &gt));
            let cfg = self.net.config();
            let gaze = estimator.estimate_from_map(&seg, cfg.width, self.downsample as f32);
            err_h.push((gaze.horizontal_deg - frame.gaze.horizontal_deg).abs());
            err_v.push((gaze.vertical_deg - frame.gaze.vertical_deg).abs());
            transmitted += if self.roi_only {
                (frame.roi.area() / (self.downsample * self.downsample)) as u64
            } else {
                (cfg.width * cfg.height) as u64
            };
        }
        let frames = seq.frames.len() - 1;
        Ok(EvalResult {
            horizontal: AngularErrorStats::from_errors(&err_h),
            vertical: AngularErrorStats::from_errors(&err_v),
            seg_accuracy: seg_accs.iter().sum::<f32>() / seg_accs.len().max(1) as f32,
            mean_compression: (w * h * frames) as f32 / transmitted.max(1) as f32,
            mean_tokens: 0.0,
            frames,
        })
    }
}

#[cfg(test)]
mod tests {
    //! RNG-stream test policy: training outcomes flow through `StdRng`
    //! (weight init, rendered sequences), so they are asserted as
    //! *tolerance-based trends* (loss decreases, error below a bound) —
    //! never as golden literals pinned to one generator's stream. The
    //! workspace `StdRng` is the vendored xoshiro256\*\* shim, not upstream
    //! `rand`'s ChaCha12; only the shim's own suite pins exact draws.
    use super::*;
    use bliss_eye::{render_sequence, SequenceConfig};

    fn tiny_seq(frames: usize, seed: u64) -> EyeSequence {
        render_sequence(&SequenceConfig::miniature(frames, seed))
    }

    #[test]
    fn joint_training_reduces_loss() {
        let seq = tiny_seq(40, 11);
        let mut cfg = TrainConfig::smoke_test();
        cfg.epochs = 2;
        let mut trainer = JointTrainer::new(cfg).unwrap();
        let losses = trainer.train_on(&seq).unwrap();
        assert!(losses.len() > 20);
        let first: f32 = losses[..8].iter().sum::<f32>() / 8.0;
        let last: f32 = losses[losses.len() - 8..].iter().sum::<f32>() / 8.0;
        assert!(
            last < first,
            "loss did not decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn evaluation_produces_finite_errors_and_compression() {
        let seq = tiny_seq(24, 12);
        let mut trainer = JointTrainer::new(TrainConfig::smoke_test()).unwrap();
        trainer.train_on(&seq).unwrap();
        let eval = trainer.evaluate(&seq).unwrap();
        assert_eq!(eval.frames, 23);
        assert!(eval.horizontal.mean.is_finite());
        assert!(eval.vertical.mean.is_finite());
        assert!(
            eval.mean_compression > 3.0,
            "compression {}",
            eval.mean_compression
        );
        assert!(eval.mean_tokens > 0.0);
    }

    #[test]
    fn roi_gradients_flow_from_seg_loss() {
        // With lambda_roi = 0 the ROI net can only learn through the gated
        // segmentation loss — its parameters must still receive gradients.
        let seq = tiny_seq(6, 13);
        let mut cfg = TrainConfig::smoke_test();
        cfg.lambda_roi = 0.0;
        let trainer = JointTrainer::new(cfg).unwrap();
        // Manually run one step and inspect gradients before the optimizer
        // clears them: replicate train_step's interior.
        let prev = seq.frames[0].clean.clone();
        let cur = seq.frames[1].clean.clone();
        let events = frame_difference_events(&cur, &prev, cfg.event_sigma);
        let input = trainer.roi_net.make_input(&events, &seq.frames[0].mask);
        let roi_out = trainer.roi_net.forward(&input).unwrap();
        let hard = trainer.roi_net.predict_box(&roi_out);
        let mut mask = vec![0.0f32; cur.len()];
        let mut values = vec![0.0f32; cur.len()];
        for y in hard.y1..hard.y2 {
            for x in hard.x1..hard.x2 {
                if (x + y) % 4 == 0 {
                    let i = y * seq.width + x;
                    mask[i] = 1.0;
                    values[i] = cur[i];
                }
            }
        }
        let pred = trainer.vit.forward(&values, &mask).unwrap().unwrap();
        let targets: Vec<usize> = pred
            .pixel_indices
            .iter()
            .map(|&i| seq.frames[1].mask[i] as usize)
            .collect();
        let gate = trainer
            .soft_gate(&roi_out, &pred.pixel_indices, seq.width, seq.height)
            .unwrap();
        let loss = pred
            .logits
            .cross_entropy_rows_gated(&targets, &gate)
            .unwrap();
        loss.backward().unwrap();
        let roi_grads = trainer
            .roi_net
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        assert_eq!(
            roi_grads,
            trainer.roi_net.parameters().len(),
            "segmentation loss must reach the ROI network through the gate"
        );
    }

    #[test]
    fn skip_strategy_skips_static_frames() {
        let seq = tiny_seq(16, 14);
        let mut trainer = JointTrainer::new(TrainConfig::smoke_test()).unwrap();
        let eval = trainer
            .evaluate_with_strategy(
                &seq,
                &SamplingStrategy::Skip {
                    density_threshold: 2.0, // impossible: every frame skips
                },
                None,
            )
            .unwrap();
        assert!(eval.mean_compression > 1_000.0);
    }

    #[test]
    fn dense_trainer_runs_and_evaluates() {
        let seq = tiny_seq(16, 15);
        let mut t = DenseTrainer::new("edgaze", 160, 100, 2, false, 1);
        let losses = t.train_on(&seq).unwrap();
        assert!(!losses.is_empty());
        let eval = t.evaluate(&seq).unwrap();
        assert!((eval.mean_compression - 4.0).abs() < 0.5);
        assert!(eval.horizontal.mean.is_finite());
    }

    #[test]
    fn dense_roi_only_compresses_more() {
        let seq = tiny_seq(10, 16);
        let mut full = DenseTrainer::new("ritnet", 160, 100, 2, false, 2);
        let mut roi = DenseTrainer::new("ritnet", 160, 100, 2, true, 2);
        let ef = full.evaluate(&seq).unwrap();
        let er = roi.evaluate(&seq).unwrap();
        assert!(er.mean_compression > ef.mean_compression);
    }
}
