use crate::util::pad_to_multiple;
use bliss_nn::{Conv2d, DepthwiseSeparableConv2d, Module};
use bliss_npu::WorkloadDesc;
use bliss_tensor::{NdArray, Tensor, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration shared by the dense CNN segmentation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnSegConfig {
    /// Input width in pixels.
    pub width: usize,
    /// Input height in pixels.
    pub height: usize,
    /// Channel widths of the three encoder stages.
    pub channels: [usize; 3],
    /// Segmentation classes.
    pub num_classes: usize,
}

impl CnnSegConfig {
    /// Paper-scale baseline capacity (used for MAC accounting only) —
    /// ~3.4 GMACs per frame, RITnet-class.
    pub fn paper() -> Self {
        CnnSegConfig {
            width: 640,
            height: 400,
            channels: [16, 36, 64],
            num_classes: 4,
        }
    }

    /// Lowered workload of one encoder-decoder inference at this resolution
    /// (`depthwise = true` for the EdGaze-style separable variant).
    pub fn workload(&self, depthwise: bool) -> bliss_npu::WorkloadDesc {
        let (w, h) = (self.width, self.height);
        let [c0, c1, c2] = self.channels;
        let mut wl = bliss_npu::WorkloadDesc::new(if depthwise {
            "edgaze-like"
        } else {
            "ritnet-like"
        });
        wl.push_conv(c0, 1, 3, h, w);
        if depthwise {
            wl.push_depthwise_separable(c0, c1, 3, h / 2, w / 2);
            wl.push_depthwise_separable(c1, c2, 3, h / 4, w / 4);
            wl.push_depthwise_separable(c2, c1, 3, h / 2, w / 2);
            wl.push_depthwise_separable(c1, c0, 3, h, w);
        } else {
            wl.push_conv(c1, c0, 3, h / 2, w / 2);
            wl.push_conv(c2, c1, 3, h / 4, w / 4);
            wl.push_conv(c1, c2, 3, h / 2, w / 2);
            wl.push_conv(c0, c1, 3, h, w);
        }
        wl.push_conv(self.num_classes, c0, 1, h, w);
        wl
    }

    /// Miniature capacity for CPU training.
    pub fn miniature(width: usize, height: usize) -> Self {
        CnnSegConfig {
            width,
            height,
            channels: [8, 16, 24],
            num_classes: 4,
        }
    }
}

/// RITnet-style dense segmenter: a small convolutional encoder-decoder
/// (Chaudhary et al. 2019 use a U-net-like encoder-decoder; paper §V uses it
/// as the primary dense baseline).
#[derive(Debug, Clone)]
pub struct RitnetLike {
    stem: Conv2d,
    down1: Conv2d,
    down2: Conv2d,
    up1: Conv2d,
    up2: Conv2d,
    head: Conv2d,
    config: CnnSegConfig,
}

impl RitnetLike {
    /// Creates the network with random initialisation.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: CnnSegConfig) -> Self {
        let [c0, c1, c2] = config.channels;
        RitnetLike {
            stem: Conv2d::new(rng, 1, c0, 3, 1, 1),
            down1: Conv2d::new(rng, c0, c1, 3, 2, 1),
            down2: Conv2d::new(rng, c1, c2, 3, 2, 1),
            up1: Conv2d::new(rng, c2, c1, 3, 1, 1),
            up2: Conv2d::new(rng, c1, c0, 3, 1, 1),
            head: Conv2d::new(rng, c0, config.num_classes, 1, 1, 0),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CnnSegConfig {
        &self.config
    }

    /// Dense forward: full-frame image (`width*height` values in `[0, 1]`)
    /// to per-pixel logits `[width*height, num_classes]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `image.len()` differs from the configuration.
    pub fn forward_dense(&self, image: &[f32]) -> Result<Tensor, TensorError> {
        dense_forward(image, &self.config, |x| {
            let x = self.stem.forward(x)?.relu();
            let x = self.down1.forward(&x)?.relu();
            let x = self.down2.forward(&x)?.relu();
            let x = self.up1.forward(&x.upsample2x()?)?.relu();
            let x = self.up2.forward(&x.upsample2x()?)?.relu();
            self.head.forward(&x)
        })
    }

    /// Lowered workload of one inference at the configured resolution.
    pub fn workload(&self) -> WorkloadDesc {
        self.config.workload(false)
    }
}

impl Module for RitnetLike {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.stem.parameters();
        p.extend(self.down1.parameters());
        p.extend(self.down2.parameters());
        p.extend(self.up1.parameters());
        p.extend(self.up2.parameters());
        p.extend(self.head.parameters());
        p
    }
}

/// EdGaze-style dense segmenter built from depthwise-separable convolutions
/// (Feng et al. 2022), the efficiency-oriented dense baseline.
#[derive(Debug, Clone)]
pub struct EdGazeLike {
    stem: Conv2d,
    down1: DepthwiseSeparableConv2d,
    down2: DepthwiseSeparableConv2d,
    up1: DepthwiseSeparableConv2d,
    up2: DepthwiseSeparableConv2d,
    head: Conv2d,
    config: CnnSegConfig,
}

impl EdGazeLike {
    /// Creates the network with random initialisation.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: CnnSegConfig) -> Self {
        let [c0, c1, c2] = config.channels;
        EdGazeLike {
            stem: Conv2d::new(rng, 1, c0, 3, 1, 1),
            down1: DepthwiseSeparableConv2d::new(rng, c0, c1, 3, 2, 1),
            down2: DepthwiseSeparableConv2d::new(rng, c1, c2, 3, 2, 1),
            up1: DepthwiseSeparableConv2d::new(rng, c2, c1, 3, 1, 1),
            up2: DepthwiseSeparableConv2d::new(rng, c1, c0, 3, 1, 1),
            head: Conv2d::new(rng, c0, config.num_classes, 1, 1, 0),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CnnSegConfig {
        &self.config
    }

    /// Dense forward; see [`RitnetLike::forward_dense`].
    ///
    /// # Errors
    ///
    /// Returns shape errors if `image.len()` differs from the configuration.
    pub fn forward_dense(&self, image: &[f32]) -> Result<Tensor, TensorError> {
        dense_forward(image, &self.config, |x| {
            let x = self.stem.forward(x)?.relu();
            let x = self.down1.forward(&x)?.relu();
            let x = self.down2.forward(&x)?.relu();
            let x = self.up1.forward(&x.upsample2x()?)?.relu();
            let x = self.up2.forward(&x.upsample2x()?)?.relu();
            self.head.forward(&x)
        })
    }

    /// Lowered workload of one inference at the configured resolution.
    pub fn workload(&self) -> WorkloadDesc {
        self.config.workload(true)
    }
}

impl Module for EdGazeLike {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.stem.parameters();
        p.extend(self.down1.parameters());
        p.extend(self.down2.parameters());
        p.extend(self.up1.parameters());
        p.extend(self.up2.parameters());
        p.extend(self.head.parameters());
        p
    }
}

/// A dense CNN baseline of either architecture, for uniform handling in
/// trainers and experiments.
#[derive(Debug, Clone)]
pub enum CnnBaseline {
    /// RITnet-style encoder-decoder.
    Ritnet(RitnetLike),
    /// EdGaze-style depthwise-separable network.
    EdGaze(EdGazeLike),
}

impl CnnBaseline {
    /// Creates a baseline by architecture name (`"ritnet"` / `"edgaze"`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown name.
    pub fn by_name<R: Rng + ?Sized>(name: &str, rng: &mut R, config: CnnSegConfig) -> Self {
        match name {
            "ritnet" => CnnBaseline::Ritnet(RitnetLike::new(rng, config)),
            "edgaze" => CnnBaseline::EdGaze(EdGazeLike::new(rng, config)),
            other => panic!("unknown CNN baseline {other:?}"),
        }
    }

    /// The architecture name.
    pub fn name(&self) -> &'static str {
        match self {
            CnnBaseline::Ritnet(_) => "ritnet",
            CnnBaseline::EdGaze(_) => "edgaze",
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CnnSegConfig {
        match self {
            CnnBaseline::Ritnet(n) => n.config(),
            CnnBaseline::EdGaze(n) => n.config(),
        }
    }

    /// Dense forward; see [`RitnetLike::forward_dense`].
    ///
    /// # Errors
    ///
    /// Returns shape errors if the image does not match the configuration.
    pub fn forward_dense(&self, image: &[f32]) -> Result<Tensor, TensorError> {
        match self {
            CnnBaseline::Ritnet(n) => n.forward_dense(image),
            CnnBaseline::EdGaze(n) => n.forward_dense(image),
        }
    }

    /// Lowered workload of one inference.
    pub fn workload(&self) -> WorkloadDesc {
        match self {
            CnnBaseline::Ritnet(n) => n.workload(),
            CnnBaseline::EdGaze(n) => n.workload(),
        }
    }
}

impl Module for CnnBaseline {
    fn parameters(&self) -> Vec<Tensor> {
        match self {
            CnnBaseline::Ritnet(n) => n.parameters(),
            CnnBaseline::EdGaze(n) => n.parameters(),
        }
    }
}

/// Shared dense-forward scaffolding: pads the image to a stride-compatible
/// size, runs the CHW network body, then crops back and reshapes to
/// `[pixels, classes]`.
fn dense_forward(
    image: &[f32],
    config: &CnnSegConfig,
    body: impl Fn(&Tensor) -> Result<Tensor, TensorError>,
) -> Result<Tensor, TensorError> {
    let (w, h) = (config.width, config.height);
    if image.len() != w * h {
        return Err(TensorError::InvalidArgument {
            op: "forward_dense",
            message: format!("expected {} pixels, got {}", w * h, image.len()),
        });
    }
    let (padded, pw, ph) = pad_to_multiple(image, w, h, 4);
    let x = Tensor::constant(NdArray::from_vec(padded, &[1, ph, pw])?);
    let logits = body(&x)?; // [K, ph, pw]
    let k = config.num_classes;
    let per_pixel = logits.reshape(&[k, ph * pw])?.transpose()?; // [ph*pw, K]
    if pw == w && ph == h {
        return Ok(per_pixel);
    }
    // Crop: gather the rows corresponding to valid (un-padded) pixels.
    let mut keep = Vec::with_capacity(w * h);
    for y in 0..h {
        for x_ in 0..w {
            keep.push(y * pw + x_);
        }
    }
    per_pixel.gather_rows(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> CnnSegConfig {
        CnnSegConfig::miniature(20, 14)
    }

    #[test]
    fn ritnet_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = RitnetLike::new(&mut rng, cfg());
        let out = net.forward_dense(&vec![0.5; 280]).unwrap();
        assert_eq!(out.shape(), vec![280, 4]);
    }

    #[test]
    fn edgaze_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = EdGazeLike::new(&mut rng, cfg());
        let out = net.forward_dense(&vec![0.5; 280]).unwrap();
        assert_eq!(out.shape(), vec![280, 4]);
    }

    #[test]
    fn edgaze_uses_fewer_macs_than_ritnet() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = RitnetLike::new(&mut rng, CnnSegConfig::paper());
        let e = EdGazeLike::new(&mut rng, CnnSegConfig::paper());
        assert!(e.workload().total_macs() < r.workload().total_macs());
    }

    #[test]
    fn baselines_are_trainable() {
        let mut rng = StdRng::seed_from_u64(1);
        for name in ["ritnet", "edgaze"] {
            let net = CnnBaseline::by_name(name, &mut rng, cfg());
            let out = net.forward_dense(&vec![0.3; 280]).unwrap();
            let targets = vec![0usize; 280];
            let loss = out.cross_entropy_rows(&targets, None).unwrap();
            loss.backward().unwrap();
            let grads = net
                .parameters()
                .iter()
                .filter(|p| p.grad().is_some())
                .count();
            assert_eq!(grads, net.parameters().len(), "{name}");
        }
    }

    #[test]
    fn rejects_wrong_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = RitnetLike::new(&mut rng, cfg());
        assert!(net.forward_dense(&[0.0; 5]).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown CNN baseline")]
    fn unknown_baseline_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = CnnBaseline::by_name("segnet", &mut rng, cfg());
    }
}
