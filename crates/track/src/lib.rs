//! The BlissCam eye-tracking algorithms (paper §III).
//!
//! This crate implements the full learned pipeline:
//!
//! * [`RoiPredictionNet`] — the lightweight in-sensor ROI predictor: three
//!   convolutions + two fully-connected layers over the event map, with the
//!   previous frame's segmentation map as a corrective input (§III-A);
//! * [`SparseViT`] — the sparse-robust Vision Transformer segmenter:
//!   patch-token encoder, Segmenter-style mask decoder with class
//!   embeddings, and a per-pixel refinement head. Patches with no sampled
//!   pixels are dropped, so compute scales down with pixel volume (§III-B);
//! * [`RitnetLike`] / [`EdGazeLike`] — dense CNN baselines
//!   (encoder-decoder and depthwise-separable, §V);
//! * [`SamplingStrategy`] — the seven sampling alternatives compared in the
//!   paper's Fig. 15;
//! * [`GazeEstimator`] — geometric gaze regression from the predicted pupil;
//! * [`JointTrainer`] — end-to-end joint training with differentiable ROI
//!   gating and gradient masking of unsampled pixels (§III-C).
//!
//! # Example
//!
//! ```
//! use bliss_track::{JointTrainer, TrainConfig};
//! use bliss_eye::{render_sequence, SequenceConfig};
//!
//! # fn main() -> Result<(), bliss_tensor::TensorError> {
//! let seq = render_sequence(&SequenceConfig::miniature(12, 3));
//! let mut trainer = JointTrainer::new(TrainConfig::smoke_test())?;
//! let losses = trainer.train_on(&seq)?;
//! assert!(losses.iter().all(|l| l.is_finite()));
//! let eval = trainer.evaluate(&seq)?;
//! assert!(eval.horizontal.mean.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod baselines;
mod gaze;
mod metrics;
mod roi_net;
mod sampling;
mod train;
pub mod util;
mod vit;

pub use baselines::{CnnBaseline, CnnSegConfig, EdGazeLike, RitnetLike};
pub use gaze::{EstimatorSnapshot, GazeEstimator};
pub use metrics::{seg_accuracy, AngularErrorStats, EvalResult};
pub use roi_net::{RoiNetConfig, RoiPredictionNet};
pub use sampling::{apply_strategy, SampledFrame, SamplingStrategy};
pub use train::{DenseTrainer, JointTrainer, TrainConfig};
pub use vit::{PlannedBatch, PlannedFrameView, SegPrediction, SparseViT, ViTConfig};
