use serde::{Deserialize, Serialize};

/// Mean and standard deviation of an angular-error distribution, in degrees.
///
/// The paper's Fig. 12 reports per-axis errors with one-standard-deviation
/// error bars; robustness shows up as a *smaller std* at equal mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AngularErrorStats {
    /// Mean absolute error in degrees.
    pub mean: f32,
    /// Standard deviation of the absolute error in degrees.
    pub std: f32,
}

impl AngularErrorStats {
    /// Computes stats over a slice of absolute errors.
    pub fn from_errors(errors: &[f32]) -> Self {
        if errors.is_empty() {
            return AngularErrorStats {
                mean: f32::NAN,
                std: f32::NAN,
            };
        }
        let n = errors.len() as f32;
        let mean = errors.iter().sum::<f32>() / n;
        let var = errors.iter().map(|e| (e - mean) * (e - mean)).sum::<f32>() / n;
        AngularErrorStats {
            mean,
            std: var.sqrt(),
        }
    }
}

/// Outcome of evaluating a tracking pipeline over a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Horizontal angular error statistics.
    pub horizontal: AngularErrorStats,
    /// Vertical angular error statistics.
    pub vertical: AngularErrorStats,
    /// Fraction of evaluated pixels whose predicted class matched ground
    /// truth.
    pub seg_accuracy: f32,
    /// Mean pixel-volume compression rate achieved across frames.
    pub mean_compression: f32,
    /// Mean transformer token count per frame (0 for CNN baselines).
    pub mean_tokens: f32,
    /// Number of frames evaluated.
    pub frames: usize,
}

/// Fraction of `(index, class)` predictions matching the ground-truth mask.
///
/// Returns 1.0 for an empty prediction set (nothing to get wrong).
pub fn seg_accuracy(pred: &[(usize, u8)], gt: &[u8]) -> f32 {
    if pred.is_empty() {
        return 1.0;
    }
    let correct = pred
        .iter()
        .filter(|&&(i, c)| gt.get(i).copied() == Some(c))
        .count();
    correct as f32 / pred.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_errors() {
        let s = AngularErrorStats::from_errors(&[0.5, 0.5, 0.5]);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn stats_of_spread_errors() {
        let s = AngularErrorStats::from_errors(&[0.0, 2.0]);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std, 1.0);
    }

    #[test]
    fn empty_errors_are_nan() {
        let s = AngularErrorStats::from_errors(&[]);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn seg_accuracy_counts_matches() {
        let gt = vec![0u8, 1, 2, 3];
        let pred = vec![(0usize, 0u8), (1, 1), (2, 0), (3, 3)];
        assert_eq!(seg_accuracy(&pred, &gt), 0.75);
        assert_eq!(seg_accuracy(&[], &gt), 1.0);
    }

    #[test]
    fn seg_accuracy_out_of_range_counts_as_wrong() {
        let gt = vec![0u8];
        let pred = vec![(5usize, 0u8)];
        assert_eq!(seg_accuracy(&pred, &gt), 0.0);
    }
}
