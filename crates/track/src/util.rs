//! Image-space helpers shared by the tracking algorithms.

use bliss_sensor::RoiBox;

/// Block-average downsampling of a row-major image by an integer factor.
///
/// Output dimensions are `ceil(w/factor) x ceil(h/factor)`; border blocks
/// average over the valid pixels only.
///
/// # Panics
///
/// Panics if `factor == 0` or `img.len() != w * h`.
pub fn block_downsample(
    img: &[f32],
    w: usize,
    h: usize,
    factor: usize,
) -> (Vec<f32>, usize, usize) {
    assert!(factor > 0, "factor must be positive");
    assert_eq!(img.len(), w * h, "image size mismatch");
    if factor == 1 {
        return (img.to_vec(), w, h);
    }
    let ow = w.div_ceil(factor);
    let oh = h.div_ceil(factor);
    let mut out = vec![0.0f32; ow * oh];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut sum = 0.0f32;
            let mut count = 0u32;
            for dy in 0..factor {
                let y = oy * factor + dy;
                if y >= h {
                    break;
                }
                for dx in 0..factor {
                    let x = ox * factor + dx;
                    if x >= w {
                        break;
                    }
                    sum += img[y * w + x];
                    count += 1;
                }
            }
            out[oy * ow + ox] = sum / count.max(1) as f32;
        }
    }
    (out, ow, oh)
}

/// Functional eventification (paper Eqn. 1): `1.0` where
/// `|cur - prev| > sigma`, else `0.0`. This is the software twin of
/// `bliss_sensor::DigitalPixelSensor::eventify`, used during training where
/// the full analog path is unnecessary.
///
/// # Panics
///
/// Panics if the two frames differ in length.
pub fn frame_difference_events(cur: &[f32], prev: &[f32], sigma: f32) -> Vec<f32> {
    assert_eq!(cur.len(), prev.len(), "frame size mismatch");
    cur.iter()
        .zip(prev.iter())
        .map(|(&c, &p)| if (c - p).abs() > sigma { 1.0 } else { 0.0 })
        .collect()
}

/// Normalises an ROI box to `(cx, cy, w, h)` in `[0, 1]` coordinates, the
/// regression target of the ROI-prediction network.
pub fn normalize_box(roi: &RoiBox, width: usize, height: usize) -> [f32; 4] {
    let w = width.max(1) as f32;
    let h = height.max(1) as f32;
    [
        (roi.x1 as f32 + roi.width() as f32 / 2.0) / w,
        (roi.y1 as f32 + roi.height() as f32 / 2.0) / h,
        roi.width() as f32 / w,
        roi.height() as f32 / h,
    ]
}

/// Inverts [`normalize_box`], clamping to the frame and enforcing a minimum
/// box size so a degenerate prediction cannot collapse the pipeline.
pub fn denormalize_box(v: &[f32; 4], width: usize, height: usize, min_size: usize) -> RoiBox {
    let w = width as f32;
    let h = height as f32;
    let bw = (v[2].clamp(0.0, 1.0) * w).max(min_size as f32);
    let bh = (v[3].clamp(0.0, 1.0) * h).max(min_size as f32);
    let cx = v[0].clamp(0.0, 1.0) * w;
    let cy = v[1].clamp(0.0, 1.0) * h;
    let x1 = (cx - bw / 2.0).max(0.0) as usize;
    let y1 = (cy - bh / 2.0).max(0.0) as usize;
    let x2 = ((cx + bw / 2.0) as usize).min(width).max(x1 + 1);
    let y2 = ((cy + bh / 2.0) as usize).min(height).max(y1 + 1);
    RoiBox::new(x1, y1, x2.min(width), y2.min(height))
}

/// Downsamples a class mask (`u8` labels) by taking the maximum label in
/// each block — biased toward foreground classes, preserving thin pupil
/// regions as the corrective ROI input.
///
/// # Panics
///
/// Panics if `factor == 0` or `mask.len() != w * h`.
pub fn downsample_mask_max(
    mask: &[u8],
    w: usize,
    h: usize,
    factor: usize,
) -> (Vec<u8>, usize, usize) {
    assert!(factor > 0, "factor must be positive");
    assert_eq!(mask.len(), w * h, "mask size mismatch");
    let ow = w.div_ceil(factor);
    let oh = h.div_ceil(factor);
    let mut out = vec![0u8; ow * oh];
    for (i, &c) in mask.iter().enumerate() {
        let x = i % w;
        let y = i / w;
        let o = (y / factor) * ow + x / factor;
        out[o] = out[o].max(c);
    }
    (out, ow, oh)
}

/// Pads a `[1, h, w]`-style flat image to dimensions that are multiples of
/// `align` (zero fill), returning the padded image and its new dimensions.
pub fn pad_to_multiple(img: &[f32], w: usize, h: usize, align: usize) -> (Vec<f32>, usize, usize) {
    let pw = w.div_ceil(align) * align;
    let ph = h.div_ceil(align) * align;
    if pw == w && ph == h {
        return (img.to_vec(), w, h);
    }
    let mut out = vec![0.0f32; pw * ph];
    for y in 0..h {
        out[y * pw..y * pw + w].copy_from_slice(&img[y * w..(y + 1) * w]);
    }
    (out, pw, ph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_averages_blocks() {
        let img = vec![1.0, 3.0, 5.0, 7.0]; // 2x2
        let (out, ow, oh) = block_downsample(&img, 2, 2, 2);
        assert_eq!((ow, oh), (1, 1));
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn downsample_handles_ragged_edges() {
        let img = vec![2.0; 5 * 3];
        let (out, ow, oh) = block_downsample(&img, 5, 3, 2);
        assert_eq!((ow, oh), (3, 2));
        assert!(out.iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn factor_one_is_identity() {
        let img = vec![1.0, 2.0, 3.0, 4.0];
        let (out, ow, oh) = block_downsample(&img, 2, 2, 1);
        assert_eq!(out, img);
        assert_eq!((ow, oh), (2, 2));
    }

    #[test]
    fn events_threshold() {
        let prev = vec![0.5, 0.5, 0.5];
        let cur = vec![0.5, 0.58, 0.4];
        let e = frame_difference_events(&cur, &prev, 0.06);
        assert_eq!(e, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn box_roundtrip() {
        let roi = RoiBox::new(10, 20, 50, 60);
        let n = normalize_box(&roi, 100, 100);
        let back = denormalize_box(&n, 100, 100, 1);
        assert_eq!(back, roi);
    }

    #[test]
    fn denormalize_enforces_min_size() {
        let v = [0.5, 0.5, 0.0, 0.0];
        let b = denormalize_box(&v, 100, 100, 16);
        assert!(b.width() >= 16);
        assert!(b.height() >= 16);
    }

    #[test]
    fn denormalize_clamps_to_frame() {
        let v = [0.99, 0.99, 0.5, 0.5];
        let b = denormalize_box(&v, 100, 80, 1);
        assert!(b.x2 <= 100 && b.y2 <= 80);
    }

    #[test]
    fn mask_downsample_keeps_foreground() {
        // A single pupil pixel (3) survives max-downsampling.
        let mut mask = vec![0u8; 16];
        mask[5] = 3;
        let (out, ow, oh) = downsample_mask_max(&mask, 4, 4, 2);
        assert_eq!((ow, oh), (2, 2));
        assert_eq!(out, vec![3, 0, 0, 0]);
    }

    #[test]
    fn pad_to_multiple_pads_and_preserves() {
        let img = vec![1.0; 5 * 3];
        let (out, pw, ph) = pad_to_multiple(&img, 5, 3, 4);
        assert_eq!((pw, ph), (8, 4));
        assert_eq!(out[0], 1.0);
        assert_eq!(out[5], 0.0); // padding column
        assert_eq!(out.len(), 32);
    }
}
