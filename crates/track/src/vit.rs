use bliss_nn::{Linear, Module, TransformerBlock};
use bliss_npu::{GemmShape, WorkloadDesc};
use bliss_tensor::{
    kernels, recycle_f32_buffer, recycle_index_buffer, take_f32_buffer, take_index_buffer,
    ExecPlan, GraphBuilder, IndexVec, NdArray, PlanCache, PlanCacheStats, QuantCalibration,
    QuantSpec, Tensor, TensorError,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of the sparse ViT segmenter (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViTConfig {
    /// Frame width the model segments.
    pub frame_width: usize,
    /// Frame height.
    pub frame_height: usize,
    /// Square patch side in pixels.
    pub patch: usize,
    /// Token channel width.
    pub dim: usize,
    /// Attention heads per MHA module.
    pub heads: usize,
    /// Encoder depth (paper: 12 MHA modules).
    pub enc_depth: usize,
    /// Decoder depth (paper: 2 MHA modules).
    pub dec_depth: usize,
    /// MLP expansion ratio inside each block.
    pub mlp_ratio: usize,
    /// Segmentation classes (OpenEDS: 4).
    pub num_classes: usize,
}

impl ViTConfig {
    /// Paper-scale model: 640x400 frames, 16-pixel patches, 12+2 MHA blocks
    /// with 3 heads and channel size 192 (Strudel et al. Segmenter layout).
    pub fn paper() -> Self {
        ViTConfig {
            frame_width: 640,
            frame_height: 400,
            patch: 16,
            dim: 192,
            heads: 3,
            enc_depth: 12,
            dec_depth: 2,
            // A 2x expansion keeps the sparse ViT ~4x below RITnet-class
            // MACs, matching the paper's §VI-A efficiency quote.
            mlp_ratio: 2,
            num_classes: 4,
        }
    }

    /// Miniature model trainable on a laptop CPU in seconds.
    pub fn miniature(frame_width: usize, frame_height: usize) -> Self {
        ViTConfig {
            frame_width,
            frame_height,
            patch: 10,
            dim: 48,
            heads: 3,
            enc_depth: 2,
            dec_depth: 1,
            mlp_ratio: 4,
            num_classes: 4,
        }
    }

    /// Patch-grid dimensions (partial border patches are zero-padded).
    pub fn grid_dims(&self) -> (usize, usize) {
        (
            self.frame_width.div_ceil(self.patch),
            self.frame_height.div_ceil(self.patch),
        )
    }

    /// Total patches in the grid.
    pub fn num_patches(&self) -> usize {
        let (gw, gh) = self.grid_dims();
        gw * gh
    }

    /// Lowered workload of one **cross-frame batched** inference launch over
    /// `frames` of `(tokens, pixels)` each — the timing model of
    /// [`SparseViT::forward_batch`].
    ///
    /// Every weight GEMM (patch embedding, the fused `[dim, 3*dim]` QKV
    /// projection, output projection, MLP, pixel head) runs *once* over the
    /// summed token rows, amortising array fill/drain and partial row tiles;
    /// the quadratic score/AV products stay per-frame because attention is
    /// block-diagonal and never crosses a frame boundary. For a single frame
    /// the total MAC count equals [`ViTConfig::workload`].
    pub fn batched_workload(&self, frames: &[(usize, usize)]) -> WorkloadDesc {
        let p2 = self.patch * self.patch;
        let hd = self.dim / self.heads.max(1);
        let total_t: usize = frames.iter().map(|&(t, _)| t).sum();
        let total_pixels: usize = frames.iter().map(|&(_, p)| p).sum();
        let mut w = WorkloadDesc::new("sparse-vit-batched");
        w.push_linear(total_t, 2 * p2, self.dim);
        for _ in 0..self.enc_depth {
            w.push_linear(total_t, self.dim, 3 * self.dim);
            for &(t, _) in frames {
                for _ in 0..self.heads {
                    w.gemms.push(GemmShape::activation(t, hd, t));
                    w.gemms.push(GemmShape::activation(t, t, hd));
                }
            }
            w.push_linear(total_t, self.dim, self.dim);
            w.push_linear(total_t, self.dim, self.dim * self.mlp_ratio);
            w.push_linear(total_t, self.dim * self.mlp_ratio, self.dim);
        }
        let total_dec: usize = frames.iter().map(|&(t, _)| t + self.num_classes).sum();
        for _ in 0..self.dec_depth {
            w.push_linear(total_dec, self.dim, 3 * self.dim);
            for &(t, _) in frames {
                let dt = t + self.num_classes;
                for _ in 0..self.heads {
                    w.gemms.push(GemmShape::activation(dt, hd, dt));
                    w.gemms.push(GemmShape::activation(dt, dt, hd));
                }
            }
            w.push_linear(total_dec, self.dim, self.dim);
            w.push_linear(total_dec, self.dim, self.dim * self.mlp_ratio);
            w.push_linear(total_dec, self.dim * self.mlp_ratio, self.dim);
        }
        for &(t, _) in frames {
            w.gemms
                .push(GemmShape::activation(t, self.dim, self.num_classes));
        }
        w.push_linear(total_pixels, 2, self.num_classes);
        w
    }

    /// Lowered workload for `tokens` occupied patches and `pixels`
    /// classification queries (pure shape math — no parameters allocated).
    pub fn workload(&self, tokens: usize, pixels: usize) -> WorkloadDesc {
        let p2 = self.patch * self.patch;
        let mut w = WorkloadDesc::new("sparse-vit");
        w.push_linear(tokens, 2 * p2, self.dim);
        for _ in 0..self.enc_depth {
            w.push_transformer_block_ratio(tokens, self.dim, self.heads, self.mlp_ratio);
        }
        let dec_tokens = tokens + self.num_classes;
        for _ in 0..self.dec_depth {
            w.push_transformer_block_ratio(dec_tokens, self.dim, self.heads, self.mlp_ratio);
        }
        w.gemms
            .push(GemmShape::activation(tokens, self.dim, self.num_classes));
        w.push_linear(pixels, 2, self.num_classes);
        w
    }
}

/// One frame lowered to its transformer inputs: occupied-patch tokens and
/// per-pixel classification queries, ready for (batched) inference.
///
/// Every buffer is drawn from the `bliss_tensor` scratch pools and returned
/// there when the frame is consumed ([`PreparedFrame::recycle`]) — in steady
/// state the lowering allocates nothing.
struct PreparedFrame {
    /// Patch-grid indices of occupied patches (pooled).
    kept: Vec<usize>,
    /// `(values, sample-mask)` rows for each kept patch, `[t, 2*p^2]` flat
    /// (pooled).
    token_data: Vec<f32>,
    /// Frame-flat index of every sampled pixel; pooled and self-recycling,
    /// because it escapes into the returned [`SegPrediction`].
    pixel_indices: IndexVec,
    /// Frame-local token index owning each sampled pixel (pooled).
    pixel_token: Vec<usize>,
    /// `(value, 1)` feature pairs for the pixel refinement head (pooled).
    pixel_feat: Vec<f32>,
}

impl PreparedFrame {
    /// Returns the consumed frame's staging buffers to the scratch pools
    /// (except `pixel_indices`, which lives on inside the prediction and
    /// recycles itself on drop).
    fn recycle(self) -> IndexVec {
        bliss_tensor::recycle_index_buffer(self.kept);
        bliss_tensor::recycle_f32_buffer(self.token_data);
        bliss_tensor::recycle_index_buffer(self.pixel_token);
        bliss_tensor::recycle_f32_buffer(self.pixel_feat);
        self.pixel_indices
    }
}

/// Output of one sparse segmentation forward pass.
#[derive(Debug)]
pub struct SegPrediction {
    /// Frame-flat pixel index of every logits row (the sampled pixels).
    /// Pooled: the buffer returns to the thread's index pool when the
    /// prediction is dropped.
    pub pixel_indices: IndexVec,
    /// Per-pixel class logits, `[S, num_classes]`.
    pub logits: Tensor,
    /// Number of occupied patch tokens the transformer processed — the
    /// quantity that shrinks with sparse sampling and drives compute savings.
    pub tokens: usize,
}

/// First index of the row maximum (ties break low, matching
/// [`NdArray::argmax_rows`]) — shared by every per-pixel class decode so a
/// tie-breaking change cannot silently diverge between them.
fn argmax_row(row: &[f32]) -> usize {
    let mut best = 0usize;
    for (j, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = j;
        }
    }
    best
}

impl SegPrediction {
    /// Per-pixel argmax classes as `(frame_index, class)` pairs.
    pub fn classes(&self) -> Vec<(usize, u8)> {
        let mut out = Vec::new();
        self.classes_into(&mut out);
        out
    }

    /// Writes the per-pixel argmax classes into `out` (cleared first),
    /// computing the row argmax inline — the steady-state serving path
    /// reuses one pair buffer per stream instead of allocating per frame.
    pub fn classes_into(&self, out: &mut Vec<(usize, u8)>) {
        out.clear();
        let logits = self.logits.value();
        assert_eq!(logits.ndim(), 2, "logits are rank 2");
        let n = logits.shape()[1];
        out.reserve(self.pixel_indices.len());
        for (r, &i) in self.pixel_indices.iter().enumerate() {
            let row = &logits.data()[r * n..(r + 1) * n];
            out.push((i, argmax_row(row) as u8));
        }
    }

    /// Expands the sparse classification into a full-frame mask
    /// (background class 0 everywhere else).
    pub fn seg_map(&self, width: usize, height: usize) -> Vec<u8> {
        let mut map = Vec::new();
        self.seg_map_into(width, height, &mut map);
        map
    }

    /// Writes the full-frame mask into `map` (resized and zeroed first), so
    /// a per-stream buffer can be reused across frames.
    pub fn seg_map_into(&self, width: usize, height: usize, map: &mut Vec<u8>) {
        map.clear();
        map.resize(width * height, 0u8);
        let logits = self.logits.value();
        let n = logits.shape()[1];
        for (r, &i) in self.pixel_indices.iter().enumerate() {
            if i < map.len() {
                let row = &logits.data()[r * n..(r + 1) * n];
                map[i] = argmax_row(row) as u8;
            }
        }
    }
}

/// Cached planned-inference state shared by every clone of a [`SparseViT`]
/// (fleet hosts clone the network, so one compiled plan serves all of them).
struct VitPlans {
    /// Compiled execution plans keyed by the batch's token span layout
    /// `[t_1..t_k]` (active frames only).
    cache: PlanCache,
    /// Quantised (int8) plans, same key space as `cache`. Kept separate so
    /// switching precision never mixes plan kinds for one layout.
    qcache: PlanCache,
    /// Calibrated int8 quantisation parameters (weight-site keyed), present
    /// after [`SparseViT::finish_int8_calibration`].
    quant: Option<Rc<QuantSpec>>,
    /// In-progress activation-range calibration.
    calib: Option<QuantCalibration>,
    /// Whether planned inference routes through the quantised plans.
    use_int8: bool,
    /// Pixel-head weight/bias handles cached once so the per-frame
    /// refinement tail reads them without re-collecting parameter vectors.
    pixel_params: Option<(Tensor, Tensor)>,
    /// Reusable output/staging buffers for the planned
    /// [`SparseViT::forward_batch`] wrapper.
    batch: Option<PlannedBatch>,
}

impl Default for VitPlans {
    fn default() -> Self {
        VitPlans {
            cache: PlanCache::new(),
            qcache: PlanCache::new(),
            quant: None,
            calib: None,
            use_int8: false,
            pixel_params: None,
            batch: Some(PlannedBatch::new()),
        }
    }
}

impl std::fmt::Debug for VitPlans {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VitPlans")
            .field("stats", &self.cache.stats())
            .finish()
    }
}

/// Reusable output and staging buffers of [`SparseViT::forward_batch_into`]
/// — the strict zero-allocation planned inference entry point.
///
/// All buffers are retained between calls (or drawn from the scratch
/// pools), so a steady-state iteration over a repeating span layout
/// performs **zero heap allocations**. The results of the last call are
/// read through [`PlannedBatch::frame`].
#[derive(Default)]
pub struct PlannedBatch {
    /// Flat per-pixel logits of every active frame, `[sum_S, classes]`.
    logits: Vec<f32>,
    /// Per input frame: `None` for empty frames, else offsets into `logits`.
    frames: Vec<Option<PlannedFrame>>,
    /// Class count of the last run.
    classes: usize,
    // Scratch reused across calls (never observable between them).
    prepared: Vec<Option<PreparedFrame>>,
    active: Vec<usize>,
    /// Active frames' token counts — also the plan-cache key.
    token_counts: Vec<usize>,
    refined: Vec<f32>,
    pixel_feat_all: Vec<f32>,
}

/// One active frame's slice of a [`PlannedBatch`].
struct PlannedFrame {
    off: usize,
    rows: usize,
    tokens: usize,
    pixel_indices: IndexVec,
}

/// Borrowed view of one frame's planned-inference result.
#[derive(Debug)]
pub struct PlannedFrameView<'a> {
    /// Frame-flat pixel index of every logits row.
    pub pixel_indices: &'a [usize],
    /// Row-major `[rows, classes]` per-pixel logits.
    pub logits: &'a [f32],
    /// Occupied patch tokens the transformer processed for this frame.
    pub tokens: usize,
}

impl PlannedBatch {
    /// An empty batch holder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames in the last completed batch (including empty ones).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the holder has no frames recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Class count of the last run's logits rows.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The `i`-th input frame's result; `None` if that frame had no sampled
    /// pixel.
    pub fn frame(&self, i: usize) -> Option<PlannedFrameView<'_>> {
        self.frames[i].as_ref().map(|f| PlannedFrameView {
            pixel_indices: &f.pixel_indices,
            logits: &self.logits[f.off..f.off + f.rows * self.classes],
            tokens: f.tokens,
        })
    }
}

impl std::fmt::Debug for PlannedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedBatch")
            .field("frames", &self.frames.len())
            .field("classes", &self.classes)
            .field("logit_rows", &(self.logits.len() / self.classes.max(1)))
            .finish()
    }
}

/// The sparse-robust Vision Transformer segmenter.
///
/// Architecture (paper Fig. 6, Segmenter-style):
///
/// 1. **Patch embedding** — each occupied patch's `(values, sample-mask)`
///    pixels are linearly projected to a token; position embeddings are
///    gathered for the kept patches only. *Empty patches produce no token*,
///    so attention cost falls super-linearly with pixel volume.
/// 2. **Encoder** — `enc_depth` MHA transformer blocks.
/// 3. **Decoder** — learnable class embeddings are appended, `dec_depth`
///    blocks mix them with patch tokens, and patch logits are the scaled dot
///    product between patch tokens and class tokens.
/// 4. **Pixel head** — a tiny per-pixel refinement (`[value, 1] -> classes`)
///    added to the patch logits recovers sub-patch detail (the dark pupil
///    boundary inside a patch).
#[derive(Debug, Clone)]
pub struct SparseViT {
    patch_embed: Linear,
    pos_embed: Tensor,
    encoder: Vec<TransformerBlock>,
    decoder: Vec<TransformerBlock>,
    class_embed: Tensor,
    pixel_head: Linear,
    config: ViTConfig,
    /// Shared planned-inference state; `Rc` so clones (fleet hosts) reuse
    /// one plan cache. Weight *values* may change under a live plan (plans
    /// read the shared parameter tensors); weight shapes are fixed by
    /// `config`.
    plans: Rc<RefCell<VitPlans>>,
}

impl SparseViT {
    /// Creates the model with random initialisation.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: ViTConfig) -> Self {
        let p2 = config.patch * config.patch;
        SparseViT {
            patch_embed: Linear::new(rng, 2 * p2, config.dim),
            pos_embed: Tensor::parameter(NdArray::randn(
                rng,
                &[config.num_patches(), config.dim],
                0.02,
            )),
            encoder: (0..config.enc_depth)
                .map(|_| {
                    TransformerBlock::with_mlp_ratio(
                        rng,
                        config.dim,
                        config.heads,
                        config.mlp_ratio,
                    )
                })
                .collect(),
            decoder: (0..config.dec_depth)
                .map(|_| {
                    TransformerBlock::with_mlp_ratio(
                        rng,
                        config.dim,
                        config.heads,
                        config.mlp_ratio,
                    )
                })
                .collect(),
            class_embed: Tensor::parameter(NdArray::randn(
                rng,
                &[config.num_classes, config.dim],
                0.02,
            )),
            pixel_head: Linear::new(rng, 2, config.num_classes),
            config,
            plans: Rc::new(RefCell::new(VitPlans::default())),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ViTConfig {
        &self.config
    }

    /// Segments a sparse frame.
    ///
    /// `image` is the full-frame sparse image (zeros at unsampled pixels) and
    /// `sampled` the 0/1 sampling mask, both `width*height` long. Returns
    /// `None` when no pixel is sampled (e.g. mid-blink with an empty ROI).
    ///
    /// Equivalent to [`SparseViT::forward_batch`] with a single frame — both
    /// paths share the same kernels, so solo and batched results are
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the buffers do not match the configured frame.
    pub fn forward(
        &self,
        image: &[f32],
        sampled: &[f32],
    ) -> Result<Option<SegPrediction>, TensorError> {
        Ok(self
            .forward_batch(&[(image, sampled)])?
            .pop()
            .expect("one output per input frame"))
    }

    /// Lowers one frame into its occupied-patch tokens and pixel queries.
    ///
    /// Returns `None` when no pixel is sampled.
    fn prepare(
        &self,
        image: &[f32],
        sampled: &[f32],
    ) -> Result<Option<PreparedFrame>, TensorError> {
        let (w, h) = (self.config.frame_width, self.config.frame_height);
        if image.len() != w * h || sampled.len() != w * h {
            return Err(TensorError::InvalidArgument {
                op: "sparse_vit_forward",
                message: format!(
                    "expected {} pixels, got image {} / mask {}",
                    w * h,
                    image.len(),
                    sampled.len()
                ),
            });
        }
        let p = self.config.patch;
        let (gw, gh) = self.config.grid_dims();
        let p2 = p * p;

        // Pass 1: parallel occupancy scan — one read-only task per patch
        // (cost hint: a patch scans up to p^2 mask pixels, so miniature
        // grids stay on the calling thread). The flags are staged in a
        // pooled f32 buffer — one write per patch into its own chunk — so
        // the steady-state lowering allocates nothing.
        let mut occupancy = take_f32_buffer(gw * gh);
        occupancy.resize(gw * gh, 0.0);
        bliss_parallel::par_chunks_with_cost(&mut occupancy, 1, p2, |patch_idx, chunk| {
            let (gy, gx) = (patch_idx / gw, patch_idx % gw);
            chunk[0] = 0.0;
            'scan: for dy in 0..p {
                let y = gy * p + dy;
                if y >= h {
                    break;
                }
                let row = &sampled[y * w..y * w + w];
                for dx in 0..p {
                    let x = gx * p + dx;
                    if x >= w {
                        break;
                    }
                    if row[x] > 0.0 {
                        chunk[0] = 1.0;
                        break 'scan;
                    }
                }
            }
        });
        let mut kept = take_index_buffer(gw * gh);
        kept.extend((0..gw * gh).filter(|&i| occupancy[i] > 0.0));
        recycle_f32_buffer(occupancy);
        if kept.is_empty() {
            recycle_index_buffer(kept);
            return Ok(None);
        }
        let t = kept.len();

        // Pass 2: parallel token gather — each kept patch fills its own
        // `(values, sample-mask)` slice of the batched embedding input.
        let mut token_data = take_f32_buffer(t * 2 * p2);
        token_data.resize(t * 2 * p2, 0.0);
        bliss_parallel::par_chunks(&mut token_data, 2 * p2, |token, chunk| {
            let patch_idx = kept[token];
            let (gy, gx) = (patch_idx / gw, patch_idx % gw);
            let (values, mask) = chunk.split_at_mut(p2);
            for dy in 0..p {
                let y = gy * p + dy;
                if y >= h {
                    break;
                }
                for dx in 0..p {
                    let x = gx * p + dx;
                    if x >= w {
                        break;
                    }
                    let fi = y * w + x;
                    values[dy * p + dx] = image[fi];
                    mask[dy * p + dx] = sampled[fi];
                }
            }
        });

        // Pass 3: register sampled pixels as classification queries (serial:
        // the outputs are variable-length appends, and only kept patches are
        // visited).
        // Capacity bound: every sampled pixel lies inside a kept patch, so
        // t * p^2 bounds the query count — sizing up front keeps the pooled
        // buffers from growing (and thus re-allocating) mid-loop.
        let mut pixel_indices = IndexVec::with_capacity(t * p2);
        let mut pixel_token = take_index_buffer(t * p2);
        let mut pixel_feat = take_f32_buffer(2 * t * p2);
        for (token, &patch_idx) in kept.iter().enumerate() {
            let (gy, gx) = (patch_idx / gw, patch_idx % gw);
            for dy in 0..p {
                let y = gy * p + dy;
                if y >= h {
                    break;
                }
                for dx in 0..p {
                    let x = gx * p + dx;
                    if x >= w {
                        break;
                    }
                    let fi = y * w + x;
                    if sampled[fi] > 0.0 {
                        pixel_indices.push(fi);
                        pixel_token.push(token);
                        pixel_feat.push(image[fi]);
                        pixel_feat.push(1.0);
                    }
                }
            }
        }

        Ok(Some(PreparedFrame {
            kept,
            token_data,
            pixel_indices,
            pixel_token,
            pixel_feat,
        }))
    }

    /// Segments a batch of sparse frames with **cross-frame batched
    /// inference**: the patch embedding, every transformer projection/MLP and
    /// the pixel head run as *one* GEMM over all frames' tokens, while
    /// attention stays block-diagonal per frame (see
    /// [`bliss_nn::TransformerBlock::forward_spans`]). One set of kernel
    /// launches replaces K — the serving runtime's hot path.
    ///
    /// Every output is **bit-identical** to running its frame through
    /// [`SparseViT::forward`] alone: each per-row kernel accumulates in an
    /// order independent of the surrounding batch, and attention never
    /// crosses a frame boundary.
    ///
    /// Frames with no sampled pixel yield `None` at their position.
    ///
    /// # Errors
    ///
    /// Returns shape errors if any buffer does not match the configured
    /// frame.
    pub fn forward_batch(
        &self,
        frames: &[(&[f32], &[f32])],
    ) -> Result<Vec<Option<SegPrediction>>, TensorError> {
        if bliss_tensor::in_inference_mode() {
            return self.forward_batch_planned(frames);
        }
        let p2 = self.config.patch * self.config.patch;
        let classes = self.config.num_classes;
        let mut prepared: Vec<Option<PreparedFrame>> = frames
            .iter()
            .map(|(image, sampled)| self.prepare(image, sampled))
            .collect::<Result<_, _>>()?;
        let active: Vec<usize> = (0..prepared.len())
            .filter(|&i| prepared[i].is_some())
            .collect();
        if active.is_empty() {
            return Ok(prepared.into_iter().map(|_| None).collect());
        }

        // Stack all frames' tokens: one embedding GEMM, block-diagonal spans
        // for the encoder. The stacking buffers come from the scratch pools:
        // `token_data` moves into the graph (recycled when it drops) and
        // `kept_all` is handed back as soon as the gather has copied it.
        let total_tokens: usize = active
            .iter()
            .map(|&i| {
                prepared[i]
                    .as_ref()
                    .expect("active frames are Some")
                    .kept
                    .len()
            })
            .sum();
        let mut token_data = take_f32_buffer(total_tokens * 2 * p2);
        let mut kept_all = take_index_buffer(total_tokens);
        let mut enc_spans = Vec::with_capacity(active.len());
        let mut cursor = 0usize;
        for &i in &active {
            let f = prepared[i].as_ref().expect("active frames are Some");
            token_data.extend_from_slice(&f.token_data);
            kept_all.extend_from_slice(&f.kept);
            enc_spans.push((cursor, cursor + f.kept.len()));
            cursor += f.kept.len();
        }
        let tokens_in = Tensor::constant(NdArray::from_vec(token_data, &[cursor, 2 * p2])?);
        let pos = self.pos_embed.gather_rows(&kept_all)?;
        recycle_index_buffer(kept_all);
        let mut x = self.patch_embed.forward(&tokens_in)?.add(&pos)?;
        for block in &self.encoder {
            x = block.forward_spans(&x, &enc_spans)?;
        }

        // Decoder: each frame's token rows get their own copy of the class
        // embeddings appended; spans grow by `classes` rows.
        let mut dec_parts = Vec::with_capacity(2 * active.len());
        let mut dec_spans = Vec::with_capacity(active.len());
        let mut dec_cursor = 0usize;
        for &(s, e) in &enc_spans {
            dec_parts.push(x.slice_rows(s, e)?);
            dec_parts.push(self.class_embed.clone());
            dec_spans.push((dec_cursor, dec_cursor + (e - s) + classes));
            dec_cursor += (e - s) + classes;
        }
        let mut d = Tensor::concat_rows(&dec_parts)?;
        for block in &self.decoder {
            d = block.forward_spans(&d, &dec_spans)?;
        }

        // Pixel head: one GEMM over every frame's sampled-pixel features
        // (pooled staging, moved into the graph).
        let mut pixel_counts = Vec::with_capacity(active.len());
        let mut s_total = 0usize;
        for &i in &active {
            let f = prepared[i].as_ref().expect("active frames are Some");
            pixel_counts.push(f.pixel_indices.len());
            s_total += f.pixel_indices.len();
        }
        let mut pixel_feat_all = take_f32_buffer(2 * s_total);
        for &i in &active {
            let f = prepared[i].as_ref().expect("active frames are Some");
            pixel_feat_all.extend_from_slice(&f.pixel_feat);
        }
        let feats = Tensor::constant(NdArray::from_vec(pixel_feat_all, &[s_total, 2])?);
        let refined_all = self.pixel_head.forward(&feats)?;

        // Per-frame mask decoding: scaled patch-token x class-token product,
        // expanded to the frame's pixel queries.
        let mut out: Vec<Option<SegPrediction>> = frames.iter().map(|_| None).collect();
        let mut pixel_cursor = 0usize;
        for (slot, &i) in active.iter().enumerate() {
            let f = prepared[i].take().expect("active frames are Some");
            let (ds, de) = dec_spans[slot];
            let t = f.kept.len();
            let patch_tokens = d.slice_rows(ds, ds + t)?;
            let class_tokens = d.slice_rows(ds + t, de)?;
            let patch_logits = patch_tokens
                .matmul(&class_tokens.transpose()?)?
                .scale(1.0 / (self.config.dim as f32).sqrt());
            let expanded = patch_logits.gather_rows(&f.pixel_token)?;
            let refined =
                refined_all.slice_rows(pixel_cursor, pixel_cursor + pixel_counts[slot])?;
            pixel_cursor += pixel_counts[slot];
            let logits = expanded.add(&refined)?;
            let pixel_indices = f.recycle();
            out[i] = Some(SegPrediction {
                pixel_indices,
                logits,
                tokens: t,
            });
        }
        Ok(out)
    }

    /// The planned counterpart of the tape `forward_batch` body: runs
    /// [`SparseViT::forward_batch_into`] on the shared reusable batch holder
    /// and wraps each frame's result in a [`SegPrediction`] (the only step
    /// that allocates — pooled logits copies and the constant tensors).
    fn forward_batch_planned(
        &self,
        frames: &[(&[f32], &[f32])],
    ) -> Result<Vec<Option<SegPrediction>>, TensorError> {
        // Take the holder out of the shared state so `forward_batch_into`
        // can borrow the plan cache without a double RefCell borrow.
        let mut batch = self.plans.borrow_mut().batch.take().unwrap_or_default();
        let result = self.forward_batch_into(frames, &mut batch).and_then(|()| {
            let classes = batch.classes;
            let mut out: Vec<Option<SegPrediction>> = Vec::with_capacity(frames.len());
            for fr in batch.frames.drain(..) {
                let Some(pf) = fr else {
                    out.push(None);
                    continue;
                };
                let mut buf = take_f32_buffer(pf.rows * classes);
                buf.extend_from_slice(&batch.logits[pf.off..pf.off + pf.rows * classes]);
                let logits = Tensor::constant(NdArray::from_vec(buf, &[pf.rows, classes])?);
                out.push(Some(SegPrediction {
                    pixel_indices: pf.pixel_indices,
                    logits,
                    tokens: pf.tokens,
                }));
            }
            Ok(out)
        });
        self.plans.borrow_mut().batch = Some(batch);
        result
    }

    /// Records the cross-frame batched token pass — patch embedding +
    /// position gather, block-diagonal encoder, per-frame class-embedding
    /// append, decoder, per-frame scaled patch-x-class logits — for one
    /// span layout, mirroring the tape `forward_batch` body op for op, and
    /// compiles it into an [`ExecPlan`]. One output per active frame.
    ///
    /// The per-pixel refinement tail is *not* recorded: its row count
    /// changes every frame, which would defeat the shape-keyed plan cache,
    /// so it runs as direct kernel calls on pooled buffers instead (see
    /// [`SparseViT::forward_batch_into`]).
    ///
    /// Returns the *builder*, not a compiled plan: the caller decides
    /// whether to compile it straight ([`ExecPlan::compile`]), instrument
    /// it for int8 calibration, or rewrite it through
    /// [`ExecPlan::compile_quantized`].
    fn record_batch_builder(&self, token_counts: &[usize]) -> Result<GraphBuilder, TensorError> {
        let p2 = self.config.patch * self.config.patch;
        let classes = self.config.num_classes;
        let total: usize = token_counts.iter().sum();
        let mut g = GraphBuilder::default();
        let tokens_in = g.input(&[total, 2 * p2]);
        let kept_slot = g.index_input(total);
        let pos_param = g.param(&self.pos_embed);
        let pos = g.gather_rows(pos_param, kept_slot)?;
        let emb = self.patch_embed.record(&mut g, tokens_in)?;
        let mut x = g.add(emb, pos)?;

        let mut enc_spans = Vec::with_capacity(token_counts.len());
        let mut cursor = 0usize;
        for &t in token_counts {
            enc_spans.push((cursor, cursor + t));
            cursor += t;
        }
        for block in &self.encoder {
            x = block.record_spans(&mut g, x, &enc_spans)?;
        }

        let cls_param = g.param(&self.class_embed);
        let mut dec_parts = Vec::with_capacity(2 * token_counts.len());
        let mut dec_spans = Vec::with_capacity(token_counts.len());
        let mut dec_cursor = 0usize;
        for &(s, e) in &enc_spans {
            dec_parts.push(g.slice_rows(x, s, e)?);
            dec_parts.push(cls_param);
            dec_spans.push((dec_cursor, dec_cursor + (e - s) + classes));
            dec_cursor += (e - s) + classes;
        }
        let mut d = g.concat_rows(&dec_parts)?;
        for block in &self.decoder {
            d = block.record_spans(&mut g, d, &dec_spans)?;
        }

        let inv = 1.0 / (self.config.dim as f32).sqrt();
        for (slot, &(ds, de)) in dec_spans.iter().enumerate() {
            let t = token_counts[slot];
            let patch = g.slice_rows(d, ds, ds + t)?;
            let cls = g.slice_rows(d, ds + t, de)?;
            let tr = g.transpose(cls)?;
            let mm = g.matmul(patch, tr)?;
            let logits = g.scale(mm, inv);
            g.mark_output(logits);
        }
        Ok(g)
    }

    /// Segments a batch of sparse frames through the **compiled planned
    /// path**, writing every result into the reusable `out` holder.
    ///
    /// The token pass executes a cached [`ExecPlan`] keyed by the batch's
    /// span layout `[t_1..t_k]` (compiled on first sight of a layout); the
    /// variable-row pixel refinement tail runs as direct
    /// [`bliss_tensor::kernels`] calls on pooled buffers. In steady state —
    /// warm scratch pools, previously seen span layout — one call performs
    /// **zero heap allocations**, and every frame's logits are
    /// bit-identical to the tape [`SparseViT::forward_batch`] at any thread
    /// count (the plan dispatches to the same slice-level kernels).
    ///
    /// # Errors
    ///
    /// Returns shape errors if any buffer does not match the configured
    /// frame.
    pub fn forward_batch_into(
        &self,
        frames: &[(&[f32], &[f32])],
        out: &mut PlannedBatch,
    ) -> Result<(), TensorError> {
        let p2 = self.config.patch * self.config.patch;
        let classes = self.config.num_classes;
        out.classes = classes;
        out.logits.clear();
        out.frames.clear();
        out.prepared.clear();
        out.active.clear();
        out.token_counts.clear();
        for (image, sampled) in frames {
            out.prepared.push(self.prepare(image, sampled)?);
        }
        for (i, p) in out.prepared.iter().enumerate() {
            if p.is_some() {
                out.active.push(i);
            }
        }
        if out.active.is_empty() {
            out.frames.extend(frames.iter().map(|_| None));
            return Ok(());
        }

        // Stack active frames' tokens and look up (or compile) the plan for
        // this span layout.
        let mut total = 0usize;
        for &i in &out.active {
            let t = out.prepared[i].as_ref().expect("active").kept.len();
            out.token_counts.push(t);
            total += t;
        }
        let mut token_data = take_f32_buffer(total * 2 * p2);
        let mut kept_all = take_index_buffer(total);
        for &i in &out.active {
            let f = out.prepared[i].as_ref().expect("active");
            token_data.extend_from_slice(&f.token_data);
            kept_all.extend_from_slice(&f.kept);
        }
        let plan = {
            let mut plans = self.plans.borrow_mut();
            let counts = &out.token_counts;
            if plans.use_int8 {
                let spec = plans
                    .quant
                    .clone()
                    .expect("use_int8 implies a finished calibration spec");
                plans.qcache.get_or_build(counts, || {
                    let g = self.record_batch_builder(counts)?;
                    ExecPlan::compile_quantized(g, &spec)
                })?
            } else {
                plans.cache.get_or_build(counts, || {
                    ExecPlan::compile(self.record_batch_builder(counts)?)
                })?
            }
        };
        plan.execute(&[&token_data], &[&kept_all])?;
        recycle_f32_buffer(token_data);
        recycle_index_buffer(kept_all);

        // Pixel refinement head: one GEMM over every frame's sampled-pixel
        // features, staged in retained buffers.
        let mut s_total = 0usize;
        for &i in &out.active {
            s_total += out.prepared[i]
                .as_ref()
                .expect("active")
                .pixel_indices
                .len();
        }
        out.pixel_feat_all.clear();
        out.pixel_feat_all.reserve(2 * s_total);
        for &i in &out.active {
            let f = out.prepared[i].as_ref().expect("active");
            out.pixel_feat_all.extend_from_slice(&f.pixel_feat);
        }
        let (pw, pb) = {
            let mut plans = self.plans.borrow_mut();
            if plans.pixel_params.is_none() {
                let p = self.pixel_head.parameters();
                plans.pixel_params = Some((p[0].clone(), p[1].clone()));
            }
            plans.pixel_params.clone().expect("just initialised")
        };
        out.refined.clear();
        out.refined.resize(s_total * classes, 0.0);
        kernels::matmul_into(
            &out.pixel_feat_all,
            pw.value().data(),
            2,
            classes,
            &mut out.refined,
        );
        kernels::add_row_assign(&mut out.refined, pb.value().data());

        // Per-frame decode: expand each frame's patch logits (a plan
        // output) to its pixel queries and add the refinement rows.
        out.logits.resize(s_total * classes, 0.0);
        let mut pixel_cursor = 0usize;
        let mut slot = 0usize;
        for i in 0..frames.len() {
            if out.prepared[i].is_none() {
                out.frames.push(None);
                continue;
            }
            let f = out.prepared[i].take().expect("active");
            let t = f.kept.len();
            let rows = f.pixel_indices.len();
            let off = pixel_cursor * classes;
            let dst = &mut out.logits[off..off + rows * classes];
            plan.with_output(slot, |data| {
                kernels::gather_rows_into(data, t, classes, &f.pixel_token, dst)
            })?;
            for (l, &r) in dst.iter_mut().zip(&out.refined[off..off + rows * classes]) {
                *l += r;
            }
            let pixel_indices = f.recycle();
            out.frames.push(Some(PlannedFrame {
                off,
                rows,
                tokens: t,
                pixel_indices,
            }));
            pixel_cursor += rows;
            slot += 1;
        }
        Ok(())
    }

    /// Plan-cache traffic/occupancy counters of the shared planned state
    /// (soak harnesses gate on `plans`/`arena_elems` staying bounded).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.borrow().cache.stats()
    }

    /// Plan-cache counters for the **quantised** (int8) plan cache.
    pub fn quant_plan_stats(&self) -> PlanCacheStats {
        self.plans.borrow().qcache.stats()
    }

    /// Starts (or restarts) post-training int8 calibration: clears any
    /// previous activation ranges, quantisation spec and quantised plans,
    /// and drops back to f32 inference until
    /// [`Self::finish_int8_calibration`] runs.
    pub fn begin_int8_calibration(&self) {
        let mut plans = self.plans.borrow_mut();
        plans.calib = Some(QuantCalibration::new());
        plans.quant = None;
        plans.use_int8 = false;
        plans.qcache.clear();
    }

    /// Feeds one batch of frames through an **instrumented** f32 plan and
    /// folds each quantisable matmul's activation absmax into the running
    /// calibration. Frames use the same `(image, sampled)` convention as
    /// [`Self::forward_batch`]; all-static frames contribute nothing.
    ///
    /// This is an offline pass: the instrumented plan pins every tapped
    /// activation as an extra output and is compiled per call, not cached.
    ///
    /// # Errors
    ///
    /// Returns shape errors if a buffer does not match the configured
    /// frame, or plan compile/execute errors.
    pub fn observe_int8_calibration(&self, frames: &[(&[f32], &[f32])]) -> Result<(), TensorError> {
        let p2 = self.config.patch * self.config.patch;
        let mut prepared = Vec::with_capacity(frames.len());
        for (image, sampled) in frames {
            if let Some(f) = self.prepare(image, sampled)? {
                prepared.push(f);
            }
        }
        if prepared.is_empty() {
            return Ok(());
        }
        let token_counts: Vec<usize> = prepared.iter().map(|f| f.kept.len()).collect();
        let total: usize = token_counts.iter().sum();
        let mut token_data = take_f32_buffer(total * 2 * p2);
        let mut kept_all = take_index_buffer(total);
        for f in &prepared {
            token_data.extend_from_slice(&f.token_data);
            kept_all.extend_from_slice(&f.kept);
        }
        let mut g = self.record_batch_builder(&token_counts)?;
        let taps = QuantCalibration::instrument(&mut g);
        let plan = ExecPlan::compile(g)?;
        plan.execute(&[&token_data], &[&kept_all])?;
        {
            let mut plans = self.plans.borrow_mut();
            let calib = plans.calib.get_or_insert_with(QuantCalibration::new);
            calib.observe_plan(&plan, &[&token_data], &taps);
        }
        recycle_f32_buffer(token_data);
        recycle_index_buffer(kept_all);
        for f in prepared {
            drop(f.recycle());
        }
        Ok(())
    }

    /// Freezes the observed activation ranges into per-channel symmetric
    /// int8 weight scales + per-site activation scales, stores the spec,
    /// and returns the number of quantised matmul sites. Does **not** flip
    /// inference to int8 — call [`Self::set_int8`] for that.
    ///
    /// Deterministic: the spec depends only on the live weight values and
    /// the observed ranges, so re-running calibration over the same frames
    /// after a snapshot restore reproduces it bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns `InvalidArgument` if no calibration is in progress or no
    /// batch was observed.
    pub fn finish_int8_calibration(&self) -> Result<usize, TensorError> {
        let g = self.record_batch_builder(&[1])?;
        let mut plans = self.plans.borrow_mut();
        let calib = plans
            .calib
            .take()
            .ok_or_else(|| TensorError::InvalidArgument {
                op: "finish_int8_calibration",
                message: "no calibration in progress (call begin_int8_calibration \
                      and observe at least one batch first)"
                    .to_string(),
            })?;
        if calib.observed_sites() == 0 {
            return Err(TensorError::InvalidArgument {
                op: "finish_int8_calibration",
                message: "no activation ranges observed (every calibration batch \
                          was empty or all-static)"
                    .to_string(),
            });
        }
        let mut spec = calib.finish(&g);
        // The patch embedding stays f32: its activation range is set by
        // cold-start full-frame reads, so the dim sparse frames that
        // dominate steady-state tracking would quantise coarsely at the
        // very first layer (classic first-layer exclusion). Its share of
        // the model's MACs is small, so the energy win is untouched.
        spec.remove(self.patch_embed.parameters()[0].id());
        let sites = spec.len();
        plans.quant = Some(Rc::new(spec));
        plans.qcache.clear();
        Ok(sites)
    }

    /// Routes planned inference through the quantised int8 plans (`true`)
    /// or the f32 plans (`false`). The tape path (training) always stays
    /// f32. The flag lives on the shared planned state, so it applies to
    /// every clone of this model.
    ///
    /// # Errors
    ///
    /// Returns `InvalidArgument` when enabling without a finished
    /// calibration spec.
    pub fn set_int8(&self, enable: bool) -> Result<(), TensorError> {
        let mut plans = self.plans.borrow_mut();
        if enable && plans.quant.is_none() {
            return Err(TensorError::InvalidArgument {
                op: "set_int8",
                message: "no int8 quantisation spec: run calibration first".to_string(),
            });
        }
        plans.use_int8 = enable;
        Ok(())
    }

    /// Whether planned inference currently runs the int8 path.
    pub fn int8_enabled(&self) -> bool {
        self.plans.borrow().use_int8
    }

    /// Number of calibrated quantisation sites (0 before calibration).
    pub fn int8_sites(&self) -> usize {
        self.plans.borrow().quant.as_ref().map_or(0, |s| s.len())
    }

    /// Lowered workload for `tokens` occupied patches and `pixels`
    /// classification queries, for the NPU simulator.
    pub fn workload(&self, tokens: usize, pixels: usize) -> WorkloadDesc {
        self.config.workload(tokens, pixels)
    }

    /// MAC count for a given occupancy, convenience over [`Self::workload`].
    pub fn macs(&self, tokens: usize, pixels: usize) -> u64 {
        self.workload(tokens, pixels).total_macs()
    }
}

impl Module for SparseViT {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.patch_embed.parameters();
        p.push(self.pos_embed.clone());
        for b in &self.encoder {
            p.extend(b.parameters());
        }
        for b in &self.decoder {
            p.extend(b.parameters());
        }
        p.push(self.class_embed.clone());
        p.extend(self.pixel_head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> SparseViT {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ViTConfig {
            frame_width: 40,
            frame_height: 30,
            patch: 10,
            dim: 16,
            heads: 2,
            enc_depth: 1,
            dec_depth: 1,
            mlp_ratio: 4,
            num_classes: 4,
        };
        SparseViT::new(&mut rng, cfg)
    }

    #[test]
    fn dense_mask_keeps_all_patches() {
        let vit = tiny();
        let image = vec![0.5f32; 1200];
        let mask = vec![1.0f32; 1200];
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        assert_eq!(pred.tokens, vit.config().num_patches());
        assert_eq!(pred.pixel_indices.len(), 1200);
        assert_eq!(pred.logits.shape(), vec![1200, 4]);
    }

    #[test]
    fn empty_mask_returns_none() {
        let vit = tiny();
        let image = vec![0.0f32; 1200];
        let mask = vec![0.0f32; 1200];
        assert!(vit.forward(&image, &mask).unwrap().is_none());
    }

    #[test]
    fn sparse_mask_drops_tokens() {
        let vit = tiny();
        let image = vec![0.5f32; 1200];
        let mut mask = vec![0.0f32; 1200];
        // Sample a single pixel: exactly one patch stays.
        mask[15 * 40 + 25] = 1.0;
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        assert_eq!(pred.tokens, 1);
        assert_eq!(pred.pixel_indices, vec![15 * 40 + 25]);
    }

    #[test]
    fn batched_workload_macs_match_solo_and_attention_stays_per_frame() {
        let cfg = ViTConfig::paper();
        // A single frame's batched launch costs exactly the solo workload.
        assert_eq!(
            cfg.batched_workload(&[(108, 6851)]).total_macs(),
            cfg.workload(108, 6851).total_macs()
        );
        // A K-frame batch costs exactly K solo launches in MACs (the fused
        // GEMMs save *launches*, not arithmetic), and far less than one
        // monolithic launch over the summed tokens, whose attention would be
        // quadratic in K*t.
        let k = 8usize;
        let batch: Vec<(usize, usize)> = (0..k).map(|_| (108, 6851)).collect();
        let batched = cfg.batched_workload(&batch).total_macs();
        assert_eq!(batched, k as u64 * cfg.workload(108, 6851).total_macs());
        let monolithic = cfg.workload(108 * k, 6851 * k).total_macs();
        assert!(batched < (monolithic * 7) / 10, "{batched} vs {monolithic}");
    }

    #[test]
    fn batched_workload_fuses_weight_launches() {
        // What the per-GEMM dispatch overhead amortises: a K-frame batch
        // launches every weight GEMM once, so it dispatches far fewer
        // kernels than K solo launches — only the block-diagonal attention
        // products (and the per-frame seg-head query) stay per frame.
        let cfg = ViTConfig::paper();
        let solo = cfg.batched_workload(&[(108, 6851)]).launches();
        let k = 8usize;
        let batch: Vec<(usize, usize)> = (0..k).map(|_| (108, 6851)).collect();
        let batched = cfg.batched_workload(&batch).launches();
        assert!(batched < k * solo, "{batched} vs {k}x{solo}");
        // 4 fused weight GEMMs per transformer block + patch embedding +
        // pixel head never multiply with K — exactly those launches are
        // saved, (k-1) times over.
        let blocks = cfg.enc_depth + cfg.dec_depth;
        assert_eq!(k * solo - batched, (k - 1) * (4 * blocks + 2));
    }

    #[test]
    fn macs_shrink_with_tokens() {
        let vit = tiny();
        let dense = vit.macs(12, 1200);
        let sparse = vit.macs(3, 100);
        assert!(sparse < dense / 3);
    }

    #[test]
    fn classes_and_seg_map_agree() {
        let vit = tiny();
        let image = vec![0.5f32; 1200];
        let mut mask = vec![0.0f32; 1200];
        mask[0] = 1.0;
        mask[700] = 1.0;
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        let classes = pred.classes();
        assert_eq!(classes.len(), 2);
        let map = pred.seg_map(40, 30);
        for (i, c) in classes {
            assert_eq!(map[i], c);
        }
    }

    #[test]
    fn trainable_gradients_flow_everywhere() {
        let vit = tiny();
        let image = vec![0.4f32; 1200];
        let mask = vec![1.0f32; 1200];
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        let targets = vec![1usize; pred.pixel_indices.len()];
        let loss = pred.logits.cross_entropy_rows(&targets, None).unwrap();
        loss.backward().unwrap();
        let with_grads = vit
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        // Position embeddings for dropped patches get no gradient only when
        // patches are dropped; with a dense mask everything has gradients.
        assert_eq!(with_grads, vit.parameters().len());
    }

    #[test]
    fn rejects_wrong_buffer_size() {
        let vit = tiny();
        assert!(vit.forward(&[0.0; 10], &[0.0; 10]).is_err());
        assert!(vit
            .forward_batch(&[(&[0.0; 10][..], &[0.0; 10][..])])
            .is_err());
    }

    /// Builds a deterministic pseudo-random sparse frame.
    fn synth_frame(seed: u64, rate: f32) -> (Vec<f32>, Vec<f32>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut image = vec![0.0f32; 1200];
        let mut mask = vec![0.0f32; 1200];
        for i in 0..1200 {
            if rng.gen::<f32>() < rate {
                mask[i] = 1.0;
                image[i] = rng.gen::<f32>();
            }
        }
        (image, mask)
    }

    #[test]
    fn forward_batch_is_bit_identical_to_solo_forwards() {
        let vit = tiny();
        // Mixed batch: dense, sparse, empty, single-pixel frames.
        let dense = synth_frame(1, 1.0);
        let sparse = synth_frame(2, 0.05);
        let empty = (vec![0.0f32; 1200], vec![0.0f32; 1200]);
        let mut single = (vec![0.0f32; 1200], vec![0.0f32; 1200]);
        single.0[777] = 0.3;
        single.1[777] = 1.0;
        let frames = [&dense, &sparse, &empty, &single];
        let batch: Vec<(&[f32], &[f32])> = frames.iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let batched = vit.forward_batch(&batch).unwrap();
        assert_eq!(batched.len(), 4);
        assert!(batched[2].is_none(), "empty frame must yield None");
        for (i, f) in frames.iter().enumerate() {
            let solo = vit.forward(&f.0, &f.1).unwrap();
            match (&batched[i], &solo) {
                (Some(b), Some(s)) => {
                    assert_eq!(b.pixel_indices, s.pixel_indices);
                    assert_eq!(b.tokens, s.tokens);
                    assert_eq!(
                        b.logits.value().data(),
                        s.logits.value().data(),
                        "frame {i} logits must be bit-identical"
                    );
                }
                (None, None) => {}
                _ => panic!("frame {i}: batched/solo presence disagrees"),
            }
        }
    }

    #[test]
    fn forward_batch_is_thread_count_invariant() {
        let vit = tiny();
        let a = synth_frame(5, 0.1);
        let b = synth_frame(6, 0.3);
        let batch: Vec<(&[f32], &[f32])> = [&a, &b].iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let run = || {
            vit.forward_batch(&batch)
                .unwrap()
                .into_iter()
                .map(|p| p.unwrap().logits.value().data().to_vec())
                .collect::<Vec<_>>()
        };
        let serial = bliss_parallel::with_thread_count(1, run);
        for threads in [2, 8] {
            assert_eq!(
                serial,
                bliss_parallel::with_thread_count(threads, run),
                "t={threads}"
            );
        }
    }

    #[test]
    fn paper_config_dimensions() {
        let cfg = ViTConfig::paper();
        assert_eq!(cfg.grid_dims(), (40, 25));
        assert_eq!(cfg.num_patches(), 1000);
        assert_eq!(cfg.enc_depth, 12);
        assert_eq!(cfg.dec_depth, 2);
    }

    #[test]
    fn planned_forward_batch_matches_tape_bitwise() {
        let vit = tiny();
        let dense = synth_frame(1, 1.0);
        let sparse = synth_frame(2, 0.05);
        let empty = (vec![0.0f32; 1200], vec![0.0f32; 1200]);
        let frames = [&dense, &sparse, &empty];
        let batch: Vec<(&[f32], &[f32])> = frames.iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let taped = vit.forward_batch(&batch).unwrap();
        let planned = bliss_tensor::inference_mode(|| vit.forward_batch(&batch)).unwrap();
        for (i, (t, p)) in taped.iter().zip(&planned).enumerate() {
            match (t, p) {
                (Some(t), Some(p)) => {
                    assert_eq!(t.pixel_indices, p.pixel_indices, "frame {i}");
                    assert_eq!(t.tokens, p.tokens, "frame {i}");
                    assert_eq!(
                        t.logits.value().data(),
                        p.logits.value().data(),
                        "frame {i} logits must be bit-identical"
                    );
                }
                (None, None) => {}
                _ => panic!("frame {i}: planned/tape presence disagrees"),
            }
        }
    }

    #[test]
    fn planned_forward_batch_is_thread_count_invariant() {
        let vit = tiny();
        let a = synth_frame(5, 0.1);
        let b = synth_frame(6, 0.3);
        let batch: Vec<(&[f32], &[f32])> = [&a, &b].iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let run = || {
            bliss_tensor::inference_mode(|| vit.forward_batch(&batch))
                .unwrap()
                .into_iter()
                .map(|p| p.unwrap().logits.value().data().to_vec())
                .collect::<Vec<_>>()
        };
        let serial = bliss_parallel::with_thread_count(1, run);
        for threads in [2, 8] {
            assert_eq!(
                serial,
                bliss_parallel::with_thread_count(threads, run),
                "t={threads}"
            );
        }
    }

    #[test]
    fn forward_batch_into_matches_forward_batch() {
        let vit = tiny();
        let a = synth_frame(7, 0.2);
        let empty = (vec![0.0f32; 1200], vec![0.0f32; 1200]);
        let b = synth_frame(8, 0.6);
        let frames = [&a, &empty, &b];
        let batch: Vec<(&[f32], &[f32])> = frames.iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let taped = vit.forward_batch(&batch).unwrap();
        let mut out = PlannedBatch::new();
        vit.forward_batch_into(&batch, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.frame(1).is_none());
        for (i, t) in taped.iter().enumerate() {
            match (t, out.frame(i)) {
                (Some(t), Some(p)) => {
                    assert_eq!(&t.pixel_indices[..], p.pixel_indices, "frame {i}");
                    assert_eq!(t.tokens, p.tokens, "frame {i}");
                    assert_eq!(t.logits.value().data(), p.logits, "frame {i}");
                }
                (None, None) => {}
                _ => panic!("frame {i}: presence disagrees"),
            }
        }
    }

    #[test]
    fn plan_cache_replans_per_span_layout_and_reuses_across_clones() {
        let vit = tiny();
        let a = synth_frame(9, 0.3);
        let b = synth_frame(10, 0.7);
        let mut out = PlannedBatch::new();
        let solo_a: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1)];
        let pair: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];
        vit.forward_batch_into(&solo_a, &mut out).unwrap();
        let s1 = vit.plan_stats();
        assert_eq!((s1.plans, s1.misses, s1.hits), (1, 1, 0));
        // Same layout again: pure cache hit.
        vit.forward_batch_into(&solo_a, &mut out).unwrap();
        let s2 = vit.plan_stats();
        assert_eq!((s2.plans, s2.misses, s2.hits), (1, 1, 1));
        // A new span layout compiles a second plan; the old one survives.
        vit.forward_batch_into(&pair, &mut out).unwrap();
        let s3 = vit.plan_stats();
        assert_eq!((s3.plans, s3.misses), (2, 2));
        // Clones share the cache (fleet hosts reuse one compiled plan).
        let clone = vit.clone();
        clone.forward_batch_into(&solo_a, &mut out).unwrap();
        let s4 = clone.plan_stats();
        assert_eq!((s4.plans, s4.hits), (2, s3.hits + 1));
        assert_eq!(vit.plan_stats().hits, s4.hits);
    }

    /// Calibrates `vit` over a small deterministic scenario set and flips
    /// it to int8.
    fn calibrate_int8(vit: &SparseViT) -> usize {
        vit.begin_int8_calibration();
        for seed in 0..4u64 {
            let f = synth_frame(20 + seed, 0.2 + 0.2 * seed as f32);
            vit.observe_int8_calibration(&[(&f.0, &f.1)]).unwrap();
        }
        let sites = vit.finish_int8_calibration().unwrap();
        vit.set_int8(true).unwrap();
        sites
    }

    #[test]
    fn int8_forward_tracks_f32_and_differs() {
        let vit = tiny();
        let a = synth_frame(30, 0.3);
        let b = synth_frame(31, 0.6);
        let batch: Vec<(&[f32], &[f32])> = [&a, &b].iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let mut f32_out = PlannedBatch::new();
        vit.forward_batch_into(&batch, &mut f32_out).unwrap();
        let f32_logits = f32_out.logits.clone();

        let sites = calibrate_int8(&vit);
        // qkv + proj + fc1 + fc2 per block (1 enc + 1 dec); the patch
        // embedding is excluded by the first-layer f32 rule.
        assert_eq!(sites, 8, "quantised matmul sites");
        assert!(vit.int8_enabled());
        assert_eq!(vit.int8_sites(), sites);

        let mut q_out = PlannedBatch::new();
        vit.forward_batch_into(&batch, &mut q_out).unwrap();
        assert_eq!(q_out.logits.len(), f32_logits.len());
        let maxabs = f32_logits.iter().fold(0f32, |m, v| m.max(v.abs()));
        let mut max_diff = 0f32;
        let mut any_diff = false;
        for (q, r) in q_out.logits.iter().zip(&f32_logits) {
            let d = (q - r).abs();
            max_diff = max_diff.max(d);
            any_diff |= q.to_bits() != r.to_bits();
        }
        assert!(any_diff, "int8 path must actually quantise");
        assert!(
            max_diff <= 0.15 * maxabs.max(1.0),
            "int8 drifted too far from f32: max_diff={max_diff} maxabs={maxabs}"
        );
        // The quantised plan cache compiled exactly one plan for this
        // layout; the f32 cache was untouched by the int8 pass.
        let qs = vit.quant_plan_stats();
        assert_eq!((qs.plans, qs.misses), (1, 1));
    }

    #[test]
    fn int8_forward_is_bit_identical_across_thread_counts() {
        let vit = tiny();
        calibrate_int8(&vit);
        let a = synth_frame(40, 0.15);
        let b = synth_frame(41, 0.5);
        let batch: Vec<(&[f32], &[f32])> = [&a, &b].iter().map(|f| (&f.0[..], &f.1[..])).collect();
        let run = |threads: usize| {
            bliss_parallel::with_thread_count(threads, || {
                bliss_parallel::with_min_parallel_work(0, || {
                    let mut out = PlannedBatch::new();
                    vit.forward_batch_into(&batch, &mut out).unwrap();
                    out.logits.clone()
                })
            })
        };
        let serial = run(1);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(serial.len(), par.len());
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "int8 logits must be bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn int8_recalibration_is_deterministic() {
        let vit = tiny();
        let a = synth_frame(50, 0.4);
        let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1)];
        let sites1 = calibrate_int8(&vit);
        let mut out1 = PlannedBatch::new();
        vit.forward_batch_into(&batch, &mut out1).unwrap();
        // Re-running the same calibration set reproduces the spec exactly:
        // same sites, bit-identical logits.
        let sites2 = calibrate_int8(&vit);
        assert_eq!(sites1, sites2);
        let mut out2 = PlannedBatch::new();
        vit.forward_batch_into(&batch, &mut out2).unwrap();
        assert!(out1
            .logits
            .iter()
            .zip(&out2.logits)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn set_int8_requires_calibration() {
        let vit = tiny();
        assert!(vit.set_int8(true).is_err());
        assert!(!vit.int8_enabled());
        vit.begin_int8_calibration();
        assert!(
            vit.finish_int8_calibration().is_err(),
            "finishing with no observed batches must fail"
        );
        // Disabling is always allowed.
        vit.set_int8(false).unwrap();
    }

    #[test]
    fn planned_solo_forward_matches_tape() {
        let vit = tiny();
        let (image, mask) = synth_frame(11, 0.4);
        let taped = vit.forward(&image, &mask).unwrap().unwrap();
        let planned = bliss_tensor::inference_mode(|| vit.forward(&image, &mask))
            .unwrap()
            .unwrap();
        assert_eq!(taped.logits.value().data(), planned.logits.value().data());
    }
}
