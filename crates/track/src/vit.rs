use bliss_nn::{Linear, Module, TransformerBlock};
use bliss_npu::{GemmShape, WorkloadDesc};
use bliss_tensor::{NdArray, Tensor, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the sparse ViT segmenter (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViTConfig {
    /// Frame width the model segments.
    pub frame_width: usize,
    /// Frame height.
    pub frame_height: usize,
    /// Square patch side in pixels.
    pub patch: usize,
    /// Token channel width.
    pub dim: usize,
    /// Attention heads per MHA module.
    pub heads: usize,
    /// Encoder depth (paper: 12 MHA modules).
    pub enc_depth: usize,
    /// Decoder depth (paper: 2 MHA modules).
    pub dec_depth: usize,
    /// MLP expansion ratio inside each block.
    pub mlp_ratio: usize,
    /// Segmentation classes (OpenEDS: 4).
    pub num_classes: usize,
}

impl ViTConfig {
    /// Paper-scale model: 640x400 frames, 16-pixel patches, 12+2 MHA blocks
    /// with 3 heads and channel size 192 (Strudel et al. Segmenter layout).
    pub fn paper() -> Self {
        ViTConfig {
            frame_width: 640,
            frame_height: 400,
            patch: 16,
            dim: 192,
            heads: 3,
            enc_depth: 12,
            dec_depth: 2,
            // A 2x expansion keeps the sparse ViT ~4x below RITnet-class
            // MACs, matching the paper's §VI-A efficiency quote.
            mlp_ratio: 2,
            num_classes: 4,
        }
    }

    /// Miniature model trainable on a laptop CPU in seconds.
    pub fn miniature(frame_width: usize, frame_height: usize) -> Self {
        ViTConfig {
            frame_width,
            frame_height,
            patch: 10,
            dim: 48,
            heads: 3,
            enc_depth: 2,
            dec_depth: 1,
            mlp_ratio: 4,
            num_classes: 4,
        }
    }

    /// Patch-grid dimensions (partial border patches are zero-padded).
    pub fn grid_dims(&self) -> (usize, usize) {
        (
            self.frame_width.div_ceil(self.patch),
            self.frame_height.div_ceil(self.patch),
        )
    }

    /// Total patches in the grid.
    pub fn num_patches(&self) -> usize {
        let (gw, gh) = self.grid_dims();
        gw * gh
    }

    /// Lowered workload for `tokens` occupied patches and `pixels`
    /// classification queries (pure shape math — no parameters allocated).
    pub fn workload(&self, tokens: usize, pixels: usize) -> WorkloadDesc {
        let p2 = self.patch * self.patch;
        let mut w = WorkloadDesc::new("sparse-vit");
        w.push_linear(tokens, 2 * p2, self.dim);
        for _ in 0..self.enc_depth {
            w.push_transformer_block_ratio(tokens, self.dim, self.heads, self.mlp_ratio);
        }
        let dec_tokens = tokens + self.num_classes;
        for _ in 0..self.dec_depth {
            w.push_transformer_block_ratio(dec_tokens, self.dim, self.heads, self.mlp_ratio);
        }
        w.gemms
            .push(GemmShape::activation(tokens, self.dim, self.num_classes));
        w.push_linear(pixels, 2, self.num_classes);
        w
    }
}

/// Output of one sparse segmentation forward pass.
#[derive(Debug)]
pub struct SegPrediction {
    /// Frame-flat pixel index of every logits row (the sampled pixels).
    pub pixel_indices: Vec<usize>,
    /// Per-pixel class logits, `[S, num_classes]`.
    pub logits: Tensor,
    /// Number of occupied patch tokens the transformer processed — the
    /// quantity that shrinks with sparse sampling and drives compute savings.
    pub tokens: usize,
}

impl SegPrediction {
    /// Per-pixel argmax classes as `(frame_index, class)` pairs.
    pub fn classes(&self) -> Vec<(usize, u8)> {
        let arg = self
            .logits
            .value()
            .argmax_rows()
            .expect("logits are rank 2");
        self.pixel_indices
            .iter()
            .zip(arg.iter())
            .map(|(&i, &c)| (i, c as u8))
            .collect()
    }

    /// Expands the sparse classification into a full-frame mask
    /// (background class 0 everywhere else).
    pub fn seg_map(&self, width: usize, height: usize) -> Vec<u8> {
        let mut map = vec![0u8; width * height];
        for (i, c) in self.classes() {
            if i < map.len() {
                map[i] = c;
            }
        }
        map
    }
}

/// The sparse-robust Vision Transformer segmenter.
///
/// Architecture (paper Fig. 6, Segmenter-style):
///
/// 1. **Patch embedding** — each occupied patch's `(values, sample-mask)`
///    pixels are linearly projected to a token; position embeddings are
///    gathered for the kept patches only. *Empty patches produce no token*,
///    so attention cost falls super-linearly with pixel volume.
/// 2. **Encoder** — `enc_depth` MHA transformer blocks.
/// 3. **Decoder** — learnable class embeddings are appended, `dec_depth`
///    blocks mix them with patch tokens, and patch logits are the scaled dot
///    product between patch tokens and class tokens.
/// 4. **Pixel head** — a tiny per-pixel refinement (`[value, 1] -> classes`)
///    added to the patch logits recovers sub-patch detail (the dark pupil
///    boundary inside a patch).
#[derive(Debug, Clone)]
pub struct SparseViT {
    patch_embed: Linear,
    pos_embed: Tensor,
    encoder: Vec<TransformerBlock>,
    decoder: Vec<TransformerBlock>,
    class_embed: Tensor,
    pixel_head: Linear,
    config: ViTConfig,
}

impl SparseViT {
    /// Creates the model with random initialisation.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, config: ViTConfig) -> Self {
        let p2 = config.patch * config.patch;
        SparseViT {
            patch_embed: Linear::new(rng, 2 * p2, config.dim),
            pos_embed: Tensor::parameter(NdArray::randn(
                rng,
                &[config.num_patches(), config.dim],
                0.02,
            )),
            encoder: (0..config.enc_depth)
                .map(|_| {
                    TransformerBlock::with_mlp_ratio(
                        rng,
                        config.dim,
                        config.heads,
                        config.mlp_ratio,
                    )
                })
                .collect(),
            decoder: (0..config.dec_depth)
                .map(|_| {
                    TransformerBlock::with_mlp_ratio(
                        rng,
                        config.dim,
                        config.heads,
                        config.mlp_ratio,
                    )
                })
                .collect(),
            class_embed: Tensor::parameter(NdArray::randn(
                rng,
                &[config.num_classes, config.dim],
                0.02,
            )),
            pixel_head: Linear::new(rng, 2, config.num_classes),
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ViTConfig {
        &self.config
    }

    /// Segments a sparse frame.
    ///
    /// `image` is the full-frame sparse image (zeros at unsampled pixels) and
    /// `sampled` the 0/1 sampling mask, both `width*height` long. Returns
    /// `None` when no pixel is sampled (e.g. mid-blink with an empty ROI).
    ///
    /// # Errors
    ///
    /// Returns shape errors if the buffers do not match the configured frame.
    pub fn forward(
        &self,
        image: &[f32],
        sampled: &[f32],
    ) -> Result<Option<SegPrediction>, TensorError> {
        let (w, h) = (self.config.frame_width, self.config.frame_height);
        if image.len() != w * h || sampled.len() != w * h {
            return Err(TensorError::InvalidArgument {
                op: "sparse_vit_forward",
                message: format!(
                    "expected {} pixels, got image {} / mask {}",
                    w * h,
                    image.len(),
                    sampled.len()
                ),
            });
        }
        let p = self.config.patch;
        let (gw, gh) = self.config.grid_dims();
        let p2 = p * p;

        // Pass 1: parallel occupancy scan — one read-only task per patch.
        let occupied = bliss_parallel::par_map_collect(gw * gh, |patch_idx| {
            let (gy, gx) = (patch_idx / gw, patch_idx % gw);
            for dy in 0..p {
                let y = gy * p + dy;
                if y >= h {
                    break;
                }
                let row = &sampled[y * w..y * w + w];
                for dx in 0..p {
                    let x = gx * p + dx;
                    if x >= w {
                        break;
                    }
                    if row[x] > 0.0 {
                        return true;
                    }
                }
            }
            false
        });
        let kept: Vec<usize> = (0..gw * gh).filter(|&i| occupied[i]).collect();
        if kept.is_empty() {
            return Ok(None);
        }
        let t = kept.len();

        // Pass 2: parallel token gather — each kept patch fills its own
        // `(values, sample-mask)` slice of the batched embedding input.
        let mut token_data = vec![0.0f32; t * 2 * p2];
        bliss_parallel::par_chunks(&mut token_data, 2 * p2, |token, chunk| {
            let patch_idx = kept[token];
            let (gy, gx) = (patch_idx / gw, patch_idx % gw);
            let (values, mask) = chunk.split_at_mut(p2);
            for dy in 0..p {
                let y = gy * p + dy;
                if y >= h {
                    break;
                }
                for dx in 0..p {
                    let x = gx * p + dx;
                    if x >= w {
                        break;
                    }
                    let fi = y * w + x;
                    values[dy * p + dx] = image[fi];
                    mask[dy * p + dx] = sampled[fi];
                }
            }
        });

        // Pass 3: register sampled pixels as classification queries (serial:
        // the outputs are variable-length appends, and only kept patches are
        // visited).
        let mut pixel_indices: Vec<usize> = Vec::new();
        let mut pixel_token: Vec<usize> = Vec::new();
        let mut pixel_feat: Vec<f32> = Vec::new();
        for (token, &patch_idx) in kept.iter().enumerate() {
            let (gy, gx) = (patch_idx / gw, patch_idx % gw);
            for dy in 0..p {
                let y = gy * p + dy;
                if y >= h {
                    break;
                }
                for dx in 0..p {
                    let x = gx * p + dx;
                    if x >= w {
                        break;
                    }
                    let fi = y * w + x;
                    if sampled[fi] > 0.0 {
                        pixel_indices.push(fi);
                        pixel_token.push(token);
                        pixel_feat.push(image[fi]);
                        pixel_feat.push(1.0);
                    }
                }
            }
        }

        let tokens_in = Tensor::constant(NdArray::from_vec(token_data, &[t, 2 * p2])?);
        let mut x = self
            .patch_embed
            .forward(&tokens_in)?
            .add(&self.pos_embed.gather_rows(&kept)?)?;
        for block in &self.encoder {
            x = block.forward(&x)?;
        }
        let cat = Tensor::concat_rows(&[x, self.class_embed.clone()])?;
        let mut d = cat;
        for block in &self.decoder {
            d = block.forward(&d)?;
        }
        let patch_tokens = d.slice_rows(0, t)?;
        let class_tokens = d.slice_rows(t, t + self.config.num_classes)?;
        let patch_logits = patch_tokens
            .matmul(&class_tokens.transpose()?)?
            .scale(1.0 / (self.config.dim as f32).sqrt());

        let expanded = patch_logits.gather_rows(&pixel_token)?;
        let s = pixel_indices.len();
        let feats = Tensor::constant(NdArray::from_vec(pixel_feat, &[s, 2])?);
        let refined = self.pixel_head.forward(&feats)?;
        let logits = expanded.add(&refined)?;

        Ok(Some(SegPrediction {
            pixel_indices,
            logits,
            tokens: t,
        }))
    }

    /// Lowered workload for `tokens` occupied patches and `pixels`
    /// classification queries, for the NPU simulator.
    pub fn workload(&self, tokens: usize, pixels: usize) -> WorkloadDesc {
        self.config.workload(tokens, pixels)
    }

    /// MAC count for a given occupancy, convenience over [`Self::workload`].
    pub fn macs(&self, tokens: usize, pixels: usize) -> u64 {
        self.workload(tokens, pixels).total_macs()
    }
}

impl Module for SparseViT {
    fn parameters(&self) -> Vec<Tensor> {
        let mut p = self.patch_embed.parameters();
        p.push(self.pos_embed.clone());
        for b in &self.encoder {
            p.extend(b.parameters());
        }
        for b in &self.decoder {
            p.extend(b.parameters());
        }
        p.push(self.class_embed.clone());
        p.extend(self.pixel_head.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> SparseViT {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = ViTConfig {
            frame_width: 40,
            frame_height: 30,
            patch: 10,
            dim: 16,
            heads: 2,
            enc_depth: 1,
            dec_depth: 1,
            mlp_ratio: 4,
            num_classes: 4,
        };
        SparseViT::new(&mut rng, cfg)
    }

    #[test]
    fn dense_mask_keeps_all_patches() {
        let vit = tiny();
        let image = vec![0.5f32; 1200];
        let mask = vec![1.0f32; 1200];
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        assert_eq!(pred.tokens, vit.config().num_patches());
        assert_eq!(pred.pixel_indices.len(), 1200);
        assert_eq!(pred.logits.shape(), vec![1200, 4]);
    }

    #[test]
    fn empty_mask_returns_none() {
        let vit = tiny();
        let image = vec![0.0f32; 1200];
        let mask = vec![0.0f32; 1200];
        assert!(vit.forward(&image, &mask).unwrap().is_none());
    }

    #[test]
    fn sparse_mask_drops_tokens() {
        let vit = tiny();
        let image = vec![0.5f32; 1200];
        let mut mask = vec![0.0f32; 1200];
        // Sample a single pixel: exactly one patch stays.
        mask[15 * 40 + 25] = 1.0;
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        assert_eq!(pred.tokens, 1);
        assert_eq!(pred.pixel_indices, vec![15 * 40 + 25]);
    }

    #[test]
    fn macs_shrink_with_tokens() {
        let vit = tiny();
        let dense = vit.macs(12, 1200);
        let sparse = vit.macs(3, 100);
        assert!(sparse < dense / 3);
    }

    #[test]
    fn classes_and_seg_map_agree() {
        let vit = tiny();
        let image = vec![0.5f32; 1200];
        let mut mask = vec![0.0f32; 1200];
        mask[0] = 1.0;
        mask[700] = 1.0;
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        let classes = pred.classes();
        assert_eq!(classes.len(), 2);
        let map = pred.seg_map(40, 30);
        for (i, c) in classes {
            assert_eq!(map[i], c);
        }
    }

    #[test]
    fn trainable_gradients_flow_everywhere() {
        let vit = tiny();
        let image = vec![0.4f32; 1200];
        let mask = vec![1.0f32; 1200];
        let pred = vit.forward(&image, &mask).unwrap().unwrap();
        let targets = vec![1usize; pred.pixel_indices.len()];
        let loss = pred.logits.cross_entropy_rows(&targets, None).unwrap();
        loss.backward().unwrap();
        let with_grads = vit
            .parameters()
            .iter()
            .filter(|p| p.grad().is_some())
            .count();
        // Position embeddings for dropped patches get no gradient only when
        // patches are dropped; with a dense mask everything has gradients.
        assert_eq!(with_grads, vit.parameters().len());
    }

    #[test]
    fn rejects_wrong_buffer_size() {
        let vit = tiny();
        assert!(vit.forward(&[0.0; 10], &[0.0; 10]).is_err());
    }

    #[test]
    fn paper_config_dimensions() {
        let cfg = ViTConfig::paper();
        assert_eq!(cfg.grid_dims(), (40, 25));
        assert_eq!(cfg.num_patches(), 1000);
        assert_eq!(cfg.enc_depth, 12);
        assert_eq!(cfg.dec_depth, 2);
    }
}
