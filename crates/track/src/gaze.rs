use bliss_eye::{EyeClass, EyeModel, Gaze};
use serde::{Deserialize, Serialize};

/// The dynamic state of a [`GazeEstimator`] for durable-serving snapshots.
///
/// The eye model and the pixel-count floor are configuration re-derived when
/// the estimator is rebuilt; only the held estimate and the running evidence
/// norm evolve while serving, so they are all a snapshot carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorSnapshot {
    /// The last produced gaze estimate (held through blinks).
    pub last: Gaze,
    /// Exponential running mean of accepted pupil-evidence counts.
    pub typical_count: f32,
}

/// Geometric gaze regression from predicted pupil pixels (paper §II-A: "the
/// gaze prediction stage employs regression models based on the geometric
/// model of human eyes").
///
/// The estimator computes the centroid of pixels classified as pupil and
/// inverts the known camera projection of the [`EyeModel`]. When too few
/// pupil pixels are visible (blinks, empty ROIs), it holds the last estimate
/// — the same behaviour commercial trackers exhibit mid-blink.
#[derive(Debug, Clone)]
pub struct GazeEstimator {
    model: EyeModel,
    last: Gaze,
    min_pixels: usize,
    /// Exponential running mean of accepted pupil-evidence counts; frames
    /// with far less evidence (partial blinks occluding the pupil) are
    /// rejected because a half-visible pupil biases the centroid vertically.
    typical_count: f32,
}

impl GazeEstimator {
    /// Creates an estimator over the renderer's known geometry.
    pub fn new(model: EyeModel) -> Self {
        GazeEstimator {
            model,
            last: Gaze::default(),
            min_pixels: 3,
            typical_count: 0.0,
        }
    }

    /// The last produced estimate.
    pub fn last(&self) -> Gaze {
        self.last
    }

    /// Resets the held estimate to primary gaze.
    pub fn reset(&mut self) {
        self.last = Gaze::default();
    }

    /// Captures the estimator's dynamic state.
    pub fn snapshot(&self) -> EstimatorSnapshot {
        EstimatorSnapshot {
            last: self.last,
            typical_count: self.typical_count,
        }
    }

    /// Overwrites the dynamic state from a snapshot, leaving the model and
    /// acceptance configuration as constructed.
    pub fn restore(&mut self, snapshot: &EstimatorSnapshot) {
        self.last = snapshot.last;
        self.typical_count = snapshot.typical_count;
    }

    /// Estimates gaze from sparse per-pixel classifications
    /// (`(frame_index, class)` pairs) at native resolution.
    ///
    /// Prefers the pupil centroid; when too few pupil pixels are visible
    /// (partial occlusion, aggressive sampling) it falls back to the iris
    /// centroid, which shares the pupil's centre in the eye model.
    pub fn estimate_from_pairs(&mut self, classes: &[(usize, u8)], width: usize) -> Gaze {
        for class in [EyeClass::Pupil, EyeClass::Iris] {
            let mut sx = 0.0f64;
            let mut sy = 0.0f64;
            let mut n = 0usize;
            for &(i, c) in classes {
                if c == class as u8 {
                    sx += (i % width) as f64 + 0.5;
                    sy += (i / width) as f64 + 0.5;
                    n += 1;
                }
            }
            if self.accept(n) {
                return self.finish(sx, sy, n, 1.0);
            }
            if n >= self.min_pixels {
                // Enough pixels to be the right class but far below the
                // running norm: probably a half-occluded pupil mid-blink.
                // Do not fall through to the iris (it is occluded too).
                return self.last;
            }
        }
        self.last
    }

    /// Accepts a measurement when its evidence count is both above the hard
    /// minimum and not collapsed relative to the running norm.
    fn accept(&self, n: usize) -> bool {
        n >= self.min_pixels && (self.typical_count <= 0.0 || n as f32 >= 0.3 * self.typical_count)
    }

    /// Estimates gaze from a dense class map that was produced at a
    /// downsampled resolution; `scale` maps its coordinates back to the
    /// native frame (e.g. 2.0 for a half-resolution baseline). Falls back to
    /// the iris centroid when the pupil is not visible.
    pub fn estimate_from_map(&mut self, seg: &[u8], width: usize, scale: f32) -> Gaze {
        for class in [EyeClass::Pupil, EyeClass::Iris] {
            let mut sx = 0.0f64;
            let mut sy = 0.0f64;
            let mut n = 0usize;
            for (i, &c) in seg.iter().enumerate() {
                if c == class as u8 {
                    sx += (i % width) as f64 + 0.5;
                    sy += (i / width) as f64 + 0.5;
                    n += 1;
                }
            }
            if self.accept(n) {
                return self.finish(sx, sy, n, scale);
            }
            if n >= self.min_pixels {
                return self.last;
            }
        }
        self.last
    }

    fn finish(&mut self, sx: f64, sy: f64, n: usize, scale: f32) -> Gaze {
        if n < self.min_pixels {
            return self.last;
        }
        self.typical_count = if self.typical_count <= 0.0 {
            n as f32
        } else {
            0.9 * self.typical_count + 0.1 * n as f32
        };
        let cx = (sx / n as f64) as f32 * scale;
        let cy = (sy / n as f64) as f32 * scale;
        let gaze = self.model.gaze_from_pupil_center(cx, cy);
        self.last = gaze;
        gaze
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_eye::{EyeModelConfig, GazeState, MovementPhase};

    fn model() -> EyeModel {
        EyeModel::new(EyeModelConfig::for_resolution(160, 100), 7)
    }

    fn render(gaze: Gaze) -> (Vec<f32>, Vec<u8>) {
        model().render(&GazeState {
            gaze,
            openness: 1.0,
            pupil_dilation: 1.0,
            phase: MovementPhase::Fixation,
        })
    }

    #[test]
    fn recovers_gaze_from_ground_truth_pupil() {
        let g = Gaze::new(-7.0, 4.0);
        let (_, mask) = render(g);
        let pairs: Vec<(usize, u8)> = mask.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        let mut est = GazeEstimator::new(model());
        let out = est.estimate_from_pairs(&pairs, 160);
        assert!(out.angular_distance(&g) < 1.5, "{out:?} vs {g:?}");
    }

    #[test]
    fn sparse_subset_still_recovers_gaze() {
        let g = Gaze::new(10.0, -6.0);
        let (_, mask) = render(g);
        // Keep every 7th pixel only — uniform sparse classification.
        let pairs: Vec<(usize, u8)> = mask
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 == 0)
            .map(|(i, &c)| (i, c))
            .collect();
        let mut est = GazeEstimator::new(model());
        let out = est.estimate_from_pairs(&pairs, 160);
        assert!(out.angular_distance(&g) < 2.0, "{out:?} vs {g:?}");
    }

    #[test]
    fn holds_last_estimate_during_blink() {
        let g = Gaze::new(5.0, 5.0);
        let (_, mask) = render(g);
        let pairs: Vec<(usize, u8)> = mask.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        let mut est = GazeEstimator::new(model());
        let first = est.estimate_from_pairs(&pairs, 160);
        // Blink: no pupil pixels at all.
        let out = est.estimate_from_pairs(&[], 160);
        assert_eq!(out, first);
    }

    #[test]
    fn downsampled_map_scales_back() {
        let g = Gaze::new(8.0, 0.0);
        let (_, mask) = render(g);
        // 2x downsample by nearest sampling.
        let mut ds = vec![0u8; 80 * 50];
        for y in 0..50 {
            for x in 0..80 {
                ds[y * 80 + x] = mask[(y * 2) * 160 + x * 2];
            }
        }
        let mut est = GazeEstimator::new(model());
        let out = est.estimate_from_map(&ds, 80, 2.0);
        assert!(out.angular_distance(&g) < 2.0, "{out:?} vs {g:?}");
    }

    #[test]
    fn snapshot_restores_blink_hold_state() {
        let g = Gaze::new(-3.0, 9.0);
        let (_, mask) = render(g);
        let pairs: Vec<(usize, u8)> = mask.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        let mut est = GazeEstimator::new(model());
        let held = est.estimate_from_pairs(&pairs, 160);
        let snap = est.snapshot();
        // A fresh estimator restored from the snapshot holds through a blink
        // exactly like the original would have.
        let mut fresh = GazeEstimator::new(model());
        fresh.restore(&snap);
        assert_eq!(fresh.estimate_from_pairs(&[], 160), held);
        assert_eq!(fresh.snapshot(), snap);
    }

    #[test]
    fn reset_returns_to_primary() {
        let mut est = GazeEstimator::new(model());
        let (_, mask) = render(Gaze::new(12.0, -12.0));
        let pairs: Vec<(usize, u8)> = mask.iter().enumerate().map(|(i, &c)| (i, c)).collect();
        est.estimate_from_pairs(&pairs, 160);
        est.reset();
        assert_eq!(est.last(), Gaze::default());
    }
}
