use bliss_sensor::RoiBox;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The sampling alternatives compared in the paper's Fig. 15 (§VI-E).
///
/// `rate` parameters are fractions of the strategy's own region (full frame
/// for `Full*`, the predicted ROI for `Roi*`); experiment harnesses choose
/// them to hit a target compression rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// **Ours**: uniform random sampling inside the predicted ROI.
    RoiRandom {
        /// In-ROI sampling rate.
        rate: f32,
    },
    /// Uniform random sampling over the whole frame (no ROI prediction).
    FullRandom {
        /// Full-frame sampling rate.
        rate: f32,
    },
    /// Uniform grid downsampling of the whole frame.
    FullDownsample {
        /// Grid stride (compression = stride²).
        stride: usize,
    },
    /// Uniform grid downsampling within the predicted ROI.
    RoiDownsample {
        /// Grid stride within the ROI.
        stride: usize,
    },
    /// A fixed in-ROI mask fitted offline from dataset statistics.
    RoiFixed {
        /// In-ROI sampling rate (top-importance pixels are kept).
        rate: f32,
    },
    /// A learned importance-weighted sampler inside the ROI (emulating the
    /// paper's auxiliary sampling ViT).
    RoiLearned {
        /// Expected in-ROI sampling rate.
        rate: f32,
    },
    /// EdGaze-style frame skipping: when the event density is below the
    /// threshold, reuse the previous segmentation entirely; otherwise read
    /// the ROI densely.
    Skip {
        /// Event-density threshold below which the frame is skipped.
        density_threshold: f32,
    },
}

impl SamplingStrategy {
    /// Short label used in experiment output (matches Fig. 15's legend).
    pub fn label(&self) -> &'static str {
        match self {
            SamplingStrategy::RoiRandom { .. } => "Ours",
            SamplingStrategy::FullRandom { .. } => "Full+Random",
            SamplingStrategy::FullDownsample { .. } => "Full+DS",
            SamplingStrategy::RoiDownsample { .. } => "ROI+DS",
            SamplingStrategy::RoiFixed { .. } => "ROI+Fixed",
            SamplingStrategy::RoiLearned { .. } => "ROI+Learned",
            SamplingStrategy::Skip { .. } => "Skip",
        }
    }

    /// Whether the strategy depends on an ROI prediction.
    pub fn uses_roi(&self) -> bool {
        matches!(
            self,
            SamplingStrategy::RoiRandom { .. }
                | SamplingStrategy::RoiDownsample { .. }
                | SamplingStrategy::RoiFixed { .. }
                | SamplingStrategy::RoiLearned { .. }
                | SamplingStrategy::Skip { .. }
        )
    }
}

/// A frame after sampling: full-frame sparse values and the sampling mask.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledFrame {
    /// Sparse image: original values at sampled pixels, zeros elsewhere.
    pub values: Vec<f32>,
    /// 1.0 at sampled pixels, 0.0 elsewhere.
    pub mask: Vec<f32>,
    /// Number of sampled pixels.
    pub sampled: usize,
    /// True when the `Skip` strategy decided to reuse the previous result
    /// (no pixels were read out at all).
    pub skipped: bool,
}

impl SampledFrame {
    /// Pixel-volume compression rate versus the full frame.
    pub fn compression_rate(&self, full_pixels: usize) -> f32 {
        full_pixels as f32 / self.sampled.max(1) as f32
    }
}

/// Applies a sampling strategy to one frame.
///
/// * `image` — the full frame (`width*height` values);
/// * `roi` — the predicted ROI (ignored by `Full*` strategies);
/// * `importance` — per-pixel importance map for `RoiFixed`/`RoiLearned`
///   (fitted offline from dataset statistics); ignored otherwise;
/// * `event_density` — current event-map density, consumed by `Skip`.
///
/// # Panics
///
/// Panics if buffer sizes disagree or a stride is zero.
pub fn apply_strategy<R: Rng + ?Sized>(
    strategy: &SamplingStrategy,
    image: &[f32],
    width: usize,
    height: usize,
    roi: RoiBox,
    importance: Option<&[f32]>,
    event_density: f32,
    rng: &mut R,
) -> SampledFrame {
    assert_eq!(image.len(), width * height, "image size mismatch");
    let roi = roi.clamp_to(width, height);
    let full = RoiBox::full(width, height);
    let mut mask = vec![false; width * height];
    let mut skipped = false;

    match *strategy {
        SamplingStrategy::RoiRandom { rate } => {
            bernoulli_in(&mut mask, width, &roi, rate, rng);
        }
        SamplingStrategy::FullRandom { rate } => {
            bernoulli_in(&mut mask, width, &full, rate, rng);
        }
        SamplingStrategy::FullDownsample { stride } => {
            grid_in(&mut mask, width, &full, stride);
        }
        SamplingStrategy::RoiDownsample { stride } => {
            grid_in(&mut mask, width, &roi, stride);
        }
        SamplingStrategy::RoiFixed { rate } => {
            let imp = importance.expect("RoiFixed requires an importance map");
            assert_eq!(imp.len(), image.len(), "importance size mismatch");
            top_k_in(&mut mask, width, &roi, imp, rate);
        }
        SamplingStrategy::RoiLearned { rate } => {
            let imp = importance.expect("RoiLearned requires an importance map");
            assert_eq!(imp.len(), image.len(), "importance size mismatch");
            weighted_bernoulli_in(&mut mask, width, &roi, imp, rate, rng);
        }
        SamplingStrategy::Skip { density_threshold } => {
            if event_density < density_threshold {
                skipped = true;
            } else {
                // Process the frame: dense readout of the ROI.
                for y in roi.y1..roi.y2 {
                    for x in roi.x1..roi.x2 {
                        mask[y * width + x] = true;
                    }
                }
            }
        }
    }

    let mut values = vec![0.0f32; width * height];
    let mut sampled = 0usize;
    for (i, &m) in mask.iter().enumerate() {
        if m {
            values[i] = image[i];
            sampled += 1;
        }
    }
    SampledFrame {
        values,
        mask: mask.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect(),
        sampled,
        skipped,
    }
}

fn bernoulli_in<R: Rng + ?Sized>(
    mask: &mut [bool],
    width: usize,
    region: &RoiBox,
    rate: f32,
    rng: &mut R,
) {
    let rate = rate.clamp(0.0, 1.0);
    for y in region.y1..region.y2 {
        for x in region.x1..region.x2 {
            if rng.gen::<f32>() < rate {
                mask[y * width + x] = true;
            }
        }
    }
}

fn grid_in(mask: &mut [bool], width: usize, region: &RoiBox, stride: usize) {
    assert!(stride > 0, "stride must be positive");
    for y in (region.y1..region.y2).step_by(stride) {
        for x in (region.x1..region.x2).step_by(stride) {
            mask[y * width + x] = true;
        }
    }
}

fn top_k_in(mask: &mut [bool], width: usize, region: &RoiBox, importance: &[f32], rate: f32) {
    let mut cells: Vec<(usize, f32)> = Vec::with_capacity(region.area());
    for y in region.y1..region.y2 {
        for x in region.x1..region.x2 {
            let i = y * width + x;
            cells.push((i, importance[i]));
        }
    }
    let k = ((region.area() as f32 * rate.clamp(0.0, 1.0)).round() as usize).min(cells.len());
    cells.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in cells.iter().take(k) {
        mask[i] = true;
    }
}

fn weighted_bernoulli_in<R: Rng + ?Sized>(
    mask: &mut [bool],
    width: usize,
    region: &RoiBox,
    importance: &[f32],
    rate: f32,
    rng: &mut R,
) {
    // Normalise so the expected sample count is rate * area.
    let mut total = 0.0f64;
    for y in region.y1..region.y2 {
        for x in region.x1..region.x2 {
            total += importance[y * width + x].max(0.0) as f64;
        }
    }
    if total <= 0.0 {
        bernoulli_in(mask, width, region, rate, rng);
        return;
    }
    let budget = rate.clamp(0.0, 1.0) as f64 * region.area() as f64;
    for y in region.y1..region.y2 {
        for x in region.x1..region.x2 {
            let i = y * width + x;
            let p = (importance[i].max(0.0) as f64 / total * budget).min(1.0);
            if rng.gen::<f64>() < p {
                mask[i] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const W: usize = 40;
    const H: usize = 30;

    fn image() -> Vec<f32> {
        (0..W * H).map(|i| (i % 7) as f32 / 7.0).collect()
    }

    fn roi() -> RoiBox {
        RoiBox::new(10, 5, 30, 25)
    }

    #[test]
    fn roi_random_stays_inside_roi() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = apply_strategy(
            &SamplingStrategy::RoiRandom { rate: 0.5 },
            &image(),
            W,
            H,
            roi(),
            None,
            0.1,
            &mut rng,
        );
        for (i, &m) in s.mask.iter().enumerate() {
            if m > 0.0 {
                assert!(roi().contains(i % W, i / W));
            }
        }
        let expected = (roi().area() as f32 * 0.5) as usize;
        assert!((s.sampled as i64 - expected as i64).unsigned_abs() < 60);
    }

    #[test]
    fn full_random_covers_whole_frame() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = apply_strategy(
            &SamplingStrategy::FullRandom { rate: 0.3 },
            &image(),
            W,
            H,
            roi(),
            None,
            0.1,
            &mut rng,
        );
        let outside = s
            .mask
            .iter()
            .enumerate()
            .any(|(i, &m)| m > 0.0 && !roi().contains(i % W, i / W));
        assert!(outside, "full-frame sampling must leave the ROI");
    }

    #[test]
    fn downsample_strides_are_regular() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = apply_strategy(
            &SamplingStrategy::FullDownsample { stride: 4 },
            &image(),
            W,
            H,
            roi(),
            None,
            0.1,
            &mut rng,
        );
        assert_eq!(s.sampled, W.div_ceil(4) * H.div_ceil(4));
        assert!(s.mask[0] > 0.0);
        assert!(s.mask[1] == 0.0);
    }

    #[test]
    fn roi_fixed_is_deterministic_and_respects_rate() {
        let imp: Vec<f32> = (0..W * H).map(|i| (i % 13) as f32).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let strategy = SamplingStrategy::RoiFixed { rate: 0.25 };
        let a = apply_strategy(&strategy, &image(), W, H, roi(), Some(&imp), 0.1, &mut rng);
        let b = apply_strategy(&strategy, &image(), W, H, roi(), Some(&imp), 0.1, &mut rng);
        assert_eq!(a.mask, b.mask, "fixed mask must not depend on the RNG");
        assert_eq!(a.sampled, (roi().area() as f32 * 0.25).round() as usize);
    }

    #[test]
    fn roi_learned_prefers_important_pixels() {
        // Importance concentrated on one row: most samples land there.
        let mut imp = vec![0.01f32; W * H];
        for x in 10..30 {
            imp[15 * W + x] = 100.0;
        }
        let mut rng = StdRng::seed_from_u64(4);
        let s = apply_strategy(
            &SamplingStrategy::RoiLearned { rate: 0.05 },
            &image(),
            W,
            H,
            roi(),
            Some(&imp),
            0.1,
            &mut rng,
        );
        let on_row = (10..30).filter(|&x| s.mask[15 * W + x] > 0.0).count();
        assert!(on_row > 10, "only {on_row} samples on the hot row");
    }

    #[test]
    fn skip_below_threshold() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = apply_strategy(
            &SamplingStrategy::Skip {
                density_threshold: 0.05,
            },
            &image(),
            W,
            H,
            roi(),
            None,
            0.01,
            &mut rng,
        );
        assert!(s.skipped);
        assert_eq!(s.sampled, 0);
        let s2 = apply_strategy(
            &SamplingStrategy::Skip {
                density_threshold: 0.05,
            },
            &image(),
            W,
            H,
            roi(),
            None,
            0.2,
            &mut rng,
        );
        assert!(!s2.skipped);
        assert_eq!(s2.sampled, roi().area());
    }

    #[test]
    fn compression_rate_inverse_of_sampling() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = apply_strategy(
            &SamplingStrategy::RoiRandom { rate: 0.2 },
            &image(),
            W,
            H,
            roi(),
            None,
            0.1,
            &mut rng,
        );
        let c = s.compression_rate(W * H);
        assert!(c > 5.0, "compression {c}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SamplingStrategy::RoiRandom { rate: 0.2 }.label(), "Ours");
        assert_eq!(
            SamplingStrategy::FullDownsample { stride: 2 }.label(),
            "Full+DS"
        );
    }

    #[test]
    fn values_match_image_at_sampled_pixels() {
        let img = image();
        let mut rng = StdRng::seed_from_u64(7);
        let s = apply_strategy(
            &SamplingStrategy::RoiRandom { rate: 0.4 },
            &img,
            W,
            H,
            roi(),
            None,
            0.1,
            &mut rng,
        );
        for i in 0..img.len() {
            if s.mask[i] > 0.0 {
                assert_eq!(s.values[i], img[i]);
            } else {
                assert_eq!(s.values[i], 0.0);
            }
        }
    }
}
