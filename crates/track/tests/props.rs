//! Property-based tests of the tracking algorithms' pure helpers.

use bliss_sensor::RoiBox;
use bliss_track::util::{
    block_downsample, denormalize_box, frame_difference_events, normalize_box,
};
use bliss_track::{apply_strategy, SamplingStrategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn box_normalisation_roundtrips(
        x1 in 0usize..100, y1 in 0usize..60, w in 2usize..60, h in 2usize..40
    ) {
        let roi = RoiBox::new(x1.min(98), y1.min(58), (x1 + w).min(160), (y1 + h).min(100));
        prop_assume!(roi.area() > 0);
        let n = normalize_box(&roi, 160, 100);
        let back = denormalize_box(&n, 160, 100, 1);
        // Round-trip within a pixel on each edge.
        prop_assert!(back.x1.abs_diff(roi.x1) <= 1);
        prop_assert!(back.y1.abs_diff(roi.y1) <= 1);
        prop_assert!(back.x2.abs_diff(roi.x2) <= 1);
        prop_assert!(back.y2.abs_diff(roi.y2) <= 1);
    }

    #[test]
    fn downsample_preserves_mean(v in prop::collection::vec(0.0f32..1.0, 160)) {
        // 16x10 image, factor 2: block means average to the global mean.
        let (ds, dw, dh) = block_downsample(&v, 16, 10, 2);
        prop_assert_eq!((dw, dh), (8, 5));
        let mean_full: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let mean_ds: f32 = ds.iter().sum::<f32>() / ds.len() as f32;
        prop_assert!((mean_full - mean_ds).abs() < 1e-4);
    }

    #[test]
    fn events_are_symmetric_in_frame_order(
        a in prop::collection::vec(0.0f32..1.0, 64),
        b in prop::collection::vec(0.0f32..1.0, 64)
    ) {
        let e_ab = frame_difference_events(&a, &b, 0.06);
        let e_ba = frame_difference_events(&b, &a, 0.06);
        prop_assert_eq!(e_ab, e_ba);
    }

    #[test]
    fn strategies_sample_within_budget(
        rate in 0.05f32..0.9, seed in 0u64..200
    ) {
        let image = vec![0.5f32; 40 * 30];
        let roi = RoiBox::new(8, 6, 32, 24);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = apply_strategy(
            &SamplingStrategy::RoiRandom { rate },
            &image, 40, 30, roi, None, 0.1, &mut rng,
        );
        prop_assert!(s.sampled <= roi.area());
        // Bernoulli concentration: within 5 sigma of the mean.
        let mean = roi.area() as f32 * rate;
        let sigma = (roi.area() as f32 * rate * (1.0 - rate)).sqrt();
        prop_assert!((s.sampled as f32 - mean).abs() < 5.0 * sigma + 2.0);
    }

    #[test]
    fn fixed_strategy_is_rng_independent(
        rate in 0.1f32..0.6, s1 in 0u64..100, s2 in 100u64..200
    ) {
        let image = vec![0.5f32; 40 * 30];
        let imp: Vec<f32> = (0..1200).map(|i| (i % 17) as f32).collect();
        let roi = RoiBox::new(5, 5, 35, 25);
        let mut r1 = StdRng::seed_from_u64(s1);
        let mut r2 = StdRng::seed_from_u64(s2);
        let a = apply_strategy(&SamplingStrategy::RoiFixed { rate }, &image, 40, 30, roi, Some(&imp), 0.1, &mut r1);
        let b = apply_strategy(&SamplingStrategy::RoiFixed { rate }, &image, 40, 30, roi, Some(&imp), 0.1, &mut r2);
        prop_assert_eq!(a.mask, b.mask);
    }
}
