//! Crash-recovery bit-identity under deterministic chaos.
//!
//! The ISSUE-level guarantee: a fleet that crashes and fails over must
//! produce, for **every session and every frame**, the exact
//! gaze/volume/energy outputs of the uninterrupted run (faults can only
//! move timing), a complete gap-free merged timeline, and the identical
//! [`ChaosOutcome`] on 1/2/8-thread pools — for every placement policy and
//! several fault seeds. Untrained networks: recovery identity is a
//! scheduling/state property, not an accuracy property.

use bliss_fleet::{
    ChaosConfig, ChaosOutcome, DegradationPolicy, FaultEvent, FaultKind, FaultMix, FaultPlan,
    FleetConfig, FleetOutcome, FleetRuntime, PlacementPolicy,
};
use bliss_serve::FrameRecord;
use bliss_track::{RoiPredictionNet, SparseViT};
use blisscam_core::SystemConfig;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::BTreeMap;

fn runtime() -> FleetRuntime {
    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    let mut rng = StdRng::seed_from_u64(0x50AC_F1EE);
    FleetRuntime::with_networks(
        system,
        SparseViT::new(&mut rng, system.vit),
        RoiPredictionNet::new(&mut rng, system.roi_net),
    )
}

fn load(policy: PlacementPolicy) -> FleetConfig {
    let mut cfg = FleetConfig::new(2, policy, 5, 4);
    cfg.serve.max_batch = 4;
    cfg
}

/// Per-session records with the contention-dependent timing fields zeroed:
/// what must survive any fault schedule bit-for-bit.
fn accuracy_records(outcome: &FleetOutcome) -> BTreeMap<usize, Vec<FrameRecord>> {
    let mut by_session = BTreeMap::new();
    for host in &outcome.per_host {
        for trace in &host.traces {
            let mut records = trace.records.clone();
            for r in &mut records {
                r.arrival_s = 0.0;
                r.completion_s = 0.0;
                r.latency_s = 0.0;
                r.deadline_missed = false;
                r.batch_size = 0;
            }
            let prev = by_session.insert(trace.config.id, records);
            assert!(
                prev.is_none(),
                "session {} appears on two hosts",
                trace.config.id
            );
        }
    }
    by_session
}

/// Complete and gap-free: every admitted session contributes exactly
/// `frames` records with contiguous indices, both in the traces and in the
/// merged (totally ordered) timeline.
fn assert_complete(outcome: &FleetOutcome, sessions: usize, frames: usize) {
    let acc = accuracy_records(outcome);
    assert_eq!(acc.len(), sessions, "a session lost its trace entirely");
    for (id, records) in &acc {
        assert_eq!(records.len(), frames, "session {id} lost frames");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i, "session {id} has a gap at frame {i}");
        }
    }
    let timeline = &outcome.timeline;
    assert_eq!(timeline.len(), sessions * frames, "timeline is incomplete");
    for pair in timeline.windows(2) {
        assert!(
            pair[1].time_s >= pair[0].time_s,
            "timeline went backward at {:.9}s",
            pair[1].time_s
        );
    }
    let mut seen: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in timeline {
        seen.entry(e.session).or_default().push(e.frame);
    }
    for (id, mut frames_seen) in seen {
        frames_seen.sort_unstable();
        assert_eq!(
            frames_seen,
            (0..frames).collect::<Vec<_>>(),
            "session {id} timeline has gaps or duplicates"
        );
    }
}

#[test]
fn crash_recovery_is_bit_identical_for_every_policy_seed_and_thread_count() {
    let fleet = runtime();
    for policy in PlacementPolicy::ALL {
        let cfg = load(policy);
        let baseline = bliss_parallel::with_thread_count(1, || fleet.serve(&cfg))
            .expect("fault-free serve succeeds");
        let horizon = baseline.timeline.last().expect("nonempty run").time_s;
        let baseline_acc = accuracy_records(&baseline);

        let mut any_failover = false;
        for seed in [0xA1u64, 0xB2, 0xC3] {
            let plan = FaultPlan::generate(seed, cfg.hosts, horizon, &FaultMix::default());
            let mut chaos = ChaosConfig::new(plan);
            chaos.checkpoint_interval = 2;

            let outcomes: Vec<ChaosOutcome> = [1usize, 2, 8]
                .iter()
                .map(|&threads| {
                    bliss_parallel::with_thread_count(threads, || fleet.serve_chaos(&cfg, &chaos))
                        .expect("chaos serve succeeds")
                })
                .collect();
            assert_eq!(
                outcomes[0], outcomes[1],
                "{policy:?}/seed {seed:#x}: 1 vs 2 threads diverged"
            );
            assert_eq!(
                outcomes[0], outcomes[2],
                "{policy:?}/seed {seed:#x}: 1 vs 8 threads diverged"
            );

            let run = &outcomes[0];
            any_failover |= run.chaos.faults.failovers > 0;
            assert_complete(&run.outcome, 5, cfg.serve.frames_per_session);
            // Shedding is off, so EVERY frame (pre-crash and replayed) must
            // carry the fault-free accuracy/volume/energy outputs.
            assert_eq!(
                accuracy_records(&run.outcome),
                baseline_acc,
                "{policy:?}/seed {seed:#x}: chaos run perturbed accuracy/volume/energy"
            );
            assert_eq!(run.outcome.report.faults, run.chaos.faults);
            assert_eq!(run.chaos.plan_seed, seed);
            // Recovery latencies exist for every failover and are positive
            // virtual durations.
            assert!(run.chaos.recovery_latency_s.iter().all(|&r| r >= 0.0));
            // Survival curve brackets the run: starts at 0 frames with every
            // host alive, ends with all frames done.
            let first = run.chaos.survival.first().expect("survival has points");
            let last = run.chaos.survival.last().expect("survival has points");
            assert_eq!((first.frames_done, first.alive_hosts), (0, cfg.hosts));
            assert_eq!(last.frames_done, 5 * cfg.serve.frames_per_session);
        }
        assert!(
            any_failover,
            "{policy:?}: no crash landed across 3 seeds — the horizon tuning broke this suite"
        );
    }
}

#[test]
fn failover_from_initial_checkpoint_replays_everything() {
    // checkpoint_interval = 0 disables the periodic cadence, so the only
    // pre-crash checkpoint is the initial one: the failover must replay
    // every frame host 0 had served, and the outputs must still match.
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let cfg = load(PlacementPolicy::RoundRobin);
        let baseline = fleet.serve(&cfg).expect("serve succeeds");
        let horizon = baseline.timeline.last().expect("nonempty").time_s;

        let plan = FaultPlan {
            seed: 7,
            events: vec![FaultEvent {
                at_s: 0.55 * horizon,
                host: 0,
                kind: FaultKind::Crash,
            }],
        };
        let mut chaos = ChaosConfig::new(plan);
        chaos.checkpoint_interval = 0;
        let run = fleet.serve_chaos(&cfg, &chaos).expect("chaos succeeds");
        assert_eq!(run.chaos.faults.failovers, 1);
        assert!(
            run.chaos.faults.frames_replayed > 0,
            "a mid-run crash with only the initial checkpoint must replay frames"
        );
        assert_complete(&run.outcome, 5, cfg.serve.frames_per_session);
        assert_eq!(accuracy_records(&run.outcome), accuracy_records(&baseline));
    });
}

#[test]
fn corrupt_checkpoints_fall_back_to_newest_intact() {
    // A bad checkpoint medium from t=0 truncates every periodic checkpoint
    // on host 0; the crash later must hit >=1 unreadable checkpoint, fall
    // back to the (intact) initial one, and still lose nothing.
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let cfg = load(PlacementPolicy::LeastLoaded);
        let baseline = fleet.serve(&cfg).expect("serve succeeds");
        let horizon = baseline.timeline.last().expect("nonempty").time_s;

        let plan = FaultPlan {
            seed: 8,
            events: vec![
                FaultEvent {
                    at_s: 0.0,
                    host: 0,
                    kind: FaultKind::CorruptCheckpoint,
                },
                FaultEvent {
                    at_s: 0.6 * horizon,
                    host: 0,
                    kind: FaultKind::Crash,
                },
            ],
        };
        let mut chaos = ChaosConfig::new(plan);
        chaos.checkpoint_interval = 1;
        let run = fleet.serve_chaos(&cfg, &chaos).expect("chaos succeeds");
        assert_eq!(run.chaos.faults.failovers, 1);
        assert!(
            run.chaos.faults.corrupt_checkpoint_reads > 0,
            "the failover never hit a corrupt checkpoint: {:?}",
            run.chaos.faults
        );
        let crash = run
            .log
            .iter()
            .find(|f| f.kind == FaultKind::Crash)
            .expect("crash logged");
        assert!(
            crash.detail.contains("unreadable") && crash.detail.contains("host 0"),
            "corrupt fallback must surface the host-context parse error: {}",
            crash.detail
        );
        assert_complete(&run.outcome, 5, cfg.serve.frames_per_session);
        assert_eq!(accuracy_records(&run.outcome), accuracy_records(&baseline));
    });
}

#[test]
fn single_host_crash_rejoins_in_place() {
    // With no survivors the crashed host restarts from its checkpoint: the
    // rejoin case. Nothing may be lost and outputs must still match.
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let mut cfg = load(PlacementPolicy::RoundRobin);
        cfg.hosts = 1;
        let baseline = fleet.serve(&cfg).expect("serve succeeds");
        let horizon = baseline.timeline.last().expect("nonempty").time_s;

        let plan = FaultPlan {
            seed: 9,
            events: vec![FaultEvent {
                at_s: 0.5 * horizon,
                host: 0,
                kind: FaultKind::Crash,
            }],
        };
        let run = fleet
            .serve_chaos(&cfg, &ChaosConfig::new(plan))
            .expect("chaos succeeds");
        assert_eq!(run.chaos.faults.failovers, 1);
        assert_complete(&run.outcome, 5, cfg.serve.frames_per_session);
        assert_eq!(accuracy_records(&run.outcome), accuracy_records(&baseline));
        // The rejoined host served the whole fleet, so it stays "alive" in
        // the survival curve's terminal point.
        assert_eq!(run.chaos.survival.last().unwrap().alive_hosts, 1);
    });
}

#[test]
fn degradation_sheds_deterministically_and_loses_no_frames() {
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let cfg = load(PlacementPolicy::RoundRobin);
        let mut chaos = ChaosConfig::new(FaultPlan::quiet());
        // Enter degraded mode as soon as the window fills, regardless of
        // misses, so shedding definitely engages.
        chaos.degradation = Some(DegradationPolicy {
            window_frames: 1,
            enter_miss_rate: 0.0,
            exit_miss_rate: -1.0,
            shed_period: 2,
        });
        let a = fleet.serve_chaos(&cfg, &chaos).expect("chaos succeeds");
        let b = fleet.serve_chaos(&cfg, &chaos).expect("chaos succeeds");
        assert_eq!(a, b, "shedding must replay bit-identically");
        assert!(a.chaos.degraded_enters > 0, "ladder never engaged");
        assert!(a.chaos.faults.frames_shed > 0, "no frame was shed");
        // Shed frames still serve (gap-free), marked and without host
        // inference tokens.
        assert_complete(&a.outcome, 5, cfg.serve.frames_per_session);
        let mut shed_seen = 0usize;
        for host in &a.outcome.per_host {
            for trace in &host.traces {
                for r in &trace.records {
                    if r.shed {
                        shed_seen += 1;
                        assert_eq!(r.tokens, 0, "shed frame ran host inference");
                    }
                }
            }
        }
        assert_eq!(shed_seen, a.chaos.faults.frames_shed);
    });
}
