//! The fleet leg of the int8 bit-identity guarantee (the serve-level legs —
//! thread counts, snapshot/restore, f32 tolerance — live in
//! `crates/serve/tests/quant_identity.rs`; fleet depends on serve, so the
//! placement differential has to live up here).
//!
//! Placement redistributes sessions across hosts, and every host serves
//! through the *same* quantised model replica (one shared plan cache, one
//! calibration spec established fleet-wide by `start_sessions`). A
//! session's records depend only on its own state plus those shared
//! read-only networks, so every placement policy must produce identical
//! per-session records — in int8 exactly as in f32.

use bliss_fleet::{FleetConfig, FleetRuntime, PlacementPolicy};
use bliss_serve::Precision;
use blisscam_core::SystemConfig;

#[test]
fn int8_serving_is_bit_identical_across_placement_policies() {
    let mut system = SystemConfig::miniature();
    system.train_frames = 30;
    system.vit.dim = 24;
    system.vit.enc_depth = 1;
    system.roi_net.hidden = 32;
    let train_seq = bliss_eye::render_sequence(&bliss_eye::SequenceConfig {
        width: system.width,
        height: system.height,
        frames: system.train_frames,
        fps: system.fps as f32,
        seed: system.seed,
    });
    let mut trainer =
        bliss_track::JointTrainer::new(system.train_config()).expect("trainer builds");
    trainer.train_on(&train_seq).expect("training succeeds");

    bliss_parallel::with_thread_count(2, || {
        let mut by_policy = Vec::new();
        for policy in PlacementPolicy::ALL {
            // A fresh fleet per policy: calibration must re-derive the same
            // spec each time, so nothing carries over between policies.
            let fleet = FleetRuntime::with_networks(
                system,
                trainer.vit().clone(),
                trainer.roi_net().clone(),
            );
            let mut cfg = FleetConfig::new(2, policy, 5, 6);
            cfg.serve = cfg.serve.at_precision(Precision::Int8);
            cfg.serve.max_batch = 4;
            let outcome = fleet.serve(&cfg).expect("fleet int8 serve succeeds");
            assert!(
                fleet.serve_runtime().int8_sites() > 0,
                "int8 path never calibrated under {policy:?}"
            );
            let mut traces = outcome
                .per_host
                .iter()
                .flat_map(|h| &h.traces)
                .collect::<Vec<_>>();
            traces.sort_by_key(|t| t.config.id);
            by_policy.push((
                policy,
                traces
                    .into_iter()
                    .map(|t| (t.config.id, t.records.clone()))
                    .collect::<Vec<_>>(),
            ));
        }
        let (first_policy, first) = &by_policy[0];
        for (policy, records) in &by_policy[1..] {
            assert_eq!(
                first, records,
                "int8 session records diverged between {first_policy:?} and {policy:?}"
            );
        }
    });
}
