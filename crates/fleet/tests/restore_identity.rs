//! Fleet-level restore-vs-uninterrupted bit-identity.
//!
//! The serve layer proves per-shard restores are bit-identical
//! (`bliss_serve`'s `restore_identity.rs`); this suite lifts the guarantee
//! over the k-way shard composition: freeze **every host** of a sharded
//! fleet at a batch boundary, push the [`FleetSnapshot`] through its JSON
//! wire format, restore into a fresh fleet and drain it. Reports, per-host
//! outcomes and the merged timeline must match the uninterrupted run
//! byte-for-byte, under every placement policy.
//!
//! Untrained networks: restore identity is a scheduling/state property and
//! does not depend on the weights being good, only on them being carried
//! across bit-exactly (which the corrupt/version tests in the serve suite
//! already police).

use bliss_fleet::{FleetConfig, FleetRuntime, FleetSnapshot, PlacementPolicy};
use bliss_serve::{SnapshotError, SNAPSHOT_VERSION};
use bliss_track::{RoiPredictionNet, SparseViT};
use blisscam_core::SystemConfig;
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;

fn runtime() -> FleetRuntime {
    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    let mut rng = StdRng::seed_from_u64(0x50AC_F1EE);
    FleetRuntime::with_networks(
        system,
        SparseViT::new(&mut rng, system.vit),
        RoiPredictionNet::new(&mut rng, system.roi_net),
    )
}

fn load(policy: PlacementPolicy) -> FleetConfig {
    let mut cfg = FleetConfig::new(2, policy, 5, 4);
    cfg.serve.max_batch = 4;
    cfg
}

#[test]
fn fleet_restore_is_bit_identical_under_every_policy() {
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::LeastLoaded,
            PlacementPolicy::ScenarioAffinity,
        ] {
            let cfg = load(policy);
            let uninterrupted = fleet.serve(&cfg).expect("serve succeeds");

            let mut state = fleet.start(&cfg);
            for _ in 0..2 {
                assert!(fleet.step(&mut state).expect("step succeeds"));
            }
            let json = fleet.snapshot(&cfg, &state).to_json();
            // Only the JSON crosses the interruption.
            let snap = FleetSnapshot::parse(&json).expect("snapshot parses");
            let (fleet2, cfg2, mut state2) =
                FleetRuntime::restore(&snap).expect("snapshot restores");
            assert_eq!(cfg2, cfg, "restored fleet config drifted ({policy:?})");
            while fleet2.step(&mut state2).expect("step succeeds") {}
            let resumed = fleet2.finish(&cfg2, state2);

            assert_eq!(
                resumed.per_host, uninterrupted.per_host,
                "restored per-host outcomes diverged ({policy:?})"
            );
            assert_eq!(
                resumed.timeline, uninterrupted.timeline,
                "restored merged timeline diverged ({policy:?})"
            );
            assert_eq!(
                resumed.report, uninterrupted.report,
                "restored fleet report diverged ({policy:?})"
            );
        }
    });
}

#[test]
fn fleet_snapshot_round_trips_through_json() {
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let cfg = load(PlacementPolicy::RoundRobin);
        let mut state = fleet.start(&cfg);
        assert!(fleet.step(&mut state).expect("step succeeds"));
        let snap = fleet.snapshot(&cfg, &state);
        let back = FleetSnapshot::parse(&snap.to_json()).expect("round-trip parses");
        assert_eq!(back, snap, "fleet snapshot JSON round-trip is lossy");
    });
}

#[test]
fn stale_fleet_snapshot_version_fails_loudly() {
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let cfg = load(PlacementPolicy::RoundRobin);
        let mut state = fleet.start(&cfg);
        assert!(fleet.step(&mut state).expect("step succeeds"));
        let mut snap = fleet.snapshot(&cfg, &state);
        snap.version = SNAPSHOT_VERSION + 7;
        let err = FleetSnapshot::parse(&snap.to_json()).expect_err("stale version must fail");
        assert_eq!(
            err,
            SnapshotError::Version {
                found: SNAPSHOT_VERSION + 7,
                supported: SNAPSHOT_VERSION,
            }
        );
    });
}

#[test]
fn empty_fleet_snapshot_is_corrupt() {
    bliss_parallel::with_thread_count(1, || {
        let fleet = runtime();
        let cfg = load(PlacementPolicy::RoundRobin);
        let mut state = fleet.start(&cfg);
        assert!(fleet.step(&mut state).expect("step succeeds"));
        let mut snap = fleet.snapshot(&cfg, &state);
        snap.per_host.clear();
        snap.assignment.clear();
        let err = FleetRuntime::restore(&snap).expect_err("hostless snapshot must fail");
        assert!(
            matches!(err, SnapshotError::Corrupt(_)),
            "expected Corrupt, got {err:?}"
        );
    });
}
