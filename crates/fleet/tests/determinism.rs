//! Determinism and scaling guarantees of the sharded fleet:
//!
//! 1. a fleet run is **bit-identical** for a fixed
//!    `(sessions, hosts, policy, seed)` across 1/2/8-thread pools;
//! 2. placement moves *timing only*: a session's accuracy/volume/energy
//!    outputs match the single-host run bit-for-bit under every policy;
//! 3. the merged timeline is a total order covering every served frame;
//! 4. under paper-scale timing, adding hosts past the single-host
//!    saturation knee scales throughput and relieves deadline misses.
//!
//! The runtime holds `Rc`-backed tensors (thread-bound), so the shared
//! fixture stores plain-data [`FleetOutcome`]s of one trained model run
//! once — the PR-2 fixture-sharing pattern.

use bliss_fleet::{FleetConfig, FleetOutcome, FleetRuntime, PlacementPolicy};
use blisscam_core::SystemConfig;
use std::sync::OnceLock;

struct Fixture {
    /// 6 sessions x 4 frames on 2 hosts, one outcome per policy.
    policies: Vec<(PlacementPolicy, FleetOutcome)>,
    /// The same population on a single host (the serve-layer baseline).
    single_host: FleetOutcome,
    /// 6 sessions x 4 frames on 2 hosts (least-loaded) under forced
    /// 1/2/8-thread pools.
    threaded: Vec<FleetOutcome>,
    /// Paper-scale timing: 12 saturating sessions on 1 host vs 3 hosts.
    paper_one_host: FleetOutcome,
    paper_three_hosts: FleetOutcome,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut system = SystemConfig::miniature();
        system.train_frames = 30;
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
        let train_seq = bliss_eye::render_sequence(&bliss_eye::SequenceConfig {
            width: system.width,
            height: system.height,
            frames: system.train_frames,
            fps: system.fps as f32,
            seed: system.seed,
        });
        let mut trainer =
            bliss_track::JointTrainer::new(system.train_config()).expect("trainer builds");
        trainer.train_on(&train_seq).expect("training succeeds");
        let fleet =
            FleetRuntime::with_networks(system, trainer.vit().clone(), trainer.roi_net().clone());
        let paper_fleet =
            FleetRuntime::with_networks(system, trainer.vit().clone(), trainer.roi_net().clone())
                .with_paper_scale_timing();

        let load = |hosts: usize, policy: PlacementPolicy| {
            let mut cfg = FleetConfig::new(hosts, policy, 6, 4);
            cfg.serve.max_batch = 4;
            cfg
        };
        let policies = PlacementPolicy::ALL
            .into_iter()
            .map(|p| (p, fleet.serve(&load(2, p)).unwrap()))
            .collect();
        let single_host = fleet.serve(&load(1, PlacementPolicy::RoundRobin)).unwrap();

        let threaded_cfg = load(2, PlacementPolicy::LeastLoaded);
        let threaded = [1usize, 2, 8]
            .iter()
            .map(|&t| bliss_parallel::with_thread_count(t, || fleet.serve(&threaded_cfg).unwrap()))
            .collect();

        let paper_cfg = |hosts| FleetConfig::new(hosts, PlacementPolicy::RoundRobin, 12, 6);
        let paper_one_host = paper_fleet.serve(&paper_cfg(1)).unwrap();
        let paper_three_hosts = paper_fleet.serve(&paper_cfg(3)).unwrap();

        Fixture {
            policies,
            single_host,
            threaded,
            paper_one_host,
            paper_three_hosts,
        }
    })
}

#[test]
fn fleet_runs_are_bit_identical_across_thread_counts() {
    let fx = fixture();
    let serial = &fx.threaded[0];
    for (i, threads) in [2usize, 8].iter().enumerate() {
        let parallel = &fx.threaded[i + 1];
        assert_eq!(serial.report, parallel.report, "t={threads}");
        assert_eq!(serial.timeline, parallel.timeline, "t={threads}");
        for (a, b) in serial.per_host.iter().zip(&parallel.per_host) {
            assert_eq!(a.traces, b.traces, "t={threads}");
            assert_eq!(a.report, b.report, "t={threads}");
        }
    }
}

#[test]
fn placement_moves_timing_only() {
    // Under every policy, each session's accuracy/volume/energy trace is
    // bit-identical to the single-host run — sharding cannot change what a
    // session computes, only when the host serves it.
    let fx = fixture();
    let solo_trace = |id: usize| {
        fx.single_host.per_host[0]
            .traces
            .iter()
            .find(|t| t.config.id == id)
            .expect("single-host run serves every session")
    };
    for (policy, outcome) in &fx.policies {
        for host in &outcome.per_host {
            for trace in &host.traces {
                let solo = solo_trace(trace.config.id);
                assert_eq!(trace.config, solo.config, "{policy:?}");
                assert_eq!(trace.records.len(), solo.records.len(), "{policy:?}");
                for (f, s) in trace.records.iter().zip(&solo.records) {
                    assert_eq!(f.gaze_prediction, s.gaze_prediction, "{policy:?}");
                    assert_eq!(f.sampled_pixels, s.sampled_pixels, "{policy:?}");
                    assert_eq!(f.tokens, s.tokens, "{policy:?}");
                    assert_eq!(f.mipi_bytes, s.mipi_bytes, "{policy:?}");
                    assert_eq!(f.energy_j, s.energy_j, "{policy:?}");
                    assert_eq!(f.arrival_s, s.arrival_s, "{policy:?}");
                }
            }
        }
    }
}

#[test]
fn merged_timeline_is_a_total_order_over_every_frame() {
    let fx = fixture();
    for (policy, outcome) in &fx.policies {
        assert_eq!(
            outcome.timeline.len(),
            outcome.report.frames_total,
            "{policy:?}"
        );
        assert_eq!(outcome.report.frames_total, 6 * 4, "{policy:?}");
        for pair in outcome.timeline.windows(2) {
            let order = pair[0]
                .time_s
                .total_cmp(&pair[1].time_s)
                .then(pair[0].host.cmp(&pair[1].host))
                .then(pair[0].session.cmp(&pair[1].session))
                .then(pair[0].frame.cmp(&pair[1].frame));
            assert_ne!(order, std::cmp::Ordering::Greater, "{policy:?}");
        }
        // Every (session, frame) appears exactly once.
        let mut seen: Vec<(usize, usize)> = outcome
            .timeline
            .iter()
            .map(|e| (e.session, e.frame))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), outcome.report.frames_total, "{policy:?}");
    }
}

#[test]
fn report_is_sane_and_serialises() {
    use serde::Serialize as _;
    let fx = fixture();
    let (_, outcome) = &fx.policies[1];
    let r = &outcome.report;
    assert_eq!(r.hosts, 2);
    assert_eq!(r.sessions, 6);
    assert_eq!(r.policy, "least-loaded");
    assert_eq!(r.per_host.len(), 2);
    assert_eq!(r.per_host.iter().map(|h| h.sessions).sum::<usize>(), 6);
    assert!(r.latency.p50_ms <= r.latency.p99_ms);
    assert!((0.0..=1.0).contains(&r.deadline_miss_rate));
    assert!(r.throughput_fps > 0.0);
    assert!((0.0..=1.0).contains(&r.mean_utilisation));
    for host in &r.per_host {
        assert!((0.0..=1.0).contains(&host.report.utilisation));
        assert!(host.report.host_busy_s > 0.0);
        assert!(host.report.host_busy_s <= host.report.span_s);
    }
    let json = r.to_json();
    for key in [
        "\"hosts\":2",
        "\"policy\":\"least-loaded\"",
        "\"per_host\":[{",
        "\"utilisation\":",
        "\"throughput_fps\":",
        "\"mean_utilisation\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn compiled_plans_are_shared_across_hosts_and_match_the_tape_path() {
    // All host shards serve through one model replica, so a plan compiled
    // for host 0's batch layout is a cache hit when any other host sees the
    // same layout — fleet-wide compilation cost stays that of a single
    // host. Untrained miniature networks keep this standalone test fast
    // (plan reuse and bit-identity do not depend on trained weights).
    use bliss_track::{RoiPredictionNet, SparseViT};
    use rand::{rngs::StdRng, SeedableRng};

    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    let build = || {
        let mut rng = StdRng::seed_from_u64(7);
        let vit = SparseViT::new(&mut rng, system.vit);
        let roi = RoiPredictionNet::new(&mut rng, system.roi_net);
        FleetRuntime::with_networks(system, vit, roi)
    };
    let cfg = FleetConfig::new(3, PlacementPolicy::RoundRobin, 6, 3);

    let planned_fleet = build();
    let planned = planned_fleet.serve(&cfg).unwrap();
    let vit_stats = planned_fleet.serve_runtime().vit_plan_stats();
    let roi_stats = planned_fleet.serve_runtime().roi_plan_stats();
    // The planned path actually ran, and recurring batch layouts across the
    // 3 hosts were served from the shared cache rather than recompiled.
    assert!(vit_stats.misses > 0, "no ViT plan was ever compiled");
    assert!(
        vit_stats.hits > 0,
        "no cross-batch plan reuse: {vit_stats:?}"
    );
    assert_eq!(vit_stats.plans as u64, vit_stats.misses);
    // The ROI net has a single input shape class: one plan, hit thereafter.
    assert_eq!(roi_stats.plans, 1, "{roi_stats:?}");
    assert!(roi_stats.hits >= 6 * 3 - 1, "{roi_stats:?}");

    let tape = build().without_planned_inference().serve(&cfg).unwrap();
    assert_eq!(planned.report, tape.report);
    assert_eq!(planned.timeline, tape.timeline);
    for (p, t) in planned.per_host.iter().zip(&tape.per_host) {
        assert_eq!(p.traces, t.traces);
    }
}

#[test]
fn multi_host_throughput_scales_past_the_single_host_knee() {
    // Paper-scale timing, 12 sessions: a single millisecond-class host is
    // deep into saturation (the PR-3 knee sits at N≈2–4), so sharding onto
    // 3 hosts must recover real throughput and relieve deadline pressure.
    let fx = fixture();
    let one = &fx.paper_one_host.report;
    let three = &fx.paper_three_hosts.report;
    assert!(
        three.throughput_fps > 1.5 * one.throughput_fps,
        "3 hosts {} f/s vs 1 host {} f/s",
        three.throughput_fps,
        one.throughput_fps
    );
    assert!(
        three.latency.p99_ms < one.latency.p99_ms,
        "3-host p99 {} ms vs 1-host {} ms",
        three.latency.p99_ms,
        one.latency.p99_ms
    );
    assert!(
        three.deadline_miss_rate <= one.deadline_miss_rate,
        "3-host misses {} vs 1-host {}",
        three.deadline_miss_rate,
        one.deadline_miss_rate
    );
    // The single host is the bottleneck resource: it must be busier than
    // the average sharded host.
    assert!(
        one.mean_utilisation > three.mean_utilisation,
        "1-host duty {} vs 3-host {}",
        one.mean_utilisation,
        three.mean_utilisation
    );
}
