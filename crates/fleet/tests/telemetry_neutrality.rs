//! Telemetry neutrality at fleet scale: tracing on vs off must be
//! **bit-identical** under every placement policy, and every recorded span
//! must carry the id of the host shard that actually served its frame
//! (the fleet sets the ambient host id around each shard's batch step, so
//! a mis-scoped `set_current_host` would show up here as a span filed
//! under the wrong `pid` in the exported Perfetto trace).
//!
//! The enable flag and the span ring are process-global, so the tests
//! serialise on one local mutex; the runtime uses untrained miniature
//! networks (scheduling and placement are exact regardless of training).

use bliss_fleet::{FleetConfig, FleetRuntime, PlacementPolicy};
use bliss_track::{RoiPredictionNet, SparseViT};
use blisscam_core::SystemConfig;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// Serialises tests that touch the process-global telemetry state.
fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Untrained miniature fleet (`Rc` internals keep it off statics; each
/// test rebuilds from the same seed).
fn fleet() -> FleetRuntime {
    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    FleetRuntime::with_networks(
        system,
        SparseViT::new(&mut rng, system.vit),
        RoiPredictionNet::new(&mut rng, system.roi_net),
    )
}

#[test]
fn tracing_is_bit_neutral_for_every_placement_policy() {
    let _g = telemetry_lock();
    let rt = fleet();
    bliss_telemetry::init_spans(1 << 14);
    for policy in PlacementPolicy::ALL {
        let mut cfg = FleetConfig::new(2, policy, 5, 3);
        cfg.serve.max_batch = 4;
        bliss_telemetry::set_enabled(false);
        let off = rt.serve(&cfg).expect("fleet serves");
        bliss_telemetry::set_enabled(true);
        let on = rt.serve(&cfg).expect("fleet serves");
        bliss_telemetry::set_enabled(false);
        assert_eq!(
            off,
            on,
            "tracing changed fleet results under {} placement",
            policy.label()
        );
    }
    bliss_telemetry::clear_spans();
}

#[test]
fn spans_carry_the_owning_host_id() {
    let _g = telemetry_lock();
    let rt = fleet();
    bliss_telemetry::init_spans(1 << 14);
    bliss_telemetry::clear_spans();
    bliss_telemetry::reset_metrics();
    let mut cfg = FleetConfig::new(3, PlacementPolicy::RoundRobin, 6, 3);
    cfg.serve.max_batch = 4;
    bliss_telemetry::set_enabled(true);
    let outcome = rt.serve(&cfg).expect("fleet serves");
    bliss_telemetry::set_enabled(false);
    let spans = bliss_telemetry::take_spans();

    // Placement ground truth: which host served which session.
    let mut owner: HashMap<u32, u32> = HashMap::new();
    let mut frames_total = 0usize;
    for (host, shard) in outcome.per_host.iter().enumerate() {
        for trace in &shard.traces {
            owner.insert(trace.config.id as u32, host as u32);
            frames_total += trace.records.len();
        }
    }
    assert!(owner.len() == 6, "every session was placed");
    assert_eq!(
        spans.len(),
        frames_total * bliss_telemetry::Stage::ALL.len()
    );
    assert_eq!(bliss_telemetry::spans_dropped(), 0);
    for span in &spans {
        assert_eq!(
            Some(&span.host),
            owner.get(&span.session),
            "span for session {} filed under host {}, but placement sent it to host {:?}",
            span.session,
            span.host,
            owner.get(&span.session)
        );
    }
    // All three hosts actually show up in the trace, and the ambient host
    // id is restored to 0 after the run.
    let hosts: std::collections::HashSet<u32> = spans.iter().map(|s| s.host).collect();
    assert_eq!(hosts.len(), 3);
    assert_eq!(bliss_telemetry::current_host(), 0);

    // Per-host utilisation gauges landed in the snapshot for every host.
    let snap = bliss_telemetry::metrics_snapshot();
    assert_eq!(snap.gauge("fleet_hosts"), 3.0);
    for host in 0..3u32 {
        let name = format!("host_{host}_utilisation");
        let util = snap.gauge(&name);
        assert!(
            util > 0.0 && util <= 1.0,
            "{name} should be a duty-cycle fraction, got {util}"
        );
    }
    bliss_telemetry::reset_metrics();
    bliss_telemetry::clear_spans();
}
