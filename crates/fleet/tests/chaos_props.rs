//! Property-based chaos guarantees.
//!
//! * Any [`FaultPlan`] is pure data: generating it twice from the same
//!   `(seed, hosts, horizon, mix)` yields the identical event sequence, the
//!   sequence is totally ordered, and it survives the JSON wire format.
//! * Any chaos run replays bit-for-bit: the full [`ChaosOutcome`] —
//!   injected-fault log included — is identical across repeated runs.
//! * The merged timeline stays totally ordered and gap-free when hosts drop
//!   out and rejoin mid-run.

use bliss_fleet::{ChaosConfig, FaultMix, FaultPlan, FleetConfig, FleetRuntime, PlacementPolicy};
use bliss_track::{RoiPredictionNet, SparseViT};
use blisscam_core::SystemConfig;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize as _, Serialize as _};
use std::collections::BTreeMap;

fn fleet() -> FleetRuntime {
    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    let mut rng = StdRng::seed_from_u64(0x50AC_F1EE);
    FleetRuntime::with_networks(
        system,
        SparseViT::new(&mut rng, system.vit),
        RoiPredictionNet::new(&mut rng, system.roi_net),
    )
}

fn arb_mix() -> impl Strategy<Value = FaultMix> {
    (0usize..3, 0usize..3, 0usize..3, 0usize..3).prop_map(
        |(crashes, slow_hosts, timeouts, corrupt_checkpoints)| FaultMix {
            crashes,
            slow_hosts,
            timeouts,
            corrupt_checkpoints,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fault_plans_replay_to_identical_event_sequences(
        seed in 0u64..u64::MAX,
        hosts in 1usize..6,
        horizon in 1e-3f64..10.0,
        mix in arb_mix(),
    ) {
        let a = FaultPlan::generate(seed, hosts, horizon, &mix);
        let b = FaultPlan::generate(seed, hosts, horizon, &mix);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            a.events.len(),
            mix.crashes + mix.slow_hosts + mix.timeouts + mix.corrupt_checkpoints
        );
        for e in &a.events {
            prop_assert!(e.host < hosts);
            prop_assert!(e.at_s.is_finite() && e.at_s >= 0.0 && e.at_s <= horizon);
        }
        for pair in a.events.windows(2) {
            prop_assert!(pair[1].at_s >= pair[0].at_s, "plan must be time-ordered");
        }
        // The plan is wire-safe: JSON round-trip is lossless.
        let back = FaultPlan::from_json(&a.to_json()).expect("plan round-trips");
        prop_assert_eq!(back, a);
    }
}

proptest! {
    // Each case runs the full engine three times; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chaos_runs_replay_bit_for_bit_with_ordered_gap_free_timelines(
        seed in 0u64..u64::MAX,
        policy_idx in 0usize..3,
    ) {
        bliss_parallel::with_thread_count(1, || -> Result<(), TestCaseError> {
            let fleet = &fleet();
            let cfg = {
                let mut cfg =
                    FleetConfig::new(2, PlacementPolicy::ALL[policy_idx], 4, 3);
                cfg.serve.max_batch = 4;
                cfg
            };
            let baseline = fleet.serve(&cfg).expect("serve succeeds");
            let horizon = baseline.timeline.last().expect("nonempty").time_s;
            let plan = FaultPlan::generate(seed, cfg.hosts, horizon, &FaultMix::default());
            let mut chaos = ChaosConfig::new(plan);
            chaos.checkpoint_interval = 2;

            let a = fleet.serve_chaos(&cfg, &chaos).expect("chaos succeeds");
            let b = fleet.serve_chaos(&cfg, &chaos).expect("chaos succeeds");
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a.log, &b.log);

            // Timeline totally ordered under the engine's merge key and
            // gap-free per session, even when a host dropped out mid-run.
            for pair in a.outcome.timeline.windows(2) {
                prop_assert!(pair[1].time_s >= pair[0].time_s);
            }
            let mut frames: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for e in &a.outcome.timeline {
                frames.entry(e.session).or_default().push(e.frame);
            }
            prop_assert_eq!(frames.len(), cfg.serve.sessions);
            for (id, mut seen) in frames {
                seen.sort_unstable();
                let expected: Vec<usize> = (0..cfg.serve.frames_per_session).collect();
                prop_assert_eq!(seen, expected);
                let _ = id;
            }
            Ok(())
        })?;
    }
}
