//! `bliss_fleet` — the multi-host sharded serving fleet.
//!
//! [`bliss_serve`] scales one host NPU to N sessions; this crate scales N
//! sessions to **M hosts** behind a load balancer, which is the layer a
//! "millions of users" deployment actually provisions. One trained BlissCam
//! model replica is shared by every host; a pluggable [`PlacementPolicy`]
//! (round-robin, least-loaded by outstanding virtual work, or
//! scenario-affinity) routes each session to a shard; each shard runs the
//! full deterministic virtual-time scheduler with cross-session batched
//! inference; and the per-host completion-event queues are k-way merged
//! into one fleet-wide timeline ([`merge_timelines`]).
//!
//! Three invariants carry over from the serve layer and are enforced by
//! this crate's determinism suite:
//!
//! * a session's accuracy/volume/energy outputs are **bit-identical**
//!   whether it runs solo, in a single-host fleet or sharded — placement
//!   only moves *timing*;
//! * a whole [`FleetOutcome`] is bit-identical for a fixed
//!   `(sessions, hosts, policy, seed)` across 1/2/8-thread pools;
//! * under the launch-overhead host model, adding hosts past the
//!   single-host saturation knee scales throughput (each shard drops back
//!   toward the knee), which `cargo run -p bliss_bench --bin fleet_sweep`
//!   records into `BENCH_fleet.json`.
//!
//! # Quickstart
//!
//! ```no_run
//! use bliss_fleet::{FleetConfig, FleetRuntime, PlacementPolicy};
//! use blisscam_core::SystemConfig;
//! use serde::Serialize as _;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Train the shared BlissCam networks once (seconds at miniature scale),
//! // then shard 16 scenario-diverse sessions across 4 simulated host NPUs.
//! let fleet = FleetRuntime::new(SystemConfig::miniature())?.with_paper_scale_timing();
//! let cfg = FleetConfig::new(4, PlacementPolicy::LeastLoaded, 16, 24);
//! let outcome = fleet.serve(&cfg)?;
//! let report = &outcome.report;
//! println!(
//!     "fleet p50/p99 {:.2}/{:.2} ms, {:.1}% misses, {:.0} frames/s, {:.0}% mean NPU duty",
//!     report.latency.p50_ms,
//!     report.latency.p99_ms,
//!     report.deadline_miss_rate * 100.0,
//!     report.throughput_fps,
//!     report.mean_utilisation * 100.0,
//! );
//! for host in &report.per_host {
//!     println!(
//!         "  host {}: {} sessions, {:.0} frames/s, {:.0}% duty",
//!         host.host,
//!         host.sessions,
//!         host.report.throughput_fps,
//!         host.report.utilisation * 100.0,
//!     );
//! }
//! println!("{}", report.to_json());
//! # Ok(())
//! # }
//! ```
//!
//! Both fleet entry points carry **runnable** doctests too: a smoke-scale
//! untrained fleet on [`FleetRuntime::with_networks`] (scheduling is exact
//! even when accuracy is meaningless) and pure placement math on
//! [`PlacementPolicy::assign`].

#![warn(missing_docs)]

mod chaos;
mod placement;
mod report;
mod runtime;
mod snapshot;

pub use chaos::{
    ChaosConfig, ChaosOutcome, ChaosReport, DegradationPolicy, FaultEvent, FaultKind, FaultMix,
    FaultPlan, InjectedFault, SurvivalPoint,
};
pub use placement::PlacementPolicy;
pub use report::{merge_timelines, FaultStats, FleetEvent, FleetReport, HostReport};
pub use runtime::{FleetConfig, FleetOutcome, FleetRuntime, FleetState};
pub use snapshot::FleetSnapshot;
