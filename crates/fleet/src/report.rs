use crate::runtime::FleetConfig;
use bliss_serve::{LatencyStats, ServeOutcome, ServeReport};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One gaze-output event in the fleet-wide merged timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetEvent {
    /// Completion (gaze-output) time in virtual seconds.
    pub time_s: f64,
    /// Host NPU that served the frame.
    pub host: usize,
    /// Owning session id.
    pub session: usize,
    /// Frame index within the session.
    pub frame: usize,
    /// End-to-end latency of the frame, seconds.
    pub latency_s: f64,
    /// Whether the frame missed its deadline.
    pub deadline_missed: bool,
}

/// One host shard's aggregate results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostReport {
    /// Host index within the fleet.
    pub host: usize,
    /// Sessions the placement policy routed here.
    pub sessions: usize,
    /// The shard's full serving report (latency percentiles, miss rate,
    /// throughput, energy, NPU utilisation).
    pub report: ServeReport,
}

/// Fault-injection and recovery counters of one fleet run. All-zero for a
/// fault-free run ([`FleetRuntime::serve`](crate::FleetRuntime::serve));
/// the chaos engine ([`crate::FleetRuntime::serve_chaos`]) fills them in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults the plan actually triggered (a fault aimed at an
    /// already-drained host is a no-op and does not count).
    pub faults_injected: usize,
    /// Host crashes recovered by snapshot-based failover.
    pub failovers: usize,
    /// Sessions moved onto surviving hosts by failover.
    pub sessions_recovered: usize,
    /// Frames re-served after failover (progress lost between the dead
    /// host's last good checkpoint and its crash).
    pub frames_replayed: usize,
    /// Frames shed by graceful degradation (served without host inference).
    pub frames_shed: usize,
    /// Batch launches that timed out and were retried with backoff.
    pub batch_timeouts: usize,
    /// Checkpoint reads that failed to parse during failover.
    pub corrupt_checkpoint_reads: usize,
    /// Periodic per-host checkpoints taken.
    pub checkpoints_taken: usize,
}

/// Aggregate results of one fleet run — the `BENCH_fleet.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Host NPUs in the fleet.
    pub hosts: usize,
    /// Placement policy label (see [`crate::PlacementPolicy::label`]).
    pub policy: String,
    /// Sessions served fleet-wide.
    pub sessions: usize,
    /// Frames served fleet-wide.
    pub frames_total: usize,
    /// Latency percentiles across every frame of every host.
    pub latency: LatencyStats,
    /// Fraction of frames past their deadline, fleet-wide.
    pub deadline_miss_rate: f64,
    /// Served frames per virtual second over the fleet span (first arrival
    /// anywhere to last completion anywhere).
    pub throughput_fps: f64,
    /// Mean frames fused per host launch, fleet-wide.
    pub mean_batch_size: f64,
    /// Mean per-frame energy in microjoules.
    pub mean_energy_uj: f64,
    /// Mean host-NPU duty cycle across shards that served frames.
    pub mean_utilisation: f64,
    /// Per-host breakdowns (empty shards included, so host indices align).
    pub per_host: Vec<HostReport>,
    /// Fault-injection and recovery counters (all zero without chaos).
    pub faults: FaultStats,
}

impl FleetReport {
    /// Aggregates the per-host outcomes of one fleet run.
    ///
    /// `assignment` is the placement result (host index per admitted
    /// session); `timeline` is the merged event queue from
    /// [`merge_timelines`].
    pub fn from_hosts(
        cfg: &FleetConfig,
        assignment: &[usize],
        per_host: &[ServeOutcome],
        timeline: &[FleetEvent],
    ) -> Self {
        let mut all_latencies = Vec::new();
        let mut misses = 0usize;
        let mut frames_total = 0usize;
        let mut energy_j = 0.0f64;
        let mut inv_batch = 0.0f64;
        let mut first_arrival = f64::INFINITY;
        for outcome in per_host {
            for trace in &outcome.traces {
                for r in &trace.records {
                    all_latencies.push(r.latency_s);
                    misses += usize::from(r.deadline_missed);
                    frames_total += 1;
                    energy_j += r.energy_j;
                    inv_batch += 1.0 / r.batch_size as f64;
                    first_arrival = first_arrival.min(r.arrival_s);
                }
            }
        }
        let last_completion = timeline.last().map_or(f64::NEG_INFINITY, |e| e.time_s);
        let span_s = (last_completion - first_arrival).max(f64::MIN_POSITIVE);

        let per_host: Vec<HostReport> = per_host
            .iter()
            .enumerate()
            .map(|(host, outcome)| HostReport {
                host,
                sessions: outcome.traces.len(),
                report: outcome.report.clone(),
            })
            .collect();
        let busy: Vec<&HostReport> = per_host
            .iter()
            .filter(|h| h.report.frames_total > 0)
            .collect();
        let mean_utilisation =
            busy.iter().map(|h| h.report.utilisation).sum::<f64>() / busy.len().max(1) as f64;

        FleetReport {
            hosts: cfg.hosts,
            policy: cfg.placement.label().to_string(),
            sessions: assignment.len(),
            frames_total,
            latency: LatencyStats::from_latencies_s(&all_latencies),
            deadline_miss_rate: misses as f64 / frames_total.max(1) as f64,
            throughput_fps: if frames_total == 0 {
                0.0
            } else {
                frames_total as f64 / span_s
            },
            mean_batch_size: if inv_batch > 0.0 {
                frames_total as f64 / inv_batch
            } else {
                0.0
            },
            mean_energy_uj: energy_j / frames_total.max(1) as f64 * 1e6,
            mean_utilisation,
            per_host,
            faults: FaultStats::default(),
        }
    }
}

/// Merges the per-host completion-event queues into one fleet-wide,
/// virtual-time-ordered stream.
///
/// Each host's records are first ordered into its own event queue (by
/// completion time, then session id, then frame index — a total order, so
/// simultaneous completions never reorder between runs), then the queues are
/// k-way merged with the host index as the final tie-breaker. The result is
/// deterministic for a fixed fleet configuration regardless of host count,
/// thread pool or traversal order.
pub fn merge_timelines(per_host: &[ServeOutcome]) -> Vec<FleetEvent> {
    // Build each host's sorted event queue.
    let queues: Vec<Vec<FleetEvent>> = per_host
        .iter()
        .enumerate()
        .map(|(host, outcome)| {
            let mut q: Vec<FleetEvent> = outcome
                .traces
                .iter()
                .flat_map(|t| {
                    t.records.iter().map(move |r| FleetEvent {
                        time_s: r.completion_s,
                        host,
                        session: t.config.id,
                        frame: r.index,
                        latency_s: r.latency_s,
                        deadline_missed: r.deadline_missed,
                    })
                })
                .collect();
            q.sort_by(|a, b| {
                a.time_s
                    .total_cmp(&b.time_s)
                    .then(a.session.cmp(&b.session))
                    .then(a.frame.cmp(&b.frame))
            });
            q
        })
        .collect();

    // K-way merge keyed on (time, host, session, frame).
    #[derive(PartialEq)]
    struct Key(f64, usize, usize, usize);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .total_cmp(&other.0)
                .then(self.1.cmp(&other.1))
                .then(self.2.cmp(&other.2))
                .then(self.3.cmp(&other.3))
        }
    }

    let total: usize = queues.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut heads: Vec<usize> = vec![0; queues.len()];
    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    for (host, q) in queues.iter().enumerate() {
        if let Some(e) = q.first() {
            heap.push(Reverse((Key(e.time_s, e.host, e.session, e.frame), host)));
        }
    }
    while let Some(Reverse((_, host))) = heap.pop() {
        let e = queues[host][heads[host]];
        merged.push(e);
        heads[host] += 1;
        if let Some(next) = queues[host].get(heads[host]) {
            heap.push(Reverse((
                Key(next.time_s, next.host, next.session, next.frame),
                host,
            )));
        }
    }
    merged
}
