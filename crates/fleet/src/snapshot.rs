//! Whole-fleet durable-serving snapshots.
//!
//! A [`FleetSnapshot`] freezes every host shard at a batch boundary by
//! composing one [`ServeSnapshot`] per host with the fleet's
//! session→host assignment and placement policy. All hosts are replicas of
//! one model, so [`FleetRuntime::restore`] rebuilds the shared runtime from
//! host 0's snapshot and only the per-shard scheduler/session states differ
//! between hosts. The restored fleet continues bit-identically to the
//! uninterrupted run — the same guarantee the serve layer makes, lifted
//! over the k-way shard composition (hosts are independent, so per-shard
//! bit-identity composes).
//!
//! The version field is checked before full deserialisation, exactly like
//! the serve layer's ([`bliss_serve::SNAPSHOT_VERSION`] governs both — the
//! per-host payloads embed their own version, and the fleet envelope
//! re-checks it at the top level so a stale file fails loudly at the door).

use crate::placement::PlacementPolicy;
use crate::runtime::{FleetConfig, FleetRuntime, FleetState};
use bliss_serve::{ServeSnapshot, SnapshotError, SNAPSHOT_VERSION};
use serde::{Deserialize, JsonValue, Serialize};

/// A whole fleet frozen at a batch boundary on every host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// Wire-format version ([`SNAPSHOT_VERSION`]); checked before anything
    /// else on restore.
    pub version: u32,
    /// Host NPUs behind the load balancer.
    pub hosts: usize,
    /// How sessions map onto hosts.
    pub placement: PlacementPolicy,
    /// Session→host routing of the frozen run.
    pub assignment: Vec<usize>,
    /// Each host shard's full serving snapshot, indexed by host.
    pub per_host: Vec<ServeSnapshot>,
}

impl FleetSnapshot {
    /// Parses a fleet snapshot from JSON, checking the envelope version
    /// **before** deserialising the rest.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Version`] on a version mismatch,
    /// [`SnapshotError::Json`] on malformed JSON.
    pub fn parse(json: &str) -> Result<Self, SnapshotError> {
        let value = JsonValue::parse(json).map_err(SnapshotError::Json)?;
        let version_field = value.field("version").map_err(SnapshotError::Json)?;
        let version = u32::from_json_value(version_field).map_err(SnapshotError::Json)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        Self::from_json_value(&value).map_err(SnapshotError::Json)
    }
}

impl FleetRuntime {
    /// Captures the fleet at its current batch boundaries.
    ///
    /// `cfg` must be the fleet configuration the run is stepping under.
    pub fn snapshot(&self, cfg: &FleetConfig, state: &FleetState) -> FleetSnapshot {
        FleetSnapshot {
            version: SNAPSHOT_VERSION,
            hosts: cfg.hosts,
            placement: cfg.placement,
            assignment: state.assignment.clone(),
            per_host: state
                .shard_cfgs
                .iter()
                .zip(&state.shards)
                .map(|(shard_cfg, shard)| self.serve_runtime().snapshot(shard_cfg, shard))
                .collect(),
        }
    }

    /// Rebuilds a fleet and its in-flight state from a snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on an empty host list or weight shapes
    /// that do not match the recorded system configuration. Shard-level
    /// errors are wrapped in [`SnapshotError::Host`] with the offending
    /// host id (and, for per-session corruption, the session id inside),
    /// so a corrupt shard is diagnosable from the message alone.
    pub fn restore(
        snapshot: &FleetSnapshot,
    ) -> Result<(FleetRuntime, FleetConfig, FleetState), SnapshotError> {
        let first = snapshot.per_host.first().ok_or_else(|| {
            SnapshotError::Corrupt("fleet snapshot contains no host shards".into())
        })?;
        // All hosts are replicas of one model: rebuild the shared runtime
        // once from host 0, then restore each shard's scheduler state
        // against it.
        let (runtime, _, _) =
            bliss_serve::ServeRuntime::restore(first).map_err(|e| SnapshotError::for_host(0, e))?;
        let fleet = FleetRuntime { runtime };
        let mut shard_cfgs = Vec::with_capacity(snapshot.per_host.len());
        let mut shards = Vec::with_capacity(snapshot.per_host.len());
        for (host_id, host) in snapshot.per_host.iter().enumerate() {
            let (_, shard_cfg, shard) = bliss_serve::ServeRuntime::restore(host)
                .map_err(|e| SnapshotError::for_host(host_id, e))?;
            shard_cfgs.push(shard_cfg);
            shards.push(shard);
        }
        // The fleet-wide config: per-shard settings are identical except for
        // the session count, which is fleet-wide at this level.
        let mut serve = first.serve;
        serve.sessions = snapshot.assignment.len();
        let cfg = FleetConfig {
            hosts: snapshot.hosts,
            placement: snapshot.placement,
            serve,
        };
        let state = FleetState {
            assignment: snapshot.assignment.clone(),
            shard_cfgs,
            shards,
        };
        Ok((fleet, cfg, state))
    }
}
