use crate::placement::PlacementPolicy;
use crate::report::{merge_timelines, FleetEvent, FleetReport};
use bliss_serve::{ServeConfig, ServeOutcome, ServeRuntime, ServeState, SessionConfig};
use bliss_tensor::TensorError;
use bliss_track::{RoiPredictionNet, SparseViT};
use blisscam_core::SystemConfig;
use serde::{Deserialize, Serialize};

/// Load, sharding and scheduling parameters of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Host NPUs behind the load balancer.
    pub hosts: usize,
    /// How sessions map onto hosts.
    pub placement: PlacementPolicy,
    /// Per-shard serving parameters; `serve.sessions` is the **fleet-wide**
    /// session count (the placement policy decides who lands where).
    pub serve: ServeConfig,
}

impl FleetConfig {
    /// A fleet load point at the paper's 120 FPS tracking rate: `sessions`
    /// concurrent sessions of `frames` frames each, sharded across `hosts`
    /// hosts by `placement`, with each shard running the serve layer's
    /// default work-conserving batching.
    pub fn new(hosts: usize, placement: PlacementPolicy, sessions: usize, frames: usize) -> Self {
        FleetConfig {
            hosts,
            placement,
            serve: ServeConfig::new(sessions, frames),
        }
    }
}

/// Resumable state of one in-flight fleet run: every host shard's scheduler
/// state plus the session→host assignment.
///
/// Produced by [`FleetRuntime::start`], advanced by [`FleetRuntime::step`]
/// (one fused batch on every unfinished host per call — hosts are
/// independent hardware, so the relative stepping order cannot affect any
/// shard's results), and folded into the final [`FleetOutcome`] by
/// [`FleetRuntime::finish`]. Between steps the fleet sits at a batch
/// boundary on every host — the instants [`FleetRuntime::snapshot`]
/// captures.
#[derive(Debug)]
pub struct FleetState {
    pub(crate) assignment: Vec<usize>,
    pub(crate) shard_cfgs: Vec<ServeConfig>,
    pub(crate) shards: Vec<ServeState>,
}

impl FleetState {
    /// Total frames served so far across every host.
    pub fn frames_served(&self) -> usize {
        self.shards.iter().map(|s| s.frames_served()).sum()
    }

    /// Whether every host's shard has drained.
    pub fn is_done(&self) -> bool {
        self.shards.iter().all(|s| s.is_done())
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Aggregate + per-host statistics.
    pub report: FleetReport,
    /// Each host shard's full serving outcome, indexed by host.
    pub per_host: Vec<ServeOutcome>,
    /// The fleet-wide merged completion-event timeline (see
    /// [`merge_timelines`]).
    pub timeline: Vec<FleetEvent>,
}

/// The multi-host sharded serving fleet.
///
/// One trained BlissCam model replica is shared by `M` simulated host NPUs
/// behind a load balancer: a [`PlacementPolicy`] routes each admitted
/// session to a host, every host runs the full [`ServeRuntime`]
/// virtual-time scheduler over its shard (cross-session batching included),
/// and the per-host event queues are k-way merged into one deterministic
/// fleet timeline. Hosts are independent NPUs — no virtual time flows
/// between shards — so fleet throughput scales with `M` until the per-host
/// shard drops below the single-host saturation knee.
///
/// Determinism inherits from the serve layer: every session's
/// accuracy/volume/energy outputs are bit-identical to a solo run, and the
/// whole [`FleetOutcome`] is bit-identical for a fixed
/// `(sessions, hosts, policy, seed)` on any thread pool.
///
/// Compiled inference plans are **shared across hosts**: every shard serves
/// through the same model replica, whose plan cache is keyed only by batch
/// span layout — so a plan compiled while serving host 0's shard is a pure
/// cache hit when host 5 sees the same layout, and fleet-wide compilation
/// cost stays that of a single host (see
/// [`ServeRuntime::vit_plan_stats`]).
#[derive(Debug)]
pub struct FleetRuntime {
    pub(crate) runtime: ServeRuntime,
}

impl FleetRuntime {
    /// Trains the shared networks for `system` (seconds at miniature scale)
    /// and prepares the fleet.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from training.
    pub fn new(system: SystemConfig) -> Result<Self, TensorError> {
        Ok(FleetRuntime {
            runtime: ServeRuntime::new(system)?,
        })
    }

    /// Wraps already-trained networks (shares parameters, no copy).
    ///
    /// # Examples
    ///
    /// A runnable smoke-scale fleet — untrained miniature networks (accuracy
    /// is meaningless, scheduling is exact), 4 sessions on 2 hosts:
    ///
    /// ```
    /// use bliss_fleet::{FleetConfig, FleetRuntime, PlacementPolicy};
    /// use bliss_track::{RoiPredictionNet, SparseViT};
    /// use blisscam_core::SystemConfig;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut system = SystemConfig::miniature();
    /// system.vit.dim = 12;
    /// system.vit.enc_depth = 1;
    /// system.vit.dec_depth = 1;
    /// system.roi_net.hidden = 16;
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let fleet = FleetRuntime::with_networks(
    ///     system,
    ///     SparseViT::new(&mut rng, system.vit),
    ///     RoiPredictionNet::new(&mut rng, system.roi_net),
    /// );
    /// let cfg = FleetConfig::new(2, PlacementPolicy::RoundRobin, 4, 2);
    /// let outcome = fleet.serve(&cfg)?;
    /// assert_eq!(outcome.report.hosts, 2);
    /// assert_eq!(outcome.report.frames_total, 4 * 2);
    /// assert_eq!(outcome.timeline.len(), 4 * 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_networks(system: SystemConfig, vit: SparseViT, roi_net: RoiPredictionNet) -> Self {
        FleetRuntime {
            runtime: ServeRuntime::with_networks(system, vit, roi_net),
        }
    }

    /// Switches every host's latency accounting to the paper's hardware
    /// point (640x400 @ 120 FPS, ViT-S host on a 7 nm NPU); see
    /// `ServeRuntime::with_paper_scale_timing`.
    pub fn with_paper_scale_timing(mut self) -> Self {
        self.runtime = self.runtime.with_paper_scale_timing();
        self
    }

    /// Forces every host's inference back onto the autograd tape path,
    /// bypassing the compiled execution plans (see
    /// [`ServeRuntime::without_planned_inference`]); results are
    /// bit-identical either way.
    pub fn without_planned_inference(mut self) -> Self {
        self.runtime = self.runtime.without_planned_inference();
        self
    }

    /// The per-host serving runtime (all hosts are identical replicas).
    pub fn serve_runtime(&self) -> &ServeRuntime {
        &self.runtime
    }

    /// The deterministic fleet-wide session population for a load point
    /// (scenarios round-robin, seeds and arrival offsets derived per id) —
    /// the same population a single [`ServeRuntime`] would admit, so
    /// single-host and fleet runs are directly comparable.
    pub fn session_configs(&self, cfg: &FleetConfig) -> Vec<SessionConfig> {
        self.runtime.session_configs(&cfg.serve)
    }

    /// Serves the full fleet of [`FleetRuntime::session_configs`].
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from inference.
    pub fn serve(&self, cfg: &FleetConfig) -> Result<FleetOutcome, TensorError> {
        self.serve_sessions(cfg, self.session_configs(cfg))
    }

    /// Shards an explicit session population across the fleet's hosts and
    /// serves every shard.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from inference.
    pub fn serve_sessions(
        &self,
        cfg: &FleetConfig,
        sessions: Vec<SessionConfig>,
    ) -> Result<FleetOutcome, TensorError> {
        let mut state = self.start_sessions(cfg, sessions);
        while self.step(&mut state)? {}
        Ok(self.finish(cfg, state))
    }

    /// Starts a resumable fleet run over [`FleetRuntime::session_configs`].
    pub fn start(&self, cfg: &FleetConfig) -> FleetState {
        self.start_sessions(cfg, self.session_configs(cfg))
    }

    /// Starts a resumable run over an explicit session population: routes
    /// every session to its host and primes each shard's scheduler.
    ///
    /// Each host runs its shard under the shard-sized serve config. Hosts
    /// are independent hardware; the shared model parameters are read-only,
    /// so shard order cannot affect results — the determinism suite pins
    /// this.
    pub fn start_sessions(&self, cfg: &FleetConfig, sessions: Vec<SessionConfig>) -> FleetState {
        // One shared model serves every shard, so the precision state (and
        // any int8 calibration it needs) is established once fleet-wide; an
        // int8 precision error surfaces at the first step instead of here.
        let _ = self.runtime.apply_precision(&cfg.serve);
        let assignment = cfg.placement.assign(&sessions, cfg.hosts);
        let mut shards: Vec<Vec<SessionConfig>> = vec![Vec::new(); cfg.hosts];
        for (sc, &host) in sessions.iter().zip(&assignment) {
            shards[host].push(*sc);
        }
        let mut shard_cfgs = Vec::with_capacity(cfg.hosts);
        let mut states = Vec::with_capacity(cfg.hosts);
        for shard in shards {
            let mut shard_cfg = cfg.serve;
            shard_cfg.sessions = shard.len();
            states.push(self.runtime.start_sessions(shard));
            shard_cfgs.push(shard_cfg);
        }
        FleetState {
            assignment,
            shard_cfgs,
            shards: states,
        }
    }

    /// Advances every unfinished host shard by one fused batch. Returns
    /// `false` once the whole fleet has drained (nothing was executed).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from inference.
    pub fn step(&self, state: &mut FleetState) -> Result<bool, TensorError> {
        let mut advanced = false;
        for (host, (shard_cfg, shard)) in state
            .shard_cfgs
            .iter()
            .zip(state.shards.iter_mut())
            .enumerate()
        {
            // Shards step serially on this thread, so the ambient host id
            // tags every span the shard's batch emits. Telemetry-only: the
            // scheduler never reads it back.
            bliss_telemetry::set_current_host(host as u32);
            advanced |= self.runtime.step_batch(shard_cfg, shard)?;
        }
        bliss_telemetry::set_current_host(0);
        Ok(advanced)
    }

    /// Folds a drained (or deliberately abandoned) fleet run into its
    /// outcome.
    pub fn finish(&self, cfg: &FleetConfig, state: FleetState) -> FleetOutcome {
        let per_host: Vec<ServeOutcome> = state
            .shard_cfgs
            .iter()
            .zip(state.shards)
            .map(|(shard_cfg, shard)| self.runtime.finish(shard_cfg, shard))
            .collect();
        let timeline = merge_timelines(&per_host);
        let report = FleetReport::from_hosts(cfg, &state.assignment, &per_host, &timeline);
        if bliss_telemetry::enabled() {
            use bliss_telemetry::metrics as m;
            m::FLEET_HOSTS.set(cfg.hosts as f64);
            for (host, outcome) in per_host.iter().enumerate().take(m::MAX_HOSTS) {
                m::HOST_UTILISATION[host].set(outcome.report.utilisation);
            }
        }
        FleetOutcome {
            report,
            per_host,
            timeline,
        }
    }
}
