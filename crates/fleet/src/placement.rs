use bliss_serve::SessionConfig;
use serde::{Deserialize, Serialize};

/// How a fleet's load balancer maps sessions onto host NPUs.
///
/// Placement runs at admission time over the full session list and is a
/// pure function of `(sessions, hosts)` — no wall clock, no RNG — so a
/// fleet schedule is reproducible from its configuration alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Session `i` lands on host `i % hosts` — the stateless baseline every
    /// production load balancer offers.
    RoundRobin,
    /// Greedy balancing by outstanding virtual work: each session (in id
    /// order) lands on the host with the fewest frames already queued, ties
    /// to the lowest host id. Equals round-robin on homogeneous fleets but
    /// keeps heterogeneous session lengths level.
    LeastLoaded,
    /// Sessions replaying the same [`Scenario`](bliss_eye::Scenario) share a
    /// host where load allows: co-locating similar oculomotor dynamics
    /// aligns frame readiness within a shard, which feeds the cross-session
    /// batcher larger fusable sets. A scenario group whose total frames
    /// exceed the fleet-mean load is **split** into affinity chunks no
    /// larger than that mean before packing (greedily, onto the
    /// least-loaded host) — so no shard exceeds the mean load by more than
    /// one chunk, instead of one oversized group capsizing its host while
    /// others idle.
    ScenarioAffinity,
}

impl PlacementPolicy {
    /// Every policy, in the sweep's presentation order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::ScenarioAffinity,
    ];

    /// Display label (appears in `BENCH_fleet.json`).
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::ScenarioAffinity => "scenario-affinity",
        }
    }

    /// Assigns every session to a host, returning one host index per
    /// session (position-aligned with `sessions`).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use bliss_fleet::PlacementPolicy;
    /// use bliss_serve::SessionConfig;
    /// use bliss_eye::Scenario;
    ///
    /// let sessions: Vec<SessionConfig> = (0..5)
    ///     .map(|id| SessionConfig {
    ///         id,
    ///         scenario: Scenario::for_index(id),
    ///         seed: id as u64,
    ///         // Heterogeneous workloads: session 0 is 10x longer.
    ///         frames: if id == 0 { 40 } else { 4 },
    ///         start_offset_s: 0.0,
    ///     })
    ///     .collect();
    ///
    /// let rr = PlacementPolicy::RoundRobin.assign(&sessions, 2);
    /// assert_eq!(rr, [0, 1, 0, 1, 0]);
    ///
    /// // Least-loaded isolates the long session instead of stacking two
    /// // short ones next to it.
    /// let ll = PlacementPolicy::LeastLoaded.assign(&sessions, 2);
    /// assert_eq!(ll, [0, 1, 1, 1, 1]);
    /// ```
    pub fn assign(&self, sessions: &[SessionConfig], hosts: usize) -> Vec<usize> {
        assert!(hosts > 0, "a fleet needs at least one host");
        match self {
            PlacementPolicy::RoundRobin => (0..sessions.len()).map(|i| i % hosts).collect(),
            PlacementPolicy::LeastLoaded => {
                let mut load = vec![0u64; hosts];
                sessions
                    .iter()
                    .map(|s| {
                        let h = least_loaded(&load);
                        load[h] += s.frames.max(1) as u64;
                        h
                    })
                    .collect()
            }
            PlacementPolicy::ScenarioAffinity => {
                // Group sessions by scenario in first-appearance order.
                let mut groups: Vec<(bliss_eye::Scenario, Vec<usize>)> = Vec::new();
                for (i, s) in sessions.iter().enumerate() {
                    match groups.iter_mut().find(|(sc, _)| *sc == s.scenario) {
                        Some((_, members)) => members.push(i),
                        None => groups.push((s.scenario, vec![i])),
                    }
                }
                // Split any group whose frame total exceeds the fleet-mean
                // load into chunks of at most that mean (ceil'd), cut in
                // session order so co-location degrades gracefully: a group
                // that fits stays whole, an oversized one becomes the
                // fewest affinity chunks that still balance.
                let total: u64 = sessions.iter().map(|s| s.frames.max(1) as u64).sum();
                let target = total.div_ceil(hosts as u64).max(1);
                let mut load = vec![0u64; hosts];
                let mut assignment = vec![0usize; sessions.len()];
                for (_, members) in &groups {
                    let mut chunk: Vec<usize> = Vec::new();
                    let mut chunk_frames = 0u64;
                    for &i in members {
                        let f = sessions[i].frames.max(1) as u64;
                        // The chunk's first member is always admitted, so a
                        // single session longer than the mean still places.
                        if !chunk.is_empty() && chunk_frames + f > target {
                            let h = least_loaded(&load);
                            load[h] += chunk_frames;
                            for &j in &chunk {
                                assignment[j] = h;
                            }
                            chunk.clear();
                            chunk_frames = 0;
                        }
                        chunk.push(i);
                        chunk_frames += f;
                    }
                    if !chunk.is_empty() {
                        let h = least_loaded(&load);
                        load[h] += chunk_frames;
                        for &j in &chunk {
                            assignment[j] = h;
                        }
                    }
                }
                assignment
            }
        }
    }
}

/// Index of the minimum load, ties to the lowest host id.
fn least_loaded(load: &[u64]) -> usize {
    let mut best = 0usize;
    for (h, &l) in load.iter().enumerate().skip(1) {
        if l < load[best] {
            best = h;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_eye::Scenario;

    fn fleet(n: usize, frames: usize) -> Vec<SessionConfig> {
        (0..n)
            .map(|id| SessionConfig {
                id,
                scenario: Scenario::for_index(id),
                seed: id as u64,
                frames,
                start_offset_s: 0.0,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_hosts() {
        let a = PlacementPolicy::RoundRobin.assign(&fleet(7, 4), 3);
        assert_eq!(a, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_equals_round_robin_on_homogeneous_fleets() {
        let s = fleet(8, 6);
        assert_eq!(
            PlacementPolicy::LeastLoaded.assign(&s, 3),
            PlacementPolicy::RoundRobin.assign(&s, 3)
        );
    }

    #[test]
    fn least_loaded_levels_heterogeneous_sessions() {
        let mut s = fleet(5, 4);
        s[0].frames = 100;
        let a = PlacementPolicy::LeastLoaded.assign(&s, 2);
        // The long session gets a host to itself until the others catch up.
        assert_eq!(a[0], 0);
        assert!(a[1..].iter().all(|&h| h == 1), "{a:?}");
    }

    #[test]
    fn scenario_affinity_colocates_scenarios() {
        // 10 sessions cycle through the 5 scenarios twice; sessions sharing
        // a scenario must share a host, for any host count.
        let s = fleet(10, 4);
        for hosts in 1..=5 {
            let a = PlacementPolicy::ScenarioAffinity.assign(&s, hosts);
            for i in 0..5 {
                assert_eq!(a[i], a[i + 5], "scenario {i} split across hosts");
            }
            assert!(a.iter().all(|&h| h < hosts));
        }
    }

    #[test]
    fn scenario_affinity_splits_oversized_groups() {
        // The ROADMAP-carried imbalance case: 32 sessions cycling 5
        // scenarios on 8 hosts. Whole-group packing leaves 3 hosts idle
        // while the busiest carries a 168-frame group; chunked packing must
        // use every host and bound the spread by one chunk (the ceil'd
        // fleet-mean load).
        let s = fleet(32, 24);
        let hosts = 8;
        let a = PlacementPolicy::ScenarioAffinity.assign(&s, hosts);
        let target = (32u64 * 24).div_ceil(hosts as u64);
        let mut load = vec![0u64; hosts];
        for (sc, &h) in s.iter().zip(&a) {
            load[h] += sc.frames as u64;
        }
        assert!(load.iter().all(|&l| l > 0), "idle host: {load:?}");
        let (min, max) = (*load.iter().min().unwrap(), *load.iter().max().unwrap());
        assert!(
            max - min <= target,
            "spread {} > {target}: {load:?}",
            max - min
        );
        // Affinity still holds within chunks: sessions sharing a scenario
        // land on at most ceil(group/target) hosts, not scattered.
        for scen in 0..5 {
            let hosts_used: std::collections::BTreeSet<usize> = s
                .iter()
                .zip(&a)
                .filter(|(sc, _)| sc.scenario == Scenario::for_index(scen))
                .map(|(_, &h)| h)
                .collect();
            let group: u64 = s
                .iter()
                .filter(|sc| sc.scenario == Scenario::for_index(scen))
                .map(|sc| sc.frames as u64)
                .sum();
            let max_chunks = group.div_ceil(target).max(1) as usize;
            assert!(
                hosts_used.len() <= max_chunks + 1,
                "scenario {scen} scattered over {hosts_used:?}"
            );
        }
    }

    #[test]
    fn every_policy_places_every_session() {
        let s = fleet(11, 4);
        for policy in PlacementPolicy::ALL {
            for hosts in [1usize, 2, 4] {
                let a = policy.assign(&s, hosts);
                assert_eq!(a.len(), s.len(), "{policy:?}");
                assert!(a.iter().all(|&h| h < hosts), "{policy:?}");
                // No host left idle while another holds 2+ sessions more
                // (these policies all balance homogeneous fleets).
                let mut counts = vec![0usize; hosts];
                for &h in &a {
                    counts[h] += 1;
                }
                if policy != PlacementPolicy::ScenarioAffinity {
                    let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
                    assert!(max - min <= 1, "{policy:?}: {counts:?}");
                }
            }
        }
    }
}
