use bliss_serve::SessionConfig;
use serde::{Deserialize, Serialize};

/// How a fleet's load balancer maps sessions onto host NPUs.
///
/// Placement runs at admission time over the full session list and is a
/// pure function of `(sessions, hosts)` — no wall clock, no RNG — so a
/// fleet schedule is reproducible from its configuration alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Session `i` lands on host `i % hosts` — the stateless baseline every
    /// production load balancer offers.
    RoundRobin,
    /// Greedy balancing by outstanding virtual work: each session (in id
    /// order) lands on the host with the fewest frames already queued, ties
    /// to the lowest host id. Equals round-robin on homogeneous fleets but
    /// keeps heterogeneous session lengths level.
    LeastLoaded,
    /// Sessions replaying the same [`Scenario`](bliss_eye::Scenario) share a
    /// host (scenario groups are packed onto hosts greedily by total
    /// frames): co-locating similar oculomotor dynamics aligns frame
    /// readiness within a shard, which feeds the cross-session batcher
    /// larger fusable sets.
    ScenarioAffinity,
}

impl PlacementPolicy {
    /// Every policy, in the sweep's presentation order.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastLoaded,
        PlacementPolicy::ScenarioAffinity,
    ];

    /// Display label (appears in `BENCH_fleet.json`).
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::ScenarioAffinity => "scenario-affinity",
        }
    }

    /// Assigns every session to a host, returning one host index per
    /// session (position-aligned with `sessions`).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use bliss_fleet::PlacementPolicy;
    /// use bliss_serve::SessionConfig;
    /// use bliss_eye::Scenario;
    ///
    /// let sessions: Vec<SessionConfig> = (0..5)
    ///     .map(|id| SessionConfig {
    ///         id,
    ///         scenario: Scenario::for_index(id),
    ///         seed: id as u64,
    ///         // Heterogeneous workloads: session 0 is 10x longer.
    ///         frames: if id == 0 { 40 } else { 4 },
    ///         start_offset_s: 0.0,
    ///     })
    ///     .collect();
    ///
    /// let rr = PlacementPolicy::RoundRobin.assign(&sessions, 2);
    /// assert_eq!(rr, [0, 1, 0, 1, 0]);
    ///
    /// // Least-loaded isolates the long session instead of stacking two
    /// // short ones next to it.
    /// let ll = PlacementPolicy::LeastLoaded.assign(&sessions, 2);
    /// assert_eq!(ll, [0, 1, 1, 1, 1]);
    /// ```
    pub fn assign(&self, sessions: &[SessionConfig], hosts: usize) -> Vec<usize> {
        assert!(hosts > 0, "a fleet needs at least one host");
        match self {
            PlacementPolicy::RoundRobin => (0..sessions.len()).map(|i| i % hosts).collect(),
            PlacementPolicy::LeastLoaded => {
                let mut load = vec![0u64; hosts];
                sessions
                    .iter()
                    .map(|s| {
                        let h = least_loaded(&load);
                        load[h] += s.frames.max(1) as u64;
                        h
                    })
                    .collect()
            }
            PlacementPolicy::ScenarioAffinity => {
                // Group sessions by scenario in first-appearance order, then
                // pack whole groups onto hosts greedily by total frames.
                let mut groups: Vec<(bliss_eye::Scenario, u64)> = Vec::new();
                let mut group_of = Vec::with_capacity(sessions.len());
                for s in sessions {
                    let gi = match groups.iter().position(|&(sc, _)| sc == s.scenario) {
                        Some(gi) => gi,
                        None => {
                            groups.push((s.scenario, 0));
                            groups.len() - 1
                        }
                    };
                    groups[gi].1 += s.frames.max(1) as u64;
                    group_of.push(gi);
                }
                let mut load = vec![0u64; hosts];
                let host_of_group: Vec<usize> = groups
                    .iter()
                    .map(|&(_, frames)| {
                        let h = least_loaded(&load);
                        load[h] += frames;
                        h
                    })
                    .collect();
                group_of.into_iter().map(|gi| host_of_group[gi]).collect()
            }
        }
    }
}

/// Index of the minimum load, ties to the lowest host id.
fn least_loaded(load: &[u64]) -> usize {
    let mut best = 0usize;
    for (h, &l) in load.iter().enumerate().skip(1) {
        if l < load[best] {
            best = h;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_eye::Scenario;

    fn fleet(n: usize, frames: usize) -> Vec<SessionConfig> {
        (0..n)
            .map(|id| SessionConfig {
                id,
                scenario: Scenario::for_index(id),
                seed: id as u64,
                frames,
                start_offset_s: 0.0,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_hosts() {
        let a = PlacementPolicy::RoundRobin.assign(&fleet(7, 4), 3);
        assert_eq!(a, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_equals_round_robin_on_homogeneous_fleets() {
        let s = fleet(8, 6);
        assert_eq!(
            PlacementPolicy::LeastLoaded.assign(&s, 3),
            PlacementPolicy::RoundRobin.assign(&s, 3)
        );
    }

    #[test]
    fn least_loaded_levels_heterogeneous_sessions() {
        let mut s = fleet(5, 4);
        s[0].frames = 100;
        let a = PlacementPolicy::LeastLoaded.assign(&s, 2);
        // The long session gets a host to itself until the others catch up.
        assert_eq!(a[0], 0);
        assert!(a[1..].iter().all(|&h| h == 1), "{a:?}");
    }

    #[test]
    fn scenario_affinity_colocates_scenarios() {
        // 10 sessions cycle through the 5 scenarios twice; sessions sharing
        // a scenario must share a host, for any host count.
        let s = fleet(10, 4);
        for hosts in 1..=5 {
            let a = PlacementPolicy::ScenarioAffinity.assign(&s, hosts);
            for i in 0..5 {
                assert_eq!(a[i], a[i + 5], "scenario {i} split across hosts");
            }
            assert!(a.iter().all(|&h| h < hosts));
        }
    }

    #[test]
    fn every_policy_places_every_session() {
        let s = fleet(11, 4);
        for policy in PlacementPolicy::ALL {
            for hosts in [1usize, 2, 4] {
                let a = policy.assign(&s, hosts);
                assert_eq!(a.len(), s.len(), "{policy:?}");
                assert!(a.iter().all(|&h| h < hosts), "{policy:?}");
                // No host left idle while another holds 2+ sessions more
                // (these policies all balance homogeneous fleets).
                let mut counts = vec![0usize; hosts];
                for &h in &a {
                    counts[h] += 1;
                }
                if policy != PlacementPolicy::ScenarioAffinity {
                    let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
                    assert!(max - min <= 1, "{policy:?}: {counts:?}");
                }
            }
        }
    }
}
