//! Deterministic fault injection and recovery for the fleet.
//!
//! A seeded [`FaultPlan`] schedules host crashes, transient slow-host
//! windows, batch timeouts and corrupt-checkpoint reads in **virtual
//! time**. The chaos engine ([`FleetRuntime::serve_chaos`]) steps the fleet
//! exactly like [`FleetRuntime::serve`] does, but consults the plan at
//! every per-host batch boundary — the only instants the serve layer's
//! snapshot machinery can capture — and perturbs the run accordingly:
//!
//! * **Crash**: the host's shard is discarded and its sessions are restored
//!   from the host's newest parseable checkpoint, re-placed across the
//!   surviving hosts by the fleet's [`PlacementPolicy`](crate::PlacementPolicy)
//!   (or restarted in place when no other host survives — the "rejoin"
//!   case). Progress past the checkpoint is **replayed**, not lost.
//! * **Slow**: a multiplicative cycle-budget dilation on the host's
//!   inference launches for a virtual-time window (the latency model's
//!   [`StepOptions::time_dilation`](bliss_serve::StepOptions) path).
//! * **Timeout**: the next launch attempt occupies the host for the stall
//!   (plus exponential-ish per-consecutive-timeout backoff) and executes
//!   nothing; the retry is the next ordinary step, so every frame still
//!   executes exactly once.
//! * **CorruptCheckpoint**: the host's checkpoint medium goes bad — every
//!   periodic checkpoint written from the scheduled time on is truncated,
//!   so a later failover genuinely fails to parse them (surfacing the
//!   host/session-context [`SnapshotError`]) and falls back to the newest
//!   intact checkpoint. A replaced or rejoined host gets a fresh medium.
//!
//! Under a sustained SLO breach a [`DegradationPolicy`] deterministically
//! sheds load — selected warm frames skip host inference and fall back to
//! the feedback ROI — instead of letting the deadline-miss queue collapse
//! the host.
//!
//! **Determinism.** Every decision above is a pure function of virtual
//! time, the plan and per-session state; no wall clock, no ambient RNG.
//! Replaying the same `(FleetConfig, ChaosConfig)` reproduces the entire
//! [`ChaosOutcome`] — injected-fault log, timelines, reports — bit for
//! bit, on any thread pool. And because a session's accuracy/volume/energy
//! outputs never depend on scheduling, a chaos run **without shedding**
//! produces per-session gaze/volume/energy streams bit-identical to the
//! fault-free run: faults can only move timing.

use crate::report::FaultStats;
use crate::runtime::{FleetConfig, FleetOutcome, FleetRuntime, FleetState};
use bliss_serve::{
    ServeSnapshot, SessionConfig, SessionProgress, SessionSnapshot, SnapshotError, StepOptions,
};
use bliss_tensor::TensorError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The host dies at the next batch boundary at or after the scheduled
    /// time; its sessions fail over from its newest good checkpoint.
    Crash,
    /// The host's inference launches run `factor`× slower for a virtual
    /// window of `duration_s` starting at the scheduled time.
    Slow {
        /// Cycle-budget multiplier (≥ 1).
        factor: f64,
        /// Window length in virtual seconds.
        duration_s: f64,
    },
    /// The host's next launch attempt stalls for `stall_s` (plus
    /// per-consecutive-timeout backoff) without executing; the batch
    /// retries on the following step.
    Timeout {
        /// Stall charged to the host clock, in virtual seconds.
        stall_s: f64,
    },
    /// The host's checkpoint medium goes bad: every periodic checkpoint
    /// written from the scheduled time on is truncated, forcing a later
    /// failover back onto the newest intact checkpoint. Replacing (or
    /// rejoining) the host restores a fresh medium.
    CorruptCheckpoint,
}

impl FaultKind {
    fn rank(&self) -> u8 {
        match self {
            FaultKind::Crash => 0,
            FaultKind::Slow { .. } => 1,
            FaultKind::Timeout { .. } => 2,
            FaultKind::CorruptCheckpoint => 3,
        }
    }

    /// Display label (appears in `BENCH_chaos.json`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Slow { .. } => "slow",
            FaultKind::Timeout { .. } => "timeout",
            FaultKind::CorruptCheckpoint => "corrupt-checkpoint",
        }
    }
}

/// One scheduled fault: a kind aimed at a host at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time the fault comes due.
    pub at_s: f64,
    /// Target host.
    pub host: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// How many faults of each kind [`FaultPlan::generate`] schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMix {
    /// Host crashes.
    pub crashes: usize,
    /// Transient slow-host windows.
    pub slow_hosts: usize,
    /// Batch timeouts.
    pub timeouts: usize,
    /// Corrupt periodic checkpoints.
    pub corrupt_checkpoints: usize,
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            crashes: 1,
            slow_hosts: 1,
            timeouts: 1,
            corrupt_checkpoints: 1,
        }
    }
}

/// A seeded, replayable fault schedule.
///
/// The plan is *data*: generating it twice from the same arguments yields
/// identical events, and running it twice through
/// [`FleetRuntime::serve_chaos`] yields identical outcomes — the proptest
/// suite pins both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the schedule was generated from (recorded for reports).
    pub seed: u64,
    /// Scheduled faults, sorted by `(at_s, host, kind)`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults (chaos plumbing, nominal behaviour).
    pub fn quiet() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Generates a deterministic schedule: `mix` faults spread over
    /// `(0.1..0.9) * horizon_s` across `hosts` hosts, from `seed` alone.
    ///
    /// `horizon_s` should approximate the fault-free run's virtual span so
    /// faults land while the fleet is busy; a fault scheduled after a host
    /// drains is a no-op (recorded as never triggered).
    pub fn generate(seed: u64, hosts: usize, horizon_s: f64, mix: &FaultMix) -> Self {
        assert!(hosts > 0, "a fault plan needs at least one host");
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "horizon must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED_F417_0000);
        let mut events = Vec::new();
        for _ in 0..mix.crashes {
            events.push(FaultEvent {
                at_s: rng.gen_range(0.15..0.75) * horizon_s,
                host: rng.gen_range(0..hosts),
                kind: FaultKind::Crash,
            });
        }
        for _ in 0..mix.slow_hosts {
            events.push(FaultEvent {
                at_s: rng.gen_range(0.1..0.6) * horizon_s,
                host: rng.gen_range(0..hosts),
                kind: FaultKind::Slow {
                    factor: 1.5 + rng.gen_range(0.0..2.5),
                    duration_s: rng.gen_range(0.1..0.3) * horizon_s,
                },
            });
        }
        for _ in 0..mix.timeouts {
            events.push(FaultEvent {
                at_s: rng.gen_range(0.1..0.8) * horizon_s,
                host: rng.gen_range(0..hosts),
                kind: FaultKind::Timeout {
                    stall_s: rng.gen_range(0.02..0.08) * horizon_s,
                },
            });
        }
        for _ in 0..mix.corrupt_checkpoints {
            events.push(FaultEvent {
                at_s: rng.gen_range(0.05..0.5) * horizon_s,
                host: rng.gen_range(0..hosts),
                kind: FaultKind::CorruptCheckpoint,
            });
        }
        // A total order so the schedule is independent of generation
        // bookkeeping: time, then host, then kind rank (stable sort keeps
        // same-key events in generation order, which is itself seeded).
        events.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then(a.host.cmp(&b.host))
                .then(a.kind.rank().cmp(&b.kind.rank()))
        });
        FaultPlan { seed, events }
    }
}

/// SLO-aware graceful degradation: when a host's recent deadline-miss rate
/// crosses `enter_miss_rate`, the host sheds load deterministically
/// ([`StepOptions::shed_period`](bliss_serve::StepOptions) — selected warm
/// frames skip host inference and hold the feedback-ROI gaze) until the
/// rate falls back to `exit_miss_rate` (hysteresis, so the ladder does not
/// flap).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Sliding window of recently served frames the SLO is evaluated over.
    pub window_frames: usize,
    /// Miss-rate at/above which the host enters degraded mode.
    pub enter_miss_rate: f64,
    /// Miss-rate at/below which a degraded host recovers.
    pub exit_miss_rate: f64,
    /// Shed period while degraded: a warm frame whose
    /// `session id + frame index` is a multiple of this is shed.
    pub shed_period: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            window_frames: 16,
            enter_miss_rate: 0.5,
            exit_miss_rate: 0.125,
            shed_period: 2,
        }
    }
}

/// Everything one chaos run is parameterised by, beyond the fleet config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// The seeded fault schedule.
    pub plan: FaultPlan,
    /// Batches between periodic per-host checkpoints (`0` disables the
    /// cadence; the initial state and post-failover handoffs are always
    /// checkpointed, so every host stays recoverable).
    pub checkpoint_interval: usize,
    /// Virtual crash-detection + restore latency: a failed-over session's
    /// replayed frames cannot complete before `crash + failover_delay_s`.
    pub failover_delay_s: f64,
    /// Extra stall added per consecutive timeout on the same host
    /// (retry backoff).
    pub timeout_backoff_s: f64,
    /// SLO-aware load shedding; `None` never sheds (and makes the chaos
    /// run's accuracy outputs bit-identical to the fault-free run).
    pub degradation: Option<DegradationPolicy>,
}

impl ChaosConfig {
    /// A chaos run under `plan` with the default recovery parameters:
    /// checkpoint every 4 batches, 5 ms failover delay, 1 ms timeout
    /// backoff, no load shedding.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosConfig {
            plan,
            checkpoint_interval: 4,
            failover_delay_s: 5e-3,
            timeout_backoff_s: 1e-3,
            degradation: None,
        }
    }
}

/// One fault the engine actually triggered, in trigger order — the replay
/// log two runs of the same plan must agree on bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// When the plan scheduled it.
    pub scheduled_s: f64,
    /// The batch-boundary virtual time it actually fired at.
    pub triggered_s: f64,
    /// Target host.
    pub host: usize,
    /// What fired.
    pub kind: FaultKind,
    /// Deterministic context (checkpoint used, sessions moved, parse
    /// errors swallowed during fallback, …).
    pub detail: String,
}

/// One point on the survival curve: fleet progress at a fault or terminal
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalPoint {
    /// Virtual time of the observation.
    pub t_s: f64,
    /// Frames recorded fleet-wide by then (replayed frames count once —
    /// they live in the recovered sessions' records).
    pub frames_done: usize,
    /// Hosts still alive.
    pub alive_hosts: usize,
}

/// The chaos-specific half of a [`ChaosOutcome`] — the `BENCH_chaos.json`
/// payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Seed of the fault plan that ran.
    pub plan_seed: u64,
    /// Fault/recovery counters (mirrored into the fleet report).
    pub faults: FaultStats,
    /// Times a host entered degraded (shedding) mode.
    pub degraded_enters: usize,
    /// Per recovered session: virtual seconds from the crash to its first
    /// replayed frame's completion on the adoptive host (chronological by
    /// failover, then session id).
    pub recovery_latency_s: Vec<f64>,
    /// Fleet progress at start, at every crash, and at drain.
    pub survival: Vec<SurvivalPoint>,
}

/// Everything a chaos run produces: the ordinary fleet outcome (with
/// [`FaultStats`] filled in), the chaos report and the injected-fault log.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// The fleet outcome (merged timeline, per-host outcomes, report).
    pub outcome: FleetOutcome,
    /// Fault/recovery/survival statistics.
    pub chaos: ChaosReport,
    /// Every fault that actually fired, in trigger order.
    pub log: Vec<InjectedFault>,
}

/// A stored per-host checkpoint.
struct Checkpoint {
    seq: usize,
    taken_s: f64,
    json: String,
    intact: bool,
}

/// Per-host engine state.
struct HostChaos {
    alive: bool,
    /// Pending faults for this host, front = next due.
    faults: std::collections::VecDeque<FaultEvent>,
    /// Active slow windows: (until_s, factor).
    slow_windows: Vec<(f64, f64)>,
    /// Stored checkpoints, oldest → newest.
    checkpoints: Vec<Checkpoint>,
    next_checkpoint_seq: usize,
    /// Checkpoint medium gone bad: periodic writes truncate until the host
    /// is replaced or rejoins.
    corrupt_writes: bool,
    batches_since_checkpoint: usize,
    consecutive_timeouts: usize,
    /// Sliding deadline-outcome window for the SLO ladder.
    slo_window: std::collections::VecDeque<bool>,
    degraded: bool,
}

impl HostChaos {
    /// Keeps the checkpoint store small without ever dropping
    /// recoverability: corrupt entries older than the newest intact one are
    /// useless (a fallback scan would skip past them to the intact one),
    /// and intact entries beyond the newest three only lengthen the replay
    /// window.
    fn trim_checkpoints(&mut self) {
        if let Some(newest_intact_seq) = self
            .checkpoints
            .iter()
            .rev()
            .find(|c| c.intact)
            .map(|c| c.seq)
        {
            self.checkpoints
                .retain(|c| c.intact || c.seq > newest_intact_seq);
        }
        // A bad medium writes corrupt checkpoints every interval; keeping
        // the newest two is enough to prove the fallback path fired.
        while self.checkpoints.iter().filter(|c| !c.intact).count() > 2 {
            let oldest = self
                .checkpoints
                .iter()
                .position(|c| !c.intact)
                .expect("counted above");
            self.checkpoints.remove(oldest);
        }
        while self.checkpoints.iter().filter(|c| c.intact).count() > 3 {
            let oldest = self
                .checkpoints
                .iter()
                .position(|c| c.intact)
                .expect("counted above");
            self.checkpoints.remove(oldest);
        }
    }
}

/// A pending recovery-latency observation: resolved post-hoc against the
/// final traces (the replayed frame completes some batches after the
/// failover that scheduled it).
struct PendingRecovery {
    crash_s: f64,
    /// (session id, first frame index to replay).
    sessions: Vec<(usize, usize)>,
}

impl FleetRuntime {
    /// Serves [`FleetRuntime::session_configs`] under a fault plan:
    /// deterministic chaos with periodic checkpoints, snapshot-based
    /// failover, timeout retry/backoff and (optionally) SLO-aware load
    /// shedding. See `ARCHITECTURE.md` ("Fault model & recovery") for the
    /// fault taxonomy and the determinism argument.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from inference.
    pub fn serve_chaos(
        &self,
        cfg: &FleetConfig,
        chaos: &ChaosConfig,
    ) -> Result<ChaosOutcome, TensorError> {
        self.serve_chaos_sessions(cfg, chaos, self.session_configs(cfg))
    }

    /// [`FleetRuntime::serve_chaos`] over an explicit session population.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from inference.
    pub fn serve_chaos_sessions(
        &self,
        cfg: &FleetConfig,
        chaos: &ChaosConfig,
        sessions: Vec<SessionConfig>,
    ) -> Result<ChaosOutcome, TensorError> {
        // `FleetState::assignment` is position-aligned with this list; keep
        // the ids so failover can update the routing table by session id.
        let session_ids: Vec<usize> = sessions.iter().map(|s| s.id).collect();
        let mut state = self.start_sessions(cfg, sessions);
        let mut hosts: Vec<HostChaos> = (0..cfg.hosts)
            .map(|h| HostChaos {
                alive: true,
                faults: chaos
                    .plan
                    .events
                    .iter()
                    .filter(|e| e.host == h)
                    .copied()
                    .collect(),
                slow_windows: Vec::new(),
                checkpoints: Vec::new(),
                next_checkpoint_seq: 0,
                corrupt_writes: false,
                batches_since_checkpoint: 0,
                consecutive_timeouts: 0,
                slo_window: std::collections::VecDeque::new(),
                degraded: false,
            })
            .collect();
        // Checkpoint 0: the initial state, always intact — every host is
        // recoverable from the start.
        for h in 0..cfg.hosts {
            self.take_checkpoint(&state, &mut hosts[h], h, 0.0, false);
        }

        let mut faults = FaultStats {
            checkpoints_taken: cfg.hosts,
            ..FaultStats::default()
        };
        let mut log: Vec<InjectedFault> = Vec::new();
        let mut pending_recoveries: Vec<PendingRecovery> = Vec::new();
        let mut degraded_enters = 0usize;
        let mut survival = vec![SurvivalPoint {
            t_s: 0.0,
            frames_done: 0,
            alive_hosts: cfg.hosts,
        }];

        loop {
            let mut advanced = false;
            for host in 0..cfg.hosts {
                if !hosts[host].alive {
                    continue;
                }
                let Some(start) = self.runtime.next_launch_start_s(&state.shards[host]) else {
                    continue;
                };
                // Consume due faults in schedule order. Slow/corrupt are
                // passive (the step still runs); a timeout consumes the
                // step; a crash consumes the host.
                let mut consumed_step = false;
                while let Some(&ev) = hosts[host].faults.front() {
                    if ev.at_s > start {
                        break;
                    }
                    hosts[host].faults.pop_front();
                    faults.faults_injected += 1;
                    match ev.kind {
                        FaultKind::Crash => {
                            let detail = self.fail_over(
                                cfg,
                                chaos,
                                &mut state,
                                &session_ids,
                                &mut hosts,
                                host,
                                start,
                                &mut faults,
                                &mut pending_recoveries,
                            );
                            log.push(InjectedFault {
                                scheduled_s: ev.at_s,
                                triggered_s: start,
                                host,
                                kind: ev.kind,
                                detail,
                            });
                            survival.push(SurvivalPoint {
                                t_s: start,
                                frames_done: state.frames_served(),
                                alive_hosts: hosts.iter().filter(|h| h.alive).count(),
                            });
                            consumed_step = true;
                            break;
                        }
                        FaultKind::Slow { factor, duration_s } => {
                            hosts[host]
                                .slow_windows
                                .push((ev.at_s + duration_s, factor));
                            log.push(InjectedFault {
                                scheduled_s: ev.at_s,
                                triggered_s: start,
                                host,
                                kind: ev.kind,
                                detail: format!("{factor:.3}x until {:.6}s", ev.at_s + duration_s),
                            });
                        }
                        FaultKind::Timeout { stall_s } => {
                            let backoff =
                                chaos.timeout_backoff_s * hosts[host].consecutive_timeouts as f64;
                            let stall = stall_s + backoff;
                            hosts[host].consecutive_timeouts += 1;
                            faults.batch_timeouts += 1;
                            let free = self
                                .runtime
                                .stall_host(&mut state.shards[host], stall)
                                .expect("peeked above");
                            log.push(InjectedFault {
                                scheduled_s: ev.at_s,
                                triggered_s: start,
                                host,
                                kind: ev.kind,
                                detail: format!("stalled {stall:.6}s, retry at {free:.6}s"),
                            });
                            consumed_step = true;
                            break;
                        }
                        FaultKind::CorruptCheckpoint => {
                            hosts[host].corrupt_writes = true;
                            log.push(InjectedFault {
                                scheduled_s: ev.at_s,
                                triggered_s: start,
                                host,
                                kind: ev.kind,
                                detail: "periodic checkpoints truncate until host replacement"
                                    .into(),
                            });
                        }
                    }
                }
                if consumed_step {
                    advanced = true;
                    continue;
                }

                // Prune expired slow windows; dilate by the rest.
                hosts[host].slow_windows.retain(|&(until, _)| until > start);
                let dilation = hosts[host]
                    .slow_windows
                    .iter()
                    .fold(1.0, |d, &(_, f)| d * f);
                let shed_period = match (&chaos.degradation, hosts[host].degraded) {
                    (Some(p), true) => p.shed_period,
                    _ => 0,
                };
                let opts = StepOptions {
                    time_dilation: dilation,
                    shed_period,
                };
                bliss_telemetry::set_current_host(host as u32);
                let stats = self
                    .runtime
                    .step_batch_with(&state.shard_cfgs[host], &mut state.shards[host], &opts)?
                    .expect("peeked a ready frame above");
                bliss_telemetry::set_current_host(0);
                advanced = true;
                hosts[host].consecutive_timeouts = 0;
                faults.frames_shed += stats.shed;

                // SLO ladder bookkeeping.
                if let Some(policy) = &chaos.degradation {
                    let hc = &mut hosts[host];
                    for i in 0..stats.served {
                        hc.slo_window.push_back(i < stats.deadline_misses);
                        while hc.slo_window.len() > policy.window_frames.max(1) {
                            hc.slo_window.pop_front();
                        }
                    }
                    let misses = hc.slo_window.iter().filter(|&&m| m).count();
                    let rate = misses as f64 / hc.slo_window.len().max(1) as f64;
                    if !hc.degraded
                        && hc.slo_window.len() >= policy.window_frames.max(1)
                        && rate >= policy.enter_miss_rate
                    {
                        hc.degraded = true;
                        degraded_enters += 1;
                    } else if hc.degraded && rate <= policy.exit_miss_rate {
                        hc.degraded = false;
                    }
                }

                // Periodic checkpoint cadence.
                hosts[host].batches_since_checkpoint += 1;
                if chaos.checkpoint_interval > 0
                    && hosts[host].batches_since_checkpoint >= chaos.checkpoint_interval
                {
                    let corrupt = hosts[host].corrupt_writes;
                    self.take_checkpoint(
                        &state,
                        &mut hosts[host],
                        host,
                        stats.host_free_s,
                        corrupt,
                    );
                    faults.checkpoints_taken += 1;
                }
            }
            if !advanced {
                break;
            }
        }

        // Resolve recovery latencies against the final traces.
        let outcome = self.finish(cfg, state);
        let mut recovery_latency_s = Vec::new();
        for pr in &pending_recoveries {
            for &(id, first_replay) in &pr.sessions {
                let completion = outcome.per_host.iter().find_map(|h| {
                    h.traces
                        .iter()
                        .find(|t| t.config.id == id)
                        .and_then(|t| t.records.get(first_replay))
                        .map(|r| r.completion_s)
                });
                if let Some(c) = completion {
                    recovery_latency_s.push((c - pr.crash_s).max(0.0));
                }
            }
        }

        let end_t = outcome.timeline.last().map_or(0.0, |e| e.time_s);
        survival.push(SurvivalPoint {
            t_s: end_t,
            frames_done: outcome.report.frames_total,
            alive_hosts: hosts.iter().filter(|h| h.alive).count(),
        });

        if bliss_telemetry::enabled() {
            use bliss_telemetry::metrics as m;
            m::FAULTS_INJECTED.add(faults.faults_injected as u64);
            m::FAILOVERS.add(faults.failovers as u64);
            m::SESSIONS_RECOVERED.add(faults.sessions_recovered as u64);
            m::FRAMES_REPLAYED.add(faults.frames_replayed as u64);
            m::BATCH_TIMEOUTS.add(faults.batch_timeouts as u64);
            m::CORRUPT_CHECKPOINT_READS.add(faults.corrupt_checkpoint_reads as u64);
            m::CHECKPOINTS_TAKEN.add(faults.checkpoints_taken as u64);
            for &r in &recovery_latency_s {
                m::RECOVERY_LATENCY_S.record(r);
            }
        }

        let mut outcome = outcome;
        outcome.report.faults = faults;
        Ok(ChaosOutcome {
            chaos: ChaosReport {
                plan_seed: chaos.plan.seed,
                faults,
                degraded_enters,
                recovery_latency_s,
                survival,
            },
            log,
            outcome,
        })
    }

    /// Captures one host's shard. A corrupt write truncates the payload so
    /// a later read genuinely fails to parse.
    fn take_checkpoint(
        &self,
        state: &FleetState,
        hc: &mut HostChaos,
        host: usize,
        taken_s: f64,
        corrupt: bool,
    ) {
        let snap = self
            .runtime
            .snapshot(&state.shard_cfgs[host], &state.shards[host]);
        let mut json = snap.to_json();
        if corrupt {
            json.truncate(json.len() / 2);
        }
        hc.checkpoints.push(Checkpoint {
            seq: hc.next_checkpoint_seq,
            taken_s,
            json,
            intact: !corrupt,
        });
        hc.next_checkpoint_seq += 1;
        hc.batches_since_checkpoint = 0;
        hc.trim_checkpoints();
    }

    /// Crash + failover: discard the dead host's live shard, restore its
    /// sessions from the newest parseable checkpoint, re-place them across
    /// the survivors (in place when none survive), and checkpoint every
    /// adopting host so the handoff is durable. Returns the deterministic
    /// detail string for the fault log.
    #[allow(clippy::too_many_arguments)]
    fn fail_over(
        &self,
        cfg: &FleetConfig,
        chaos: &ChaosConfig,
        state: &mut FleetState,
        session_ids: &[usize],
        hosts: &mut [HostChaos],
        host: usize,
        crash_s: f64,
        faults: &mut FaultStats,
        pending: &mut Vec<PendingRecovery>,
    ) -> String {
        faults.failovers += 1;
        let live_progress: Vec<SessionProgress> = state.shards[host].progress();

        // Newest → oldest: the first checkpoint that parses wins. Corrupt
        // reads surface the host-context SnapshotError and fall through.
        let mut detail = String::new();
        let mut restored: Option<(ServeSnapshot, usize, f64)> = None;
        for ck in hosts[host].checkpoints.iter().rev() {
            match ServeSnapshot::parse(&ck.json) {
                Ok(snap) => {
                    restored = Some((snap, ck.seq, ck.taken_s));
                    break;
                }
                Err(e) => {
                    faults.corrupt_checkpoint_reads += 1;
                    let err = SnapshotError::for_host(host, e);
                    detail.push_str(&format!("checkpoint {} unreadable ({err}); ", ck.seq));
                }
            }
        }
        let (snap, ck_seq, ck_taken) =
            restored.expect("an intact checkpoint always exists (checkpoint 0 is never corrupted)");

        // Replay accounting: progress recorded live minus progress in the
        // checkpoint is re-served on the adoptive hosts.
        let mut replayed = 0usize;
        for ss in &snap.sessions {
            let live = live_progress
                .iter()
                .find(|p| p.id == ss.config.id)
                .map_or(0, |p| p.frames_served);
            replayed += live.saturating_sub(ss.records.len());
        }
        faults.frames_replayed += replayed;
        faults.sessions_recovered += snap.sessions.len();

        // Kill the shard. The dead host keeps an empty state so host
        // indices stay aligned; `alive` gates it out of stepping and
        // future fault targeting (a fault on a dead host is a no-op).
        let survivors: Vec<usize> = (0..cfg.hosts)
            .filter(|&h| h != host && hosts[h].alive)
            .collect();
        state.shards[host] = self.runtime.start_sessions(Vec::new());
        state.shard_cfgs[host].sessions = 0;

        // Re-place the recovered sessions. With no survivors the host
        // restarts in place from its checkpoint — the "rejoin" case. Either
        // way the replacement hardware brings a fresh checkpoint medium.
        hosts[host].corrupt_writes = false;
        let targets: Vec<usize> = if survivors.is_empty() {
            vec![host]
        } else {
            hosts[host].alive = false;
            survivors
        };
        let configs: Vec<SessionConfig> = snap.sessions.iter().map(|s| s.config).collect();
        let routed = cfg.placement.assign(&configs, targets.len());
        let not_before = crash_s + chaos.failover_delay_s;
        let mut moved: Vec<(usize, usize)> = Vec::new(); // (session id, first replay frame)
        for (ti, &target) in targets.iter().enumerate() {
            let group: Vec<SessionSnapshot> = snap
                .sessions
                .iter()
                .zip(&routed)
                .filter(|&(_, &r)| r == ti)
                .map(|(s, _)| s.clone())
                .collect();
            if group.is_empty() {
                continue;
            }
            for s in &group {
                // `records.len()` is the index of the next frame this
                // session will record — the first replayed frame.
                moved.push((s.config.id, s.records.len()));
                // Keep the fleet's routing table honest for the report.
                if let Some(slot) = session_ids.iter().position(|&id| id == s.config.id) {
                    state.assignment[slot] = target;
                }
            }
            state.shard_cfgs[target].sessions += group.len();
            self.runtime
                .adopt_sessions(&mut state.shards[target], &group, not_before)
                .unwrap_or_else(|e| {
                    panic!(
                        "failover adoption onto host {target} failed: {}",
                        SnapshotError::for_host(target, e)
                    )
                });
            // Handoff durability: the adoptive host checkpoints immediately
            // (always intact), so a second crash cannot lose the adopted
            // sessions.
            self.take_checkpoint(state, &mut hosts[target], target, not_before, false);
            faults.checkpoints_taken += 1;
        }
        moved.sort_unstable();
        detail.push_str(&format!(
            "restored checkpoint {ck_seq} (taken {ck_taken:.6}s), {} sessions -> hosts {:?}, {replayed} frames to replay",
            moved.len(),
            targets
        ));
        pending.push(PendingRecovery {
            crash_s,
            sessions: moved,
        });
        detail
    }
}
