//! Criterion micro-benchmarks of the hot kernels in the BlissCam pipeline:
//! dense linear algebra (matmul, multi-head attention), sensor
//! eventification and readout, run-length coding, and the procedural
//! renderer. The `*_1thread` / `*_4threads` variants pin the
//! `bliss_parallel` pool width so thread scaling is recorded alongside the
//! default-configuration numbers.

use bliss_eye::{
    render_sequence, EyeModel, EyeModelConfig, Gaze, GazeState, MovementPhase, SequenceConfig,
};
use bliss_nn::MultiHeadAttention;
use bliss_parallel::{with_min_parallel_work, with_thread_count};
use bliss_sensor::{rle, DigitalPixelSensor, RoiBox, SensorConfig};
use bliss_tensor::{NdArray, Tensor};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(512);
    let a = NdArray::randn(&mut rng, &[512, 512], 1.0);
    let b = NdArray::randn(&mut rng, &[512, 512], 1.0);
    c.bench_function("matmul_512", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(std::hint::black_box(&b)).unwrap()))
    });
    c.bench_function("matmul_512_1thread", |bch| {
        bch.iter(|| with_thread_count(1, || std::hint::black_box(a.matmul(&b).unwrap())))
    });
    c.bench_function("matmul_512_4threads", |bch| {
        bch.iter(|| with_thread_count(4, || std::hint::black_box(a.matmul(&b).unwrap())))
    });
}

fn bench_attention(c: &mut Criterion) {
    // Paper-scale channel width (192, 3 heads) over a quarter-occupancy
    // token set (256 of 1000 patches).
    let mut rng = StdRng::seed_from_u64(7);
    let mha = MultiHeadAttention::new(&mut rng, 192, 3);
    let x = Tensor::constant(NdArray::randn(&mut rng, &[256, 192], 1.0));
    c.bench_function("mha_forward_192d_256t", |bch| {
        bch.iter(|| std::hint::black_box(mha.forward(std::hint::black_box(&x)).unwrap()))
    });
    c.bench_function("mha_forward_1thread", |bch| {
        bch.iter(|| with_thread_count(1, || std::hint::black_box(mha.forward(&x).unwrap())))
    });
    c.bench_function("mha_forward_4threads", |bch| {
        bch.iter(|| with_thread_count(4, || std::hint::black_box(mha.forward(&x).unwrap())))
    });
}

fn bench_eventify(c: &mut Criterion) {
    let mut sensor = DigitalPixelSensor::new(SensorConfig::miniature(160, 100));
    let img_a = vec![0.5f32; 16_000];
    let img_b: Vec<f32> = (0..16_000)
        .map(|i| if i % 7 == 0 { 0.8 } else { 0.5 })
        .collect();
    sensor.expose(&img_a);
    let _ = sensor.eventify();
    c.bench_function("sensor_eventify_160x100", |b| {
        b.iter(|| {
            sensor.expose(std::hint::black_box(&img_b));
            std::hint::black_box(sensor.eventify())
        })
    });
}

fn bench_sparse_readout(c: &mut Criterion) {
    let mut sensor = DigitalPixelSensor::new(SensorConfig::miniature(160, 100));
    let img = vec![0.5f32; 16_000];
    sensor.expose(&img);
    let roi = RoiBox::new(40, 25, 120, 75);
    c.bench_function("sensor_sparse_readout_20pct", |b| {
        b.iter(|| std::hint::black_box(sensor.sparse_readout(roi, 0.2)))
    });
}

fn bench_rle(c: &mut Criterion) {
    // A realistic sparse stream: ~20% occupancy.
    let stream: Vec<u16> = (0..40_000u32)
        .map(|i| {
            if i % 5 == 0 {
                500 + (i % 300) as u16
            } else {
                0
            }
        })
        .collect();
    let encoded = rle::encode(&stream);
    c.bench_function("rle_encode_40k", |b| {
        b.iter(|| std::hint::black_box(rle::encode(std::hint::black_box(&stream))))
    });
    c.bench_function("rle_decode_40k", |b| {
        b.iter(|| {
            std::hint::black_box(rle::decode(std::hint::black_box(&encoded), 40_000).unwrap())
        })
    });
}

fn bench_renderer(c: &mut Criterion) {
    let model = EyeModel::new(EyeModelConfig::for_resolution(160, 100), 1);
    let state = GazeState {
        gaze: Gaze::new(5.0, -3.0),
        openness: 1.0,
        pupil_dilation: 1.0,
        phase: MovementPhase::Fixation,
    };
    c.bench_function("render_frame_160x100", |b| {
        b.iter(|| std::hint::black_box(model.render(std::hint::black_box(&state))))
    });
    c.bench_function("render_sequence_8_frames", |b| {
        b.iter_batched(
            || SequenceConfig::miniature(8, 3),
            |cfg| std::hint::black_box(render_sequence(&cfg)),
            BatchSize::SmallInput,
        )
    });
}

/// Per-region dispatch overhead: the cost of *starting and joining* a
/// 4-share parallel region whose shares do trivial work, under three
/// execution strategies. `spawn_per_region` replicates the PR-2..4 era
/// (`std::thread::scope`, one OS thread spawned and joined per share);
/// `persistent_pool` is the new generation-stamped handoff (forced past the
/// small-region cutoff with a zero threshold); `serial_cutoff` is what tiny
/// regions now actually do — skip dispatch entirely.
fn bench_pool_overhead(c: &mut Criterion) {
    const SHARES: usize = 4;
    let mut buf = vec![0u64; SHARES * 16];

    c.bench_function("pool_overhead_spawn_per_region", |b| {
        b.iter(|| {
            let chunk = buf.len() / SHARES;
            std::thread::scope(|scope| {
                for (i, part) in buf.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for x in part.iter_mut() {
                            *x = x.wrapping_add(i as u64);
                        }
                    });
                }
            });
            std::hint::black_box(buf[0]);
        })
    });

    c.bench_function("pool_overhead_persistent_pool", |b| {
        with_thread_count(SHARES, || {
            with_min_parallel_work(0, || {
                b.iter(|| {
                    bliss_parallel::par_chunks(&mut buf, 16, |i, part| {
                        for x in part.iter_mut() {
                            *x = x.wrapping_add(i as u64);
                        }
                    });
                    std::hint::black_box(buf[0]);
                })
            })
        });
    });

    c.bench_function("pool_overhead_serial_cutoff", |b| {
        with_thread_count(SHARES, || {
            b.iter(|| {
                bliss_parallel::par_chunks(&mut buf, 16, |i, part| {
                    for x in part.iter_mut() {
                        *x = x.wrapping_add(i as u64);
                    }
                });
                std::hint::black_box(buf[0]);
            })
        });
    });
}

// Renderer and eventify run first: on some virtualised hosts the hashed
// readout loops leave the CPU in a state that slows unrelated FP code (see
// the ROADMAP "host-specific FP pathology" note), which would poison the
// later measurements in this process.
criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_renderer, bench_eventify, bench_matmul, bench_attention, bench_sparse_readout,
        bench_rle, bench_pool_overhead
}
criterion_main!(kernels);
