//! Criterion micro-benchmarks of the hot kernels in the BlissCam pipeline:
//! sensor eventification, SRAM-metastability sampling, run-length coding,
//! and the procedural renderer.

use bliss_eye::{
    render_sequence, EyeModel, EyeModelConfig, Gaze, GazeState, MovementPhase, SequenceConfig,
};
use bliss_sensor::{rle, DigitalPixelSensor, RoiBox, SensorConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_eventify(c: &mut Criterion) {
    let mut sensor = DigitalPixelSensor::new(SensorConfig::miniature(160, 100));
    let img_a = vec![0.5f32; 16_000];
    let img_b: Vec<f32> = (0..16_000)
        .map(|i| if i % 7 == 0 { 0.8 } else { 0.5 })
        .collect();
    sensor.expose(&img_a);
    let _ = sensor.eventify();
    c.bench_function("sensor_eventify_160x100", |b| {
        b.iter(|| {
            sensor.expose(std::hint::black_box(&img_b));
            std::hint::black_box(sensor.eventify())
        })
    });
}

fn bench_sparse_readout(c: &mut Criterion) {
    let mut sensor = DigitalPixelSensor::new(SensorConfig::miniature(160, 100));
    let img = vec![0.5f32; 16_000];
    sensor.expose(&img);
    let roi = RoiBox::new(40, 25, 120, 75);
    c.bench_function("sensor_sparse_readout_20pct", |b| {
        b.iter(|| std::hint::black_box(sensor.sparse_readout(roi, 0.2)))
    });
}

fn bench_rle(c: &mut Criterion) {
    // A realistic sparse stream: ~20% occupancy.
    let stream: Vec<u16> = (0..40_000u32)
        .map(|i| {
            if i % 5 == 0 {
                500 + (i % 300) as u16
            } else {
                0
            }
        })
        .collect();
    let encoded = rle::encode(&stream);
    c.bench_function("rle_encode_40k", |b| {
        b.iter(|| std::hint::black_box(rle::encode(std::hint::black_box(&stream))))
    });
    c.bench_function("rle_decode_40k", |b| {
        b.iter(|| {
            std::hint::black_box(rle::decode(std::hint::black_box(&encoded), 40_000).unwrap())
        })
    });
}

fn bench_renderer(c: &mut Criterion) {
    let model = EyeModel::new(EyeModelConfig::for_resolution(160, 100), 1);
    let state = GazeState {
        gaze: Gaze::new(5.0, -3.0),
        openness: 1.0,
        pupil_dilation: 1.0,
        phase: MovementPhase::Fixation,
    };
    c.bench_function("render_frame_160x100", |b| {
        b.iter(|| std::hint::black_box(model.render(std::hint::black_box(&state))))
    });
    c.bench_function("render_sequence_8_frames", |b| {
        b.iter_batched(
            || SequenceConfig::miniature(8, 3),
            |cfg| std::hint::black_box(render_sequence(&cfg)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_eventify, bench_sparse_readout, bench_rle, bench_renderer
}
criterion_main!(kernels);
