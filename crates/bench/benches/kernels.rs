//! Criterion micro-benchmarks of the hot kernels in the BlissCam pipeline:
//! dense linear algebra (matmul, multi-head attention), sensor
//! eventification and readout, run-length coding, the procedural renderer,
//! and the `plan_vs_tape` group — compiled-plan vs autograd-tape batched
//! inference, with per-iteration heap-allocation counts recorded alongside
//! the timings. The `*_1thread` / `*_4threads` variants pin the
//! `bliss_parallel` pool width so thread scaling is recorded alongside the
//! default-configuration numbers.

// The counting allocator behind the `plan_vs_tape` allocation tallies needs
// `unsafe` (GlobalAlloc).
#![allow(unsafe_code)]

use bliss_eye::{
    render_sequence, EyeModel, EyeModelConfig, Gaze, GazeState, MovementPhase, SequenceConfig,
};
use bliss_nn::MultiHeadAttention;
use bliss_parallel::{with_min_parallel_work, with_thread_count};
use bliss_sensor::{rle, DigitalPixelSensor, RoiBox, SensorConfig};
use bliss_tensor::{NdArray, Tensor};
use bliss_track::{PlannedBatch, SparseViT, ViTConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Pass-through allocator that tallies allocations (on any thread) while
/// armed; backs the `plan_vs_tape_*_allocs_per_iter` rows in the report.
struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counters are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Counts heap allocations performed (process-wide) while `f` runs.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(512);
    let a = NdArray::randn(&mut rng, &[512, 512], 1.0);
    let b = NdArray::randn(&mut rng, &[512, 512], 1.0);
    c.bench_function("matmul_512", |bch| {
        bch.iter(|| std::hint::black_box(a.matmul(std::hint::black_box(&b)).unwrap()))
    });
    c.bench_function("matmul_512_1thread", |bch| {
        bch.iter(|| with_thread_count(1, || std::hint::black_box(a.matmul(&b).unwrap())))
    });
    c.bench_function("matmul_512_4threads", |bch| {
        bch.iter(|| with_thread_count(4, || std::hint::black_box(a.matmul(&b).unwrap())))
    });
}

fn bench_attention(c: &mut Criterion) {
    // Paper-scale channel width (192, 3 heads) over a quarter-occupancy
    // token set (256 of 1000 patches).
    let mut rng = StdRng::seed_from_u64(7);
    let mha = MultiHeadAttention::new(&mut rng, 192, 3);
    let x = Tensor::constant(NdArray::randn(&mut rng, &[256, 192], 1.0));
    c.bench_function("mha_forward_192d_256t", |bch| {
        bch.iter(|| std::hint::black_box(mha.forward(std::hint::black_box(&x)).unwrap()))
    });
    c.bench_function("mha_forward_1thread", |bch| {
        bch.iter(|| with_thread_count(1, || std::hint::black_box(mha.forward(&x).unwrap())))
    });
    c.bench_function("mha_forward_4threads", |bch| {
        bch.iter(|| with_thread_count(4, || std::hint::black_box(mha.forward(&x).unwrap())))
    });
}

fn bench_eventify(c: &mut Criterion) {
    let mut sensor = DigitalPixelSensor::new(SensorConfig::miniature(160, 100));
    let img_a = vec![0.5f32; 16_000];
    let img_b: Vec<f32> = (0..16_000)
        .map(|i| if i % 7 == 0 { 0.8 } else { 0.5 })
        .collect();
    sensor.expose(&img_a);
    let _ = sensor.eventify();
    c.bench_function("sensor_eventify_160x100", |b| {
        b.iter(|| {
            sensor.expose(std::hint::black_box(&img_b));
            std::hint::black_box(sensor.eventify())
        })
    });
}

fn bench_sparse_readout(c: &mut Criterion) {
    let mut sensor = DigitalPixelSensor::new(SensorConfig::miniature(160, 100));
    let img = vec![0.5f32; 16_000];
    sensor.expose(&img);
    let roi = RoiBox::new(40, 25, 120, 75);
    c.bench_function("sensor_sparse_readout_20pct", |b| {
        b.iter(|| std::hint::black_box(sensor.sparse_readout(roi, 0.2)))
    });
}

fn bench_rle(c: &mut Criterion) {
    // A realistic sparse stream: ~20% occupancy.
    let stream: Vec<u16> = (0..40_000u32)
        .map(|i| {
            if i % 5 == 0 {
                500 + (i % 300) as u16
            } else {
                0
            }
        })
        .collect();
    let encoded = rle::encode(&stream);
    c.bench_function("rle_encode_40k", |b| {
        b.iter(|| std::hint::black_box(rle::encode(std::hint::black_box(&stream))))
    });
    c.bench_function("rle_decode_40k", |b| {
        b.iter(|| {
            std::hint::black_box(rle::decode(std::hint::black_box(&encoded), 40_000).unwrap())
        })
    });
}

fn bench_renderer(c: &mut Criterion) {
    let model = EyeModel::new(EyeModelConfig::for_resolution(160, 100), 1);
    let state = GazeState {
        gaze: Gaze::new(5.0, -3.0),
        openness: 1.0,
        pupil_dilation: 1.0,
        phase: MovementPhase::Fixation,
    };
    c.bench_function("render_frame_160x100", |b| {
        b.iter(|| std::hint::black_box(model.render(std::hint::black_box(&state))))
    });
    c.bench_function("render_sequence_8_frames", |b| {
        b.iter_batched(
            || SequenceConfig::miniature(8, 3),
            |cfg| std::hint::black_box(render_sequence(&cfg)),
            BatchSize::SmallInput,
        )
    });
}

/// Per-region dispatch overhead: the cost of *starting and joining* a
/// 4-share parallel region whose shares do trivial work, under three
/// execution strategies. `spawn_per_region` replicates the PR-2..4 era
/// (`std::thread::scope`, one OS thread spawned and joined per share);
/// `persistent_pool` is the new generation-stamped handoff (forced past the
/// small-region cutoff with a zero threshold); `serial_cutoff` is what tiny
/// regions now actually do — skip dispatch entirely.
fn bench_pool_overhead(c: &mut Criterion) {
    const SHARES: usize = 4;
    let mut buf = vec![0u64; SHARES * 16];

    c.bench_function("pool_overhead_spawn_per_region", |b| {
        b.iter(|| {
            let chunk = buf.len() / SHARES;
            std::thread::scope(|scope| {
                for (i, part) in buf.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for x in part.iter_mut() {
                            *x = x.wrapping_add(i as u64);
                        }
                    });
                }
            });
            std::hint::black_box(buf[0]);
        })
    });

    c.bench_function("pool_overhead_persistent_pool", |b| {
        with_thread_count(SHARES, || {
            with_min_parallel_work(0, || {
                b.iter(|| {
                    bliss_parallel::par_chunks(&mut buf, 16, |i, part| {
                        for x in part.iter_mut() {
                            *x = x.wrapping_add(i as u64);
                        }
                    });
                    std::hint::black_box(buf[0]);
                })
            })
        });
    });

    c.bench_function("pool_overhead_serial_cutoff", |b| {
        with_thread_count(SHARES, || {
            b.iter(|| {
                bliss_parallel::par_chunks(&mut buf, 16, |i, part| {
                    for x in part.iter_mut() {
                        *x = x.wrapping_add(i as u64);
                    }
                });
                std::hint::black_box(buf[0]);
            })
        });
    });
}

/// Compiled-plan vs autograd-tape batched inference on the same
/// serving-shaped two-frame sparse batch (the alloc-counter test's load):
/// per-iteration wall time for both dispatch paths, then per-iteration heap
/// allocation counts for both, recorded as `*_allocs_per_iter` value rows.
/// Steady state must show 0 planned allocations against the tape's
/// several-hundred node headers.
fn bench_plan_vs_tape(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    let synth = |seed: u64, rate: f32| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut image = vec![0.0f32; 16_000];
        let mut mask = vec![0.0f32; 16_000];
        for i in 0..16_000 {
            if rng.gen::<f32>() < rate {
                mask[i] = 1.0;
                image[i] = rng.gen::<f32>();
            }
        }
        (image, mask)
    };
    let a = synth(1, 0.06);
    let b = synth(2, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    // Warm-up: compile the plan, populate the scratch pools on both paths.
    let mut out = PlannedBatch::new();
    for _ in 0..2 {
        vit.forward_batch_into(&batch, &mut out).unwrap();
        std::hint::black_box(&vit.forward_batch(&batch).unwrap());
    }

    c.bench_function("plan_vs_tape_planned_forward_batch", |bch| {
        bch.iter(|| {
            vit.forward_batch_into(&batch, &mut out).unwrap();
            std::hint::black_box(&out);
        })
    });
    c.bench_function("plan_vs_tape_tape_forward_batch", |bch| {
        bch.iter(|| std::hint::black_box(vit.forward_batch(&batch).unwrap()))
    });

    let planned_allocs = count_allocs(|| {
        vit.forward_batch_into(&batch, &mut out).unwrap();
        std::hint::black_box(&out);
    });
    let tape_allocs = count_allocs(|| {
        std::hint::black_box(&vit.forward_batch(&batch).unwrap());
    });
    c.report_value(
        "plan_vs_tape_planned_allocs_per_iter",
        planned_allocs as f64,
    );
    c.report_value("plan_vs_tape_tape_allocs_per_iter", tape_allocs as f64);
}

/// Telemetry overhead on the instrumented hot path: the planned batched
/// forward (whose plan-cache and scratch-pool counters fire every call)
/// plus the serve layer's per-frame span record pattern, timed with
/// telemetry OFF and ON in interleaved rounds (min-of-rounds on both arms
/// so scheduler noise cancels). The closure is identical in both arms —
/// exactly the production shape, where the disabled path is one branch per
/// record site. Reported as `telemetry_overhead_pct`; with
/// `BLISS_TELEMETRY_GATE=1` the bench *fails* if the overhead exceeds 3%.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use bliss_telemetry::{metrics, record_span, SpanRecord, Stage};

    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    let synth = |seed: u64, rate: f32| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut image = vec![0.0f32; 16_000];
        let mut mask = vec![0.0f32; 16_000];
        for i in 0..16_000 {
            if rng.gen::<f32>() < rate {
                mask[i] = 1.0;
                image[i] = rng.gen::<f32>();
            }
        }
        (image, mask)
    };
    let a = synth(1, 0.06);
    let b = synth(2, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    let mut out = PlannedBatch::new();
    for _ in 0..3 {
        vit.forward_batch_into(&batch, &mut out).unwrap();
    }

    // Pre-size the ring once; rounds clear it so the ON arm never measures
    // the drop-on-full path.
    bliss_telemetry::init_spans(1 << 14);

    let mut frame = 0u32;
    let mut iteration = |out: &mut PlannedBatch| {
        vit.forward_batch_into(&batch, out).unwrap();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            record_span(SpanRecord {
                stage: *stage,
                frame,
                virt_start_s: f64::from(frame) * 8.3e-3 + i as f64 * 1e-3,
                virt_dur_s: 1e-3,
                ..SpanRecord::ZERO
            });
        }
        metrics::FRAMES_SERVED.add(1);
        metrics::FRAME_LATENCY_S.record(1e-3);
        frame = frame.wrapping_add(1);
        std::hint::black_box(&out);
    };

    const ROUNDS: usize = 12;
    const ITERS: usize = 25;
    let (mut best_off_s, mut best_on_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        bliss_telemetry::set_enabled(false);
        let t = std::time::Instant::now();
        for _ in 0..ITERS {
            iteration(&mut out);
        }
        best_off_s = best_off_s.min(t.elapsed().as_secs_f64());

        bliss_telemetry::set_enabled(true);
        let t = std::time::Instant::now();
        for _ in 0..ITERS {
            iteration(&mut out);
        }
        best_on_s = best_on_s.min(t.elapsed().as_secs_f64());
        bliss_telemetry::set_enabled(false);
        bliss_telemetry::clear_spans();
    }

    let overhead_pct = (best_on_s - best_off_s) / best_off_s * 100.0;
    c.report_value("telemetry_overhead_pct", overhead_pct);
    if std::env::var_os("BLISS_TELEMETRY_GATE").is_some_and(|v| v == "1") {
        assert!(
            overhead_pct <= 3.0,
            "telemetry overhead {overhead_pct:.2}% exceeds the 3% budget \
             on the planned batched-inference hot path"
        );
    }
}

// Renderer and eventify run first: on some virtualised hosts the hashed
// readout loops leave the CPU in a state that slows unrelated FP code (see
// the ROADMAP "host-specific FP pathology" note), which would poison the
// later measurements in this process.
criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_renderer, bench_eventify, bench_matmul, bench_attention, bench_sparse_readout,
        bench_rle, bench_pool_overhead, bench_plan_vs_tape, bench_telemetry_overhead
}
criterion_main!(kernels);
