//! Criterion benchmarks of the learned pipeline and the analytic hardware
//! models: sparse-ViT inference at several occupancies, ROI prediction,
//! systolic-array evaluation, and the per-variant energy/latency models.

use bliss_energy::EnergyParams;
use bliss_npu::SystolicArray;
use bliss_track::{RoiNetConfig, RoiPredictionNet, SparseViT, ViTConfig};
use blisscam_core::{energy_breakdown, simulate_pipeline, SystemConfig, SystemVariant};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_vit_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    let image = vec![0.4f32; 16_000];
    // dense mask and a ~5% sparse mask — compute should differ sharply
    let dense = vec![1.0f32; 16_000];
    let sparse: Vec<f32> = (0..16_000)
        .map(|i| {
            let (x, y) = (i % 160, i / 160);
            if (40..120).contains(&x) && (25..75).contains(&y) && i % 5 == 0 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    c.bench_function("sparse_vit_forward_dense_mask", |b| {
        b.iter(|| std::hint::black_box(vit.forward(&image, &dense).unwrap()))
    });
    c.bench_function("sparse_vit_forward_sparse_mask", |b| {
        b.iter(|| std::hint::black_box(vit.forward(&image, &sparse).unwrap()))
    });
}

fn bench_roi_net(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let net = RoiPredictionNet::new(&mut rng, RoiNetConfig::miniature(160, 100));
    let events = vec![0.0f32; 16_000];
    let seg = vec![0u8; 16_000];
    let input = net.make_input(&events, &seg);
    c.bench_function("roi_net_forward", |b| {
        b.iter(|| std::hint::black_box(net.forward(std::hint::black_box(&input)).unwrap()))
    });
}

fn bench_hardware_models(c: &mut Criterion) {
    let cfg = SystemConfig::paper();
    c.bench_function("energy_breakdown_all_variants", |b| {
        b.iter(|| {
            for v in SystemVariant::ALL {
                std::hint::black_box(energy_breakdown(&cfg, v));
            }
        })
    });
    c.bench_function("pipeline_simulation_32_frames", |b| {
        b.iter(|| std::hint::black_box(simulate_pipeline(&cfg, SystemVariant::BlissCam, 32)))
    });
    let host = SystolicArray::host();
    let wl = SystemConfig::paper().vit.workload(134, 6_867);
    let params = EnergyParams::default();
    c.bench_function("systolic_run_sparse_vit", |b| {
        b.iter(|| std::hint::black_box(host.run(&wl, &params, true)))
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(15);
    targets = bench_vit_forward, bench_roi_net, bench_hardware_models
}
criterion_main!(pipeline);
