//! Long-horizon soak harness for the durable serving runtime.
//!
//! A soak run serves many **epochs** of scenario-diverse session fleets
//! back-to-back on one [`ServeRuntime`], accumulating on the order of 10⁶
//! served frames of virtual time at the standard profile, and watches for
//! the three ways a long-lived deployment rots:
//!
//! * **allocator creep** — the steady-state hot path must stay
//!   allocation-free, which the companion `soak_alloc` integration test
//!   pins with a counting global allocator, and the scratch-pool retained
//!   bytes ([`bliss_tensor::pool_stats`]) must go **flat** after the first
//!   epochs rather than ratcheting up;
//! * **plan-state leak** — serving runs through compiled execution plans
//!   by default, and the batch span layouts a load can produce are finite:
//!   the cached-plan count and total arena footprint
//!   ([`ServeRuntime::vit_plan_stats`]) must plateau by mid-soak rather
//!   than accrete a plan (or regrow an arena) every epoch;
//! * **state leak** — the first and last epochs are *sentinels* served
//!   from the same seed; any state smuggled across epochs (RNG, pools,
//!   caches) breaks their bit-identity;
//! * **accuracy drift** — per-epoch mean gaze error is recorded so a slow
//!   numeric drift shows up in the report even when each epoch looks fine
//!   in isolation.
//!
//! Latency is aggregated across every epoch by a [`StreamingHistogram`]
//! with a **fixed** bucket array: recording a sample is a pure index
//! increment, so a million-frame soak adds zero allocator traffic and the
//! memory cost is constant regardless of horizon. Epochs are served with a
//! [`ServeConfig::warmup_s`] window covering the admission ramp, so the
//! histogram sees steady-state frames only (the per-epoch all-frames stats
//! still include the ramp).

use bliss_serve::{LatencyStats, ServeConfig, ServeOutcome, ServeRuntime};
use bliss_tensor::TensorError;
use serde::{Deserialize, Serialize};

// The histogram was born here and later promoted into `bliss_telemetry` so
// the metrics registry could share it; re-exported so soak call sites (and
// the serde round-trip suite) are unchanged.
pub use bliss_telemetry::{
    StreamingHistogram, HISTOGRAM_BASE_S, HISTOGRAM_BUCKETS, HISTOGRAM_GROWTH,
};

/// Shape of one soak run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoakConfig {
    /// Concurrent sessions per epoch.
    pub sessions: usize,
    /// Frames each session submits per epoch.
    pub frames_per_session: usize,
    /// Back-to-back fleet epochs served on the one runtime.
    pub epochs: usize,
    /// Sentinel seed: epochs `0` and `epochs-1` serve from exactly this
    /// seed (their outcomes must be bit-identical); middle epochs rotate a
    /// derived seed so the soak explores many session populations.
    pub seed: u64,
}

impl SoakConfig {
    /// The long-horizon profile: 8 sessions × 250 frames × 500 epochs =
    /// 10⁶ served frames (~2.3 h of 120 FPS virtual time).
    pub fn standard() -> Self {
        SoakConfig {
            sessions: 8,
            frames_per_session: 250,
            epochs: 500,
            seed: 0x50AC,
        }
    }

    /// The CI smoke profile: same structure, minutes-scale horizon.
    pub fn smoke() -> Self {
        SoakConfig {
            sessions: 4,
            frames_per_session: 40,
            epochs: 4,
            seed: 0x50AC,
        }
    }

    /// Total frames the soak serves across every epoch.
    pub fn frames_total(&self) -> usize {
        self.sessions * self.frames_per_session * self.epochs
    }

    /// The serving configuration of epoch `epoch`: sentinel epochs (first
    /// and last) reuse [`SoakConfig::seed`] verbatim, middle epochs rotate,
    /// and every epoch excludes its admission ramp plus two frame periods
    /// as warmup so the soak histogram sees steady-state frames only.
    pub fn serve_config(&self, epoch: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(self.sessions, self.frames_per_session);
        cfg.seed = if epoch == 0 || epoch + 1 == self.epochs {
            self.seed
        } else {
            self.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        };
        cfg.warmup_s = cfg.stagger_s * self.sessions as f64 + 2.0 * cfg.stagger_s;
        cfg
    }
}

/// Health counters of one soak epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Frames served this epoch.
    pub frames: usize,
    /// Mean absolute horizontal gaze error over the epoch, degrees.
    pub mean_horizontal_error_deg: f32,
    /// Mean absolute vertical gaze error over the epoch, degrees.
    pub mean_vertical_error_deg: f32,
    /// Deadline-miss rate over the epoch's steady-state frames.
    pub steady_miss_rate: f64,
    /// Virtual span of the epoch (first arrival to last completion), s.
    pub span_s: f64,
    /// Scratch-pool bytes retained on the serving thread **after** the
    /// epoch — the curve that must go flat (see [`SoakReport`]).
    pub pool_retained_bytes: usize,
    /// Compiled ViT execution plans cached after the epoch (0 when the
    /// runtime is forced onto the tape path). Span layouts are finite, so
    /// this count must plateau — a cache still growing late in the soak is
    /// a plan-state leak.
    pub vit_plans: usize,
    /// Total arena footprint across those plans, in `f32` elements — the
    /// plan-memory curve that must go flat alongside the pools.
    pub vit_arena_elems: usize,
    /// **Cumulative** plan-cache misses (compilations) since the runtime
    /// was created, read after the epoch. The per-epoch delta is this
    /// minus the previous epoch's reading; the final (repeat-seed
    /// sentinel) epoch's delta must be **zero** — every span layout it
    /// produces was compiled when epoch 0 served the same seed.
    pub vit_plan_misses: u64,
}

/// The `BENCH_soak.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakReport {
    /// The soak shape that produced this report.
    pub config: SoakConfig,
    /// Frames actually served (equals [`SoakConfig::frames_total`]).
    pub frames_total: usize,
    /// Cumulative virtual time served, summed over epoch spans, seconds.
    /// Epochs are independent fleets, so this is session time covered, not
    /// one contiguous wall of virtual time.
    pub virtual_s_total: f64,
    /// Steady-state samples in the latency histogram.
    pub steady_frames: u64,
    /// Frames excluded by the per-epoch warmup windows.
    pub warmup_excluded: usize,
    /// Histogram percentiles over every steady-state frame of every epoch.
    pub latency: LatencyStats,
    /// Mean steady-state latency, milliseconds.
    pub mean_latency_ms: f64,
    /// The full streaming histogram (fixed 64 geometric buckets).
    pub histogram: StreamingHistogram,
    /// Deadline-miss rate over all steady-state frames.
    pub steady_miss_rate: f64,
    /// Whether the first and last (same-seed sentinel) epochs produced
    /// bit-identical outcomes — the no-state-leak check.
    pub sentinel_identical: bool,
    /// Highest scratch-pool retained-bytes reading across epochs.
    pub pool_high_water_bytes: usize,
    /// Whether the pool high-water was already reached in the first half
    /// of the soak — i.e. the retained-bytes curve went **flat** instead
    /// of ratcheting up epoch over epoch.
    pub pool_flat_after_warmup: bool,
    /// Highest cached ViT plan count across epochs.
    pub plan_high_water: usize,
    /// Highest total plan-arena footprint across epochs, in elements.
    pub arena_high_water_elems: usize,
    /// Whether the final (same-seed sentinel) epoch compiled **zero** new
    /// plans: seed-rotating middle epochs legitimately keep introducing
    /// novel span layouts (the bounded cache absorbs them), so the leak
    /// check is that *repeat* load compiles nothing — a plan cache keyed
    /// on anything run-specific, or one that forgot its warm layouts,
    /// would grow here. (The arena sum is reported but not gated: bounded
    /// FIFO eviction may rotate which plans are resident.)
    pub plans_flat_after_warmup: bool,
    /// Per-epoch health counters.
    pub per_epoch: Vec<EpochStats>,
}

/// Mean absolute gaze errors of one outcome, weighted across sessions.
fn mean_errors(outcome: &ServeOutcome) -> (f32, f32) {
    let (mut eh, mut ev, mut n) = (0.0f64, 0.0f64, 0usize);
    for trace in &outcome.traces {
        for r in &trace.records {
            eh += f64::from(r.horizontal_error_deg);
            ev += f64::from(r.vertical_error_deg);
        }
        n += trace.records.len();
    }
    let n = n.max(1) as f64;
    ((eh / n) as f32, (ev / n) as f32)
}

/// Runs a full soak on `runtime`.
///
/// Serve epoch after epoch, stream steady-state latencies into the fixed
/// histogram, and record the per-epoch health counters described on
/// [`SoakReport`]. The scratch-pool readings are taken on the calling
/// thread, so run under `bliss_parallel::with_thread_count(1, ..)` when the
/// flat-pool check should cover the inference workers too (the `soak` bin
/// and the smoke tests do).
///
/// # Errors
///
/// Propagates tensor errors from inference.
pub fn run_soak(runtime: &ServeRuntime, cfg: &SoakConfig) -> Result<SoakReport, TensorError> {
    let mut hist = StreamingHistogram::new();
    let mut per_epoch = Vec::with_capacity(cfg.epochs);
    let mut frames_total = 0usize;
    let mut virtual_s_total = 0.0f64;
    let mut warmup_excluded = 0usize;
    let mut steady_misses = 0u64;
    let mut first_sentinel: Option<ServeOutcome> = None;
    let mut sentinel_identical = true;

    for epoch in 0..cfg.epochs {
        let serve_cfg = cfg.serve_config(epoch);
        let outcome = runtime.serve(&serve_cfg)?;

        for trace in &outcome.traces {
            for r in &trace.records {
                if r.arrival_s >= serve_cfg.warmup_s {
                    hist.record(r.latency_s);
                    steady_misses += u64::from(r.deadline_missed);
                }
            }
        }
        let report = &outcome.report;
        frames_total += report.frames_total;
        virtual_s_total += report.span_s;
        warmup_excluded += report.steady.excluded;
        let (eh, ev) = mean_errors(&outcome);
        let plan_stats = runtime.vit_plan_stats();
        per_epoch.push(EpochStats {
            epoch,
            frames: report.frames_total,
            mean_horizontal_error_deg: eh,
            mean_vertical_error_deg: ev,
            steady_miss_rate: report.steady.deadline_miss_rate,
            span_s: report.span_s,
            pool_retained_bytes: bliss_tensor::pool_stats().retained_bytes(),
            vit_plans: plan_stats.plans,
            vit_arena_elems: plan_stats.arena_elems,
            vit_plan_misses: plan_stats.misses,
        });

        if epoch == 0 {
            first_sentinel = Some(outcome);
        } else if epoch + 1 == cfg.epochs {
            // Same seed as epoch 0: any divergence means state leaked
            // across epochs through the supposedly stateless runtime.
            sentinel_identical = first_sentinel
                .as_ref()
                .is_some_and(|first| *first == outcome);
        }
    }

    let pool_high_water_bytes = per_epoch
        .iter()
        .map(|e| e.pool_retained_bytes)
        .max()
        .unwrap_or(0);
    // Flat means the high-water is already hit by mid-soak; a pool that is
    // still setting records in the tail is leaking buffers epoch by epoch.
    let pool_flat_after_warmup = per_epoch
        .iter()
        .take(cfg.epochs.div_ceil(2))
        .any(|e| e.pool_retained_bytes == pool_high_water_bytes);
    let plan_high_water = per_epoch.iter().map(|e| e.vit_plans).max().unwrap_or(0);
    let arena_high_water_elems = per_epoch
        .iter()
        .map(|e| e.vit_arena_elems)
        .max()
        .unwrap_or(0);
    // The plan-cache leak check: rotated middle epochs are *allowed* to
    // keep compiling (novel layouts, bounded by the cache), but the final
    // epoch replays the first epoch's seed, so every one of its layouts
    // was compiled before — it must not add a single plan. Judged on the
    // occupancy count alone: bounded FIFO eviction can rotate which plans
    // are resident (and hence the arena sum) without the population
    // growing.
    let plans_flat_after_warmup = match per_epoch.as_slice() {
        [.., prev, last] => last.vit_plans == prev.vit_plans,
        _ => true, // a 1-epoch soak has no repeat load to judge
    };

    Ok(SoakReport {
        config: *cfg,
        frames_total,
        virtual_s_total,
        steady_frames: hist.count(),
        warmup_excluded,
        latency: LatencyStats::from_histogram(&hist),
        mean_latency_ms: hist.mean_s() * 1e3,
        steady_miss_rate: steady_misses as f64 / hist.count().max(1) as f64,
        sentinel_identical,
        pool_high_water_bytes,
        pool_flat_after_warmup,
        plan_high_water,
        arena_high_water_elems,
        plans_flat_after_warmup,
        histogram: hist,
        per_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_track::{RoiPredictionNet, SparseViT};
    use blisscam_core::SystemConfig;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn histogram_buckets_cover_and_order() {
        let mut h = StreamingHistogram::new();
        assert_eq!(h.quantile_s(0.5), 0.0);
        for i in 1..=1000 {
            h.record(i as f64 * 1e-5); // 10 µs .. 10 ms
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_s(0.50);
        let p95 = h.quantile_s(0.95);
        let p99 = h.quantile_s(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max_s());
        assert_eq!(h.max_s(), 1e-2);
        // Bucket-edge quantile error is bounded by the growth factor.
        assert!((5e-3 / HISTOGRAM_GROWTH..=5e-3 * HISTOGRAM_GROWTH).contains(&p50));
        assert!((h.mean_s() - 1000.0 * 1001.0 / 2.0 * 1e-5 / 1000.0).abs() < 1e-9);
        assert_eq!(h.buckets().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn histogram_clamps_underflow_and_overflow() {
        let mut h = StreamingHistogram::new();
        h.record(0.0);
        h.record(1e-9);
        h.record(1e9);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.quantile_s(1.0), 1e9);
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let (mut a, mut b, mut all) = (
            StreamingHistogram::new(),
            StreamingHistogram::new(),
            StreamingHistogram::new(),
        );
        for i in 0..50 {
            let x = 1e-4 * (1.0 + i as f64);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_round_trips_through_json() {
        let mut h = StreamingHistogram::new();
        for i in 1..=17 {
            h.record(i as f64 * 3.7e-4);
        }
        let back = StreamingHistogram::from_json(&h.to_json()).expect("round-trip parses");
        assert_eq!(back, h);
    }

    /// A smoke-scale soak: sentinel epochs bit-identical, pools flat,
    /// histogram fed exactly the steady frames.
    #[test]
    fn smoke_soak_is_healthy() {
        let mut system = SystemConfig::miniature();
        system.vit.dim = 12;
        system.vit.enc_depth = 1;
        system.vit.dec_depth = 1;
        system.roi_net.hidden = 16;
        let mut rng = StdRng::seed_from_u64(11);
        let runtime = ServeRuntime::with_networks(
            system,
            SparseViT::new(&mut rng, system.vit),
            RoiPredictionNet::new(&mut rng, system.roi_net),
        );
        let cfg = SoakConfig {
            sessions: 3,
            frames_per_session: 10,
            epochs: 3,
            seed: 9,
        };
        let report = bliss_parallel::with_thread_count(1, || run_soak(&runtime, &cfg))
            .expect("soak succeeds");
        assert_eq!(report.frames_total, cfg.frames_total());
        assert_eq!(report.per_epoch.len(), 3);
        assert!(
            report.sentinel_identical,
            "same-seed sentinel epochs diverged"
        );
        assert!(report.pool_flat_after_warmup, "scratch pool kept growing");
        // The planned path ran and its plan state went flat: every span
        // layout this load produces was compiled by mid-soak.
        assert!(report.plan_high_water > 0, "planned path never compiled");
        assert!(report.arena_high_water_elems > 0);
        assert!(report.plans_flat_after_warmup, "plan cache kept growing");
        // Repeat-seed sentinel: the last epoch replays epoch 0's layouts,
        // so it must not record a single plan-cache miss.
        let [.., prev, last] = report.per_epoch.as_slice() else {
            panic!("smoke soak has at least two epochs");
        };
        assert_eq!(
            last.vit_plan_misses, prev.vit_plan_misses,
            "repeat-seed sentinel epoch recorded plan-cache misses"
        );
        assert!(prev.vit_plan_misses > 0, "planned path never missed at all");
        assert!(report.warmup_excluded > 0, "warmup window excluded nothing");
        assert_eq!(
            report.steady_frames as usize + report.warmup_excluded,
            report.frames_total
        );
        assert!(report.latency.p50_ms <= report.latency.max_ms);
        // Middle epochs rotate seeds away from the sentinel's.
        assert_ne!(cfg.serve_config(1).seed, cfg.serve_config(0).seed);
        assert_eq!(cfg.serve_config(2).seed, cfg.serve_config(0).seed);
        let back = SoakReport::from_json(&report.to_json()).expect("report round-trips");
        assert_eq!(back, report);
    }
}
