//! Benchmark harness regenerating every table and figure of the BlissCam
//! paper's evaluation (§VI).
//!
//! One binary per figure/table (see `src/bin/`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig02_gflops_trend` | Fig. 2 — GPU capability vs algorithm demand |
//! | `fig03_mipi_latency` | Fig. 3 — MIPI latency vs resolution |
//! | `fig04_readout_power` | Fig. 4 — readout share of sensor power |
//! | `fig12_accuracy` | Fig. 12 — gaze error vs compression rate |
//! | `fig13_energy` | Fig. 13 — per-variant energy breakdown |
//! | `fig14_latency` | Fig. 14 — per-variant end-to-end latency |
//! | `fig15_sampling` | Fig. 15 — sampling-strategy comparison |
//! | `fig16_framerate` | Fig. 16 — frame-rate sensitivity |
//! | `fig17_process_node` | Fig. 17 — process-node sensitivity |
//! | `tab1_roi_reuse` | Tbl. I — ROI reuse window |
//! | `tab_area` | §VI-D — area estimation |
//!
//! Beyond the paper artifacts, `serve_sweep` / `fleet_sweep` sweep the
//! serving layers and `soak` runs the long-horizon durability soak (see
//! the [`soak`] module).
//!
//! Accuracy binaries accept `--quick` for a fast, smaller-workload run; the
//! default matches `ExperimentScale::standard()`.
//!
//! Criterion micro-benchmarks for the hot kernels (eventification, RLE,
//! SRAM sampling, ViT forward, systolic model, renderer) live in `benches/`.

use blisscam_core::experiments::ExperimentScale;

pub mod soak;

/// Prints a fixed-width ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    println!("{line}");
    let header: Vec<String> = headers
        .iter()
        .zip(widths.iter())
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    println!("{}", header.join("|"));
    println!("{line}");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        println!("{}", cells.join("|"));
    }
    println!("{line}");
}

/// Parses the common `--quick` flag into an [`ExperimentScale`].
pub fn scale_from_args() -> ExperimentScale {
    if std::env::args().any(|a| a == "--quick") {
        ExperimentScale::quick()
    } else {
        ExperimentScale::standard()
    }
}

/// Whether a sweep binary should run its reduced CI profile: the `--quick`
/// flag or a non-empty, non-`"0"` `BLISS_BENCH_FAST` environment variable.
pub fn fast_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("BLISS_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Resolves where a sweep binary writes its `BENCH_<name>.json`: the
/// `BLISS_BENCH_OUT` override when set, else `name` at the workspace root
/// (nearest ancestor with a `Cargo.lock`), else the current directory.
pub fn report_path(name: &str) -> std::path::PathBuf {
    use std::path::PathBuf;
    if let Ok(path) = std::env::var("BLISS_BENCH_OUT") {
        if !path.is_empty() {
            return PathBuf::from(path);
        }
    }
    let mut dir = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join(name);
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(name)
}

/// Formats seconds as adaptive ms/us text.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2e-3), "2.00 ms");
        assert_eq!(fmt_time(5e-6), "5.0 us");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }
}
