//! Table I — sensitivity of gaze error and energy saving to the ROI reuse
//! window. Pass `--quick` for a fast run.

use bliss_bench::{print_table, scale_from_args};
use blisscam_core::experiments::tab1_roi_reuse;

fn main() {
    let scale = scale_from_args();
    let rows_data = tab1_roi_reuse(&scale).expect("tab1 experiment");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.reuse_window.to_string(),
                format!("{:.2} ({:.2})", r.vertical.mean, r.vertical.std),
                format!("{:.3} %", r.energy_saving_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "Table I: ROI reuse window sensitivity",
        &["reuse window", "vertical err (std) deg", "energy saving"],
        &rows,
    );
    println!("\nExpectation (paper §VI-F): reuse saves almost nothing (the ROI net is ~1 %");
    println!("of in-sensor energy) while the error and its variance grow with the window.");
}
