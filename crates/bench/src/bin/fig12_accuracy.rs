//! Fig. 12 — end-to-end gaze error vs compression rate for NPU-Full,
//! NPU-ROI and ours (NPU-ROI-Sample). Trains miniature pipelines per point;
//! pass `--quick` for a fast run.

use bliss_bench::{print_table, scale_from_args};
use blisscam_core::experiments::fig12_accuracy;

fn main() {
    let scale = scale_from_args();
    println!(
        "training {} frames x {} epochs per point, evaluating {} frames...",
        scale.train_frames, scale.epochs, scale.eval_frames
    );
    let result = fig12_accuracy(&scale).expect("fig12 experiment");
    for series in &result.series {
        let rows: Vec<Vec<String>> = series
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}x", p.compression),
                    format!("{:.2} ± {:.2}", p.vertical.mean, p.vertical.std),
                    format!("{:.2} ± {:.2}", p.horizontal.mean, p.horizontal.std),
                    format!("{:.1} %", p.seg_accuracy * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 12: {}", series.label),
            &[
                "compression",
                "vertical err (deg)",
                "horizontal err (deg)",
                "seg acc",
            ],
            &rows,
        );
    }
    println!(
        "\nsparse ViT MAC reduction vs RITnet-class baseline: {:.1}x (paper §VI-A: 4x)",
        result.mac_reduction_vs_ritnet
    );
    println!("Paper reference point: 20.6x data reduction at 0.8°/0.7° (v/h) error.");
}
