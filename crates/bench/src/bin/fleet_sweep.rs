//! Sharding sweep of the `bliss_fleet` multi-host serving fleet.
//!
//! Trains one BlissCam model, then serves (sessions × hosts × placement
//! policy) load points with latency accounted at the paper's 640x400 /
//! ViT-S / 7 nm host point — where a single host saturates at N≈2–4
//! sessions, so the host axis shows real throughput scaling under the
//! per-launch dispatch-overhead model.
//!
//! Results go to `BENCH_fleet.json` at the workspace root (or
//! `BLISS_BENCH_OUT`), next to `BENCH_serve.json`; the `fleet-smoke` CI job
//! uploads it on every push. `--quick` (or `BLISS_BENCH_FAST=1`) runs a
//! reduced sweep for CI.

use bliss_fleet::{FleetConfig, FleetReport, FleetRuntime, PlacementPolicy};
use blisscam_core::SystemConfig;
use serde::Serialize;
use std::time::Instant;

/// One load point of the sweep.
#[derive(Serialize)]
struct SweepPoint {
    sessions: usize,
    hosts: usize,
    policy: String,
    report: FleetReport,
    wall_ms: f64,
}

#[derive(Serialize)]
struct SweepReport {
    mode: String,
    frames_per_session: usize,
    points: Vec<SweepPoint>,
}

fn main() {
    let quick = bliss_bench::fast_mode();
    let (session_counts, host_counts, frames): (&[usize], &[usize], usize) = if quick {
        (&[6], &[1, 2], 4)
    } else {
        (&[8, 16, 32], &[1, 2, 4, 8], 24)
    };

    let mut system = SystemConfig::miniature();
    if quick {
        system.train_frames = 30;
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
    }
    eprintln!("training the shared BlissCam model ...");
    let fleet = FleetRuntime::new(system)
        .expect("training succeeds")
        .with_paper_scale_timing();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in session_counts {
        for &hosts in host_counts {
            for policy in PlacementPolicy::ALL {
                let cfg = FleetConfig::new(hosts, policy, n, frames);
                let t0 = Instant::now();
                let outcome = fleet.serve(&cfg).expect("fleet serves");
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let r = outcome.report;
                rows.push(vec![
                    n.to_string(),
                    hosts.to_string(),
                    policy.label().to_string(),
                    format!("{:.2}", r.latency.p50_ms),
                    format!("{:.2}", r.latency.p99_ms),
                    format!("{:.1}", r.deadline_miss_rate * 100.0),
                    format!("{:.0}", r.throughput_fps),
                    format!("{:.2}", r.mean_batch_size),
                    format!("{:.0}", r.mean_utilisation * 100.0),
                ]);
                points.push(SweepPoint {
                    sessions: n,
                    hosts,
                    policy: policy.label().to_string(),
                    report: r,
                    wall_ms,
                });
            }
        }
    }

    bliss_bench::print_table(
        "bliss_fleet sharding sweep (paper-scale timing, work-conserving batching per shard)",
        &[
            "N", "hosts", "policy", "p50 ms", "p99 ms", "miss %", "thr f/s", "mean B", "duty %",
        ],
        &rows,
    );

    let report = SweepReport {
        mode: if quick { "quick" } else { "standard" }.to_string(),
        frames_per_session: frames,
        points,
    };
    let path = bliss_bench::report_path("BENCH_fleet.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote fleet sweep to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
