//! Sharding sweep of the `bliss_fleet` multi-host serving fleet.
//!
//! Trains one BlissCam model, then serves (sessions × hosts × placement
//! policy) load points with latency accounted at the paper's 640x400 /
//! ViT-S / 7 nm host point — where a single host saturates at N≈2–4
//! sessions, so the host axis shows real throughput scaling under the
//! per-launch dispatch-overhead model.
//!
//! Results go to `BENCH_fleet.json` at the workspace root (or
//! `BLISS_BENCH_OUT`), next to `BENCH_serve.json`; the `fleet-smoke` CI job
//! uploads it on every push. `--quick` (or `BLISS_BENCH_FAST=1`) runs a
//! reduced sweep for CI.
//!
//! The whole sweep runs with `bliss_telemetry` tracing **on** (after an
//! off/on bit-identity probe): the report gains a per-stage breakdown and
//! a metrics snapshot (including per-host utilisation gauges), and the
//! spans — `pid` = host, `tid` = session — are exported as
//! Perfetto-loadable Chrome trace JSON to `TRACE_fleet.json`.

use bliss_fleet::{FleetConfig, FleetReport, FleetRuntime, PlacementPolicy};
use bliss_telemetry::export::{chrome_trace_json, stage_breakdown, StageSummary};
use bliss_telemetry::MetricsSnapshot;
use blisscam_core::SystemConfig;
use serde::json::JsonValue;
use serde::Serialize;
use std::time::Instant;

/// One load point of the sweep.
#[derive(Serialize)]
struct SweepPoint {
    sessions: usize,
    hosts: usize,
    policy: String,
    report: FleetReport,
    wall_ms: f64,
}

#[derive(Serialize)]
struct SweepReport {
    mode: String,
    frames_per_session: usize,
    /// Per-stage span aggregates over the whole traced sweep.
    stages: Vec<StageSummary>,
    /// The telemetry metrics registry frozen at the end of the sweep
    /// (per-host utilisation gauges reflect the last load point).
    metrics: MetricsSnapshot,
    /// Spans the fixed ring dropped (0 = the trace is complete).
    spans_dropped: u64,
    points: Vec<SweepPoint>,
}

fn main() {
    let quick = bliss_bench::fast_mode();
    let (session_counts, host_counts, frames): (&[usize], &[usize], usize) = if quick {
        (&[6], &[1, 2], 4)
    } else {
        (&[8, 16, 32], &[1, 2, 4, 8], 24)
    };

    let mut system = SystemConfig::miniature();
    if quick {
        system.train_frames = 30;
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
    }
    eprintln!("training the shared BlissCam model ...");
    let fleet = FleetRuntime::new(system)
        .expect("training succeeds")
        .with_paper_scale_timing();

    // Telemetry neutrality probe at fleet scale: off vs on must be
    // bit-identical before tracing is left on for the recorded sweep.
    bliss_telemetry::init_spans(1 << 17);
    let probe_cfg = FleetConfig::new(2, PlacementPolicy::RoundRobin, 4, frames.min(4));
    let outcome_off = fleet.serve(&probe_cfg).expect("probe serves");
    bliss_telemetry::set_enabled(true);
    let outcome_on = fleet.serve(&probe_cfg).expect("probe serves");
    assert_eq!(
        outcome_off, outcome_on,
        "tracing on/off must not change fleet results bit-for-bit"
    );
    println!("telemetry neutrality probe: on/off outcomes bit-identical");
    bliss_telemetry::clear_spans();
    bliss_telemetry::reset_metrics();

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in session_counts {
        for &hosts in host_counts {
            for policy in PlacementPolicy::ALL {
                let cfg = FleetConfig::new(hosts, policy, n, frames);
                let t0 = Instant::now();
                let outcome = fleet.serve(&cfg).expect("fleet serves");
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let r = outcome.report;
                rows.push(vec![
                    n.to_string(),
                    hosts.to_string(),
                    policy.label().to_string(),
                    format!("{:.2}", r.latency.p50_ms),
                    format!("{:.2}", r.latency.p99_ms),
                    format!("{:.1}", r.deadline_miss_rate * 100.0),
                    format!("{:.0}", r.throughput_fps),
                    format!("{:.2}", r.mean_batch_size),
                    format!("{:.0}", r.mean_utilisation * 100.0),
                ]);
                points.push(SweepPoint {
                    sessions: n,
                    hosts,
                    policy: policy.label().to_string(),
                    report: r,
                    wall_ms,
                });
            }
        }
    }

    bliss_bench::print_table(
        "bliss_fleet sharding sweep (paper-scale timing, work-conserving batching per shard)",
        &[
            "N", "hosts", "policy", "p50 ms", "p99 ms", "miss %", "thr f/s", "mean B", "duty %",
        ],
        &rows,
    );

    // Drain the span ring: validate the Chrome trace JSON by re-parsing,
    // then write it next to the bench report.
    bliss_telemetry::set_enabled(false);
    let spans_dropped = bliss_telemetry::spans_dropped();
    let spans = bliss_telemetry::take_spans();
    let stages = stage_breakdown(&spans);
    let metrics = bliss_telemetry::metrics_snapshot();
    let trace_json = chrome_trace_json(&spans);
    let trace_value = JsonValue::parse(&trace_json).expect("trace JSON must parse");
    let event_count = trace_value
        .field("traceEvents")
        .and_then(|v| v.expect_array())
        .expect("traceEvents array")
        .len();
    println!(
        "traced {} spans ({} dropped) into {} Chrome trace events",
        spans.len(),
        spans_dropped,
        event_count
    );
    let trace_path = bliss_bench::report_path("TRACE_fleet.json");
    match std::fs::write(&trace_path, &trace_json) {
        Ok(()) => println!("wrote Perfetto trace to {}", trace_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }

    let report = SweepReport {
        mode: if quick { "quick" } else { "standard" }.to_string(),
        frames_per_session: frames,
        stages,
        metrics,
        spans_dropped,
        points,
    };
    let path = bliss_bench::report_path("BENCH_fleet.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote fleet sweep to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
