//! Seeded chaos soak of the `bliss_fleet` fault-injection engine.
//!
//! Trains one BlissCam model, then drives (placement policy × fault seed)
//! chaos runs — host crashes with snapshot failover, slow-host windows,
//! batch timeouts, corrupt checkpoints — plus one forced-degradation run
//! per policy, and **hard-gates** the robustness contract on every run:
//!
//! * replay determinism: the same `(FleetConfig, ChaosConfig)` must
//!   reproduce the identical [`bliss_fleet::ChaosOutcome`] (fault log
//!   included);
//! * zero frame loss: every session ends with its full contiguous frame
//!   range, in the traces and in the merged timeline;
//! * recovery identity: with shedding off, every frame's
//!   gaze/volume/energy outputs must be bit-identical to the fault-free
//!   baseline — faults may only move timing.
//!
//! Any gate failure exits non-zero (the `chaos-smoke` CI job fails).
//! Results — per-run fault/recovery counters, recovery-latency samples and
//! survival curves — go to `BENCH_chaos.json` at the workspace root (or
//! `BLISS_BENCH_OUT`). `--quick` / `BLISS_BENCH_FAST=1` runs the reduced
//! CI profile.

use bliss_fleet::{
    ChaosConfig, ChaosReport, DegradationPolicy, FaultMix, FaultPlan, FleetConfig, FleetOutcome,
    FleetRuntime, InjectedFault, PlacementPolicy,
};
use bliss_serve::FrameRecord;
use bliss_telemetry::MetricsSnapshot;
use blisscam_core::SystemConfig;
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// One chaos run of the sweep.
#[derive(Serialize)]
struct ChaosPoint {
    policy: String,
    /// Fault-plan seed (`0` marks the forced-degradation run).
    seed: u64,
    sessions: usize,
    hosts: usize,
    /// Faults scheduled by the plan.
    scheduled: usize,
    chaos: ChaosReport,
    /// Every fault that actually fired, in trigger order.
    log: Vec<InjectedFault>,
    /// Fleet-wide deadline-miss rate of the chaos run (the degradation run
    /// trades misses for shed frames).
    deadline_miss_rate: f64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct ChaosSweepReport {
    mode: String,
    sessions: usize,
    hosts: usize,
    frames_per_session: usize,
    /// The telemetry metrics registry frozen at the end of the sweep: the
    /// fault/recovery counters and the recovery-latency histogram aggregate
    /// every run above.
    metrics: MetricsSnapshot,
    points: Vec<ChaosPoint>,
}

/// Per-session records with contention-dependent timing zeroed — the view
/// that must survive any fault schedule bit-for-bit.
fn accuracy_records(outcome: &FleetOutcome) -> BTreeMap<usize, Vec<FrameRecord>> {
    let mut by_session = BTreeMap::new();
    for host in &outcome.per_host {
        for trace in &host.traces {
            let mut records = trace.records.clone();
            for r in &mut records {
                r.arrival_s = 0.0;
                r.completion_s = 0.0;
                r.latency_s = 0.0;
                r.deadline_missed = false;
                r.batch_size = 0;
            }
            assert!(
                by_session.insert(trace.config.id, records).is_none(),
                "session {} appears on two hosts",
                trace.config.id
            );
        }
    }
    by_session
}

/// Hard gate: complete, gap-free traces and timeline.
fn gate_zero_frame_loss(
    outcome: &FleetOutcome,
    sessions: usize,
    frames: usize,
) -> Result<(), String> {
    let acc = accuracy_records(outcome);
    if acc.len() != sessions {
        return Err(format!("{} of {sessions} sessions have traces", acc.len()));
    }
    for (id, records) in &acc {
        if records.len() != frames {
            return Err(format!("session {id}: {}/{frames} frames", records.len()));
        }
        for (i, r) in records.iter().enumerate() {
            if r.index != i {
                return Err(format!("session {id}: gap at frame {i}"));
            }
        }
    }
    if outcome.timeline.len() != sessions * frames {
        return Err(format!(
            "timeline holds {} of {} events",
            outcome.timeline.len(),
            sessions * frames
        ));
    }
    for pair in outcome.timeline.windows(2) {
        if pair[1].time_s < pair[0].time_s {
            return Err(format!("timeline goes backward at {:.9}s", pair[1].time_s));
        }
    }
    Ok(())
}

fn main() {
    let quick = bliss_bench::fast_mode();
    let (sessions, hosts, frames, seeds): (usize, usize, usize, &[u64]) = if quick {
        (6, 2, 4, &[0xA1, 0xB2, 0xC3])
    } else {
        (16, 4, 12, &[0xA1, 0xB2, 0xC3, 0xD4, 0xE5])
    };

    let mut system = SystemConfig::miniature();
    if quick {
        system.train_frames = 30;
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
    }
    eprintln!("training the shared BlissCam model ...");
    let fleet = FleetRuntime::new(system)
        .expect("training succeeds")
        .with_paper_scale_timing();

    bliss_telemetry::reset_metrics();
    bliss_telemetry::set_enabled(true);

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for policy in PlacementPolicy::ALL {
        let cfg = FleetConfig::new(hosts, policy, sessions, frames);
        let baseline = fleet.serve(&cfg).expect("fault-free baseline serves");
        let horizon = baseline
            .timeline
            .last()
            .map_or(1e-3, |e| e.time_s)
            .max(1e-3);
        let baseline_acc = accuracy_records(&baseline);

        // Seeded fault runs: crashes, slow windows, timeouts, corrupt
        // checkpoints — shedding off, so recovery identity must be exact.
        for &seed in seeds {
            let plan = FaultPlan::generate(seed, hosts, horizon, &FaultMix::default());
            let mut chaos = ChaosConfig::new(plan);
            chaos.checkpoint_interval = 2;
            let t0 = Instant::now();
            let run = fleet.serve_chaos(&cfg, &chaos).expect("chaos serves");
            let replay = fleet.serve_chaos(&cfg, &chaos).expect("chaos serves");
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

            let label = format!("{}/seed {seed:#x}", policy.label());
            if run != replay {
                failures.push(format!("{label}: chaos replay diverged"));
            }
            if let Err(e) = gate_zero_frame_loss(&run.outcome, sessions, frames) {
                failures.push(format!("{label}: frame loss — {e}"));
            }
            if accuracy_records(&run.outcome) != baseline_acc {
                failures.push(format!(
                    "{label}: recovery identity broken — accuracy/volume/energy diverged from the fault-free run"
                ));
            }

            let f = run.chaos.faults;
            rows.push(vec![
                policy.label().to_string(),
                format!("{seed:#x}"),
                format!("{}", f.faults_injected),
                format!("{}", f.failovers),
                format!("{}", f.sessions_recovered),
                format!("{}", f.frames_replayed),
                format!("{}", f.batch_timeouts),
                format!("{}", f.corrupt_checkpoint_reads),
                if run.chaos.recovery_latency_s.is_empty() {
                    "-".to_string()
                } else {
                    format!(
                        "{:.2}",
                        run.chaos
                            .recovery_latency_s
                            .iter()
                            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
                            * 1e3
                    )
                },
            ]);
            points.push(ChaosPoint {
                policy: policy.label().to_string(),
                seed,
                sessions,
                hosts,
                scheduled: chaos.plan.events.len(),
                deadline_miss_rate: run.outcome.report.deadline_miss_rate,
                chaos: run.chaos,
                log: run.log,
                wall_ms,
            });
        }

        // Forced-degradation run: the SLO ladder engages immediately, so
        // the shedding path is exercised every sweep. Shed frames trade
        // host inference for the feedback-ROI fallback — accuracy identity
        // is *not* gated here, frame completeness still is.
        let mut chaos = ChaosConfig::new(FaultPlan::quiet());
        chaos.degradation = Some(DegradationPolicy {
            window_frames: 1,
            enter_miss_rate: 0.0,
            exit_miss_rate: -1.0,
            ..DegradationPolicy::default()
        });
        let t0 = Instant::now();
        let run = fleet.serve_chaos(&cfg, &chaos).expect("degraded serve");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let label = format!("{}/degraded", policy.label());
        if let Err(e) = gate_zero_frame_loss(&run.outcome, sessions, frames) {
            failures.push(format!("{label}: frame loss — {e}"));
        }
        if run.chaos.faults.frames_shed == 0 {
            failures.push(format!("{label}: forced degradation shed nothing"));
        }
        rows.push(vec![
            policy.label().to_string(),
            "degraded".to_string(),
            "0".to_string(),
            "0".to_string(),
            "0".to_string(),
            "0".to_string(),
            "0".to_string(),
            "0".to_string(),
            format!("shed {}", run.chaos.faults.frames_shed),
        ]);
        points.push(ChaosPoint {
            policy: policy.label().to_string(),
            seed: 0,
            sessions,
            hosts,
            scheduled: 0,
            deadline_miss_rate: run.outcome.report.deadline_miss_rate,
            chaos: run.chaos,
            log: run.log,
            wall_ms,
        });
    }
    bliss_telemetry::set_enabled(false);

    bliss_bench::print_table(
        "bliss_fleet chaos soak (crash/slow/timeout/corrupt faults, snapshot failover)",
        &[
            "policy",
            "seed",
            "inj",
            "fail",
            "recov",
            "replay",
            "t/o",
            "corrupt",
            "rec p100 ms",
        ],
        &rows,
    );

    let report = ChaosSweepReport {
        mode: if quick { "quick" } else { "standard" }.to_string(),
        sessions,
        hosts,
        frames_per_session: frames,
        metrics: bliss_telemetry::metrics_snapshot(),
        points,
    };
    let path = bliss_bench::report_path("BENCH_chaos.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote chaos soak to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    if !failures.is_empty() {
        eprintln!("chaos gates FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!(
        "all chaos gates passed: replay determinism, zero frame loss, recovery identity ({} runs)",
        report.points.len()
    );
}
