//! §VI-D — silicon area estimation of the BlissCam sensor.

use bliss_bench::print_table;
use bliss_energy::{AreaModel, ProcessNode};

fn main() {
    let m = AreaModel::default();
    let rows = vec![
        vec![
            "pixel array (640x400 @ 5 um)".to_string(),
            format!("{:.2} mm^2", m.pixel_array_mm2(640, 400)),
            "6.4 mm^2".to_string(),
        ],
        vec![
            "in-sensor NPU (8x8 MAC + 512 KB)".to_string(),
            format!("{:.2} mm^2", m.npu_mm2(8, 8, 512.0, ProcessNode::NM22)),
            "0.4 mm^2".to_string(),
        ],
        vec![
            "output buffer + RLE".to_string(),
            format!("{:.2} mm^2", m.output_buffer_mm2(ProcessNode::NM22)),
            "0.1 mm^2".to_string(),
        ],
    ];
    print_table(
        "Paper §VI-D: area estimation (22 nm logic layer)",
        &["block", "model", "paper"],
        &rows,
    );
    println!(
        "\nNPU area overhead over pixel array: {:.1} % (paper §II-B quotes ~5.8 %)",
        m.npu_overhead_fraction(640, 400, 8, 8, 512.0, ProcessNode::NM22) * 100.0
    );
}
