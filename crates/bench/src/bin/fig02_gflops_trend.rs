//! Fig. 2 — compute capability of mobile GPUs vs the demand of eye-tracking
//! algorithms at a 120 Hz tracking rate.

use bliss_bench::print_table;
use bliss_energy::trends::{EYE_TRACKING_ALGORITHMS, JETSON_GPUS};

fn main() {
    let rows: Vec<Vec<String>> = JETSON_GPUS
        .iter()
        .map(|g| {
            vec![
                g.name.to_string(),
                g.year.to_string(),
                format!("{:.0}", g.gflops),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 (upper series): Nvidia Jetson GPU capability",
        &["GPU", "year", "GFLOPS"],
        &rows,
    );

    let rows: Vec<Vec<String>> = EYE_TRACKING_ALGORITHMS
        .iter()
        .map(|a| {
            vec![
                a.name.to_string(),
                a.year.to_string(),
                format!("{:.1}", a.gflop_per_frame),
                format!("{:.0}", a.demand_gflops(120.0)),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 (lower series): algorithm demand at 120 FPS",
        &["algorithm", "year", "GFLOP/frame", "GFLOPS @120Hz"],
        &rows,
    );
    println!("\nTakeaway (paper §II-C): recent mobile GPUs exceed recent algorithms' 120 Hz");
    println!("demand — tracking *rate* is not the bottleneck; latency and power are.");
}
