//! Fig. 3 — MIPI CSI-2 transfer latency vs image resolution, against the
//! 15 ms end-to-end tracking budget.

use bliss_bench::{fmt_time, print_table};
use bliss_energy::{MipiLink, Resolution};

fn main() {
    let link = MipiLink::default();
    let rows: Vec<Vec<String>> = Resolution::ALL
        .iter()
        .map(|r| {
            let t = link.frame_transfer_time_s(*r);
            vec![
                r.label().to_string(),
                format!("{}", r.pixels()),
                fmt_time(t),
                if t > 15e-3 {
                    "EXCEEDED".into()
                } else {
                    "ok".into()
                },
            ]
        })
        .collect();
    print_table(
        "Fig. 3: MIPI transfer latency vs resolution (RAW10, budget 15 ms)",
        &["resolution", "pixels", "transfer", "15 ms budget"],
        &rows,
    );
    println!("\nTakeaway (paper §II-C): at 4K the transfer alone (~22 ms) already exceeds");
    println!("the 15 ms end-to-end requirement — data volume must shrink at the source.");
}
