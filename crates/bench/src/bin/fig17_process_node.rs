//! Fig. 17 — energy saving over NPU-Full as the sensor logic layer's process
//! node sweeps 65→16 nm, under a 7 nm and a 22 nm host SoC.

use bliss_bench::print_table;
use blisscam_core::experiments::fig17_process_node;

fn main() {
    let rows_data = fig17_process_node();
    for soc in [7u32, 22] {
        let rows: Vec<Vec<String>> = rows_data
            .iter()
            .filter(|r| r.soc_nm == soc)
            .map(|r| {
                vec![
                    format!("{} nm", r.logic_nm),
                    format!("{:.2}x", r.energy_saving),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 17: energy saving vs sensor logic node (SoC = {soc} nm)"),
            &["logic node", "saving over NPU-Full"],
            &rows,
        );
    }
    println!("\nTakeaway (paper §VI-F): the saving is more sensitive to the logic node when");
    println!("the SoC is 7 nm — with a 22 nm SoC the off-sensor work dominates either way.");
}
