//! Long-horizon durability soak of the `bliss_serve` runtime.
//!
//! Trains one BlissCam model, then serves epoch after epoch of
//! scenario-diverse session fleets on it — 10⁶ frames of session time at
//! the standard profile — streaming every steady-state frame latency into
//! a fixed-bucket histogram and watching the rot modes the
//! [`bliss_bench::soak`] module documents: allocator/pool creep,
//! plan-cache/arena growth on the compiled inference path, cross-run state
//! leaks (same-seed sentinel epochs must stay bit-identical) and accuracy
//! drift.
//!
//! The whole soak runs on a single-thread pool so the scratch-pool
//! readings on the main thread cover the inference work too. Results go
//! to `BENCH_soak.json` at the workspace root (or `BLISS_BENCH_OUT`);
//! `--quick` / `BLISS_BENCH_FAST=1` runs the minutes-scale smoke profile
//! the `soak-smoke` CI job uses. The process exits non-zero if a
//! durability check fails, so CI catches regressions without parsing the
//! JSON.

use bliss_bench::soak::{run_soak, SoakConfig};
use bliss_serve::ServeRuntime;
use blisscam_core::SystemConfig;
use serde::Serialize;
use std::time::Instant;

fn main() {
    let quick = bliss_bench::fast_mode();
    let cfg = if quick {
        SoakConfig::smoke()
    } else {
        SoakConfig::standard()
    };

    let mut system = SystemConfig::miniature();
    if quick {
        system.train_frames = 30;
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
    }
    eprintln!("training the shared BlissCam model ...");
    let runtime = ServeRuntime::new(system)
        .expect("training succeeds")
        .with_paper_scale_timing();

    eprintln!(
        "soaking: {} sessions x {} frames x {} epochs = {} frames ...",
        cfg.sessions,
        cfg.frames_per_session,
        cfg.epochs,
        cfg.frames_total()
    );
    let t0 = Instant::now();
    // Metrics-only telemetry for the whole soak: the span ring is never
    // initialised (recording a span is then a no-op), so the million-frame
    // horizon adds no trace memory — only the static registry counters.
    bliss_telemetry::set_enabled(true);
    // Single-thread pool: the scratch-pool high-water readings are
    // per-thread, so this makes the main-thread curve cover inference too.
    let report =
        bliss_parallel::with_thread_count(1, || run_soak(&runtime, &cfg)).expect("soak succeeds");
    bliss_telemetry::set_enabled(false);
    let wall_s = t0.elapsed().as_secs_f64();
    let metrics = bliss_telemetry::metrics_snapshot();

    let mut rows = Vec::new();
    // Print head/tail epochs only; the JSON has them all.
    let shown: Vec<usize> = if report.per_epoch.len() <= 8 {
        (0..report.per_epoch.len()).collect()
    } else {
        let n = report.per_epoch.len();
        (0..4).chain(n - 4..n).collect()
    };
    for &i in &shown {
        let e = &report.per_epoch[i];
        rows.push(vec![
            e.epoch.to_string(),
            e.frames.to_string(),
            format!("{:.3}", e.mean_horizontal_error_deg),
            format!("{:.3}", e.mean_vertical_error_deg),
            format!("{:.1}", e.steady_miss_rate * 100.0),
            format!("{:.0}", e.pool_retained_bytes as f64 / 1024.0),
        ]);
    }
    bliss_bench::print_table(
        "bliss_serve durability soak (per-epoch health, head/tail)",
        &["epoch", "frames", "h err", "v err", "miss %", "pool KiB"],
        &rows,
    );
    println!(
        "{} steady frames over {:.1} virtual s: p50/p95/p99/max {:.2}/{:.2}/{:.2}/{:.2} ms, \
         {:.2}% misses, pool high-water {:.0} KiB ({}), {} plans / {} arena elems ({}), \
         sentinels {}, wall {:.1} s",
        report.steady_frames,
        report.virtual_s_total,
        report.latency.p50_ms,
        report.latency.p95_ms,
        report.latency.p99_ms,
        report.latency.max_ms,
        report.steady_miss_rate * 100.0,
        report.pool_high_water_bytes as f64 / 1024.0,
        if report.pool_flat_after_warmup {
            "flat"
        } else {
            "GROWING"
        },
        report.plan_high_water,
        report.arena_high_water_elems,
        if report.plans_flat_after_warmup {
            "flat"
        } else {
            "GROWING"
        },
        if report.sentinel_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
        wall_s,
    );

    println!(
        "telemetry: plan cache {} hits / {} misses / {} evictions, \
         {} frames in {} batches, {} cold-start reads, {} deadline misses",
        metrics.counter("plan_cache_hits"),
        metrics.counter("plan_cache_misses"),
        metrics.counter("plan_cache_evictions"),
        metrics.counter("frames_served"),
        metrics.counter("batches_launched"),
        metrics.counter("cold_start_frames"),
        metrics.counter("deadline_misses"),
    );

    let path = bliss_bench::report_path("BENCH_soak.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let mpath = bliss_bench::report_path("BENCH_soak_metrics.json");
    match std::fs::write(&mpath, metrics.to_json()) {
        Ok(()) => println!("wrote {}", mpath.display()),
        Err(e) => eprintln!("could not write {}: {e}", mpath.display()),
    }

    let mut failed = false;
    if !report.sentinel_identical {
        eprintln!("FAIL: same-seed sentinel epochs diverged — state leaked across epochs");
        failed = true;
    }
    if !report.pool_flat_after_warmup {
        eprintln!("FAIL: scratch-pool retained bytes kept growing past mid-soak");
        failed = true;
    }
    if !report.plans_flat_after_warmup {
        eprintln!("FAIL: the repeat-seed sentinel epoch compiled new plans — plan-cache leak");
        failed = true;
    }
    let first = report
        .per_epoch
        .first()
        .expect("soak ran at least one epoch");
    let last = report
        .per_epoch
        .last()
        .expect("soak ran at least one epoch");
    // Sentinel epochs share a seed, so their mean errors must match
    // exactly; this is the accuracy-drift check in its sharpest form.
    if first.mean_horizontal_error_deg != last.mean_horizontal_error_deg
        || first.mean_vertical_error_deg != last.mean_vertical_error_deg
    {
        eprintln!("FAIL: sentinel mean gaze error drifted between first and last epoch");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
