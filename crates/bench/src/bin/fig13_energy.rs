//! Fig. 13 — per-frame energy of the four system variants at 120 FPS,
//! paper-scale hardware (65 nm analog / 22 nm logic / 7 nm SoC).

use bliss_bench::print_table;
use blisscam_core::experiments::fig13_energy;
use blisscam_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper();
    let rows_data = fig13_energy(&cfg);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.1}", r.breakdown.total_j() * 1e6),
                format!("{:.1}", r.breakdown.sensor_j() * 1e6),
                format!("{:.1}", r.breakdown.communication_j() * 1e6),
                format!("{:.1}", r.breakdown.off_sensor_j() * 1e6),
                format!("{:.2}x", r.ratio_vs_blisscam),
            ]
        })
        .collect();
    print_table(
        "Fig. 13: energy per frame at 120 FPS (65/22/7 nm)",
        &[
            "variant",
            "total uJ",
            "sensor uJ",
            "comm uJ",
            "off-sensor uJ",
            "vs BlissCam",
        ],
        &rows,
    );

    for r in &rows_data {
        let comp: Vec<Vec<String>> = r
            .breakdown
            .components()
            .into_iter()
            .filter(|(_, j)| *j > 0.0)
            .map(|(l, j)| vec![l.to_string(), format!("{:.2}", j * 1e6)])
            .collect();
        print_table(
            &format!("{} component breakdown", r.variant),
            &["component", "uJ"],
            &comp,
        );
    }

    let full = &rows_data[0];
    let bliss = rows_data.iter().find(|r| r.variant == "BlissCam").unwrap();
    println!(
        "\nNPU-Full / BlissCam = {:.2}x (paper: 4.0x); off-sensor share of NPU-Full = {:.1} % (paper: 60.1 %)",
        full.breakdown.total_j() / bliss.breakdown.total_j(),
        full.breakdown.off_sensor_j() / full.breakdown.total_j() * 100.0
    );
    println!(
        "feedback overhead = {:.2} % (paper: 0.6 %), RLE overhead = {:.3} % (paper: 0.04 %)",
        bliss.breakdown.feedback_j / bliss.breakdown.total_j() * 100.0,
        bliss.breakdown.rle_j / bliss.breakdown.total_j() * 100.0
    );
}
