//! Fig. 15 — horizontal gaze error of seven sampling strategies across
//! compression rates. Pass `--quick` for a fast run.

use bliss_bench::{print_table, scale_from_args};
use blisscam_core::experiments::fig15_sampling;

fn main() {
    let scale = scale_from_args();
    println!(
        "training {} frames x {} epochs per compression point...",
        scale.train_frames, scale.epochs
    );
    let result = fig15_sampling(&scale).expect("fig15 experiment");
    for series in &result.series {
        let rows: Vec<Vec<String>> = series
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}x", p.compression),
                    format!("{:.2} ± {:.2}", p.horizontal.mean, p.horizontal.std),
                    format!("{:.1} %", p.seg_accuracy * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 15: {}", series.label),
            &["compression", "horizontal err (deg)", "seg acc"],
            &rows,
        );
    }
    println!("\nExpectation (paper §VI-E): Ours and ROI+Learned stay below 1° at ~21x;");
    println!("full-frame strategies degrade fastest; uniform DS trails random sampling.");
}
