//! Fig. 16 — gaze error and energy saving vs frame rate (30–500 FPS).
//! Pass `--quick` for a fast run.

use bliss_bench::{print_table, scale_from_args};
use blisscam_core::experiments::fig16_framerate;

fn main() {
    let scale = scale_from_args();
    let rows_data = fig16_framerate(&scale).expect("fig16 experiment");
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.fps),
                format!("{:.2}", r.horizontal_error_deg),
                format!("{:.2}x", r.energy_saving),
            ]
        })
        .collect();
    print_table(
        "Fig. 16: frame-rate sensitivity",
        &["FPS", "horizontal err (deg)", "energy saving vs NPU-Full"],
        &rows,
    );
    println!("\nExpectation (paper §VI-F): error creeps up slightly with FPS (shorter");
    println!("exposure, lower SNR) while the energy saving grows (3.6x -> 6.7x in the paper)");
    println!("because the analog frame buffer's retention interval shrinks.");
}
