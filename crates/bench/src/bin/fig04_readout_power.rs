//! Fig. 4 — percentage of image-sensor power attributed to the readout
//! circuitry across six recent sensors.

use bliss_bench::print_table;
use bliss_energy::trends::{mean_readout_power_pct, READOUT_POWER_SURVEY};

fn main() {
    let rows: Vec<Vec<String>> = READOUT_POWER_SURVEY
        .iter()
        .map(|e| {
            vec![
                e.venue.to_string(),
                e.year.to_string(),
                format!("{:.0} %", e.readout_power_pct),
            ]
        })
        .collect();
    print_table(
        "Fig. 4: readout share of sensor power across recent sensors",
        &["sensor", "year", "readout power"],
        &rows,
    );
    println!(
        "\nmean: {:.1} % (paper quotes 66 %)",
        mean_readout_power_pct()
    );
}
