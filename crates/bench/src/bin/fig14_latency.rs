//! Fig. 14 — end-to-end tracking latency of the four variants at 120 FPS.

use bliss_bench::{fmt_time, print_table};
use blisscam_core::experiments::fig14_latency;
use blisscam_core::SystemConfig;

fn main() {
    let cfg = SystemConfig::paper();
    let rows_data = fig14_latency(&cfg);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                fmt_time(r.latency_s),
                format!("{:.1}", r.achieved_fps),
            ]
        })
        .collect();
    print_table(
        "Fig. 14: end-to-end latency at 120 FPS (65/22/7 nm)",
        &["variant", "latency", "achieved FPS"],
        &rows,
    );

    for r in &rows_data {
        let stages: Vec<Vec<String>> = r
            .stages
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .map(|(l, s)| vec![l.clone(), fmt_time(*s)])
            .collect();
        print_table(
            &format!("{} stage timing", r.variant),
            &["stage", "mean time"],
            &stages,
        );
    }

    let full = rows_data.iter().find(|r| r.variant == "NPU-Full").unwrap();
    let bliss = rows_data.iter().find(|r| r.variant == "BlissCam").unwrap();
    println!(
        "\nlatency reduction NPU-Full/BlissCam = {:.2}x (paper: 1.4x); BlissCam latency {} (budget 15 ms)",
        full.latency_s / bliss.latency_s,
        fmt_time(bliss.latency_s)
    );
}
