//! Load sweep of the `bliss_serve` multi-session streaming runtime.
//!
//! Trains one BlissCam model, then serves fleets of 1 → 64 concurrent
//! scenario-diverse sessions twice per load point — once with cross-session
//! **batched** inference (`max_batch = 16`) and once **sequential**
//! (`max_batch = 1`) — recording p50/p95/p99 virtual-time frame latency,
//! deadline-miss rate, throughput, mean batch size and the wall-clock time
//! of the whole run (the batching win on real hardware).
//!
//! Results go to `BENCH_serve.json` at the workspace root (or
//! `BLISS_BENCH_OUT`), next to `BENCH_kernels.json`; the `serve-smoke` CI
//! job uploads it on every push. `--quick` (or `BLISS_BENCH_FAST=1`) runs a
//! reduced sweep for CI.
//!
//! The whole sweep runs with `bliss_telemetry` tracing **on** (after an
//! off/on bit-identity probe): the report gains a per-stage breakdown and
//! a metrics-registry snapshot, and the recorded spans are exported as
//! Perfetto-loadable Chrome trace JSON to `TRACE_serve.json` (validated by
//! re-parsing before it is written).

use bliss_serve::{ServeConfig, ServeReport, ServeRuntime};
use bliss_telemetry::export::{chrome_trace_json, stage_breakdown, StageSummary};
use bliss_telemetry::MetricsSnapshot;
use blisscam_core::{SparseFrontEnd, SystemConfig};
use serde::json::JsonValue;
use serde::Serialize;
use std::time::Instant;

/// One load point: the same fleet served batched and sequentially.
#[derive(Serialize)]
struct SweepPoint {
    sessions: usize,
    batched: ServeReport,
    sequential: ServeReport,
    batched_wall_ms: f64,
    sequential_wall_ms: f64,
    /// Wall-clock speedup of batched over sequential serving.
    wall_speedup: f64,
    /// Virtual-time p95 latency ratio, sequential / batched.
    virtual_p95_ratio: f64,
}

#[derive(Serialize)]
struct SweepReport {
    mode: String,
    frames_per_session: usize,
    max_batch: usize,
    /// Mean steady-state readout-box area over the renderer's ground-truth
    /// ROI area (cold-start full-frame reads excluded). 1.0 would be a
    /// perfectly tight predictor; the PR-3 era miniature predictor sat at
    /// ~2-3x, which kept per-frame attention dominant and the saturation
    /// knee at N≈2-4.
    roi_box_to_gt_area_ratio: f64,
    /// First swept session count whose batched deadline-miss rate reaches
    /// 50% (0 = never): the serving saturation knee.
    knee_sessions: usize,
    /// Wall-clock of one representative batched load point served through
    /// the compiled execution plans (the default).
    planned_wall_ms: f64,
    /// The same load point forced back onto the autograd tape.
    tape_wall_ms: f64,
    /// `tape_wall_ms / planned_wall_ms`: the per-frame dispatch win of
    /// planned execution (identical outputs, pinned bit-for-bit before the
    /// ratio is reported).
    planned_dispatch_speedup: f64,
    /// Per-stage span aggregates over the whole traced sweep (virtual and
    /// wall time), in pipeline order.
    stages: Vec<StageSummary>,
    /// The telemetry metrics registry frozen at the end of the sweep.
    metrics: MetricsSnapshot,
    /// Spans the fixed ring dropped (0 = the trace is complete).
    spans_dropped: u64,
    points: Vec<SweepPoint>,
}

/// Serves one session solo and compares its steady-state readout-box areas
/// against the same stream's rendered ground-truth ROI areas.
fn roi_tightness(runtime: &ServeRuntime, frames: usize) -> f64 {
    let cfg = ServeConfig::new(1, frames);
    let outcome = runtime.serve(&cfg).expect("solo probe serve succeeds");
    let sc = runtime.session_configs(&cfg)[0];
    let (seq, _) = SparseFrontEnd::scenario_stream(runtime.system(), sc.scenario, sc.seed, frames);
    let (mut predicted, mut truth) = (0.0f64, 0.0f64);
    for r in &outcome.traces[0].records {
        if r.index == 0 {
            continue; // cold-start full-frame bootstrap read
        }
        predicted += r.roi_pixels as f64;
        truth += seq.frames[r.index + 1].roi.area() as f64;
    }
    if truth > 0.0 {
        predicted / truth
    } else {
        f64::NAN
    }
}

fn main() {
    let quick = bliss_bench::fast_mode();
    let (session_counts, frames): (&[usize], usize) = if quick {
        (&[1, 4, 16], 6)
    } else {
        (&[1, 2, 4, 8, 16, 32, 64], 24)
    };

    let mut system = SystemConfig::miniature();
    if quick {
        system.train_frames = 30;
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
    }
    eprintln!("training the shared BlissCam model ...");
    // Executable pipeline at miniature scale; latency accounting at the
    // paper's 640x400 / ViT-S / 7 nm host point, where ~1 ms segmentation
    // launches meet the 8.3 ms frame period and the sweep crosses the
    // saturation knee.
    let runtime = ServeRuntime::new(system)
        .expect("training succeeds")
        .with_paper_scale_timing();

    // Telemetry neutrality probe: the same load point served with tracing
    // off and on must produce bit-identical outcomes (telemetry is
    // write-only — nothing it records feeds back into scheduling or
    // numerics). Only then is tracing left on for the recorded sweep.
    bliss_telemetry::init_spans(1 << 17);
    let neutrality_cfg = ServeConfig::new(2, frames.min(8));
    let outcome_off = runtime.serve(&neutrality_cfg).expect("probe serves");
    bliss_telemetry::set_enabled(true);
    let outcome_on = runtime.serve(&neutrality_cfg).expect("probe serves");
    assert_eq!(
        outcome_off, outcome_on,
        "tracing on/off must not change serving results bit-for-bit"
    );
    println!("telemetry neutrality probe: on/off outcomes bit-identical");
    bliss_telemetry::clear_spans();
    bliss_telemetry::reset_metrics();

    let max_batch = 16;
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in session_counts {
        let mut batched_cfg = ServeConfig::new(n, frames);
        batched_cfg.max_batch = max_batch;
        let mut sequential_cfg = batched_cfg;
        sequential_cfg.max_batch = 1;

        let t0 = Instant::now();
        let batched = runtime.serve(&batched_cfg).expect("serve succeeds").report;
        let batched_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let sequential = runtime
            .serve(&sequential_cfg)
            .expect("serve succeeds")
            .report;
        let sequential_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

        rows.push(vec![
            n.to_string(),
            format!("{:.2}", batched.latency.p50_ms),
            format!("{:.2}", batched.latency.p95_ms),
            format!("{:.2}", batched.latency.p99_ms),
            format!("{:.1}", batched.deadline_miss_rate * 100.0),
            format!("{:.0}", batched.throughput_fps),
            format!("{:.2}", batched.mean_batch_size),
            format!("{:.2}", sequential.latency.p95_ms),
            format!("{:.2}x", sequential_wall_ms / batched_wall_ms.max(1e-9)),
        ]);
        points.push(SweepPoint {
            sessions: n,
            virtual_p95_ratio: sequential.latency.p95_ms / batched.latency.p95_ms.max(1e-12),
            wall_speedup: sequential_wall_ms / batched_wall_ms.max(1e-9),
            batched,
            sequential,
            batched_wall_ms,
            sequential_wall_ms,
        });
    }

    bliss_bench::print_table(
        "bliss_serve load sweep (batched max_batch=16 vs sequential max_batch=1)",
        &[
            "N",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "miss %",
            "thr f/s",
            "mean B",
            "seq p95",
            "wall speedup",
        ],
        &rows,
    );

    let roi_ratio = roi_tightness(&runtime, frames.max(12));
    let knee_sessions = points
        .iter()
        .find(|p| p.batched.deadline_miss_rate >= 0.5)
        .map_or(0, |p| p.sessions);
    println!("roi box/gt area ratio {roi_ratio:.2}, saturation knee at N={knee_sessions}");

    // Dispatch win: one mid-sweep batched load point served through the
    // compiled execution plans (the default), then forced back onto the
    // autograd tape. Outputs must agree bit-for-bit; only wall time moves.
    let mut probe_cfg = ServeConfig::new(if quick { 4 } else { 8 }, frames);
    probe_cfg.max_batch = max_batch;
    let t = Instant::now();
    let planned_outcome = runtime.serve(&probe_cfg).expect("serve succeeds");
    let planned_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let tape_runtime = runtime.without_planned_inference();
    let t = Instant::now();
    let tape_outcome = tape_runtime.serve(&probe_cfg).expect("serve succeeds");
    let tape_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        planned_outcome.report, tape_outcome.report,
        "planned and tape serving must agree bit-for-bit"
    );
    let planned_dispatch_speedup = tape_wall_ms / planned_wall_ms.max(1e-9);
    println!(
        "planned dispatch {planned_wall_ms:.1} ms vs tape {tape_wall_ms:.1} ms \
         ({planned_dispatch_speedup:.2}x)"
    );

    // Drain the span ring into the Perfetto-loadable Chrome trace and the
    // per-stage breakdown; validate the trace JSON by re-parsing it with
    // the same parser CI uses before writing it next to the bench report.
    bliss_telemetry::set_enabled(false);
    let spans_dropped = bliss_telemetry::spans_dropped();
    let spans = bliss_telemetry::take_spans();
    let stages = stage_breakdown(&spans);
    let metrics = bliss_telemetry::metrics_snapshot();
    let trace_json = chrome_trace_json(&spans);
    let trace_value = JsonValue::parse(&trace_json).expect("trace JSON must parse");
    let event_count = trace_value
        .field("traceEvents")
        .and_then(|v| v.expect_array())
        .expect("traceEvents array")
        .len();
    println!(
        "traced {} spans ({} dropped) into {} Chrome trace events",
        spans.len(),
        spans_dropped,
        event_count
    );
    let trace_path = bliss_bench::report_path("TRACE_serve.json");
    match std::fs::write(&trace_path, &trace_json) {
        Ok(()) => println!("wrote Perfetto trace to {}", trace_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }

    let report = SweepReport {
        mode: if quick { "quick" } else { "standard" }.to_string(),
        frames_per_session: frames,
        max_batch,
        roi_box_to_gt_area_ratio: roi_ratio,
        knee_sessions,
        planned_wall_ms,
        tape_wall_ms,
        planned_dispatch_speedup,
        stages,
        metrics,
        spans_dropped,
        points,
    };
    let path = bliss_bench::report_path("BENCH_serve.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote serve sweep to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
