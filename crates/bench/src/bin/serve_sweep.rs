//! Load sweep of the `bliss_serve` multi-session streaming runtime.
//!
//! Trains one BlissCam model, then serves fleets of 1 → 64 concurrent
//! scenario-diverse sessions twice per load point — once with cross-session
//! **batched** inference (`max_batch = 16`) and once **sequential**
//! (`max_batch = 1`) — recording p50/p95/p99 virtual-time frame latency,
//! deadline-miss rate, throughput, mean batch size and the wall-clock time
//! of the whole run (the batching win on real hardware).
//!
//! Results go to `BENCH_serve.json` at the workspace root (or
//! `BLISS_BENCH_OUT`), next to `BENCH_kernels.json`; the `serve-smoke` CI
//! job uploads it on every push. `--quick` (or `BLISS_BENCH_FAST=1`) runs a
//! reduced sweep for CI.
//!
//! The whole sweep runs with `bliss_telemetry` tracing **on** (after an
//! off/on bit-identity probe): the report gains a per-stage breakdown and
//! a metrics-registry snapshot, and the recorded spans are exported as
//! Perfetto-loadable Chrome trace JSON to `TRACE_serve.json` (validated by
//! re-parsing before it is written).

use bliss_serve::{Precision, ServeConfig, ServeOutcome, ServeReport, ServeRuntime};
use bliss_telemetry::export::{chrome_trace_json, stage_breakdown, StageSummary};
use bliss_telemetry::MetricsSnapshot;
use blisscam_core::{SparseFrontEnd, SystemConfig};
use serde::json::JsonValue;
use serde::Serialize;
use std::time::Instant;

/// Per-scenario ceiling on `mean_gaze_error(int8) - mean_gaze_error(f32)`
/// enforced under `BLISS_QUANT_GATE=1` — the same bound the serve crate's
/// `quant_identity` differential suite pins.
const GAZE_TOLERANCE_DEG: f64 = 0.15;

/// One load point: the same fleet served batched and sequentially.
#[derive(Serialize)]
struct SweepPoint {
    sessions: usize,
    batched: ServeReport,
    sequential: ServeReport,
    batched_wall_ms: f64,
    sequential_wall_ms: f64,
    /// Wall-clock speedup of batched over sequential serving.
    wall_speedup: f64,
    /// Virtual-time p95 latency ratio, sequential / batched.
    virtual_p95_ratio: f64,
}

/// One precision's corner of the accuracy/energy/throughput Pareto front,
/// measured over the same scenario-diverse load point.
#[derive(Serialize)]
struct PrecisionPareto {
    precision: String,
    /// Mean angular gaze error across every served frame, degrees.
    mean_gaze_error_deg: f64,
    /// Mean modelled energy per frame, joules.
    energy_per_frame_j: f64,
    throughput_fps: f64,
    wall_ms: f64,
}

/// The f32↔int8 accuracy differential for one scenario.
#[derive(Serialize)]
struct ScenarioAccuracy {
    scenario: String,
    f32_gaze_error_deg: f64,
    int8_gaze_error_deg: f64,
    /// `int8 - f32`; gated at [`GAZE_TOLERANCE_DEG`] under
    /// `BLISS_QUANT_GATE=1`.
    delta_deg: f64,
}

#[derive(Serialize)]
struct SweepReport {
    mode: String,
    /// Precision the load sweep's points were served at.
    precision: String,
    frames_per_session: usize,
    max_batch: usize,
    /// Mean steady-state readout-box area over the renderer's ground-truth
    /// ROI area (cold-start full-frame reads excluded). 1.0 would be a
    /// perfectly tight predictor; the PR-3 era miniature predictor sat at
    /// ~2-3x, which kept per-frame attention dominant and the saturation
    /// knee at N≈2-4.
    roi_box_to_gt_area_ratio: f64,
    /// First swept session count whose batched deadline-miss rate reaches
    /// 50% (0 = never): the serving saturation knee.
    knee_sessions: usize,
    /// Wall-clock of one representative batched load point served through
    /// the compiled execution plans (the default).
    planned_wall_ms: f64,
    /// The same load point forced back onto the autograd tape.
    tape_wall_ms: f64,
    /// `tape_wall_ms / planned_wall_ms`: the per-frame dispatch win of
    /// planned execution (identical outputs, pinned bit-for-bit before the
    /// ratio is reported).
    planned_dispatch_speedup: f64,
    /// Per-stage span aggregates over the whole traced sweep (virtual and
    /// wall time), in pipeline order.
    stages: Vec<StageSummary>,
    /// The telemetry metrics registry frozen at the end of the sweep.
    metrics: MetricsSnapshot,
    /// Spans the fixed ring dropped (0 = the trace is complete).
    spans_dropped: u64,
    /// Quantised matmul sites in the shared ViT's int8 spec (0 when the
    /// int8 path never ran).
    int8_sites: usize,
    /// Whether `BLISS_QUANT_GATE=1` gated this run (a written report means
    /// the gate passed).
    quant_gate: bool,
    /// Accuracy/energy/throughput corner per precision (empty under
    /// `--precision f32`).
    pareto: Vec<PrecisionPareto>,
    /// Per-scenario f32↔int8 gaze-error differential (empty under
    /// `--precision f32`).
    pareto_scenarios: Vec<ScenarioAccuracy>,
    points: Vec<SweepPoint>,
}

/// Parses `--precision <f32|int8|both>` (or `BLISS_BENCH_PRECISION`);
/// defaults to `both`.
fn precision_mode() -> String {
    let args: Vec<String> = std::env::args().collect();
    let mut value = None;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--precision=") {
            value = Some(v.to_string());
        } else if a == "--precision" {
            value = args.get(i + 1).cloned();
        }
    }
    let mode = value
        .or_else(|| std::env::var("BLISS_BENCH_PRECISION").ok())
        .unwrap_or_else(|| "both".to_string());
    assert!(
        matches!(mode.as_str(), "f32" | "int8" | "both"),
        "--precision must be f32, int8 or both (got {mode:?})"
    );
    mode
}

/// Mean per-frame angular gaze error over an outcome's traces, optionally
/// restricted to one scenario label.
fn mean_gaze_error_deg(outcome: &ServeOutcome, scenario: Option<&str>) -> f64 {
    let mut sum = 0f64;
    let mut n = 0usize;
    for t in &outcome.traces {
        if scenario.is_some_and(|s| t.config.scenario.label() != s) {
            continue;
        }
        for r in &t.records {
            let (h, v) = (r.horizontal_error_deg as f64, r.vertical_error_deg as f64);
            sum += (h * h + v * v).sqrt();
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Mean modelled energy per frame over an outcome's traces, joules.
fn mean_energy_j(outcome: &ServeOutcome) -> f64 {
    let mut sum = 0f64;
    let mut n = 0usize;
    for t in &outcome.traces {
        for r in &t.records {
            sum += r.energy_j;
            n += 1;
        }
    }
    sum / n.max(1) as f64
}

/// Serves one session solo and compares its steady-state readout-box areas
/// against the same stream's rendered ground-truth ROI areas.
fn roi_tightness(runtime: &ServeRuntime, frames: usize) -> f64 {
    let cfg = ServeConfig::new(1, frames);
    let outcome = runtime.serve(&cfg).expect("solo probe serve succeeds");
    let sc = runtime.session_configs(&cfg)[0];
    let (seq, _) = SparseFrontEnd::scenario_stream(runtime.system(), sc.scenario, sc.seed, frames);
    let (mut predicted, mut truth) = (0.0f64, 0.0f64);
    for r in &outcome.traces[0].records {
        if r.index == 0 {
            continue; // cold-start full-frame bootstrap read
        }
        predicted += r.roi_pixels as f64;
        truth += seq.frames[r.index + 1].roi.area() as f64;
    }
    if truth > 0.0 {
        predicted / truth
    } else {
        f64::NAN
    }
}

fn main() {
    let quick = bliss_bench::fast_mode();
    let precision_mode = precision_mode();
    let quant_gate = std::env::var("BLISS_QUANT_GATE").is_ok_and(|v| !v.is_empty() && v != "0");
    assert!(
        !(quant_gate && precision_mode == "f32"),
        "BLISS_QUANT_GATE=1 needs the int8 path; drop --precision f32"
    );
    let sweep_precision = if precision_mode == "int8" {
        Precision::Int8
    } else {
        Precision::F32
    };
    let (session_counts, frames): (&[usize], usize) = if quick {
        (&[1, 4, 16], 6)
    } else {
        (&[1, 2, 4, 8, 16, 32, 64], 24)
    };

    let mut system = SystemConfig::miniature();
    if quick {
        // The gate compares f32 and int8 tracking accuracy, so even the
        // quick profile needs a converged model: an undertrained tracker
        // turns quantisation noise into chaotic trajectory divergence far
        // above the tolerance (see the serve crate's quant_identity suite).
        system.train_frames = if quant_gate { 140 } else { 30 };
        system.vit.dim = 24;
        system.vit.enc_depth = 1;
        system.roi_net.hidden = 32;
    }
    eprintln!("training the shared BlissCam model ...");
    // Executable pipeline at miniature scale; latency accounting at the
    // paper's 640x400 / ViT-S / 7 nm host point, where ~1 ms segmentation
    // launches meet the 8.3 ms frame period and the sweep crosses the
    // saturation knee.
    let runtime = ServeRuntime::new(system)
        .expect("training succeeds")
        .with_paper_scale_timing();

    // Telemetry neutrality probe: the same load point served with tracing
    // off and on must produce bit-identical outcomes (telemetry is
    // write-only — nothing it records feeds back into scheduling or
    // numerics). Only then is tracing left on for the recorded sweep.
    bliss_telemetry::init_spans(1 << 17);
    let neutrality_cfg = ServeConfig::new(2, frames.min(8));
    let outcome_off = runtime.serve(&neutrality_cfg).expect("probe serves");
    bliss_telemetry::set_enabled(true);
    let outcome_on = runtime.serve(&neutrality_cfg).expect("probe serves");
    assert_eq!(
        outcome_off, outcome_on,
        "tracing on/off must not change serving results bit-for-bit"
    );
    println!("telemetry neutrality probe: on/off outcomes bit-identical");
    bliss_telemetry::clear_spans();
    bliss_telemetry::reset_metrics();

    let max_batch = 16;
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in session_counts {
        let mut batched_cfg = ServeConfig::new(n, frames).at_precision(sweep_precision);
        batched_cfg.max_batch = max_batch;
        let mut sequential_cfg = batched_cfg;
        sequential_cfg.max_batch = 1;

        let t0 = Instant::now();
        let batched = runtime.serve(&batched_cfg).expect("serve succeeds").report;
        let batched_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let sequential = runtime
            .serve(&sequential_cfg)
            .expect("serve succeeds")
            .report;
        let sequential_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

        rows.push(vec![
            n.to_string(),
            format!("{:.2}", batched.latency.p50_ms),
            format!("{:.2}", batched.latency.p95_ms),
            format!("{:.2}", batched.latency.p99_ms),
            format!("{:.1}", batched.deadline_miss_rate * 100.0),
            format!("{:.0}", batched.throughput_fps),
            format!("{:.2}", batched.mean_batch_size),
            format!("{:.2}", sequential.latency.p95_ms),
            format!("{:.2}x", sequential_wall_ms / batched_wall_ms.max(1e-9)),
        ]);
        points.push(SweepPoint {
            sessions: n,
            virtual_p95_ratio: sequential.latency.p95_ms / batched.latency.p95_ms.max(1e-12),
            wall_speedup: sequential_wall_ms / batched_wall_ms.max(1e-9),
            batched,
            sequential,
            batched_wall_ms,
            sequential_wall_ms,
        });
    }

    bliss_bench::print_table(
        "bliss_serve load sweep (batched max_batch=16 vs sequential max_batch=1)",
        &[
            "N",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "miss %",
            "thr f/s",
            "mean B",
            "seq p95",
            "wall speedup",
        ],
        &rows,
    );

    let roi_ratio = roi_tightness(&runtime, frames.max(12));
    let knee_sessions = points
        .iter()
        .find(|p| p.batched.deadline_miss_rate >= 0.5)
        .map_or(0, |p| p.sessions);
    println!("roi box/gt area ratio {roi_ratio:.2}, saturation knee at N={knee_sessions}");

    // Precision Pareto: the same scenario-diverse load point served at f32
    // and int8, charting accuracy against modelled energy and throughput.
    // Under BLISS_QUANT_GATE=1 this block is a hard CI gate: per scenario,
    // int8 may cost at most GAZE_TOLERANCE_DEG of gaze error over f32, and
    // must win on energy per frame — a violation panics before any report
    // is written.
    let mut pareto = Vec::new();
    let mut pareto_scenarios = Vec::new();
    if precision_mode != "f32" {
        // Two long sessions per scenario once the gate is on, so each
        // per-scenario mean averages enough frames that trajectory
        // divergence noise sits well below the tolerance.
        let (p_sessions, p_frames) = if quick && !quant_gate {
            (5, 24)
        } else {
            (10, 150)
        };
        let mut f32_cfg = ServeConfig::new(p_sessions, p_frames);
        f32_cfg.max_batch = max_batch;
        let int8_cfg = f32_cfg.at_precision(Precision::Int8);

        let t = Instant::now();
        let f32_outcome = runtime.serve(&f32_cfg).expect("f32 pareto serve succeeds");
        let f32_wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let int8_outcome = runtime
            .serve(&int8_cfg)
            .expect("int8 pareto serve succeeds");
        let int8_wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_ne!(
            f32_outcome.traces, int8_outcome.traces,
            "int8 serving produced f32-identical traces: the quantised path never ran"
        );

        let mut scenarios: Vec<&str> = f32_outcome
            .traces
            .iter()
            .map(|t| t.config.scenario.label())
            .collect();
        scenarios.sort_unstable();
        scenarios.dedup();
        let mut srows = Vec::new();
        for s in scenarios {
            let f = mean_gaze_error_deg(&f32_outcome, Some(s));
            let q = mean_gaze_error_deg(&int8_outcome, Some(s));
            srows.push(vec![
                s.to_string(),
                format!("{f:.4}"),
                format!("{q:.4}"),
                format!("{:+.4}", q - f),
            ]);
            pareto_scenarios.push(ScenarioAccuracy {
                scenario: s.to_string(),
                f32_gaze_error_deg: f,
                int8_gaze_error_deg: q,
                delta_deg: q - f,
            });
        }
        bliss_bench::print_table(
            "precision differential (mean gaze error per scenario, degrees)",
            &["scenario", "f32", "int8", "delta"],
            &srows,
        );
        for (precision, outcome, wall_ms) in [
            ("f32", &f32_outcome, f32_wall_ms),
            ("int8", &int8_outcome, int8_wall_ms),
        ] {
            pareto.push(PrecisionPareto {
                precision: precision.to_string(),
                mean_gaze_error_deg: mean_gaze_error_deg(outcome, None),
                energy_per_frame_j: mean_energy_j(outcome),
                throughput_fps: outcome.report.throughput_fps,
                wall_ms,
            });
        }
        let (f32_energy, int8_energy) = (mean_energy_j(&f32_outcome), mean_energy_j(&int8_outcome));
        println!(
            "energy/frame f32 {f32_energy:.3e} J vs int8 {int8_energy:.3e} J ({:.1}% saved)",
            (1.0 - int8_energy / f32_energy) * 100.0
        );
        if quant_gate {
            let worst = pareto_scenarios
                .iter()
                .map(|s| s.delta_deg)
                .fold(f64::MIN, f64::max);
            assert!(
                worst <= GAZE_TOLERANCE_DEG,
                "QUANT GATE: int8 gaze error exceeds f32 by {worst:.4} deg \
                 (tolerance {GAZE_TOLERANCE_DEG}); see the table above"
            );
            assert!(
                int8_energy < f32_energy,
                "QUANT GATE: int8 energy/frame {int8_energy:.3e} J is not strictly \
                 below f32 {f32_energy:.3e} J"
            );
            println!(
                "quant gate passed: worst delta {worst:+.4} deg <= {GAZE_TOLERANCE_DEG} deg, \
                 energy win {:.1}%",
                (1.0 - int8_energy / f32_energy) * 100.0
            );
        }
    }
    let int8_sites = runtime.int8_sites();

    // Dispatch win: one mid-sweep batched load point served through the
    // compiled execution plans (the default), then forced back onto the
    // autograd tape. Outputs must agree bit-for-bit; only wall time moves.
    let mut probe_cfg = ServeConfig::new(if quick { 4 } else { 8 }, frames);
    probe_cfg.max_batch = max_batch;
    let t = Instant::now();
    let planned_outcome = runtime.serve(&probe_cfg).expect("serve succeeds");
    let planned_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let tape_runtime = runtime.without_planned_inference();
    let t = Instant::now();
    let tape_outcome = tape_runtime.serve(&probe_cfg).expect("serve succeeds");
    let tape_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        planned_outcome.report, tape_outcome.report,
        "planned and tape serving must agree bit-for-bit"
    );
    let planned_dispatch_speedup = tape_wall_ms / planned_wall_ms.max(1e-9);
    println!(
        "planned dispatch {planned_wall_ms:.1} ms vs tape {tape_wall_ms:.1} ms \
         ({planned_dispatch_speedup:.2}x)"
    );

    // Drain the span ring into the Perfetto-loadable Chrome trace and the
    // per-stage breakdown; validate the trace JSON by re-parsing it with
    // the same parser CI uses before writing it next to the bench report.
    bliss_telemetry::set_enabled(false);
    let spans_dropped = bliss_telemetry::spans_dropped();
    let spans = bliss_telemetry::take_spans();
    let stages = stage_breakdown(&spans);
    let metrics = bliss_telemetry::metrics_snapshot();
    let trace_json = chrome_trace_json(&spans);
    let trace_value = JsonValue::parse(&trace_json).expect("trace JSON must parse");
    let event_count = trace_value
        .field("traceEvents")
        .and_then(|v| v.expect_array())
        .expect("traceEvents array")
        .len();
    println!(
        "traced {} spans ({} dropped) into {} Chrome trace events",
        spans.len(),
        spans_dropped,
        event_count
    );
    let trace_path = bliss_bench::report_path("TRACE_serve.json");
    match std::fs::write(&trace_path, &trace_json) {
        Ok(()) => println!("wrote Perfetto trace to {}", trace_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }

    let report = SweepReport {
        mode: if quick { "quick" } else { "standard" }.to_string(),
        precision: match sweep_precision {
            Precision::Int8 => "int8",
            Precision::F32 => "f32",
        }
        .to_string(),
        frames_per_session: frames,
        max_batch,
        roi_box_to_gt_area_ratio: roi_ratio,
        knee_sessions,
        planned_wall_ms,
        tape_wall_ms,
        planned_dispatch_speedup,
        stages,
        metrics,
        spans_dropped,
        int8_sites,
        quant_gate,
        pareto,
        pareto_scenarios,
        points,
    };
    let path = bliss_bench::report_path("BENCH_serve.json");
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("wrote serve sweep to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
