//! Steady-state allocation counting for the batched inference hot path.
//!
//! A counting global allocator wraps the system allocator and tallies every
//! allocation (plus, separately, every **buffer-class** allocation of 1 KiB
//! or more). After a short warm-up that populates the `bliss_tensor` scratch
//! pools, a serving-style [`SparseViT::forward_batch`] iteration must:
//!
//! 1. perform **zero buffer-class allocations** — every token-staging,
//!    activation, gather-index and prediction buffer is served from the
//!    pools (the tentpole claim of this PR), and
//! 2. perform a **flat** number of small allocations on every iteration
//!    (up to a few counts of process-global noise from the test harness) —
//!    the residue is the autograd tape's node headers and sub-1-KiB
//!    bookkeeping, bounded and non-growing, so the runtime cannot leak or
//!    drift under sustained load.
//!
//! The loop is pinned to one thread (`with_thread_count(1)`) because the
//! scratch pools are thread-local: with workers, buffers would recycle into
//! whichever pool worker dropped them, which is still bounded but makes the
//! per-thread counts machine-dependent.

// The counting allocator needs `unsafe` (GlobalAlloc); this test binary is
// the one place outside `bliss_parallel::pool` that opts in.
#![allow(unsafe_code)]

use bliss_parallel::with_thread_count;
use bliss_track::{SparseViT, ViTConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocations at or above this size count as "buffer-class".
const BIG: usize = 1024;

struct CountingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BIG_SIZES: [AtomicU64; 64] = [const { AtomicU64::new(0) }; 64];

// SAFETY: delegates every operation verbatim to `System`; the counters are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            if layout.size() >= BIG {
                let i = BIG_ALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
                if i < 64 {
                    BIG_SIZES[i].store(layout.size() as u64, Ordering::Relaxed);
                }
            }
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            if new_size >= BIG {
                BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with counting enabled and returns `(total, buffer_class)`
/// allocation counts.
fn count_allocs(f: impl FnOnce()) -> (u64, u64) {
    TOTAL.store(0, Ordering::SeqCst);
    BIG_ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    f();
    ENABLED.store(false, Ordering::SeqCst);
    (
        TOTAL.load(Ordering::SeqCst),
        BIG_ALLOCS.load(Ordering::SeqCst),
    )
}

/// A deterministic pseudo-random sparse frame at the miniature sensor scale.
fn synth_frame(seed: u64, pixels: usize, rate: f32) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut image = vec![0.0f32; pixels];
    let mut mask = vec![0.0f32; pixels];
    for i in 0..pixels {
        if rng.gen::<f32>() < rate {
            mask[i] = 1.0;
            image[i] = rng.gen::<f32>();
        }
    }
    (image, mask)
}

#[test]
fn steady_state_forward_batch_is_buffer_allocation_free() {
    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    // A serving-shaped batch: one loose and one tight sparse frame.
    let a = synth_frame(1, 160 * 100, 0.06);
    let b = synth_frame(2, 160 * 100, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    with_thread_count(1, || {
        // Warm-up: populate the thread's scratch pools with the working set.
        for _ in 0..4 {
            let out = vit.forward_batch(&batch).expect("forward succeeds");
            assert!(out[0].is_some() && out[1].is_some());
        }
        // Steady state: no buffer-class allocation, flat small-alloc count.
        let mut per_iter = Vec::new();
        for _ in 0..4 {
            let (total, big) = count_allocs(|| {
                let out = vit.forward_batch(&batch).expect("forward succeeds");
                std::hint::black_box(&out);
                drop(out);
            });
            if big > 0 {
                let sizes: Vec<u64> = BIG_SIZES
                    .iter()
                    .map(|a| a.load(Ordering::SeqCst))
                    .filter(|&x| x > 0)
                    .collect();
                eprintln!("buffer-class allocation sizes: {sizes:?}");
            }
            assert_eq!(
                big, 0,
                "steady-state forward_batch performed {big} buffer-class \
                 (>= {BIG} B) heap allocations; the scratch pools must serve \
                 the entire working set"
            );
            per_iter.push(total);
        }
        // Flat small-alloc count: the counter is process-global, so allow a
        // few counts of ambient noise from the test-harness thread; a leak
        // or pool miss would add dozens per iteration.
        let lo = *per_iter.iter().min().expect("non-empty");
        let hi = *per_iter.iter().max().expect("non-empty");
        assert!(
            hi - lo <= 8,
            "per-iteration allocation counts must be flat in steady state, \
             got {per_iter:?}"
        );
    });
}
