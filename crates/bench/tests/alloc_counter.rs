//! Steady-state allocation counting for the batched inference hot path.
//!
//! A counting global allocator wraps the system allocator and tallies every
//! allocation made by the counting thread (plus, separately, every
//! **buffer-class** allocation of 1 KiB or more). After a short warm-up that
//! populates the `bliss_tensor` scratch pools and the plan cache:
//!
//! 1. a **planned** steady-state iteration
//!    ([`SparseViT::forward_batch_into`] under a compiled execution plan)
//!    must perform **zero heap allocations of any size** — the tentpole
//!    claim of this PR: the arena, the retained [`PlannedBatch`] scratch and
//!    the thread pools serve the entire working set;
//! 2. the **tape** path ([`SparseViT::forward_batch`] outside inference
//!    mode) stays the regression baseline: zero buffer-class allocations
//!    and a flat small-alloc count per iteration — the residue is the
//!    autograd tape's node headers and sub-1-KiB bookkeeping, bounded and
//!    non-growing;
//! 3. the **int8** planned path inherits the planned contract verbatim:
//!    after calibration and one plan compile, a steady-state quantised
//!    iteration performs zero heap allocations — its f32/i8/i32 arenas all
//!    come from the recycled scratch pools.
//!
//! The loop is pinned to one thread (`with_thread_count(1)`) because the
//! scratch pools are thread-local: with workers, buffers would recycle into
//! whichever pool worker dropped them, which is still bounded but makes the
//! per-thread counts machine-dependent.

// The counting allocator needs `unsafe` (GlobalAlloc); this test binary is
// the one place outside `bliss_parallel::pool` that opts in.
#![allow(unsafe_code)]

use bliss_parallel::with_thread_count;
use bliss_track::{PlannedBatch, SparseViT, ViTConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Allocations at or above this size count as "buffer-class".
const BIG: usize = 1024;

struct CountingAllocator;

thread_local! {
    /// Counting is armed per-thread so a strict zero-total assertion cannot
    /// be polluted by allocations on harness or sibling-test threads. The
    /// const initialiser keeps the TLS access itself allocation-free.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

static TOTAL: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BIG_SIZES: [AtomicU64; 64] = [const { AtomicU64::new(0) }; 64];

fn counting() -> bool {
    // `try_with`: the allocator can be re-entered during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

// SAFETY: delegates every operation verbatim to `System`; the counters are
// lock-free atomics, the armed flag is a const-initialised TLS cell, and
// neither allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            if layout.size() >= BIG {
                let i = BIG_ALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
                if i < 64 {
                    BIG_SIZES[i].store(layout.size() as u64, Ordering::Relaxed);
                }
            }
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            if new_size >= BIG {
                BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serialises counting windows: both tests share the global tallies.
static COUNT_WINDOW: Mutex<()> = Mutex::new(());

/// Runs `f` with counting armed on this thread and returns
/// `(total, buffer_class)` allocation counts for `f` alone.
fn count_allocs(f: impl FnOnce()) -> (u64, u64) {
    let _window = COUNT_WINDOW.lock().expect("no poisoned counting window");
    TOTAL.store(0, Ordering::SeqCst);
    BIG_ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    f();
    COUNTING.with(|c| c.set(false));
    (
        TOTAL.load(Ordering::SeqCst),
        BIG_ALLOCS.load(Ordering::SeqCst),
    )
}

/// A deterministic pseudo-random sparse frame at the miniature sensor scale.
fn synth_frame(seed: u64, pixels: usize, rate: f32) -> (Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut image = vec![0.0f32; pixels];
    let mut mask = vec![0.0f32; pixels];
    for i in 0..pixels {
        if rng.gen::<f32>() < rate {
            mask[i] = 1.0;
            image[i] = rng.gen::<f32>();
        }
    }
    (image, mask)
}

#[test]
fn steady_state_forward_batch_is_buffer_allocation_free() {
    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    // A serving-shaped batch: one loose and one tight sparse frame.
    let a = synth_frame(1, 160 * 100, 0.06);
    let b = synth_frame(2, 160 * 100, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    with_thread_count(1, || {
        // Warm-up: populate the thread's scratch pools with the working set.
        for _ in 0..4 {
            let out = vit.forward_batch(&batch).expect("forward succeeds");
            assert!(out[0].is_some() && out[1].is_some());
        }
        // Steady state: no buffer-class allocation, flat small-alloc count.
        let mut per_iter = Vec::new();
        for _ in 0..4 {
            let (total, big) = count_allocs(|| {
                let out = vit.forward_batch(&batch).expect("forward succeeds");
                std::hint::black_box(&out);
                drop(out);
            });
            if big > 0 {
                let sizes: Vec<u64> = BIG_SIZES
                    .iter()
                    .map(|a| a.load(Ordering::SeqCst))
                    .filter(|&x| x > 0)
                    .collect();
                eprintln!("buffer-class allocation sizes: {sizes:?}");
            }
            assert_eq!(
                big, 0,
                "steady-state forward_batch performed {big} buffer-class \
                 (>= {BIG} B) heap allocations; the scratch pools must serve \
                 the entire working set"
            );
            per_iter.push(total);
        }
        // Flat small-alloc count: the tape rebuilds the same node headers
        // every iteration, so the count must not drift; a leak or pool miss
        // would add dozens per iteration.
        let lo = *per_iter.iter().min().expect("non-empty");
        let hi = *per_iter.iter().max().expect("non-empty");
        assert!(
            hi - lo <= 8,
            "per-iteration allocation counts must be flat in steady state, \
             got {per_iter:?}"
        );
    });
}

#[test]
fn steady_state_planned_forward_batch_allocates_nothing_at_all() {
    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    // The same serving-shaped batch as the tape baseline above.
    let a = synth_frame(1, 160 * 100, 0.06);
    let b = synth_frame(2, 160 * 100, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    with_thread_count(1, || {
        let mut out = PlannedBatch::new();
        // Warm-up: compile the execution plan for this batch's span layout
        // and populate the thread's scratch pools with the working set.
        for _ in 0..4 {
            vit.forward_batch_into(&batch, &mut out)
                .expect("forward succeeds");
            assert!(out.frame(0).is_some() && out.frame(1).is_some());
        }
        // Steady state: the compiled plan runs entirely in its arena and the
        // retained batch scratch — zero heap traffic of any size.
        for iter in 0..4 {
            let (total, big) = count_allocs(|| {
                vit.forward_batch_into(&batch, &mut out)
                    .expect("forward succeeds");
                std::hint::black_box(&out);
            });
            if big > 0 {
                let sizes: Vec<u64> = BIG_SIZES
                    .iter()
                    .map(|a| a.load(Ordering::SeqCst))
                    .filter(|&x| x > 0)
                    .collect();
                eprintln!("buffer-class allocation sizes: {sizes:?}");
            }
            assert_eq!(
                total, 0,
                "steady-state planned forward_batch_into performed {total} \
                 heap allocations on iteration {iter} ({big} buffer-class); \
                 the plan arena and retained scratch must serve everything"
            );
        }
        assert!(out.frame(0).is_some() && out.frame(1).is_some());
        assert_eq!(vit.plan_stats().plans, 1, "one span layout, one plan");
    });
}

#[test]
fn steady_state_int8_forward_batch_allocates_nothing_at_all() {
    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    let a = synth_frame(1, 160 * 100, 0.06);
    let b = synth_frame(2, 160 * 100, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    with_thread_count(1, || {
        // Calibration and the quantised-plan compile happen before counting
        // is armed — they are one-time costs, exactly like f32 plan
        // compilation in the planned baseline above.
        vit.begin_int8_calibration();
        vit.observe_int8_calibration(&batch)
            .expect("calibration observes");
        let sites = vit.finish_int8_calibration().expect("calibration finishes");
        assert!(sites > 0, "calibration found no quantisable sites");
        vit.set_int8(true).expect("int8 enables");

        let mut out = PlannedBatch::new();
        // Warm-up: compile the int8 plan for this span layout and populate
        // the thread's scratch pools (f32, i8 and i32 arenas included).
        for _ in 0..4 {
            vit.forward_batch_into(&batch, &mut out)
                .expect("forward succeeds");
            assert!(out.frame(0).is_some() && out.frame(1).is_some());
        }
        // Steady state: the quantised plan's three arenas and the retained
        // batch scratch serve everything — zero heap traffic of any size,
        // the same contract as the f32 planned path.
        for iter in 0..4 {
            let (total, big) = count_allocs(|| {
                vit.forward_batch_into(&batch, &mut out)
                    .expect("forward succeeds");
                std::hint::black_box(&out);
            });
            if big > 0 {
                let sizes: Vec<u64> = BIG_SIZES
                    .iter()
                    .map(|a| a.load(Ordering::SeqCst))
                    .filter(|&x| x > 0)
                    .collect();
                eprintln!("buffer-class allocation sizes: {sizes:?}");
            }
            assert_eq!(
                total, 0,
                "steady-state int8 forward_batch_into performed {total} heap \
                 allocations on iteration {iter} ({big} buffer-class); the \
                 quantised plan's arenas and retained scratch must serve \
                 everything"
            );
        }
        assert!(out.frame(0).is_some() && out.frame(1).is_some());
        assert_eq!(
            vit.quant_plan_stats().plans,
            1,
            "one span layout, one quantised plan"
        );
    });
}

#[test]
fn steady_state_planned_forward_with_tracing_on_allocates_nothing() {
    use bliss_telemetry::{metrics, record_span, SpanRecord, Stage};

    let mut rng = StdRng::seed_from_u64(0x5CA7C4);
    let vit = SparseViT::new(&mut rng, ViTConfig::miniature(160, 100));
    let a = synth_frame(1, 160 * 100, 0.06);
    let b = synth_frame(2, 160 * 100, 0.02);
    let batch: Vec<(&[f32], &[f32])> = vec![(&a.0, &a.1), (&b.0, &b.1)];

    // The ring is the *only* allocation telemetry ever makes — pre-sized
    // here, before counting is armed. The registry is all statics.
    bliss_telemetry::init_spans(4096);
    bliss_telemetry::set_enabled(true);
    with_thread_count(1, || {
        let mut out = PlannedBatch::new();
        for _ in 0..4 {
            vit.forward_batch_into(&batch, &mut out)
                .expect("forward succeeds");
        }
        // Steady state with tracing ON: the planned path's own zero-alloc
        // contract must survive live instrumentation — counter bumps in
        // the plan cache and scratch pools, plus the serve layer's span
        // record pattern (six stages per frame) and histogram samples.
        for iter in 0..4u32 {
            let (total, big) = count_allocs(|| {
                vit.forward_batch_into(&batch, &mut out)
                    .expect("forward succeeds");
                for (i, stage) in Stage::ALL.iter().enumerate() {
                    record_span(SpanRecord {
                        stage: *stage,
                        frame: iter,
                        virt_start_s: f64::from(iter) * 8.3e-3 + i as f64 * 1e-3,
                        virt_dur_s: 1e-3,
                        ..SpanRecord::ZERO
                    });
                }
                metrics::FRAMES_SERVED.add(1);
                metrics::FRAME_LATENCY_S.record(1e-3);
                metrics::BATCH_OCCUPANCY.record(2.0);
                std::hint::black_box(&out);
            });
            assert_eq!(
                total, 0,
                "planned forward with tracing ON performed {total} heap \
                 allocations on iteration {iter} ({big} buffer-class); \
                 span recording must be writes into the pre-sized ring"
            );
        }
    });
    bliss_telemetry::set_enabled(false);
    assert!(
        bliss_telemetry::spans_recorded() >= 24,
        "the ring must have accepted the recorded spans"
    );
    assert_eq!(bliss_telemetry::spans_dropped(), 0);
    bliss_telemetry::clear_spans();
}
