//! Workspace-wide serde coverage: **every type that derives `Serialize`
//! also round-trips through the JSON layer** — value → `to_json` →
//! `from_json` → equality.
//!
//! The shim's own proptest suite (`shims/serde/tests/roundtrip.rs`) proves
//! the derive surface is sound on arbitrary values; this suite walks the
//! actual workspace types, with values produced by the real pipelines
//! (serve runs, snapshots, soak reports) where state is opaque and by
//! literals/proptest where fields are public. Keeping this exhaustive is
//! what lets any report or snapshot in the workspace be persisted and
//! reloaded without a lossy corner.
//!
//! Documented exceptions — `Serialize`-only by design, checked separately
//! below: the three const-table entry types in `bliss_energy::trends`
//! (`GpuEntry`, `AlgorithmEntry`, `SensorSurveyEntry`) hold `&'static str`
//! names and exist only to be dumped into figure JSON, and the three
//! Chrome-trace export types in `bliss_telemetry::export` (`TraceEvent`,
//! `TraceArgs`, `ChromeTrace`) likewise hold `&'static str` stage labels
//! and target the Perfetto loader, not our own reader.

use bliss_bench::soak::{run_soak, SoakConfig, StreamingHistogram};
use bliss_eye::{
    EyeClass, EyeModelConfig, Gaze, GazeState, MovementPhase, NoiseConfig, Scenario,
    SequenceConfig, TrajectoryConfig,
};
use bliss_fleet::{
    ChaosConfig, DegradationPolicy, FaultMix, FaultPlan, FleetConfig, FleetRuntime, FleetSnapshot,
    PlacementPolicy,
};
use bliss_npu::{GemmShape, RunReport, SystolicArray, WorkloadDesc};
use bliss_sensor::{
    CalibrationLut, EventMap, ReadoutResult, RoiBox, SensorConfig, SensorSnapshot, SramRngConfig,
};
use bliss_serve::{ServeConfig, ServeRuntime};
use bliss_timing::{simulate, PipelineConfig, StageDurations, StageKind, StageSpan};
use bliss_track::{
    AngularErrorStats, EstimatorSnapshot, EvalResult, RoiPredictionNet, SamplingStrategy,
    SparseViT, TrainConfig,
};
use blisscam_core::experiments::{
    AccuracyPoint, AccuracySeries, EnergyRow, ExperimentScale, Fig12Result, Fig15Result, Fig16Row,
    Fig17Row, LatencyRow, Tab1Row,
};
use blisscam_core::{
    EnergyBreakdown, FrameCounts, FrameResult, MeanAngularError, SystemConfig, SystemReport,
    SystemVariant,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Asserts `v` survives value → JSON → value unchanged.
fn rt<T>(v: &T)
where
    T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
{
    let json = v.to_json();
    let back = T::from_json(&json).unwrap_or_else(|e| {
        panic!(
            "{} failed to parse back: {e}\n{json}",
            std::any::type_name::<T>()
        )
    });
    assert_eq!(
        &back,
        v,
        "{} JSON round-trip is lossy",
        std::any::type_name::<T>()
    );
}

/// The tiny untrained runtime the snapshot/outcome tests serve on (restore
/// identity does not depend on trained weights, and serde certainly
/// doesn't).
fn tiny_runtime() -> (SystemConfig, ServeRuntime) {
    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    let mut rng = StdRng::seed_from_u64(0x5EDE);
    let rt = ServeRuntime::with_networks(
        system,
        SparseViT::new(&mut rng, system.vit),
        RoiPredictionNet::new(&mut rng, system.roi_net),
    );
    (system, rt)
}

#[test]
fn config_types_round_trip() {
    let system = SystemConfig::miniature();
    rt(&system);
    rt(&SystemConfig::paper());
    rt(&system.vit);
    rt(&system.roi_net);
    rt(&system.cnn);
    rt(&system.energy);
    rt(&system.energy.mipi);
    rt(&system.energy.dram);
    rt(&system.energy.readout);
    rt(&system.analog_node);
    let train: TrainConfig = system.train_config();
    rt(&train);
    rt(&ExperimentScale::quick());
    rt(&SequenceConfig {
        width: 64,
        height: 48,
        frames: 7,
        fps: 120.0,
        seed: 3,
    });
    rt(&TrajectoryConfig::default());
    rt(&EyeModelConfig::paper());
    rt(&NoiseConfig::default());
    rt(&SensorConfig::paper());
    rt(&SramRngConfig::default());
    rt(&ServeConfig::new(3, 8));
    rt(&FleetConfig::new(2, PlacementPolicy::LeastLoaded, 6, 4));
    rt(&SoakConfig::smoke());
    rt(&SoakConfig::standard());
    rt(&PipelineConfig::conventional(
        120.0,
        StageDurations::paper_npu_full(),
    ));
    rt(&StageDurations::paper_blisscam());
}

#[test]
fn enum_types_round_trip_every_variant() {
    for s in [
        Scenario::SaccadeHeavy,
        Scenario::SmoothPursuit,
        Scenario::FixationDrift,
        Scenario::BlinkStorm,
        Scenario::Mixed,
    ] {
        rt(&s);
    }
    for p in [
        MovementPhase::Fixation,
        MovementPhase::Saccade,
        MovementPhase::SmoothPursuit,
        MovementPhase::Blink,
    ] {
        rt(&p);
    }
    for c in [
        EyeClass::Skin,
        EyeClass::Sclera,
        EyeClass::Iris,
        EyeClass::Pupil,
    ] {
        rt(&c);
    }
    for k in [
        StageKind::Exposure,
        StageKind::Eventification,
        StageKind::RoiPrediction,
        StageKind::Sampling,
        StageKind::Readout,
        StageKind::Mipi,
        StageKind::Segmentation,
        StageKind::GazePrediction,
        StageKind::Feedback,
    ] {
        rt(&k);
    }
    for r in [
        bliss_energy::Resolution::R720p,
        bliss_energy::Resolution::R1080p,
        bliss_energy::Resolution::R2k,
        bliss_energy::Resolution::R4k,
    ] {
        rt(&r);
    }
    for v in [
        SystemVariant::NpuFull,
        SystemVariant::NpuRoi,
        SystemVariant::SNpu,
        SystemVariant::BlissCam,
    ] {
        rt(&v);
    }
    for p in PlacementPolicy::ALL {
        rt(&p);
    }
    for s in [
        SamplingStrategy::RoiRandom { rate: 0.3 },
        SamplingStrategy::FullRandom { rate: 0.1 },
        SamplingStrategy::FullDownsample { stride: 4 },
        SamplingStrategy::RoiDownsample { stride: 2 },
        SamplingStrategy::RoiFixed { rate: 0.25 },
        SamplingStrategy::RoiLearned { rate: 0.3 },
        SamplingStrategy::Skip {
            density_threshold: 0.05,
        },
    ] {
        rt(&s);
    }
}

#[test]
fn serve_and_fleet_values_round_trip() {
    bliss_parallel::with_thread_count(1, || {
        let (_, runtime) = tiny_runtime();
        let mut cfg = ServeConfig::new(3, 4);
        cfg.max_batch = 4;
        let outcome = runtime.serve(&cfg).expect("serve succeeds");
        rt(&outcome.report);
        rt(&outcome.report.latency);
        rt(&outcome.report.steady);
        for s in &outcome.report.per_session {
            rt(s);
        }
        for t in &outcome.traces {
            rt(t);
            rt(&t.config);
            for r in &t.records {
                rt(r);
            }
        }

        // Snapshots: the wire format restore identity rides on.
        let mut state = runtime.start(&cfg);
        assert!(runtime.step_batch(&cfg, &mut state).expect("step succeeds"));
        let snap = runtime.snapshot(&cfg, &state);
        rt(&snap);
        for s in &snap.sessions {
            rt(s);
            rt(&s.front);
            rt(&s.front.sensor);
            if let Some(est) = &s.front.estimator {
                rt(est);
            }
        }
        for p in snap.vit_params.iter().chain(&snap.roi_params) {
            rt(p);
        }

        let (fsystem, _) = tiny_runtime();
        let mut rng = StdRng::seed_from_u64(0x5EDE);
        let fleet = FleetRuntime::with_networks(
            fsystem,
            SparseViT::new(&mut rng, fsystem.vit),
            RoiPredictionNet::new(&mut rng, fsystem.roi_net),
        );
        let fcfg = FleetConfig::new(2, PlacementPolicy::RoundRobin, 4, 3);
        let foutcome = fleet.serve(&fcfg).expect("fleet serve succeeds");
        rt(&foutcome.report);
        for h in &foutcome.report.per_host {
            rt(h);
        }
        for e in &foutcome.timeline {
            rt(e);
        }
        let mut fstate = fleet.start(&fcfg);
        assert!(fleet.step(&mut fstate).expect("fleet step succeeds"));
        let fsnap: FleetSnapshot = fleet.snapshot(&fcfg, &fstate);
        rt(&fsnap);
    });
}

#[test]
fn chaos_values_round_trip() {
    // Plan/config literals with every fault variant.
    let mix = FaultMix {
        crashes: 2,
        slow_hosts: 1,
        timeouts: 3,
        corrupt_checkpoints: 1,
    };
    rt(&mix);
    let plan = FaultPlan::generate(0xC4A05, 3, 0.25, &mix);
    rt(&plan);
    for e in &plan.events {
        rt(e);
        rt(&e.kind);
    }
    rt(&FaultPlan::quiet());
    let mut chaos = ChaosConfig::new(plan);
    chaos.degradation = Some(DegradationPolicy::default());
    rt(&chaos);
    rt(&DegradationPolicy::default());

    // A real chaos run's report, so the serialised values come from the
    // actual engine (fault log, survival curve, recovery latencies).
    bliss_parallel::with_thread_count(1, || {
        let (fsystem, _) = tiny_runtime();
        let mut rng = StdRng::seed_from_u64(0x5EDE);
        let fleet = FleetRuntime::with_networks(
            fsystem,
            SparseViT::new(&mut rng, fsystem.vit),
            RoiPredictionNet::new(&mut rng, fsystem.roi_net),
        );
        let fcfg = FleetConfig::new(2, PlacementPolicy::RoundRobin, 4, 3);
        let baseline = fleet.serve(&fcfg).expect("baseline serves");
        let horizon = baseline.timeline.last().expect("nonempty").time_s;
        let run = fleet
            .serve_chaos(
                &fcfg,
                &ChaosConfig::new(FaultPlan::generate(
                    0xA1,
                    fcfg.hosts,
                    horizon,
                    &FaultMix::default(),
                )),
            )
            .expect("chaos serves");
        rt(&run.chaos);
        rt(&run.chaos.faults);
        for p in &run.chaos.survival {
            rt(p);
        }
        for f in &run.log {
            rt(f);
        }
        rt(&run.outcome.report);
    });
}

#[test]
fn soak_and_histogram_values_round_trip() {
    bliss_parallel::with_thread_count(1, || {
        let (_, runtime) = tiny_runtime();
        let cfg = SoakConfig {
            sessions: 2,
            frames_per_session: 6,
            epochs: 2,
            seed: 0x5EDE,
        };
        let report = run_soak(&runtime, &cfg).expect("soak succeeds");
        rt(&report);
        rt(&report.histogram);
        rt(&report.latency);
        for e in &report.per_epoch {
            rt(e);
        }
    });
    let mut hist = StreamingHistogram::new();
    for i in 1..500u32 {
        hist.record(f64::from(i) * 3.3e-5);
    }
    hist.record(1e9); // overflow bucket
    rt(&hist);
}

#[test]
fn hardware_model_values_round_trip() {
    rt(&GemmShape::new(64, 128, 256));
    rt(&GemmShape::activation(8, 8, 8));
    let mut w = WorkloadDesc::new("vit-tiny");
    w.push_conv(16, 8, 3, 10, 10)
        .push_transformer_block(49, 96, 3)
        .push_linear(1, 96, 4);
    rt(&w);
    let array = SystolicArray {
        rows: 16,
        cols: 16,
        frequency_hz: 8e8,
        buffer_bytes: 1 << 20,
        bank_bytes: 1 << 14,
        node: bliss_energy::ProcessNode::NM16,
        dispatch_cycles: 1000,
    };
    rt(&array);
    let report: RunReport = array.run(&w, &bliss_energy::EnergyParams::default(), true);
    rt(&report);
    rt(&bliss_energy::AreaModel::default());

    let pipeline = PipelineConfig::conventional(120.0, StageDurations::paper_npu_full());
    let timing = simulate(&pipeline, 5);
    rt(&timing);
    for f in &timing.frames {
        rt(f);
        for s in &f.spans {
            rt(s);
        }
    }
    rt(&StageSpan {
        kind: StageKind::Feedback,
        start_s: 0.25,
        end_s: 0.375,
    });
}

#[test]
fn sensor_and_track_values_round_trip() {
    rt(&RoiBox::new(3, 4, 40, 30));
    rt(&EventMap::new(
        4,
        2,
        vec![true, false, true, true, false, false, true, false],
    ));
    rt(&ReadoutResult {
        roi: RoiBox::new(0, 0, 8, 8),
        theta: 9,
        stream: vec![0, 0, 511, 3, 0, 1023],
        conversions: 17,
        sampled: 4,
    });
    rt(&SensorSnapshot {
        held: Some(vec![0.5, 0.25, 0.0]),
        current: None,
        sram_rng: [1, 2, 3, 4],
        readouts: 99,
    });
    rt(&CalibrationLut {
        achieved_rate: vec![1.0, 0.93, 0.5, 0.07, 0.0],
    });
    rt(&EstimatorSnapshot {
        last: Gaze {
            horizontal_deg: -3.25,
            vertical_deg: 1.5,
        },
        typical_count: 84.5,
    });
    rt(&GazeState {
        gaze: Gaze {
            horizontal_deg: 12.0,
            vertical_deg: -7.0,
        },
        openness: 0.875,
        pupil_dilation: 0.5,
        phase: MovementPhase::SmoothPursuit,
    });
    let stats = AngularErrorStats {
        mean: 0.51,
        std: 0.125,
    };
    rt(&stats);
    rt(&EvalResult {
        horizontal: stats,
        vertical: stats,
        seg_accuracy: 0.96875,
        mean_compression: 11.5,
        mean_tokens: 40.25,
        frames: 24,
    });
    rt(&MeanAngularError {
        horizontal: 0.75,
        vertical: 1.25,
    });
}

#[test]
fn experiment_row_values_round_trip() {
    let stats = AngularErrorStats {
        mean: 1.5,
        std: 0.25,
    };
    let point = AccuracyPoint {
        compression: 10.0,
        horizontal: stats,
        vertical: stats,
        seg_accuracy: 0.9375,
    };
    rt(&point);
    let series = AccuracySeries {
        label: "BlissCam".into(),
        points: vec![point, point],
    };
    rt(&series);
    rt(&Fig12Result {
        series: vec![series.clone()],
        mac_reduction_vs_ritnet: 96.5,
    });
    rt(&Fig15Result {
        series: vec![series],
    });

    let breakdown = EnergyBreakdown {
        analog_readout_j: 1e-6,
        eventification_j: 2e-7,
        analog_hold_j: 3e-8,
        frame_buffer_leak_j: 0.0,
        roi_prediction_j: 4e-7,
        sampling_rng_j: 5e-9,
        rle_j: 6e-9,
        mipi_j: 7e-7,
        feedback_j: 8e-9,
        host_compute_j: 9e-6,
        dram_j: 1e-7,
        rld_j: 2e-9,
    };
    rt(&breakdown);
    rt(&FrameCounts {
        conversions: 2048,
        sampled: 1024,
        mipi_payload_bytes: 4096,
        tokens: 40,
        roi_pixels: 1600,
    });
    rt(&EnergyRow {
        variant: "BlissCam".into(),
        breakdown,
        ratio_vs_blisscam: 1.0,
    });
    rt(&LatencyRow {
        variant: "NPU-Full".into(),
        latency_s: 0.0125,
        achieved_fps: 80.0,
        stages: vec![("exposure".into(), 0.008), ("readout".into(), 0.002)],
    });
    rt(&Fig16Row {
        fps: 120.0,
        horizontal_error_deg: 0.5,
        energy_saving: 0.75,
    });
    rt(&Fig17Row {
        soc_nm: 7,
        logic_nm: 22,
        energy_saving: 0.625,
    });
    rt(&Tab1Row {
        reuse_window: 4,
        vertical: stats,
        energy_saving_fraction: 0.25,
    });

    let frame = FrameResult {
        index: 2,
        gaze_prediction: Gaze {
            horizontal_deg: 1.0,
            vertical_deg: 2.0,
        },
        gaze_truth: Gaze {
            horizontal_deg: 1.5,
            vertical_deg: 2.5,
        },
        horizontal_error_deg: 0.5,
        vertical_error_deg: 0.5,
        sampled_pixels: 512,
        conversions: 600,
        mipi_bytes: 1200,
        tokens: 39,
        energy: breakdown,
    };
    rt(&frame);
    rt(&SystemReport {
        variant: SystemVariant::BlissCam,
        frames: vec![frame],
        latency: simulate(
            &PipelineConfig::conventional(120.0, StageDurations::paper_blisscam()),
            2,
        ),
        pixels: 64 * 48,
    });
}

#[test]
fn telemetry_values_round_trip() {
    for s in bliss_telemetry::Stage::ALL {
        rt(&s);
    }
    let span = bliss_telemetry::SpanRecord {
        stage: bliss_telemetry::Stage::Inference,
        planned: true,
        scenario: 3,
        host: 2,
        session: 17,
        frame: 401,
        batch: 4,
        virt_start_s: 1.25,
        virt_dur_s: 0.0009765625,
        wall_start_ns: 123_456_789,
        wall_dur_ns: 42_000,
    };
    rt(&span);
    for s in bliss_telemetry::export::stage_breakdown(&[span, bliss_telemetry::SpanRecord::ZERO]) {
        rt(&s);
    }
    // A live registry snapshot (read-only: no enable-flag toggles, so this
    // cannot race the other suites in this binary).
    let snap = bliss_telemetry::metrics_snapshot();
    rt(&snap);
    for c in &snap.counters {
        rt(c);
    }
    for g in &snap.gauges {
        rt(g);
    }
    for h in &snap.histograms {
        rt(h);
    }
}

#[test]
fn trace_export_types_are_serialize_only_by_design() {
    // `TraceEvent`/`TraceArgs`/`ChromeTrace` carry `&'static str` stage
    // labels and exist to feed Perfetto, which owns the reader side; pin
    // that the export still emits valid JSON with the exact envelope the
    // trace-event format wants.
    let spans = [
        bliss_telemetry::SpanRecord::ZERO,
        bliss_telemetry::SpanRecord {
            stage: bliss_telemetry::Stage::Feedback,
            frame: 7,
            ..bliss_telemetry::SpanRecord::ZERO
        },
    ];
    let json = bliss_telemetry::export::chrome_trace_json(&spans);
    let value = serde::JsonValue::parse(&json).expect("Chrome trace serialises to valid JSON");
    let events = value
        .field("traceEvents")
        .and_then(|v| v.expect_array())
        .expect("trace envelope has a traceEvents array");
    assert_eq!(events.len(), spans.len());
}

#[test]
fn trend_tables_are_serialize_only_by_design() {
    // The three const-table entry types hold `&'static str` names, which
    // cannot deserialize into a borrowed 'static string — they are one-way
    // figure-dump types. Pin that they still serialize to *valid* JSON so
    // the exception stays an exception, not a blind spot.
    for e in bliss_energy::trends::JETSON_GPUS {
        serde::JsonValue::parse(&e.to_json()).expect("GpuEntry serialises to valid JSON");
    }
    for e in bliss_energy::trends::EYE_TRACKING_ALGORITHMS {
        serde::JsonValue::parse(&e.to_json()).expect("AlgorithmEntry serialises to valid JSON");
    }
    for e in bliss_energy::trends::READOUT_POWER_SURVEY {
        serde::JsonValue::parse(&e.to_json()).expect("SensorSurveyEntry serialises to valid JSON");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Leaf record types with public numeric fields get arbitrary values, so
    // coverage is not limited to the magnitudes the pipelines happen to
    // produce.

    #[test]
    fn arbitrary_frame_records_round_trip(
        ints in (0usize..=usize::MAX, 0u64..=u64::MAX, 0usize..1 << 20, 0u64..=u64::MAX),
        times in (-1e6f64..1e6, -1e6f64..1e6, 0f64..1e3, 0f64..1e9),
        gaze in (-90f32..90.0, -90f32..90.0, -90f32..90.0, -90f32..90.0),
        flags in (0u8..2, 1usize..64, 0f32..10.0, 0f32..10.0),
    ) {
        let r = bliss_serve::FrameRecord {
            index: ints.0,
            arrival_s: times.0,
            completion_s: times.1,
            latency_s: times.2,
            deadline_missed: flags.0 == 1,
            batch_size: flags.1,
            gaze_prediction: Gaze { horizontal_deg: gaze.0, vertical_deg: gaze.1 },
            gaze_truth: Gaze { horizontal_deg: gaze.2, vertical_deg: gaze.3 },
            horizontal_error_deg: flags.2,
            vertical_error_deg: flags.3,
            sampled_pixels: ints.2,
            roi_pixels: ints.1,
            tokens: ints.2,
            mipi_bytes: ints.3,
            energy_j: times.3,
            shed: flags.0 == 0,
        };
        let back = bliss_serve::FrameRecord::from_json(&r.to_json()).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn arbitrary_gemm_shapes_round_trip(
        m in 0usize..=usize::MAX, k in 0usize..=usize::MAX,
        n in 0usize..=usize::MAX, w in 0u8..2,
    ) {
        let g = GemmShape { m, k, n, has_weights: w == 1 };
        prop_assert_eq!(GemmShape::from_json(&g.to_json()).unwrap(), g);
    }

    #[test]
    fn arbitrary_param_snapshots_round_trip(
        shape in prop::collection::vec(0usize..64, 0..4),
        bits in prop::collection::vec(0u32..=u32::MAX, 0..24),
    ) {
        let data: Vec<f32> = bits
            .into_iter()
            .map(f32::from_bits)
            .filter(|x| x.is_finite())
            .collect();
        let p = bliss_nn::ParamSnapshot { shape, data };
        let back = bliss_nn::ParamSnapshot::from_json(&p.to_json()).unwrap();
        prop_assert_eq!(back.shape, p.shape);
        // Bit-level equality: weight restores must be exact, so the wire
        // format may not round floats.
        let a: Vec<u32> = back.data.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = p.data.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn arbitrary_latency_stats_round_trip(
        p50 in 0f64..1e6, p95 in 0f64..1e6, p99 in 0f64..1e6, max in 0f64..1e6,
    ) {
        let l = bliss_serve::LatencyStats { p50_ms: p50, p95_ms: p95, p99_ms: p99, max_ms: max };
        prop_assert_eq!(bliss_serve::LatencyStats::from_json(&l.to_json()).unwrap(), l);
    }

    #[test]
    fn arbitrary_histograms_round_trip(
        samples in prop::collection::vec(1e-9f64..1e4, 0..200),
    ) {
        let mut h = StreamingHistogram::new();
        for s in samples {
            h.record(s);
        }
        prop_assert_eq!(StreamingHistogram::from_json(&h.to_json()).unwrap(), h);
    }
}
