//! Steady-state allocation counting for the **whole serving loop** — the
//! soak harness's allocator-creep claim, pinned at the `step_batch`
//! granularity.
//!
//! `alloc_counter.rs` proves the batched ViT forward is buffer-allocation
//! free; this test drives the full durable-serving hot path instead — event
//! queue, sensor eventification, sparse readout, RLE MIPI framing, ROI-net
//! staging, batched inference, gaze regression and trace recording — via
//! [`ServeRuntime::step_batch`]. After a warm-up that populates the
//! thread-local scratch pools and every session's persistent staging
//! buffers, each further batch must:
//!
//! 1. perform **zero buffer-class allocations** (>= 1 KiB) — the pools and
//!    the sessions' reused buffers serve the entire working set;
//! 2. keep the scratch-pool retained bytes **exactly flat** — the pool
//!    high-water after warm-up never moves again, which is the same curve
//!    the long-horizon `soak` binary watches epoch over epoch;
//! 3. keep the small-allocation count flat across iterations (scheduler
//!    headers and autograd bookkeeping are bounded and non-growing);
//! 4. keep the compiled-plan cache **exactly stable** — serving runs
//!    through execution plans by default, and once every span layout of
//!    this load has been compiled, neither the plan count nor the total
//!    arena footprint may move again.
//!
//! Single-threaded (`with_thread_count(1)`) because the scratch pools are
//! thread-local — see `alloc_counter.rs` for the rationale.

// The counting allocator needs `unsafe` (GlobalAlloc); mirrors
// `alloc_counter.rs`.
#![allow(unsafe_code)]

use bliss_parallel::with_thread_count;
use bliss_serve::{ServeConfig, ServeRuntime};
use bliss_track::{RoiPredictionNet, SparseViT};
use blisscam_core::SystemConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Allocations at or above this size count as "buffer-class".
const BIG: usize = 1024;

struct CountingAllocator;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static BIG_ALLOCS: AtomicU64 = AtomicU64::new(0);
static BIG_SIZES: [AtomicU64; 64] = [const { AtomicU64::new(0) }; 64];

// SAFETY: delegates every operation verbatim to `System`; the counters are
// lock-free atomics and never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            if layout.size() >= BIG {
                let i = BIG_ALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
                if i < 64 {
                    BIG_SIZES[i].store(layout.size() as u64, Ordering::Relaxed);
                }
            }
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            if new_size >= BIG {
                let i = BIG_ALLOCS.fetch_add(1, Ordering::Relaxed) as usize;
                if i < 64 {
                    BIG_SIZES[i].store(new_size as u64, Ordering::Relaxed);
                }
            }
        }
        // SAFETY: same contract as the caller's.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with counting enabled and returns `(total, buffer_class)`
/// allocation counts.
fn count_allocs(f: impl FnOnce()) -> (u64, u64) {
    TOTAL.store(0, Ordering::SeqCst);
    BIG_ALLOCS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    f();
    ENABLED.store(false, Ordering::SeqCst);
    (
        TOTAL.load(Ordering::SeqCst),
        BIG_ALLOCS.load(Ordering::SeqCst),
    )
}

#[test]
fn steady_state_serving_is_buffer_allocation_free() {
    let mut system = SystemConfig::miniature();
    system.vit.dim = 12;
    system.vit.enc_depth = 1;
    system.vit.dec_depth = 1;
    system.roi_net.hidden = 16;
    // Untrained networks: the scheduling/staging/allocation behaviour under
    // test is identical, and skipping training keeps the test fast.
    let mut rng = StdRng::seed_from_u64(0x50AC11);
    let runtime = ServeRuntime::with_networks(
        system,
        SparseViT::new(&mut rng, system.vit),
        RoiPredictionNet::new(&mut rng, system.roi_net),
    );
    let cfg = ServeConfig::new(3, 400);

    // A steady-state "iteration" spans several fused batches so the
    // deterministic batch-composition rhythm (which varies step to step)
    // averages out and iteration totals are comparable.
    const STEPS_PER_ITER: usize = 16;

    with_thread_count(1, || {
        // Plan warm-up: one complete serve of the *same* deterministic
        // config compiles an execution plan for every span layout this load
        // can produce, so the counted replay below is pure cache hits. (The
        // batch-composition rhythm varies step to step, so a step-count
        // warm-up alone would leave later layouts uncompiled.)
        runtime.serve(&cfg).expect("plan warm-up run succeeds");

        let mut state = runtime.start(&cfg);
        // Warm-up: cold-start full-frame reads, first segmentation
        // feedback, pool population and every session's persistent staging
        // buffers reaching their high-water capacity.
        for _ in 0..160 {
            assert!(runtime.step_batch(&cfg, &mut state).expect("step succeeds"));
        }
        let warm_frames = state.frames_served();
        assert!(warm_frames > 3, "warm-up served only {warm_frames} frames");
        let pool_warm = bliss_tensor::pool_stats();
        let plans_warm = runtime.vit_plan_stats();
        assert!(plans_warm.plans > 0, "planned path never compiled");

        let mut per_iter = Vec::new();
        for _ in 0..4 {
            let before = state.frames_served();
            let (total, big) = count_allocs(|| {
                for _ in 0..STEPS_PER_ITER {
                    assert!(runtime.step_batch(&cfg, &mut state).expect("step succeeds"));
                }
            });
            let frames = state.frames_served() - before;
            if big > 0 {
                let sizes: Vec<u64> = BIG_SIZES
                    .iter()
                    .map(|a| a.load(Ordering::SeqCst))
                    .filter(|&x| x > 0)
                    .collect();
                eprintln!("buffer-class allocation sizes: {sizes:?}");
            }
            assert_eq!(
                big, 0,
                "steady-state serving performed {big} buffer-class (>= {BIG} B) \
                 heap allocations over {STEPS_PER_ITER} batches; the scratch \
                 pools and session staging buffers must serve the entire \
                 working set"
            );
            // The flat-pool claim of the soak harness, at its sharpest:
            // once warm, the thread's retained capacity never moves again.
            assert_eq!(
                bliss_tensor::pool_stats(),
                pool_warm,
                "scratch-pool retained capacity changed after warm-up"
            );
            // Plan-state stability: every span layout this load produces
            // was compiled during warm-up, so steady state neither adds
            // plans nor regrows arenas.
            let plans_now = runtime.vit_plan_stats();
            assert_eq!(plans_now.plans, plans_warm.plans, "plan cache grew");
            assert_eq!(
                plans_now.arena_elems, plans_warm.arena_elems,
                "plan arena footprint moved after warm-up"
            );
            assert!(frames > 0, "steady-state iteration served no frames");
            per_iter.push(total as f64 / frames as f64);
        }
        // Flat small-alloc count per served frame (the autograd tape's node
        // headers and scheduler bookkeeping): iterations serve different
        // batch mixes, so the per-frame rate carries a modest amortisation
        // spread, but a leak would grow it monotonically without bound.
        let lo = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = per_iter.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            hi <= lo * 1.5,
            "per-frame allocation counts must stay flat in steady state, \
             got {per_iter:?}"
        );
    });
}
