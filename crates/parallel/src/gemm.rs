//! Integer GEMM kernel for the quantised inference path.
//!
//! `i8 x i8 -> i32` matrix multiply against a pre-transposed right operand
//! (weights stored `[out_features, in_features]` row-major, so both the
//! activation row and the weight row are contiguous in the inner loop).
//! Runs on the same fixed-partition contract as every kernel in this crate:
//! output rows are partitioned independently of the thread count, and since
//! integer accumulation is exact and associative the result is bit-identical
//! on 1..N threads *by arithmetic*, not just by ordering discipline.
//!
//! Accumulation is `i32`: with `|a|, |b| <= 127` the dot product magnitude is
//! bounded by `k * 127^2`, so any `k < 2^31 / 16129 ≈ 133 000` is
//! overflow-free — far above any reduction dimension in the system (the
//! paper-scale ViT's largest is `2 * mlp_ratio * dim = 768`).

/// Output rows per partition chunk (matches the f32 matmul's row blocking).
const ROW_BLOCK: usize = 32;
/// Rows the register-blocked micro-kernel computes at once: four `i32`
/// accumulators share one streamed weight row.
const MICRO_ROWS: usize = 4;

/// `out = a x bt^T` with `a: [m, k]` (`i8`), `bt: [p, k]` (`i8`, the
/// transposed right operand) and `out: [m, p]` (`i32`), all row-major.
///
/// `m` is inferred from `out.len() / p`. The partition is fixed
/// (`ROW_BLOCK` output rows per chunk) and integer math is exact, so the
/// bytes are identical at any thread count and on either side of the serial
/// cutoff.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k`/`p`.
pub fn matmul_i8t_into(a: &[i8], bt: &[i8], k: usize, p: usize, out: &mut [i32]) {
    if out.is_empty() {
        assert!(
            a.is_empty() || k == 0 || p == 0,
            "empty output, non-empty operands"
        );
        return;
    }
    assert!(p > 0, "p must be positive for a non-empty output");
    assert!(out.len().is_multiple_of(p), "out length must be m * p");
    let m = out.len() / p;
    assert_eq!(a.len(), m * k, "a length must be m * k");
    assert_eq!(bt.len(), p * k, "bt length must be p * k");
    if k == 0 {
        out.fill(0);
        return;
    }

    // One contiguous run of ROW_BLOCK output rows per chunk; each output
    // element costs k multiply-accumulates.
    crate::par_chunks_with_cost(out, ROW_BLOCK * p, k, |blk, out_chunk| {
        let row0 = blk * ROW_BLOCK;
        let rows = out_chunk.len() / p;
        let mut r = 0;
        while r + MICRO_ROWS <= rows {
            let a0 = &a[(row0 + r) * k..][..k];
            let a1 = &a[(row0 + r + 1) * k..][..k];
            let a2 = &a[(row0 + r + 2) * k..][..k];
            let a3 = &a[(row0 + r + 3) * k..][..k];
            for j in 0..p {
                let b = &bt[j * k..][..k];
                let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
                for kk in 0..k {
                    let bv = b[kk] as i32;
                    s0 += a0[kk] as i32 * bv;
                    s1 += a1[kk] as i32 * bv;
                    s2 += a2[kk] as i32 * bv;
                    s3 += a3[kk] as i32 * bv;
                }
                out_chunk[r * p + j] = s0;
                out_chunk[(r + 1) * p + j] = s1;
                out_chunk[(r + 2) * p + j] = s2;
                out_chunk[(r + 3) * p + j] = s3;
            }
            r += MICRO_ROWS;
        }
        while r < rows {
            let arow = &a[(row0 + r) * k..][..k];
            for j in 0..p {
                let b = &bt[j * k..][..k];
                let mut s = 0i32;
                for kk in 0..k {
                    s += arow[kk] as i32 * b[kk] as i32;
                }
                out_chunk[r * p + j] = s;
            }
            r += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_min_parallel_work, with_thread_count};

    fn reference(a: &[i8], bt: &[i8], k: usize, p: usize) -> Vec<i32> {
        let m = a.len().checked_div(k).unwrap_or(0);
        let mut out = vec![0i32; m * p];
        for i in 0..m {
            for j in 0..p {
                let mut s = 0i64;
                for kk in 0..k {
                    s += a[i * k + kk] as i64 * bt[j * k + kk] as i64;
                }
                out[i * p + j] = s as i32;
            }
        }
        out
    }

    fn synth(len: usize, seed: u8) -> Vec<i8> {
        (0..len)
            .map(|i| {
                let h = (i as u32)
                    .wrapping_mul(2654435761)
                    .wrapping_add(seed as u32);
                ((h >> 13) as i32 % 255 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn matches_reference_over_odd_shapes() {
        for &(m, k, p) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (33, 16, 9),
            (130, 24, 17),
        ] {
            let a = synth(m * k, 11);
            let bt = synth(p * k, 97);
            let mut out = vec![0i32; m * p];
            matmul_i8t_into(&a, &bt, k, p, &mut out);
            assert_eq!(out, reference(&a, &bt, k, p), "m={m} k={k} p={p}");
        }
    }

    #[test]
    fn saturated_inputs_accumulate_exactly() {
        // All-extreme operands hit the largest possible dot products; the
        // i32 accumulator must carry them exactly.
        let (m, k, p) = (6, 512, 5);
        let a = vec![-127i8; m * k];
        let bt = vec![127i8; p * k];
        let mut out = vec![0i32; m * p];
        matmul_i8t_into(&a, &bt, k, p, &mut out);
        assert!(out.iter().all(|&v| v == -(k as i32) * 127 * 127));
    }

    #[test]
    fn bit_identical_across_thread_counts_and_cutoff() {
        let (m, k, p) = (67, 48, 19);
        let a = synth(m * k, 3);
        let bt = synth(p * k, 8);
        let run = |threads: usize, cutoff: usize| {
            with_thread_count(threads, || {
                with_min_parallel_work(cutoff, || {
                    let mut out = vec![0i32; m * p];
                    matmul_i8t_into(&a, &bt, k, p, &mut out);
                    out
                })
            })
        };
        let serial = run(1, usize::MAX);
        for threads in [2, 3, 8] {
            assert_eq!(serial, run(threads, 0), "threads={threads}");
        }
    }

    #[test]
    fn degenerate_dims_are_well_defined() {
        let mut empty: Vec<i32> = Vec::new();
        matmul_i8t_into(&[], &[], 0, 0, &mut empty);
        matmul_i8t_into(&[], &[], 4, 0, &mut empty);
        // k == 0: every dot product is empty.
        let mut out = vec![7i32; 6];
        matmul_i8t_into(&[], &[], 0, 3, &mut out);
        assert_eq!(out, vec![0; 6]);
    }
}
