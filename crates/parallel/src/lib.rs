//! Deterministic data-parallel primitives on a dependency-free scoped
//! thread pool.
//!
//! Every hot kernel in the BlissCam reproduction (matmul, attention,
//! convolution, eventification, rendering, readout) runs on the primitives in
//! this crate. The design contract is:
//!
//! * **Fixed work partitioning.** Chunk and row boundaries depend only on the
//!   input sizes, never on the thread count. A worker owns a contiguous range
//!   of chunks and writes only into its disjoint output slice.
//! * **Bit-identical results.** Because the partitioning is fixed and each
//!   closure is a pure function of its index and slice, a kernel produces the
//!   same bytes whether it runs on 1 or N threads. The per-element floating
//!   point accumulation order therefore never changes with the machine.
//! * **No nested oversubscription.** Worker threads run nested parallel calls
//!   serially, so a parallel attention fan-out whose per-head GEMMs are
//!   themselves parallel kernels does not explode into `heads x rows` threads.
//!
//! The pool is built on [`std::thread::scope`]: threads are spawned per
//! parallel region and joined before the call returns, so borrowed inputs need
//! no `'static` bound and worker panics propagate to the caller.
//!
//! # Thread-count selection
//!
//! [`thread_count`] resolves, in order: a scoped override installed by
//! [`with_thread_count`] (thread-local, used by tests and nested regions), the
//! `BLISS_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`], capped at 16.
//!
//! # Example
//!
//! ```
//! // Square 10 rows of 4 elements each, in parallel.
//! let mut data: Vec<f32> = (0..40).map(|x| x as f32).collect();
//! let expected: Vec<f32> = data.iter().map(|x| x * x).collect();
//!
//! bliss_parallel::par_map_rows(&mut data, 4, |_row, slice| {
//!     for v in slice.iter_mut() {
//!         *v *= *v;
//!     }
//! });
//! assert_eq!(data, expected);
//!
//! // The same call under any forced thread count produces identical bytes.
//! let mut again: Vec<f32> = (0..40).map(|x| x as f32).collect();
//! bliss_parallel::with_thread_count(8, || {
//!     bliss_parallel::par_map_rows(&mut again, 4, |_row, slice| {
//!         for v in slice.iter_mut() {
//!             *v *= *v;
//!         }
//!     });
//! });
//! assert_eq!(again, data);
//! ```

use std::cell::Cell;
use std::sync::OnceLock;
use std::thread;

/// Upper bound on the pool width; protects against absurd `BLISS_THREADS`
/// values and keeps per-region spawn cost bounded.
pub const MAX_THREADS: usize = 16;

thread_local! {
    /// 0 = no override; otherwise the forced thread count for this thread.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_thread_count() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        if let Some(n) = std::env::var("BLISS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            return n.clamp(1, MAX_THREADS);
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

/// The number of worker threads a parallel region started on this thread
/// will use.
///
/// Resolution order: [`with_thread_count`] override → `BLISS_THREADS`
/// environment variable → [`std::thread::available_parallelism`], capped at
/// [`MAX_THREADS`].
///
/// ```
/// assert!(bliss_parallel::thread_count() >= 1);
/// assert_eq!(bliss_parallel::with_thread_count(3, bliss_parallel::thread_count), 3);
/// ```
pub fn thread_count() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        env_thread_count()
    }
}

/// Restores the previous override when a scoped override ends, even on panic.
struct OverrideGuard(usize);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.0));
    }
}

/// Runs `f` with [`thread_count`] forced to `threads` on the current thread.
///
/// The override is thread-local and scoped: it is restored when `f` returns
/// (or panics), and concurrently running tests do not observe each other's
/// overrides. Results are guaranteed bit-identical across different forced
/// counts; this exists for determinism tests and for callers that want a
/// serial region (`threads = 1`).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "thread count must be at least 1");
    let prev = THREAD_OVERRIDE.with(|c| c.replace(threads.min(MAX_THREADS)));
    let _guard = OverrideGuard(prev);
    f()
}

/// Installs the serial override on a worker thread so nested parallel calls
/// (for example a parallel matmul inside a parallel per-head fan-out) run
/// inline instead of spawning `outer x inner` threads.
fn worker_guard() -> OverrideGuard {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(1));
    OverrideGuard(prev)
}

/// Applies `f` to consecutive `chunk_len`-sized chunks of `data` in parallel.
///
/// The closure receives the chunk index and a mutable slice; the final chunk
/// may be shorter. Chunk boundaries depend only on `data.len()` and
/// `chunk_len`, so for a pure `f` the result is bit-identical for every
/// thread count. Work is distributed as one contiguous run of chunks per
/// worker.
///
/// An empty `data` is a no-op. Panics in `f` propagate to the caller.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or if any worker closure panics.
///
/// # Example
///
/// ```
/// let mut v = vec![1.0f32; 10];
/// bliss_parallel::par_chunks(&mut v, 4, |idx, chunk| {
///     for x in chunk.iter_mut() {
///         *x += idx as f32;
///     }
/// });
/// assert_eq!(v[..4], [1.0; 4]);
/// assert_eq!(v[4..8], [2.0; 4]);
/// assert_eq!(v[8..], [3.0; 2]); // tail chunk is shorter
/// ```
pub fn par_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = thread_count().min(n_chunks);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let span = chunks_per_worker * chunk_len;
    thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = span.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let first_chunk = base;
            base += chunks_per_worker;
            scope.spawn(move || {
                let _serial = worker_guard();
                for (i, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(first_chunk + i, chunk);
                }
            });
        }
    });
}

/// Applies `f` to each `row_len`-sized row of `data` in parallel.
///
/// Identical to [`par_chunks`] with `chunk_len = row_len`; provided as the
/// natural vocabulary for row-major matrix kernels. `data.len()` does not
/// need to be a multiple of `row_len` (the last row may be partial).
///
/// # Panics
///
/// Panics if `row_len == 0`, or if any worker closure panics.
///
/// # Example
///
/// ```
/// // Normalise each row of a 3x4 matrix by its first element.
/// let mut m = vec![2.0f32, 4.0, 6.0, 8.0, 1.0, 3.0, 5.0, 7.0, 4.0, 4.0, 8.0, 2.0];
/// bliss_parallel::par_map_rows(&mut m, 4, |_r, row| {
///     let head = row[0];
///     for v in row.iter_mut() {
///         *v /= head;
///     }
/// });
/// assert_eq!(&m[..4], &[1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn par_map_rows<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks(data, row_len, f);
}

/// Applies `f` to matching rows of two parallel buffers.
///
/// `a` is split into `row_len_a`-sized rows and `b` into `row_len_b`-sized
/// rows; both must contain the same number of rows. Used by kernels that
/// produce two per-pixel outputs at once (e.g. the eye renderer's radiance
/// image and class mask).
///
/// # Panics
///
/// Panics if either row length is zero, if the row counts disagree, if either
/// buffer is not an exact multiple of its row length, or if any worker
/// closure panics.
///
/// # Example
///
/// ```
/// let mut img = vec![0.0f32; 6];
/// let mut mask = vec![0u8; 3];
/// bliss_parallel::par_zip_rows(&mut img, 2, &mut mask, 1, |row, i, m| {
///     i[0] = row as f32;
///     i[1] = row as f32 + 0.5;
///     m[0] = row as u8;
/// });
/// assert_eq!(img, [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]);
/// assert_eq!(mask, [0, 1, 2]);
/// ```
pub fn par_zip_rows<A, B, F>(a: &mut [A], row_len_a: usize, b: &mut [B], row_len_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(
        row_len_a > 0 && row_len_b > 0,
        "row lengths must be positive"
    );
    assert!(
        a.len().is_multiple_of(row_len_a) && b.len().is_multiple_of(row_len_b),
        "buffers must be whole numbers of rows"
    );
    let rows = a.len() / row_len_a;
    assert_eq!(rows, b.len() / row_len_b, "row counts must match");
    if rows == 0 {
        return;
    }
    let threads = thread_count().min(rows);
    if threads <= 1 {
        for (row, (ra, rb)) in a
            .chunks_mut(row_len_a)
            .zip(b.chunks_mut(row_len_b))
            .enumerate()
        {
            f(row, ra, rb);
        }
        return;
    }
    let rows_per_worker = rows.div_ceil(threads);
    thread::scope(|scope| {
        let f = &f;
        let mut rest_a = a;
        let mut rest_b = b;
        let mut base = 0usize;
        while !rest_a.is_empty() {
            let take_rows = rows_per_worker.min(rest_a.len() / row_len_a);
            let (head_a, tail_a) = rest_a.split_at_mut(take_rows * row_len_a);
            let (head_b, tail_b) = rest_b.split_at_mut(take_rows * row_len_b);
            rest_a = tail_a;
            rest_b = tail_b;
            let first_row = base;
            base += take_rows;
            scope.spawn(move || {
                let _serial = worker_guard();
                for (i, (ra, rb)) in head_a
                    .chunks_mut(row_len_a)
                    .zip(head_b.chunks_mut(row_len_b))
                    .enumerate()
                {
                    f(first_row + i, ra, rb);
                }
            });
        }
    });
}

/// Evaluates `f(0), f(1), …, f(n - 1)` in parallel and collects the results
/// in index order.
///
/// Used for coarse-grained fan-out where each task produces an owned value —
/// e.g. one attention head's output, or one image patch's occupancy flag.
/// Results are returned in index order regardless of completion order, so the
/// output is independent of the thread count.
///
/// # Panics
///
/// Panics if any worker closure panics.
///
/// # Example
///
/// ```
/// let squares = bliss_parallel::par_map_collect(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// assert!(bliss_parallel::par_map_collect(0, |i| i).is_empty());
/// ```
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let per_worker = n.div_ceil(threads);
    thread::scope(|scope| {
        let f = &f;
        for (w, block) in out.chunks_mut(per_worker).enumerate() {
            scope.spawn(move || {
                let _serial = worker_guard();
                for (i, slot) in block.iter_mut().enumerate() {
                    *slot = Some(f(w * per_worker + i));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index is assigned to exactly one worker"))
        .collect()
}

/// Applies `f` to every item of `items` with mutable access, collecting the
/// returned values in index order.
///
/// The work-source primitive of the serving runtime: each item is an
/// independently mutable unit of per-session state (sensor, RNG, feedback
/// buffers) and `f` advances it one step, returning that step's output.
/// Items are distributed as one contiguous block per worker, so for a pure
/// per-item `f` the outputs — and the per-item state mutations — are
/// bit-identical for every thread count.
///
/// # Panics
///
/// Panics if any worker closure panics.
///
/// # Example
///
/// ```
/// let mut counters = vec![0u32; 5];
/// let doubled = bliss_parallel::par_map_mut(&mut counters, |i, c| {
///     *c += i as u32;
///     *c * 2
/// });
/// assert_eq!(counters, vec![0, 1, 2, 3, 4]);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    if threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per_worker = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        let f = &f;
        for ((w, block), slots) in items
            .chunks_mut(per_worker)
            .enumerate()
            .zip(out.chunks_mut(per_worker))
        {
            scope.spawn(move || {
                let _serial = worker_guard();
                for (i, (item, slot)) in block.iter_mut().zip(slots.iter_mut()).enumerate() {
                    *slot = Some(f(w * per_worker + i, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every index is assigned to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fill_squares(len: usize, chunk: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..len).map(|x| x as f32).collect();
        par_chunks(&mut v, chunk, |_i, c| {
            for x in c.iter_mut() {
                *x = (*x).sin() * 1e3;
            }
        });
        v
    }

    #[test]
    fn par_chunks_deterministic_across_thread_counts() {
        for &(len, chunk) in &[(0usize, 3usize), (1, 1), (7, 3), (64, 8), (1000, 17)] {
            let serial = with_thread_count(1, || fill_squares(len, chunk));
            for threads in [2, 3, 8] {
                let parallel = with_thread_count(threads, || fill_squares(len, chunk));
                assert_eq!(serial, parallel, "len={len} chunk={chunk} t={threads}");
            }
        }
    }

    #[test]
    fn par_chunks_visits_every_chunk_exactly_once() {
        let mut v = vec![0u32; 103];
        with_thread_count(8, || {
            par_chunks(&mut v, 10, |i, c| {
                for x in c.iter_mut() {
                    *x += 1 + i as u32;
                }
            });
        });
        for (flat, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (flat / 10) as u32);
        }
    }

    #[test]
    fn par_chunks_handles_empty_and_odd_inputs() {
        let mut empty: Vec<f32> = Vec::new();
        par_chunks(&mut empty, 4, |_, _| panic!("must not be called"));
        // Odd-sized tail: last chunk shorter than chunk_len.
        let mut v = vec![1u8; 5];
        with_thread_count(4, || {
            par_chunks(&mut v, 2, |i, c| {
                assert_eq!(c.len(), if i == 2 { 1 } else { 2 });
            });
        });
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks(&mut [0u8; 4][..], 0, |_, _| {});
    }

    #[test]
    fn worker_panics_propagate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut v = vec![0u8; 100];
            with_thread_count(4, || {
                par_chunks(&mut v, 10, |i, _| {
                    if i == 7 {
                        panic!("worker failure");
                    }
                });
            });
        }));
        assert!(result.is_err(), "panic must escape the parallel region");
    }

    #[test]
    fn par_map_collect_preserves_order_and_propagates_panics() {
        for threads in [1, 2, 8] {
            let got = with_thread_count(threads, || par_map_collect(23, |i| i * 3));
            assert_eq!(got, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_thread_count(4, || {
                par_map_collect(16, |i| if i == 11 { panic!("boom") } else { i })
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_map_mut_mutates_and_collects_deterministically() {
        let run = || {
            let mut state: Vec<u64> = (0..17).map(|i| i * 7).collect();
            let outs = par_map_mut(&mut state, |i, s| {
                *s = s.wrapping_mul(31).wrapping_add(i as u64);
                *s ^ 0x5A
            });
            (state, outs)
        };
        let serial = with_thread_count(1, run);
        for threads in [2, 3, 8] {
            assert_eq!(serial, with_thread_count(threads, run), "t={threads}");
        }
        assert!(par_map_mut(&mut Vec::<u8>::new(), |_, _| 0u8).is_empty());
    }

    #[test]
    fn par_map_mut_propagates_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut v = vec![0u8; 12];
            with_thread_count(4, || {
                par_map_mut(&mut v, |i, _| if i == 9 { panic!("boom") } else { i })
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_zip_rows_matches_serial() {
        let run = || {
            let mut a = vec![0.0f32; 9 * 5];
            let mut b = vec![0u8; 9 * 2];
            par_zip_rows(&mut a, 5, &mut b, 2, |row, ra, rb| {
                for (j, x) in ra.iter_mut().enumerate() {
                    *x = (row * 10 + j) as f32;
                }
                rb[0] = row as u8;
                rb[1] = 2 * row as u8;
            });
            (a, b)
        };
        let serial = with_thread_count(1, run);
        for threads in [2, 8] {
            assert_eq!(serial, with_thread_count(threads, run));
        }
    }

    #[test]
    fn nested_regions_run_serially() {
        // A nested par_chunks inside a worker must not spawn its own threads;
        // we detect this by counting distinct executions — the nested call
        // still computes correctly either way, so assert on thread_count().
        let observed = AtomicUsize::new(usize::MAX);
        with_thread_count(4, || {
            par_map_collect(4, |i| {
                if i == 0 {
                    observed.store(thread_count(), Ordering::SeqCst);
                }
            });
        });
        assert_eq!(observed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn override_is_scoped_and_unwinds() {
        let outer = thread_count();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_thread_count(5, || panic!("unwind through override"))
        }));
        assert_eq!(thread_count(), outer, "override must restore on unwind");
        let nested = with_thread_count(2, || with_thread_count(6, thread_count));
        assert_eq!(nested, 6);
    }
}
