//! Deterministic data-parallel primitives on a dependency-free **persistent
//! worker pool**.
//!
//! Every hot kernel in the BlissCam reproduction (matmul, attention,
//! convolution, eventification, rendering, readout) runs on the primitives in
//! this crate. The design contract is:
//!
//! * **Fixed work partitioning.** Chunk and row boundaries depend only on the
//!   input sizes, never on the thread count. A worker owns a contiguous range
//!   of chunks and writes only into its disjoint output slice.
//! * **Bit-identical results.** Because the partitioning is fixed and each
//!   closure is a pure function of its index and slice, a kernel produces the
//!   same bytes whether it runs on 1 or N threads. The per-element floating
//!   point accumulation order therefore never changes with the machine.
//! * **No nested oversubscription.** Worker threads run nested parallel calls
//!   serially, so a parallel attention fan-out whose per-head GEMMs are
//!   themselves parallel kernels does not explode into `heads x rows` threads.
//!
//! Regions execute on the lazily-initialised pool in [`pool`]: workers park
//! on a condvar between regions and receive scoped jobs through a
//! generation-stamped handoff, so a region pays a queue push + wakeup instead
//! of an OS thread spawn + join (see the module docs for the protocol and
//! its safety argument). Worker panics still propagate to the submitting
//! thread, and borrowed inputs still need no `'static` bound.
//!
//! # Thread-count selection
//!
//! [`thread_count`] resolves, in order: a scoped override installed by
//! [`with_thread_count`] (thread-local, used by tests and nested regions), the
//! `BLISS_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`], capped at 16.
//!
//! # Small-region cutoff
//!
//! Dispatching a region costs roughly a microsecond even on the persistent
//! pool, which tiny regions (eventification of a miniature frame, a
//! handful-of-rows transpose) can never amortise. Each primitive therefore
//! estimates its region's total work — element count times an optional
//! per-element cost hint (the `*_with_cost` variants; e.g. the matmul passes
//! its inner dimension) — and runs **serially on the calling thread** when
//! the estimate falls below [`min_parallel_work`]. The cutoff changes only
//! *where* the closures run, never the partition, so results remain
//! bit-identical on both sides of the threshold; it is tunable via the
//! `BLISS_PAR_THRESHOLD` environment variable or scoped
//! [`with_min_parallel_work`] (the benches force `0` to measure pure
//! dispatch).
//!
//! [`par_map_collect`] and [`par_map_mut`] fan out *items* (attention heads,
//! serving sessions) rather than elements; their plain forms assume every
//! item is at least a threshold's worth of work and always parallelise —
//! pass a per-item cost with the `_with_cost` variants when items are cheap
//! (the ViT's patch-occupancy scan does).
//!
//! # Example
//!
//! ```
//! // Square 10 rows of 4 elements each.
//! let mut data: Vec<f32> = (0..40).map(|x| x as f32).collect();
//! let expected: Vec<f32> = data.iter().map(|x| x * x).collect();
//!
//! bliss_parallel::par_map_rows(&mut data, 4, |_row, slice| {
//!     for v in slice.iter_mut() {
//!         *v *= *v;
//!     }
//! });
//! assert_eq!(data, expected);
//!
//! // The same call under any forced thread count produces identical bytes —
//! // whether the region runs serially (below the work cutoff) or on the
//! // pool (forced here with a zero cutoff).
//! let mut again: Vec<f32> = (0..40).map(|x| x as f32).collect();
//! bliss_parallel::with_thread_count(8, || {
//!     bliss_parallel::with_min_parallel_work(0, || {
//!         bliss_parallel::par_map_rows(&mut again, 4, |_row, slice| {
//!             for v in slice.iter_mut() {
//!                 *v *= *v;
//!             }
//!         });
//!     });
//! });
//! assert_eq!(again, data);
//! ```

use std::cell::Cell;
use std::sync::OnceLock;
use std::thread;

pub mod gemm;
pub mod pool;

pub use gemm::matmul_i8t_into;
pub use pool::pool_thread_count;

/// Upper bound on the pool width; protects against absurd `BLISS_THREADS`
/// values and bounds the persistent pool's worker count.
pub const MAX_THREADS: usize = 16;

/// Default total-work cutoff below which a region runs serially instead of
/// dispatching to the pool (in elements x per-element cost units). The value
/// matches the register-blocked matmul's historical `32^3` serial cutoff.
pub const DEFAULT_MIN_PARALLEL_WORK: usize = 32 * 32 * 32;

thread_local! {
    /// 0 = no override; otherwise the forced thread count for this thread.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// `None` = no override; otherwise the forced work cutoff.
    static WORK_CUTOFF_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_thread_count() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        if let Some(n) = std::env::var("BLISS_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            return n.clamp(1, MAX_THREADS);
        }
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS)
    })
}

fn env_min_parallel_work() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("BLISS_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MIN_PARALLEL_WORK)
    })
}

/// The number of worker threads a parallel region started on this thread
/// will use.
///
/// Resolution order: [`with_thread_count`] override → `BLISS_THREADS`
/// environment variable → [`std::thread::available_parallelism`], capped at
/// [`MAX_THREADS`].
///
/// ```
/// assert!(bliss_parallel::thread_count() >= 1);
/// assert_eq!(bliss_parallel::with_thread_count(3, bliss_parallel::thread_count), 3);
/// ```
pub fn thread_count() -> usize {
    let o = THREAD_OVERRIDE.with(Cell::get);
    if o > 0 {
        o
    } else {
        env_thread_count()
    }
}

/// The total-work cutoff below which regions run serially.
///
/// Resolution order: [`with_min_parallel_work`] override →
/// `BLISS_PAR_THRESHOLD` environment variable →
/// [`DEFAULT_MIN_PARALLEL_WORK`].
pub fn min_parallel_work() -> usize {
    WORK_CUTOFF_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(env_min_parallel_work)
}

/// Restores the previous override when a scoped override ends, even on panic.
struct OverrideGuard(usize);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.0));
    }
}

struct CutoffGuard(Option<usize>);

impl Drop for CutoffGuard {
    fn drop(&mut self) {
        WORK_CUTOFF_OVERRIDE.with(|c| c.set(self.0));
    }
}

/// Runs `f` with [`thread_count`] forced to `threads` on the current thread.
///
/// The override is thread-local and scoped: it is restored when `f` returns
/// (or panics), and concurrently running tests do not observe each other's
/// overrides. Results are guaranteed bit-identical across different forced
/// counts; this exists for determinism tests and for callers that want a
/// serial region (`threads = 1`).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "thread count must be at least 1");
    let prev = THREAD_OVERRIDE.with(|c| c.replace(threads.min(MAX_THREADS)));
    let _guard = OverrideGuard(prev);
    f()
}

/// Runs `f` with [`min_parallel_work`] forced to `work` on the current
/// thread (scoped and panic-safe, like [`with_thread_count`]).
///
/// `0` forces every region onto the pool regardless of size (used by the
/// dispatch-overhead benches and the pool lifecycle tests); a huge value
/// forces everything serial. Results are bit-identical either way.
///
/// ```
/// // Force pool dispatch for a tiny region; the bytes cannot change.
/// let run = || {
///     let mut v = vec![1.0f32; 8];
///     bliss_parallel::par_map_rows(&mut v, 2, |r, row| row[0] += r as f32);
///     v
/// };
/// let serial = run();
/// let pooled = bliss_parallel::with_thread_count(4, || {
///     bliss_parallel::with_min_parallel_work(0, run)
/// });
/// assert_eq!(serial, pooled);
/// ```
pub fn with_min_parallel_work<R>(work: usize, f: impl FnOnce() -> R) -> R {
    let prev = WORK_CUTOFF_OVERRIDE.with(|c| c.replace(Some(work)));
    let _guard = CutoffGuard(prev);
    f()
}

/// Installs the serial override on a worker thread so nested parallel calls
/// (for example a parallel matmul inside a parallel per-head fan-out) run
/// inline instead of spawning `outer x inner` threads.
fn worker_guard() -> OverrideGuard {
    let prev = THREAD_OVERRIDE.with(|c| c.replace(1));
    OverrideGuard(prev)
}

/// Applies `f` to consecutive `chunk_len`-sized chunks of `data` in parallel.
///
/// The closure receives the chunk index and a mutable slice; the final chunk
/// may be shorter. Chunk boundaries depend only on `data.len()` and
/// `chunk_len`, so for a pure `f` the result is bit-identical for every
/// thread count. Work is distributed as one contiguous run of chunks per
/// worker; regions smaller than [`min_parallel_work`] elements run serially
/// on the calling thread (same partition, same bytes).
///
/// An empty `data` is a no-op. Panics in `f` propagate to the caller.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or if any worker closure panics.
///
/// # Example
///
/// ```
/// let mut v = vec![1.0f32; 10];
/// bliss_parallel::par_chunks(&mut v, 4, |idx, chunk| {
///     for x in chunk.iter_mut() {
///         *x += idx as f32;
///     }
/// });
/// assert_eq!(v[..4], [1.0; 4]);
/// assert_eq!(v[4..8], [2.0; 4]);
/// assert_eq!(v[8..], [3.0; 2]); // tail chunk is shorter
/// ```
pub fn par_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_with_cost(data, chunk_len, 1, f)
}

/// [`par_chunks`] with an explicit per-element cost hint for the
/// small-region cutoff.
///
/// `cost_per_elem` scales the work estimate (`data.len() * cost_per_elem`)
/// compared against [`min_parallel_work`]; it has **no effect on results**,
/// only on whether the region dispatches to the pool. The matmul passes its
/// inner dimension `k` (each output element costs `k` FMAs); memory-bound
/// kernels use the default of 1.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or if any worker closure panics.
pub fn par_chunks_with_cost<T, F>(data: &mut [T], chunk_len: usize, cost_per_elem: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if data.is_empty() {
        return;
    }
    let n_chunks = data.len().div_ceil(chunk_len);
    let threads = thread_count().min(n_chunks);
    let work = data.len().saturating_mul(cost_per_elem.max(1));
    if threads <= 1 || work < min_parallel_work() {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Fixed partition: one contiguous run of chunks per share, split safely
    // on this thread and handed across the pool through take-once cells.
    let chunks_per_share = n_chunks.div_ceil(threads);
    let span = chunks_per_share * chunk_len;
    let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(threads);
    let mut rest = data;
    let mut first_chunk = 0usize;
    while !rest.is_empty() {
        let take = span.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        parts.push((first_chunk, head));
        first_chunk += chunks_per_share;
        rest = tail;
    }
    let cells = pool::ShareCells::new(parts);
    let f = &f;
    pool::run_region(cells.len(), &|w: usize| {
        let (first_chunk, slice) = cells.take(w);
        for (i, chunk) in slice.chunks_mut(chunk_len).enumerate() {
            f(first_chunk + i, chunk);
        }
    });
}

/// Applies `f` to each `row_len`-sized row of `data` in parallel.
///
/// Identical to [`par_chunks`] with `chunk_len = row_len`; provided as the
/// natural vocabulary for row-major matrix kernels. `data.len()` does not
/// need to be a multiple of `row_len` (the last row may be partial).
///
/// # Panics
///
/// Panics if `row_len == 0`, or if any worker closure panics.
///
/// # Example
///
/// ```
/// // Normalise each row of a 3x4 matrix by its first element.
/// let mut m = vec![2.0f32, 4.0, 6.0, 8.0, 1.0, 3.0, 5.0, 7.0, 4.0, 4.0, 8.0, 2.0];
/// bliss_parallel::par_map_rows(&mut m, 4, |_r, row| {
///     let head = row[0];
///     for v in row.iter_mut() {
///         *v /= head;
///     }
/// });
/// assert_eq!(&m[..4], &[1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn par_map_rows<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_with_cost(data, row_len, 1, f);
}

/// [`par_map_rows`] with an explicit per-element cost hint (see
/// [`par_chunks_with_cost`]).
///
/// # Panics
///
/// Panics if `row_len == 0`, or if any worker closure panics.
pub fn par_map_rows_with_cost<T, F>(data: &mut [T], row_len: usize, cost_per_elem: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_with_cost(data, row_len, cost_per_elem, f);
}

/// Applies `f` to matching rows of two parallel buffers.
///
/// `a` is split into `row_len_a`-sized rows and `b` into `row_len_b`-sized
/// rows; both must contain the same number of rows. Used by kernels that
/// produce two per-pixel outputs at once (e.g. the eye renderer's radiance
/// image and class mask).
///
/// # Panics
///
/// Panics if either row length is zero, if the row counts disagree, if either
/// buffer is not an exact multiple of its row length, or if any worker
/// closure panics.
///
/// # Example
///
/// ```
/// let mut img = vec![0.0f32; 6];
/// let mut mask = vec![0u8; 3];
/// bliss_parallel::par_zip_rows(&mut img, 2, &mut mask, 1, |row, i, m| {
///     i[0] = row as f32;
///     i[1] = row as f32 + 0.5;
///     m[0] = row as u8;
/// });
/// assert_eq!(img, [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]);
/// assert_eq!(mask, [0, 1, 2]);
/// ```
pub fn par_zip_rows<A, B, F>(a: &mut [A], row_len_a: usize, b: &mut [B], row_len_b: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    par_zip_rows_with_cost(a, row_len_a, b, row_len_b, 1, f);
}

/// [`par_zip_rows`] with an explicit per-element cost hint (see
/// [`par_chunks_with_cost`]); the work estimate covers both buffers. The eye
/// renderer passes a high cost because each output pixel runs full ellipse
/// geometry.
///
/// # Panics
///
/// Same conditions as [`par_zip_rows`].
#[allow(clippy::too_many_arguments)]
pub fn par_zip_rows_with_cost<A, B, F>(
    a: &mut [A],
    row_len_a: usize,
    b: &mut [B],
    row_len_b: usize,
    cost_per_elem: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(
        row_len_a > 0 && row_len_b > 0,
        "row lengths must be positive"
    );
    assert!(
        a.len().is_multiple_of(row_len_a) && b.len().is_multiple_of(row_len_b),
        "buffers must be whole numbers of rows"
    );
    let rows = a.len() / row_len_a;
    assert_eq!(rows, b.len() / row_len_b, "row counts must match");
    if rows == 0 {
        return;
    }
    let threads = thread_count().min(rows);
    let work = (a.len() + b.len()).saturating_mul(cost_per_elem.max(1));
    if threads <= 1 || work < min_parallel_work() {
        for (row, (ra, rb)) in a
            .chunks_mut(row_len_a)
            .zip(b.chunks_mut(row_len_b))
            .enumerate()
        {
            f(row, ra, rb);
        }
        return;
    }
    let rows_per_share = rows.div_ceil(threads);
    let mut parts: Vec<(usize, &mut [A], &mut [B])> = Vec::with_capacity(threads);
    let mut rest_a = a;
    let mut rest_b = b;
    let mut first_row = 0usize;
    while !rest_a.is_empty() {
        let take_rows = rows_per_share.min(rest_a.len() / row_len_a);
        let (head_a, tail_a) = rest_a.split_at_mut(take_rows * row_len_a);
        let (head_b, tail_b) = rest_b.split_at_mut(take_rows * row_len_b);
        parts.push((first_row, head_a, head_b));
        first_row += take_rows;
        rest_a = tail_a;
        rest_b = tail_b;
    }
    let cells = pool::ShareCells::new(parts);
    let f = &f;
    pool::run_region(cells.len(), &|w: usize| {
        let (first_row, sa, sb) = cells.take(w);
        for (i, (ra, rb)) in sa
            .chunks_mut(row_len_a)
            .zip(sb.chunks_mut(row_len_b))
            .enumerate()
        {
            f(first_row + i, ra, rb);
        }
    });
}

/// Evaluates `f(0), f(1), …, f(n - 1)` in parallel and collects the results
/// in index order.
///
/// Used for coarse-grained fan-out where each task produces an owned value —
/// e.g. one attention head's output, or one serving session's step. Results
/// are returned in index order regardless of completion order, so the output
/// is independent of the thread count. Items are assumed expensive (the
/// region always dispatches); use [`par_map_collect_with_cost`] when they
/// are not.
///
/// # Panics
///
/// Panics if any worker closure panics.
///
/// # Example
///
/// ```
/// let squares = bliss_parallel::par_map_collect(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// assert!(bliss_parallel::par_map_collect(0, |i| i).is_empty());
/// ```
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_collect_with_cost(n, usize::MAX, f)
}

/// [`par_map_collect`] with an explicit per-item cost hint: the region runs
/// serially when `n * cost_per_item` falls below [`min_parallel_work`]
/// (results are identical either way). The ViT's patch-occupancy scan passes
/// its patch area.
///
/// # Panics
///
/// Panics if any worker closure panics.
pub fn par_map_collect_with_cost<R, F>(n: usize, cost_per_item: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    let work = n.saturating_mul(cost_per_item.max(1));
    if threads <= 1 || work < min_parallel_work() {
        return (0..n).map(f).collect();
    }
    let per_share = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let parts: Vec<(usize, &mut [Option<R>])> = out
            .chunks_mut(per_share)
            .enumerate()
            .map(|(w, block)| (w * per_share, block))
            .collect();
        let cells = pool::ShareCells::new(parts);
        let f = &f;
        pool::run_region(cells.len(), &|w: usize| {
            let (start, slots) = cells.take(w);
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = Some(f(start + i));
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every index is assigned to exactly one share"))
        .collect()
}

/// Applies `f` to every item of `items` with mutable access, collecting the
/// returned values in index order.
///
/// The work-source primitive of the serving runtime: each item is an
/// independently mutable unit of per-session state (sensor, RNG, feedback
/// buffers) and `f` advances it one step, returning that step's output.
/// Items are distributed as one contiguous block per worker, so for a pure
/// per-item `f` the outputs — and the per-item state mutations — are
/// bit-identical for every thread count. Items are assumed expensive (the
/// region always dispatches).
///
/// # Panics
///
/// Panics if any worker closure panics.
///
/// # Example
///
/// ```
/// let mut counters = vec![0u32; 5];
/// let doubled = bliss_parallel::par_map_mut(&mut counters, |i, c| {
///     *c += i as u32;
///     *c * 2
/// });
/// assert_eq!(counters, vec![0, 1, 2, 3, 4]);
/// assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
/// ```
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = thread_count().min(n);
    if threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per_share = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        type MutShare<'p, T, R> = (usize, &'p mut [T], &'p mut [Option<R>]);
        let parts: Vec<MutShare<'_, T, R>> = items
            .chunks_mut(per_share)
            .zip(out.chunks_mut(per_share))
            .enumerate()
            .map(|(w, (block, slots))| (w * per_share, block, slots))
            .collect();
        let cells = pool::ShareCells::new(parts);
        let f = &f;
        pool::run_region(cells.len(), &|w: usize| {
            let (start, block, slots) = cells.take(w);
            for (i, (item, slot)) in block.iter_mut().zip(slots.iter_mut()).enumerate() {
                *slot = Some(f(start + i, item));
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every index is assigned to exactly one share"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Forces pool dispatch regardless of region size, so these tests
    /// exercise the persistent-pool path and not the serial cutoff.
    fn pooled<R>(f: impl FnOnce() -> R) -> R {
        with_min_parallel_work(0, f)
    }

    fn fill_squares(len: usize, chunk: usize) -> Vec<f32> {
        let mut v: Vec<f32> = (0..len).map(|x| x as f32).collect();
        par_chunks(&mut v, chunk, |_i, c| {
            for x in c.iter_mut() {
                *x = (*x).sin() * 1e3;
            }
        });
        v
    }

    #[test]
    fn par_chunks_deterministic_across_thread_counts() {
        for &(len, chunk) in &[(0usize, 3usize), (1, 1), (7, 3), (64, 8), (1000, 17)] {
            let serial = with_thread_count(1, || fill_squares(len, chunk));
            for threads in [2, 3, 8] {
                let parallel = with_thread_count(threads, || pooled(|| fill_squares(len, chunk)));
                assert_eq!(serial, parallel, "len={len} chunk={chunk} t={threads}");
            }
        }
    }

    #[test]
    fn results_identical_on_both_sides_of_the_work_cutoff() {
        // The same region, pinned serial (huge cutoff) and pinned pooled
        // (zero cutoff), must produce identical bytes — the cutoff moves
        // execution, never the partition. Covers par_chunks and
        // par_map_collect, the two primitives with cost-gated dispatch.
        let chunks = |cutoff: usize| {
            with_thread_count(8, || {
                with_min_parallel_work(cutoff, || fill_squares(1000, 17))
            })
        };
        assert_eq!(chunks(usize::MAX), chunks(0));

        let collect = |cutoff: usize| {
            with_thread_count(8, || {
                with_min_parallel_work(cutoff, || {
                    par_map_collect_with_cost(100, 3, |i| (i as f32).cos())
                })
            })
        };
        assert_eq!(collect(usize::MAX), collect(0));
    }

    #[test]
    fn small_regions_skip_the_pool_and_large_ones_use_it() {
        let caller = std::thread::current().id();
        with_thread_count(4, || {
            // Tiny region, default cutoff: every chunk runs inline on the
            // calling thread — no dispatch, no pool growth required.
            let mut v = vec![0u8; 64];
            par_chunks(&mut v, 8, |_, _| {
                assert_eq!(std::thread::current().id(), caller);
            });
            // The same region with the cutoff forced to zero dispatches to
            // the pool: workers are spawned (even if, on a single-CPU host,
            // the submitter's help-drain wins the race to execute the
            // shares — which thread runs a share never changes the bytes).
            pooled(|| {
                let mut v = vec![0u8; 64];
                par_chunks(&mut v, 8, |_, _| {});
            });
            assert!(pool_thread_count() >= 1);
        });
    }

    #[test]
    fn par_chunks_visits_every_chunk_exactly_once() {
        let mut v = vec![0u32; 103];
        with_thread_count(8, || {
            pooled(|| {
                par_chunks(&mut v, 10, |i, c| {
                    for x in c.iter_mut() {
                        *x += 1 + i as u32;
                    }
                });
            });
        });
        for (flat, &x) in v.iter().enumerate() {
            assert_eq!(x, 1 + (flat / 10) as u32);
        }
    }

    #[test]
    fn par_chunks_handles_empty_and_odd_inputs() {
        let mut empty: Vec<f32> = Vec::new();
        par_chunks(&mut empty, 4, |_, _| panic!("must not be called"));
        // Odd-sized tail: last chunk shorter than chunk_len.
        let mut v = vec![1u8; 5];
        with_thread_count(4, || {
            pooled(|| {
                par_chunks(&mut v, 2, |i, c| {
                    assert_eq!(c.len(), if i == 2 { 1 } else { 2 });
                });
            });
        });
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks(&mut [0u8; 4][..], 0, |_, _| {});
    }

    #[test]
    fn worker_panics_propagate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut v = vec![0u8; 100];
            with_thread_count(4, || {
                pooled(|| {
                    par_chunks(&mut v, 10, |i, _| {
                        if i == 7 {
                            panic!("worker failure");
                        }
                    });
                });
            });
        }));
        assert!(result.is_err(), "panic must escape the parallel region");
    }

    #[test]
    fn pool_survives_panics_and_stays_usable() {
        // A panicking region must not kill pool workers or wedge the queue:
        // subsequent regions on the same pool still complete correctly.
        with_thread_count(4, || {
            pooled(|| {
                for round in 0..10 {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        par_map_collect(8, |i| {
                            if i == 5 {
                                panic!("round {round}");
                            }
                            i
                        })
                    }));
                    assert!(result.is_err());
                    let ok = par_map_collect(8, |i| i * 2);
                    assert_eq!(ok, (0..8).map(|i| i * 2).collect::<Vec<_>>());
                }
            });
        });
    }

    #[test]
    fn par_map_collect_preserves_order_and_propagates_panics() {
        for threads in [1, 2, 8] {
            let got = with_thread_count(threads, || par_map_collect(23, |i| i * 3));
            assert_eq!(got, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_thread_count(4, || {
                par_map_collect(16, |i| if i == 11 { panic!("boom") } else { i })
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_map_mut_mutates_and_collects_deterministically() {
        let run = || {
            let mut state: Vec<u64> = (0..17).map(|i| i * 7).collect();
            let outs = par_map_mut(&mut state, |i, s| {
                *s = s.wrapping_mul(31).wrapping_add(i as u64);
                *s ^ 0x5A
            });
            (state, outs)
        };
        let serial = with_thread_count(1, run);
        for threads in [2, 3, 8] {
            assert_eq!(serial, with_thread_count(threads, run), "t={threads}");
        }
        assert!(par_map_mut(&mut Vec::<u8>::new(), |_, _| 0u8).is_empty());
    }

    #[test]
    fn par_map_mut_propagates_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut v = vec![0u8; 12];
            with_thread_count(4, || {
                par_map_mut(&mut v, |i, _| if i == 9 { panic!("boom") } else { i })
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn par_zip_rows_matches_serial() {
        let run = || {
            let mut a = vec![0.0f32; 9 * 5];
            let mut b = vec![0u8; 9 * 2];
            par_zip_rows(&mut a, 5, &mut b, 2, |row, ra, rb| {
                for (j, x) in ra.iter_mut().enumerate() {
                    *x = (row * 10 + j) as f32;
                }
                rb[0] = row as u8;
                rb[1] = 2 * row as u8;
            });
            (a, b)
        };
        let serial = with_thread_count(1, run);
        for threads in [2, 8] {
            assert_eq!(serial, with_thread_count(threads, || pooled(run)));
        }
    }

    #[test]
    fn nested_regions_run_serially() {
        // A nested par_chunks inside a pool share must not dispatch its own
        // region: shares install the serial override, so thread_count()
        // observed inside is 1.
        let observed = AtomicUsize::new(usize::MAX);
        with_thread_count(4, || {
            par_map_collect(4, |i| {
                if i == 0 {
                    observed.store(thread_count(), Ordering::SeqCst);
                }
            });
        });
        assert_eq!(observed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn override_is_scoped_and_unwinds() {
        let outer = thread_count();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_thread_count(5, || panic!("unwind through override"))
        }));
        assert_eq!(thread_count(), outer, "override must restore on unwind");
        let nested = with_thread_count(2, || with_thread_count(6, thread_count));
        assert_eq!(nested, 6);

        let outer_cutoff = min_parallel_work();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_min_parallel_work(7, || panic!("unwind through cutoff override"))
        }));
        assert_eq!(min_parallel_work(), outer_cutoff);
        assert_eq!(with_min_parallel_work(9, min_parallel_work), 9);
    }

    #[test]
    fn pool_reuses_threads_across_thousands_of_small_regions() {
        // Thousands of forced-pool regions must not leak threads: the pool
        // spawns at most MAX_THREADS - 1 persistent workers, and the count
        // stabilises after the first regions.
        with_thread_count(4, || {
            pooled(|| {
                let mut v = vec![0u64; 64];
                par_chunks(&mut v, 8, |_, c| {
                    for x in c.iter_mut() {
                        *x += 1;
                    }
                });
                let after_first = pool_thread_count();
                assert!((1..MAX_THREADS).contains(&after_first));
                for _ in 0..2_000 {
                    par_chunks(&mut v, 8, |i, c| {
                        for x in c.iter_mut() {
                            *x = x.wrapping_add(i as u64);
                        }
                    });
                }
                let after_storm = pool_thread_count();
                assert_eq!(
                    after_first, after_storm,
                    "pool must not spawn per region (thread leak)"
                );
                assert!(after_storm < MAX_THREADS);
            });
        });
    }

    #[test]
    fn pool_width_follows_demand_and_is_bounded() {
        // An 8-share region needs at most 7 helpers; the pool never exceeds
        // MAX_THREADS - 1 even when asked for the maximum width repeatedly.
        with_thread_count(MAX_THREADS, || {
            pooled(|| {
                for _ in 0..50 {
                    let out = par_map_collect(MAX_THREADS * 3, |i| i as u64 * 3);
                    assert_eq!(out[MAX_THREADS], MAX_THREADS as u64 * 3);
                }
            });
        });
        assert!(pool_thread_count() < MAX_THREADS);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        // Multiple OS threads submitting regions at once must all complete
        // with correct results (the help-drain path guarantees progress even
        // when every worker is busy with another region's shares).
        let handles: Vec<_> = (0..6)
            .map(|t| {
                std::thread::spawn(move || {
                    with_thread_count(4, || {
                        pooled(|| {
                            for round in 0..200usize {
                                let got = par_map_collect(13, move |i| i * 31 + t + round);
                                for (i, &g) in got.iter().enumerate() {
                                    assert_eq!(g, i * 31 + t + round);
                                }
                            }
                        })
                    })
                })
            })
            .collect();
        for h in handles {
            h.join().expect("submitter thread must not die");
        }
    }
}
