//! The persistent worker pool behind every parallel region.
//!
//! Through PR 2–4 every parallel region spawned its own OS threads via
//! [`std::thread::scope`] and joined them before returning. That kept the
//! lifetimes trivial (borrowed inputs need no `'static` bound) but charged a
//! full thread spawn + join per region — pure overhead at serving rates,
//! where a single frame batch runs a dozen small regions (eventify, readout,
//! token gather, per-head attention). This module replaces the spawns with a
//! lazily-initialised pool of **persistent workers** that park on a condvar
//! between regions; the `pool_overhead` group in `BENCH_kernels.json` tracks
//! the per-region dispatch saving against a spawn-per-region baseline.
//!
//! # Handoff protocol
//!
//! A parallel region is split into `S` **shares** (one contiguous slice of
//! the fixed work partition each — the partition arithmetic lives in the
//! public primitives and is unchanged from the scoped-thread era, so results
//! stay bit-identical). `run_region` then:
//!
//! 1. stamps the region with a fresh **generation** from a global counter
//!    and builds a `RegionHarness` on the submitting thread's stack: the
//!    lifetime-erased closure pointer, a `remaining` latch initialised to
//!    `S - 1`, a completion condvar and a first-panic slot;
//! 2. enqueues one `Task` per share `1..S` — each task is just
//!    `(harness pointer, monomorphised trampoline, share index, generation)`
//!    — and wakes parked workers;
//! 3. runs share `0` itself (under the serial override, like every worker),
//!    then **helps drain** any of its own still-queued shares so a saturated
//!    pool can never stall a region behind unrelated work;
//! 4. blocks on the latch until `remaining == 0`, then re-raises the first
//!    captured panic (its own share's first, then any worker's).
//!
//! # Safety argument
//!
//! This is the one place in the workspace where a borrow crosses into
//! `'static` threads, so the argument is spelled out in full:
//!
//! * **Liveness of the harness.** A `Task` holds a raw pointer to the
//!   submitter's stack-allocated `RegionHarness`. The submitter cannot
//!   return from `run_region` (and therefore cannot free the harness)
//!   until the `remaining` latch reaches zero, and a share decrements the
//!   latch only *after* its closure call has returned (or been caught
//!   panicking). The decrement-and-notify is the trampoline's final access
//!   to the harness; everything the worker does afterwards touches only the
//!   global pool state. Hence no task can observe a dead harness.
//! * **Aliasing.** The closure behind the pointer is `Fn(usize) + Sync`, so
//!   shared calls from many threads are sound by construction. Mutable
//!   slices are handed out by the *primitives* (not this module) as
//!   provably disjoint ranges of one buffer, reconstructed per share from
//!   the fixed partition arithmetic.
//! * **Generation stamp.** Each task carries its region's generation and the
//!   trampoline asserts it against the harness before running. The queue
//!   discipline above already guarantees a task never outlives its region;
//!   the stamp is a cheap tripwire that turns any future bookkeeping bug
//!   (a stale or duplicated task) into a deterministic panic instead of
//!   silent memory unsafety.
//! * **Panics.** Worker threads wrap every share in `catch_unwind`, so a
//!   panicking kernel closure can neither kill a pool thread nor skip the
//!   latch decrement; the first payload is re-raised on the submitting
//!   thread, preserving the scoped-thread era's contract.
//!
//! Workers are never torn down: the pool grows on demand up to
//! [`MAX_THREADS`]` - 1` helpers (the submitter is the remaining "thread")
//! and parks when idle, so thousands of regions reuse the same few OS
//! threads — the lifecycle suite asserts the count stays put.

// The one crate module allowed to write `unsafe`: the lifetime-erased job
// handoff and the take-once share cells below are the entire unsafe surface
// of the workspace, kept here so the safety argument lives next to the code.
#![allow(unsafe_code)]

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

use crate::{worker_guard, MAX_THREADS};

/// Monotonic generation stamp; one per region, never reused.
static REGION_GEN: AtomicU64 = AtomicU64::new(1);

/// One share of a region, lifetime-erased for the queue.
///
/// `run` is the monomorphised trampoline `run_share` for the region's
/// closure type; `harness` points at the submitter's `RegionHarness`.
#[derive(Clone, Copy)]
struct Task {
    harness: *const (),
    run: unsafe fn(*const (), usize, u64),
    index: usize,
    gen: u64,
}

// SAFETY: the harness pointer stays valid until the region's latch releases
// the submitter (see the module-level safety argument), and the closure it
// leads to is `Sync`.
unsafe impl Send for Task {}

struct PoolState {
    queue: VecDeque<Task>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::with_capacity(2 * MAX_THREADS),
            spawned: 0,
        }),
        work: Condvar::new(),
    })
}

/// Locks the pool state, shrugging off poisoning (no code path panics while
/// holding the lock, but a defensive recovery keeps the pool usable even if
/// one ever does).
fn lock(p: &Pool) -> MutexGuard<'_, PoolState> {
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Number of persistent worker threads spawned so far in this process.
///
/// Grows on demand, never shrinks, and is bounded by [`MAX_THREADS`]` - 1`;
/// the pool-lifecycle tests assert it stays stable across thousands of
/// regions (no thread or descriptor leaks).
pub fn pool_thread_count() -> usize {
    lock(pool()).spawned
}

/// Take-once cells carrying each share's work item (typically the share's
/// pre-split `&mut` sub-slices plus its first chunk index) across the pool.
///
/// The primitives partition their buffers with safe `split_at_mut` calls on
/// the submitting thread, park the disjoint pieces here, and each share
/// takes exactly its own index from inside the region closure — so the
/// mutable borrows cross threads without any raw-pointer slicing in the
/// primitives themselves.
pub(crate) struct ShareCells<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

// SAFETY: a `ShareCells` is only shared between the threads of one region,
// and `run_region` invokes every share index exactly once, so no two threads
// ever touch the same cell (the `Option` turns any future double-take bug
// into a panic, not a race on the payload — though the cell access itself
// relies on the exactly-once discipline).
unsafe impl<T: Send> Sync for ShareCells<T> {}

impl<T> ShareCells<T> {
    /// Parks one work item per share, in share order.
    pub(crate) fn new(items: Vec<T>) -> Self {
        ShareCells {
            cells: items
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
        }
    }

    /// Number of parked shares.
    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    /// Takes share `w`'s item. Must be called at most once per index, from
    /// the share that owns it (`run_region`'s exactly-once dispatch is the
    /// guarantee).
    ///
    /// # Panics
    ///
    /// Panics if the item was already taken (a pool bookkeeping bug).
    pub(crate) fn take(&self, w: usize) -> T {
        // SAFETY: share `w` is executed exactly once per region, and only
        // that share calls `take(w)`, so this mutable access is unique.
        let slot = unsafe { &mut *self.cells[w].get() };
        slot.take().expect("share item taken exactly once")
    }
}

/// The per-region stack frame shared with the workers.
struct RegionHarness<F> {
    /// Lifetime-erased pointer to the region closure on the submitter side.
    f: *const F,
    /// Generation stamp; must match every task of this region.
    gen: u64,
    /// Shares still running on pool workers (share 0 is not counted — the
    /// submitter runs it inline).
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic captured from any share.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Trampoline: downcasts the harness, runs one share under the serial
/// override, records panics, and releases the latch.
unsafe fn run_share<F: Fn(usize) + Sync>(harness: *const (), index: usize, gen: u64) {
    // SAFETY: the harness outlives every task of its generation (module-level
    // argument); `F` is the type `run_region` monomorphised this fn for.
    let h = unsafe { &*(harness as *const RegionHarness<F>) };
    assert_eq!(
        h.gen, gen,
        "bliss_parallel: stale task generation (pool bug)"
    );
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _serial = worker_guard();
        // SAFETY: `f` points at a closure the submitter keeps alive until the
        // latch below releases it.
        (unsafe { &*h.f })(index);
    }));
    if let Err(payload) = result {
        let mut slot = h.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
    }
    // Final harness access: decrement the latch and wake the submitter. The
    // guard drops immediately after the notify, and the submitter frees the
    // harness only once it has re-acquired this mutex and seen zero.
    let mut rem = h.remaining.lock().unwrap_or_else(|e| e.into_inner());
    *rem -= 1;
    if *rem == 0 {
        h.done.notify_one();
    }
}

fn worker_loop() {
    let p = pool();
    let mut state = lock(p);
    loop {
        match state.queue.pop_front() {
            Some(task) => {
                drop(state);
                // SAFETY: queue discipline — every queued task's region is
                // still latched open.
                unsafe { (task.run)(task.harness, task.index, task.gen) };
                state = lock(p);
            }
            None => {
                state = p.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Runs `f(0), …, f(shares - 1)` across the pool: share 0 on the calling
/// thread, the rest on persistent workers, all under the nested-serial
/// override. Returns when every share has completed; re-raises the first
/// panic. `shares` must not exceed [`MAX_THREADS`].
pub(crate) fn run_region<F: Fn(usize) + Sync>(shares: usize, f: &F) {
    debug_assert!(shares <= MAX_THREADS, "shares exceed MAX_THREADS");
    if shares <= 1 {
        if shares == 1 {
            let _serial = worker_guard();
            f(0);
        }
        return;
    }
    let harness = RegionHarness {
        f: f as *const F,
        gen: REGION_GEN.fetch_add(1, Ordering::Relaxed),
        remaining: Mutex::new(shares - 1),
        done: Condvar::new(),
        panic: Mutex::new(None),
    };
    let p = pool();
    {
        let mut state = lock(p);
        // Grow the pool on demand; workers persist for the process lifetime.
        while state.spawned < (shares - 1).min(MAX_THREADS - 1) {
            let id = state.spawned;
            thread::Builder::new()
                .name(format!("bliss-pool-{id}"))
                .spawn(worker_loop)
                .expect("failed to spawn bliss_parallel pool worker");
            state.spawned += 1;
        }
        for index in 1..shares {
            state.queue.push_back(Task {
                harness: &harness as *const RegionHarness<F> as *const (),
                run: run_share::<F>,
                index,
                gen: harness.gen,
            });
        }
        if shares == 2 {
            p.work.notify_one();
        } else {
            p.work.notify_all();
        }
    }

    // Share 0 runs here; its panic is re-raised only after the latch, so the
    // harness stays alive for the workers either way.
    let own = catch_unwind(AssertUnwindSafe(|| {
        let _serial = worker_guard();
        f(0);
    }));

    // Help-drain: if the workers are saturated by other regions, execute our
    // own still-queued shares inline so no region waits behind unrelated
    // work (and a region can always finish even on a contended pool).
    loop {
        let task = {
            let mut state = lock(p);
            match state.queue.iter().position(|t| t.gen == harness.gen) {
                Some(i) => state.queue.remove(i),
                None => None,
            }
        };
        match task {
            // SAFETY: our own region's task; the harness is this stack frame.
            Some(t) => unsafe { (t.run)(t.harness, t.index, t.gen) },
            None => break,
        }
    }

    {
        let mut rem = harness.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *rem > 0 {
            rem = harness.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    let first = harness
        .panic
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    if let Some(payload) = first {
        resume_unwind(payload);
    }
}
