//! The shared per-frame sensor/feedback front-end of the sparse pipeline.
//!
//! Exactly one implementation of BlissCam's closed loop — noise → exposure →
//! analog eventification → ROI-net input assembly → cold-start full-frame
//! fallback → SRAM-sampled sparse readout → RLE over MIPI → host decode →
//! segmentation feedback → geometric gaze — shared by the lock-step
//! simulator ([`crate::EyeTrackingSystem`]) and the streaming runtime
//! (`bliss_serve`). Before this module existed the stages were duplicated in
//! both crates, and a change to one could silently miss the other; the
//! serve-vs-system equivalence suite now pins the two paths to the same
//! bits.
//!
//! # Contract
//!
//! A [`SparseFrontEnd`] owns every piece of per-stream mutable state (the
//! sensor's analog memory and entropy, the imaging-noise RNG, the fed-back
//! segmentation map, the gaze estimator), so N front ends advance
//! independently — and deterministically — on any thread pool. Per frame,
//! the stages must run in this order:
//!
//! 1. [`SparseFrontEnd::sense_events`] — one imaging-noise draw, exposure,
//!    analog eventification against the held previous frame;
//! 2. [`SparseFrontEnd::roi_input`] — assemble the 2-channel ROI-net input
//!    from the event map and the fed-back segmentation;
//! 3. [`SparseFrontEnd::select_box`] — the predicted box, or the full-frame
//!    cold-start bootstrap before the first segmentation feedback arrives;
//! 4. [`SparseFrontEnd::read_out`] — SRAM-metastability sampling inside the
//!    box, RLE encode, modelled MIPI transfer, host-side decode into the
//!    sparse image + mask;
//! 5. the host ViT (solo `forward` or cross-session `forward_batch` — the
//!    front end does not care which);
//! 6. [`SparseFrontEnd::absorb`] — adopt the segmentation as the next
//!    frame's feedback cue and regress the gaze.
//!
//! [`SparseFrontEnd::run_frame`] is the lock-step composition of those
//! stages for callers that do not interleave other sessions in between.
//!
//! The RNG streams are seeded as `seed ^ 0xD5` (sensor) and `seed ^ 0xE7A1`
//! (imaging noise), and both advance exactly once per
//! [`SparseFrontEnd::begin_stream`]/[`SparseFrontEnd::sense_events`] call —
//! so a stream's outputs depend only on `(seed, frame sequence)`, never on
//! batching or scheduling.

use crate::config::SystemConfig;
use crate::energy_model::FrameCounts;
use bliss_eye::{
    render_sequence_with, EyeModel, EyeSequence, Gaze, ImagingNoise, Scenario, SequenceConfig,
};
use bliss_sensor::{
    rle, DigitalPixelSensor, EventMap, ReadoutResult, RoiBox, SensorConfig, SensorSnapshot,
};
use bliss_tensor::{NdArray, Tensor, TensorError};
use bliss_track::{
    EstimatorSnapshot, GazeEstimator, RoiNetConfig, RoiPredictionNet, SegPrediction, SparseViT,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The sensor-side product of one frame, as handed to the host network:
/// the decoded sparse image plus the occupancy/traffic counters the energy
/// and timing models bill.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SensedFrame {
    /// Sparse reconstruction of the frame (unsampled pixels are zero).
    pub image: Vec<f32>,
    /// Per-pixel occupancy mask (`1.0` where a sample landed).
    pub mask: Vec<f32>,
    /// Pixels transmitted to the host.
    pub sampled: usize,
    /// ADC conversions performed.
    pub conversions: u64,
    /// Bytes on the MIPI link (RLE-compressed).
    pub mipi_bytes: u64,
    /// Area of the ROI box that was read out, in pixels.
    pub roi_pixels: u64,
}

impl SensedFrame {
    /// The energy-model counters for this frame, given the host's occupied
    /// token count.
    pub fn counts(&self, tokens: usize) -> FrameCounts {
        FrameCounts {
            conversions: self.conversions,
            sampled: self.sampled as u64,
            mipi_payload_bytes: self.mipi_bytes,
            tokens,
            roi_pixels: self.roi_pixels,
        }
    }
}

/// One frame's complete front-end outcome under the lock-step composition
/// ([`SparseFrontEnd::run_frame`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServedFrame {
    /// The sensor-side stage outputs.
    pub sensed: SensedFrame,
    /// The regressed gaze.
    pub gaze: Gaze,
    /// Occupied ViT tokens this frame contributed to the host launch.
    pub tokens: usize,
}

/// The dynamic state of a [`SparseFrontEnd`] for durable-serving snapshots.
///
/// Only state that evolves while streaming is captured: the sensor's analog
/// memory and entropy, the imaging-noise RNG position, the gaze estimator's
/// held estimate, and the fed-back segmentation map. Geometry, seeds and the
/// staging buffers are re-derived when the front end is rebuilt (staging
/// buffers hold no information across frames — every user overwrites them
/// in full).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontEndSnapshot {
    /// The sensor's serving-time state (held/current frames, SRAM RNG,
    /// readout counter).
    pub sensor: SensorSnapshot,
    /// The imaging-noise RNG's xoshiro256** word state.
    pub rng: [u64; 4],
    /// The gaze estimator's dynamic state, if a stream has begun.
    pub estimator: Option<EstimatorSnapshot>,
    /// The fed-back segmentation map from the last absorbed prediction.
    pub prev_seg: Vec<u8>,
    /// Whether the feedback map has been adopted yet (cold-start flag).
    pub have_seg: bool,
}

/// Per-stream state of the sparse per-frame pipeline (see the module docs
/// for the stage contract).
#[derive(Debug)]
pub struct SparseFrontEnd {
    width: usize,
    height: usize,
    sensor: DigitalPixelSensor,
    noise: ImagingNoise,
    rng: StdRng,
    estimator: Option<GazeEstimator>,
    prev_seg: Vec<u8>,
    have_seg: bool,
    /// Per-stream staging buffers, reused across frames so the steady-state
    /// front end performs no per-frame allocations for these stages.
    noisy_buf: Vec<f32>,
    events_buf: Vec<f32>,
    seg_buf: Vec<u8>,
    classes_buf: Vec<(usize, u8)>,
    events_map: EventMap,
    readout_buf: ReadoutResult,
    mipi_buf: Vec<u8>,
    decode_buf: Vec<u16>,
}

impl SparseFrontEnd {
    /// Builds the front end's sensor and RNG streams for `seed`.
    ///
    /// The stream is not usable until [`SparseFrontEnd::begin_stream`]
    /// primes the sensor's analog memory with a sequence's frame 0.
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        let mut sensor_cfg = SensorConfig::miniature(width, height);
        sensor_cfg.seed = seed ^ 0xD5;
        SparseFrontEnd {
            width,
            height,
            sensor: DigitalPixelSensor::new(sensor_cfg),
            noise: ImagingNoise::default(),
            rng: StdRng::seed_from_u64(seed ^ 0xE7A1),
            estimator: None,
            prev_seg: vec![0u8; width * height],
            have_seg: false,
            noisy_buf: Vec::new(),
            events_buf: Vec::new(),
            seg_buf: Vec::new(),
            classes_buf: Vec::new(),
            events_map: EventMap::empty(0, 0),
            readout_buf: ReadoutResult::empty(),
            mipi_buf: Vec::new(),
            decode_buf: Vec::new(),
        }
    }

    /// Captures the front end's dynamic state for a durable-serving
    /// snapshot. Staging buffers are deliberately excluded — they carry no
    /// information across frames.
    pub fn snapshot(&self) -> FrontEndSnapshot {
        FrontEndSnapshot {
            sensor: self.sensor.snapshot(),
            rng: self.rng.state(),
            estimator: self.estimator.as_ref().map(|e| e.snapshot()),
            prev_seg: self.prev_seg.clone(),
            have_seg: self.have_seg,
        }
    }

    /// Overwrites the dynamic state from a snapshot taken on a front end
    /// with the same geometry and seed. After [`SparseFrontEnd::begin_stream`]
    /// has primed this front end for the same sequence, the restored stream
    /// continues bit-identically to the uninterrupted one.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's geometry does not match, or if it carries an
    /// estimator state but [`SparseFrontEnd::begin_stream`] has not yet
    /// installed an estimator (the eye model is re-derived from the
    /// sequence, not serialised).
    pub fn restore(&mut self, snapshot: &FrontEndSnapshot) {
        assert_eq!(
            snapshot.prev_seg.len(),
            self.width * self.height,
            "front-end snapshot geometry mismatch"
        );
        self.sensor = DigitalPixelSensor::restore(*self.sensor.config(), &snapshot.sensor);
        self.rng = StdRng::from_state(snapshot.rng);
        match (&mut self.estimator, &snapshot.estimator) {
            (Some(est), Some(snap)) => est.restore(snap),
            (_, None) => self.estimator = None,
            (None, Some(_)) => {
                panic!("begin_stream must run before restoring an estimator snapshot")
            }
        }
        self.prev_seg.clear();
        self.prev_seg.extend_from_slice(&snapshot.prev_seg);
        self.have_seg = snapshot.have_seg;
    }

    /// Whether a segmentation feedback map has been adopted yet. `false`
    /// means the next readout is a **cold-start** full-frame bootstrap read
    /// (the expensive launches the serving scheduler's
    /// `max_cold_per_batch` cap spreads out).
    pub fn has_feedback(&self) -> bool {
        self.have_seg
    }

    /// Starts a stream: resets the feedback state, installs the gaze
    /// estimator for `model`'s geometry and primes the sensor's analog
    /// memory with the sequence's frame 0 (which is sensed but never
    /// served — eventification needs a held previous frame).
    pub fn begin_stream(&mut self, model: EyeModel, first_clean: &[f32]) {
        self.estimator = Some(GazeEstimator::new(model));
        self.prev_seg.fill(0);
        self.have_seg = false;
        self.noise
            .apply_into(first_clean, 1.0, &mut self.rng, &mut self.noisy_buf);
        self.sensor.expose(&self.noisy_buf);
        self.sensor.eventify_into(&mut self.events_map);
    }

    /// Renders a [`Scenario`]-parameterised stream of `frames` servable
    /// frames for `seed` and builds + primes its front end — THE single
    /// recipe behind both execution paths (`bliss_serve` sessions and
    /// [`crate::EyeTrackingSystem::run_scenario_frames`]), so a stream's
    /// identity is `(system geometry, scenario, seed, frames)` everywhere
    /// and the serve-vs-lockstep equivalence holds by construction.
    ///
    /// The sequence gets one extra leading frame: frame 0 primes the
    /// sensor's analog memory and is never served.
    pub fn scenario_stream(
        system: &SystemConfig,
        scenario: Scenario,
        seed: u64,
        frames: usize,
    ) -> (EyeSequence, SparseFrontEnd) {
        let seq_cfg = SequenceConfig {
            width: system.width,
            height: system.height,
            frames: frames + 1,
            fps: system.fps as f32,
            seed,
        };
        let trajectory = scenario.trajectory_config(seq_cfg.fps);
        let seq = render_sequence_with(&seq_cfg, trajectory);
        let mut front = SparseFrontEnd::new(system.width, system.height, seed);
        front.begin_stream(seq.model.clone(), &seq.frames[0].clean);
        (seq, front)
    }

    /// Stage 1: exposes `clean` through the imaging-noise model and
    /// eventifies it against the held previous frame, returning the
    /// full-resolution event map.
    pub fn sense_events(&mut self, clean: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.sense_events_into(clean, &mut out);
        out
    }

    /// [`SparseFrontEnd::sense_events`] into a caller-owned buffer (cleared
    /// first). Bit-identical to the allocating form; streaming sessions keep
    /// one event buffer per stream and reuse it every frame.
    pub fn sense_events_into(&mut self, clean: &[f32], out: &mut Vec<f32>) {
        bliss_telemetry::metrics::SENSOR_FRAMES.add(1);
        self.noise
            .apply_into(clean, 1.0, &mut self.rng, &mut self.noisy_buf);
        self.sensor.expose(&self.noisy_buf);
        self.sensor.eventify_into(&mut self.events_map);
        self.events_map.to_f32_into(out);
    }

    /// Stage 2: assembles the 2-channel in-sensor ROI-net input from the
    /// event map and the fed-back segmentation map (pure buffer math, safe
    /// to fan out across sessions).
    pub fn roi_input(&self, cfg: &RoiNetConfig, events: &[f32]) -> NdArray {
        cfg.make_input(events, &self.prev_seg)
    }

    /// Stage 3: the readout box for this frame — the ROI net's prediction
    /// once segmentation feedback exists, otherwise the hardware's
    /// cold-start full-frame bootstrap read.
    pub fn select_box(&self, roi_net: &RoiPredictionNet, roi_out: &Tensor) -> RoiBox {
        if self.have_seg {
            roi_net.predict_box(roi_out)
        } else {
            bliss_telemetry::metrics::COLD_START_FRAMES.add(1);
            RoiBox::full(self.width, self.height)
        }
    }

    /// Stage 4: sparse readout through the SRAM-metastability sampler
    /// inside `roi`, RLE encode over the modelled MIPI link, and host-side
    /// decode into the sparse image + mask the segmenter consumes.
    ///
    /// # Errors
    ///
    /// Returns an error if the RLE stream fails to round-trip (a modelling
    /// bug, not an input condition).
    pub fn read_out(&mut self, roi: RoiBox, sample_rate: f32) -> Result<SensedFrame, TensorError> {
        let mut out = SensedFrame::default();
        self.read_out_into(roi, sample_rate, &mut out)?;
        Ok(out)
    }

    /// [`SparseFrontEnd::read_out`] into a caller-owned frame: the sparse
    /// image and mask buffers are resized and fully overwritten, so a
    /// streaming session reuses one [`SensedFrame`] per stream instead of
    /// rebuilding both full-frame buffers every frame. Bit-identical to the
    /// allocating form.
    ///
    /// # Errors
    ///
    /// Returns an error if the RLE stream fails to round-trip (a modelling
    /// bug, not an input condition).
    pub fn read_out_into(
        &mut self,
        roi: RoiBox,
        sample_rate: f32,
        out: &mut SensedFrame,
    ) -> Result<(), TensorError> {
        self.sensor
            .sparse_readout_into(roi, sample_rate, &mut self.readout_buf);
        let readout = &self.readout_buf;
        rle::encode_into(&readout.stream, &mut self.mipi_buf);
        rle::decode_into(&self.mipi_buf, readout.stream.len(), &mut self.decode_buf).map_err(
            |e| TensorError::InvalidArgument {
                op: "rle_decode",
                message: e.to_string(),
            },
        )?;
        debug_assert_eq!(self.decode_buf, readout.stream);
        readout.sparse_image_f32_into(
            self.width,
            self.height,
            self.sensor.config().adc_bits,
            &mut out.image,
            &mut out.mask,
        );
        out.sampled = readout.sampled;
        out.conversions = readout.conversions;
        out.mipi_bytes = self.mipi_buf.len() as u64;
        out.roi_pixels = readout.roi.area() as u64;
        Ok(())
    }

    /// Stage 6: closes the loop on a host prediction — adopts the
    /// segmentation as the next frame's feedback cue if it actually found
    /// the eye, and regresses the gaze (holding the last estimate when the
    /// launch produced nothing).
    ///
    /// # Panics
    ///
    /// Panics if called before [`SparseFrontEnd::begin_stream`].
    pub fn absorb(&mut self, prediction: Option<SegPrediction>) -> (Gaze, usize) {
        assert!(
            self.estimator.is_some(),
            "begin_stream must run before absorb"
        );
        match prediction {
            Some(pred) => {
                // Decode once into the per-stream scratch buffers (the seg
                // map is scattered from the already-computed class pairs, as
                // `SegPrediction::seg_map` historically did), then swap the
                // segmentation in — same bits as rebuilding both per frame,
                // with zero steady-state allocations and one argmax pass.
                pred.classes_into(&mut self.classes_buf);
                self.seg_buf.clear();
                self.seg_buf.resize(self.width * self.height, 0u8);
                for &(i, c) in &self.classes_buf {
                    if i < self.seg_buf.len() {
                        self.seg_buf[i] = c;
                    }
                }
                if self.seg_buf.iter().any(|&c| c != 0) {
                    std::mem::swap(&mut self.prev_seg, &mut self.seg_buf);
                    self.have_seg = true;
                }
                let width = self.width;
                let estimator = self.estimator.as_mut().expect("checked above");
                (
                    estimator.estimate_from_pairs(&self.classes_buf, width),
                    pred.tokens,
                )
            }
            None => (self.estimator.as_mut().expect("checked above").last(), 0),
        }
    }

    /// The lock-step composition of stages 1–6 with a solo host launch in
    /// the middle — one frame end-to-end. The streaming runtime runs the
    /// same stages individually so that stage 5 can batch across sessions;
    /// the equivalence suite pins both compositions to identical bits.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the networks.
    pub fn run_frame(
        &mut self,
        clean: &[f32],
        roi_net: &RoiPredictionNet,
        vit: &SparseViT,
        sample_rate: f32,
    ) -> Result<ServedFrame, TensorError> {
        let mut events = std::mem::take(&mut self.events_buf);
        self.sense_events_into(clean, &mut events);
        let input = self.roi_input(roi_net.config(), &events);
        self.events_buf = events;
        let roi_out = roi_net.forward(&input)?;
        let roi = self.select_box(roi_net, &roi_out);
        let sensed = self.read_out(roi, sample_rate)?;
        let prediction = vit.forward(&sensed.image, &sensed.mask)?;
        let (gaze, tokens) = self.absorb(prediction);
        Ok(ServedFrame {
            sensed,
            gaze,
            tokens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bliss_eye::{render_sequence, SequenceConfig};

    #[test]
    fn cold_start_reads_the_full_frame_then_shrinks() {
        // Structural check without trained networks: before any feedback the
        // selected box must be the full frame, independent of the ROI
        // prediction.
        let seq = render_sequence(&SequenceConfig {
            width: 80,
            height: 50,
            frames: 3,
            fps: 120.0,
            seed: 9,
        });
        let mut fe = SparseFrontEnd::new(80, 50, 9);
        fe.begin_stream(seq.model.clone(), &seq.frames[0].clean);
        assert!(!fe.have_seg);
        let events = fe.sense_events(&seq.frames[1].clean);
        assert_eq!(events.len(), 80 * 50);
        let sensed = fe.read_out(RoiBox::full(80, 50), 0.2).unwrap();
        assert_eq!(sensed.image.len(), 80 * 50);
        assert_eq!(sensed.roi_pixels, 80 * 50);
        assert!(sensed.sampled > 0 && sensed.sampled <= 80 * 50);
        assert_eq!(sensed.counts(7).tokens, 7);
        assert_eq!(sensed.counts(7).sampled, sensed.sampled as u64);
    }

    #[test]
    fn snapshot_restores_stream_bit_identically_through_json() {
        use serde::{Deserialize, Serialize};
        let seq = render_sequence(&SequenceConfig {
            width: 80,
            height: 50,
            frames: 6,
            fps: 120.0,
            seed: 31,
        });
        // Uninterrupted reference: sense + read every servable frame.
        let mut reference = SparseFrontEnd::new(80, 50, 31);
        reference.begin_stream(seq.model.clone(), &seq.frames[0].clean);
        let mut ref_out = Vec::new();
        for f in &seq.frames[1..] {
            let e = reference.sense_events(&f.clean);
            let s = reference.read_out(RoiBox::full(80, 50), 0.2).unwrap();
            ref_out.push((e, s));
        }
        // Interrupted run: snapshot after 2 frames, restore into a freshly
        // primed front end, continue.
        let mut first = SparseFrontEnd::new(80, 50, 31);
        first.begin_stream(seq.model.clone(), &seq.frames[0].clean);
        let mut out = Vec::new();
        for f in &seq.frames[1..3] {
            let e = first.sense_events(&f.clean);
            let s = first.read_out(RoiBox::full(80, 50), 0.2).unwrap();
            out.push((e, s));
        }
        let json = first.snapshot().to_json();
        let snap = FrontEndSnapshot::from_json(&json).unwrap();
        let mut second = SparseFrontEnd::new(80, 50, 31);
        second.begin_stream(seq.model.clone(), &seq.frames[0].clean);
        second.restore(&snap);
        for f in &seq.frames[3..] {
            let e = second.sense_events(&f.clean);
            let s = second.read_out(RoiBox::full(80, 50), 0.2).unwrap();
            out.push((e, s));
        }
        assert_eq!(out, ref_out);
    }

    #[test]
    fn streams_with_the_same_seed_sense_identically() {
        let seq = render_sequence(&SequenceConfig {
            width: 80,
            height: 50,
            frames: 4,
            fps: 120.0,
            seed: 5,
        });
        let run = || {
            let mut fe = SparseFrontEnd::new(80, 50, 123);
            fe.begin_stream(seq.model.clone(), &seq.frames[0].clean);
            let e1 = fe.sense_events(&seq.frames[1].clean);
            let s1 = fe.read_out(RoiBox::full(80, 50), 0.2).unwrap();
            (e1, s1)
        };
        let (ea, sa) = run();
        let (eb, sb) = run();
        assert_eq!(ea, eb);
        assert_eq!(sa, sb);
    }
}
