use crate::config::{SystemConfig, SystemVariant};
use crate::energy_model::RLE_BYTES_PER_SAMPLE;
use bliss_npu::{Precision, SystolicArray};
use bliss_timing::{PipelineConfig, PipelineReport, StageDurations};

/// Per-pixel single-slope ramp time: a 10-bit conversion shared by all
/// pixels in parallel (per-pixel ADC, global shutter).
const ADC_RAMP_S: f64 = 10e-6;
/// Column-scan time per active column when draining the ROI to the output
/// buffer.
const COLUMN_SCAN_S: f64 = 50e-9;
/// Analog eventification time (two comparator decisions, paper: ~5 us).
const EVENTIFY_ANALOG_S: f64 = 5e-6;
/// Digital eventification time (S+NPU reads/writes the frame buffer).
const EVENTIFY_DIGITAL_S: f64 = 20e-6;
/// SRAM power-up/sampling-decision time.
const SAMPLING_S: f64 = 2e-6;
/// Geometric gaze regression on the host.
const GAZE_S: f64 = 100e-6;

/// Derives each pipeline stage's duration for `variant` under `cfg`,
/// feeding the Fig. 8 scheduler. The exposure absorbs whatever part of the
/// frame period the sensor-side stages do not use.
pub fn stage_durations(cfg: &SystemConfig, variant: SystemVariant) -> StageDurations {
    let period = cfg.frame_period_s();
    let host = SystolicArray::host().at_node(cfg.host_node);
    let in_sensor = SystolicArray::in_sensor().at_node(cfg.sensor_logic_node);
    let sampled = cfg.expected_sampled_pixels();
    let roi_cols = (cfg.width as f64 * cfg.roi_fraction.sqrt()).ceil();
    let full_frame_bytes = cfg.energy.mipi.frame_bytes(cfg.pixels());
    let sparse_bytes = (sampled as f64 * RLE_BYTES_PER_SAMPLE) as u64 + 8;
    let feedback_bytes = cfg.expected_roi_pixels().div_ceil(4);

    let (eventify_s, roi_pred_s, sampling_s, readout_s, mipi_s, segmentation_s, feedback_s) =
        match variant {
            SystemVariant::NpuFull => {
                let seg = host.run(&cfg.cnn.workload(false), &cfg.energy, true);
                (
                    0.0,
                    0.0,
                    0.0,
                    ADC_RAMP_S + cfg.width as f64 * COLUMN_SCAN_S,
                    cfg.energy.mipi.transfer_time_s(full_frame_bytes),
                    seg.time_s,
                    0.0,
                )
            }
            SystemVariant::NpuRoi => {
                let roi_pred = host.run(&cfg.roi_net.workload(), &cfg.energy, true);
                let roi_cnn = crate::energy_model::cnn_on_roi(&cfg.cnn, cfg.roi_fraction);
                let seg = host.run(&roi_cnn.workload(false), &cfg.energy, true);
                (
                    0.0,
                    roi_pred.time_s,
                    0.0,
                    ADC_RAMP_S + cfg.width as f64 * COLUMN_SCAN_S,
                    cfg.energy.mipi.transfer_time_s(full_frame_bytes),
                    seg.time_s,
                    0.0,
                )
            }
            SystemVariant::SNpu | SystemVariant::BlissCam => {
                let roi_pred = in_sensor.run(&cfg.roi_net.workload(), &cfg.energy, true);
                let tokens = crate::energy_model::sparse_tokens(cfg);
                let seg = host.run(
                    &cfg.vit.workload(tokens, sampled as usize),
                    &cfg.energy,
                    true,
                );
                let eventify = if variant == SystemVariant::SNpu {
                    EVENTIFY_DIGITAL_S
                } else {
                    EVENTIFY_ANALOG_S
                };
                (
                    eventify,
                    roi_pred.time_s,
                    SAMPLING_S,
                    ADC_RAMP_S + roi_cols * COLUMN_SCAN_S,
                    cfg.energy.mipi.transfer_time_s(sparse_bytes),
                    seg.time_s,
                    cfg.energy.mipi.transfer_time_s(feedback_bytes),
                )
            }
        };

    // The exposure fills the remainder of the frame period after the other
    // sensor-serialised stages (the paper reports BlissCam trims exposure by
    // only ~2 %).
    let sensor_overhead =
        eventify_s + if variant.host_roi() { 0.0 } else { roi_pred_s } + sampling_s + readout_s;
    let exposure_s = (period - sensor_overhead).max(period * 0.5);

    StageDurations {
        exposure_s,
        eventify_s,
        roi_pred_s,
        sampling_s,
        readout_s,
        mipi_s,
        segmentation_s,
        gaze_s: GAZE_S,
        feedback_s,
    }
}

/// Host-NPU time for one sparse-segmentation launch of `tokens` occupied
/// patches and `pixels` classification queries under `cfg`'s host model.
///
/// The serving runtime uses this for *cross-session batched* launches: the
/// batch's summed token count fills the systolic array's row tiles, so one
/// launch over `sum(tokens)` costs less than the sum of per-session
/// launches (fewer partial tiles and fill/drain bubbles).
pub fn host_segmentation_time_s(cfg: &SystemConfig, tokens: usize, pixels: usize) -> f64 {
    let host = SystolicArray::host().at_node(cfg.host_node);
    host.run(&cfg.vit.workload(tokens, pixels), &cfg.energy, true)
        .time_s
}

/// Host-NPU time for one **cross-session batched** segmentation launch over
/// `frames` of `(tokens, pixels)` each.
///
/// Models the block-diagonal batched forward
/// ([`bliss_track::ViTConfig::batched_workload`]): weight GEMMs fuse across
/// the batch and amortise fill/drain bubbles and partial row tiles, while
/// the quadratic attention products stay per-frame — so one launch over K
/// frames costs less than K solo launches but never pays a `(K*t)^2`
/// attention.
pub fn host_batched_segmentation_time_s(cfg: &SystemConfig, frames: &[(usize, usize)]) -> f64 {
    host_batched_segmentation_time_s_at(cfg, frames, Precision::F32)
}

/// [`host_batched_segmentation_time_s`] with the launch executed at an
/// explicit precision: int8 streams the reduction dimension in half the
/// cycles (`Precision::F32` reproduces the f32 time bit-exactly).
pub fn host_batched_segmentation_time_s_at(
    cfg: &SystemConfig,
    frames: &[(usize, usize)],
    precision: Precision,
) -> f64 {
    let host = SystolicArray::host().at_node(cfg.host_node);
    host.run_at(
        &cfg.vit.batched_workload(frames),
        &cfg.energy,
        true,
        precision,
    )
    .time_s
}

/// Runs the Fig. 8 pipeline scheduler for `variant` over `frames` frames.
pub fn simulate_pipeline(
    cfg: &SystemConfig,
    variant: SystemVariant,
    frames: usize,
) -> PipelineReport {
    let stages = stage_durations(cfg, variant);
    let pipeline = if variant.in_sensor_sampling() {
        PipelineConfig::in_sensor(cfg.fps, stages)
    } else if variant.host_roi() {
        PipelineConfig::host_roi(cfg.fps, stages)
    } else {
        PipelineConfig::conventional(cfg.fps, stages)
    };
    bliss_timing::simulate(&pipeline, frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blisscam_latency_reduction_matches_fig14() {
        let cfg = SystemConfig::paper();
        let full = simulate_pipeline(&cfg, SystemVariant::NpuFull, 24);
        let bliss = simulate_pipeline(&cfg, SystemVariant::BlissCam, 24);
        let ratio = full.mean_latency_s / bliss.mean_latency_s;
        // Paper: 1.4x latency reduction; our dense baseline's lower NPU
        // utilisation stretches the dense segmentation somewhat further.
        assert!((1.2..1.95).contains(&ratio), "latency ratio {ratio:.2}");
        assert!(bliss.mean_latency_s < 15e-3, "budget exceeded");
    }

    #[test]
    fn all_variants_hold_120fps() {
        let cfg = SystemConfig::paper();
        for v in SystemVariant::ALL {
            let report = simulate_pipeline(&cfg, v, 48);
            assert!(
                (report.achieved_fps - 120.0).abs() < 3.0,
                "{} achieved {:.1} fps",
                v.label(),
                report.achieved_fps
            );
        }
    }

    #[test]
    fn exposure_reduction_is_modest() {
        // Paper: in-sensor ops reduce exposure by only 1.8 %; our in-sensor
        // ROI network is slower on the 8x8 NPU, but the reduction must stay
        // below ~15 % of the period.
        let cfg = SystemConfig::paper();
        let full = stage_durations(&cfg, SystemVariant::NpuFull);
        let bliss = stage_durations(&cfg, SystemVariant::BlissCam);
        let reduction = (full.exposure_s - bliss.exposure_s) / full.exposure_s;
        assert!(
            (0.0..0.15).contains(&reduction),
            "exposure reduction {reduction:.3}"
        );
    }

    #[test]
    fn segmentation_speedup_from_sparsity() {
        // Paper: segmentation accelerates 7.7x operating on 10.8 % of the
        // pixels; our model lands in the same regime.
        let cfg = SystemConfig::paper();
        let full = stage_durations(&cfg, SystemVariant::NpuFull);
        let bliss = stage_durations(&cfg, SystemVariant::BlissCam);
        let speedup = full.segmentation_s / bliss.segmentation_s;
        assert!((2.0..12.0).contains(&speedup), "seg speedup {speedup:.1}");
        // Sparse segmentation should be ~1 ms (paper: 0.87 ms ± 0.48).
        assert!(
            (0.2e-3..3.0e-3).contains(&bliss.segmentation_s),
            "sparse seg {:.3} ms",
            bliss.segmentation_s * 1e3
        );
    }

    #[test]
    fn in_sensor_ops_are_orders_below_exposure() {
        let cfg = SystemConfig::paper();
        let bliss = stage_durations(&cfg, SystemVariant::BlissCam);
        assert!(bliss.eventify_s < bliss.exposure_s / 100.0);
        assert!(bliss.sampling_s < bliss.exposure_s / 100.0);
    }

    #[test]
    fn batched_segmentation_amortises_launch_overheads() {
        // One block-diagonal launch over 8 sessions' frames must cost less
        // than eight solo launches (fused weight GEMMs, fewer partial row
        // tiles and fill/drain bubbles), but at least as much as one.
        let cfg = SystemConfig::paper();
        let (tokens, pixels) = (108, 6851);
        let solo = host_segmentation_time_s(&cfg, tokens, pixels);
        let frames: Vec<(usize, usize)> = (0..8).map(|_| (tokens, pixels)).collect();
        let batched = host_batched_segmentation_time_s(&cfg, &frames);
        assert!(solo > 0.0);
        assert!(batched > solo);
        assert!(
            batched < 8.0 * solo,
            "batched {batched:.6} vs 8x solo {:.6}",
            8.0 * solo
        );
    }

    #[test]
    fn per_frame_batched_cost_falls_with_batch_size() {
        // The launch-overhead model credits cross-session batching: a
        // batched launch fuses its weight GEMMs across frames, so the
        // per-frame dispatch bill shrinks as the batch grows. Pin the
        // amortisation trend at steady-state occupancy.
        let cfg = SystemConfig::paper();
        let frame = (108usize, 6851usize);
        let per_frame = |k: usize| {
            let frames = vec![frame; k];
            host_batched_segmentation_time_s(&cfg, &frames) / k as f64
        };
        let (c1, c4, c16) = (per_frame(1), per_frame(4), per_frame(16));
        assert!(c4 < c1, "batch 4 per-frame {c4} vs solo {c1}");
        assert!(c16 < c4, "batch 16 per-frame {c16} vs batch 4 {c4}");
        // The fused weight launches save a meaningful share, not noise.
        assert!(
            c16 < 0.97 * c1,
            "per-frame cost only fell {c1:.6} -> {c16:.6}"
        );
    }

    #[test]
    fn int8_batched_segmentation_is_faster_and_f32_is_exact() {
        let cfg = SystemConfig::paper();
        let frames: Vec<(usize, usize)> = (0..4).map(|_| (108usize, 6851usize)).collect();
        let default = host_batched_segmentation_time_s(&cfg, &frames);
        let f32 = host_batched_segmentation_time_s_at(&cfg, &frames, Precision::F32);
        let i8 = host_batched_segmentation_time_s_at(&cfg, &frames, Precision::Int8);
        assert_eq!(default.to_bits(), f32.to_bits());
        assert!(i8 < f32, "int8 {i8} must beat f32 {f32}");
    }

    #[test]
    fn sparse_mipi_is_much_faster() {
        let cfg = SystemConfig::paper();
        let full = stage_durations(&cfg, SystemVariant::NpuFull);
        let bliss = stage_durations(&cfg, SystemVariant::BlissCam);
        assert!(full.mipi_s / bliss.mipi_s > 8.0);
    }
}
