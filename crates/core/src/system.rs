use crate::config::{SystemConfig, SystemVariant};
use crate::energy_model::{energy_breakdown_with_counts, EnergyBreakdown, FrameCounts};
use crate::frontend::SparseFrontEnd;
use crate::latency_model::simulate_pipeline;
use bliss_eye::{render_sequence, EyeSequence, Gaze, ImagingNoise, Scenario, SequenceConfig};
use bliss_sensor::{DigitalPixelSensor, RoiBox, SensorConfig};
use bliss_tensor::TensorError;
use bliss_timing::PipelineReport;
use bliss_track::{
    util::frame_difference_events, DenseTrainer, GazeEstimator, JointTrainer, RoiPredictionNet,
    SparseViT,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-frame outcome of the executable simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameResult {
    /// Frame index within the run.
    pub index: usize,
    /// Predicted gaze.
    pub gaze_prediction: Gaze,
    /// Ground-truth gaze.
    pub gaze_truth: Gaze,
    /// Absolute horizontal error in degrees.
    pub horizontal_error_deg: f32,
    /// Absolute vertical error in degrees.
    pub vertical_error_deg: f32,
    /// Pixels transmitted to the host.
    pub sampled_pixels: usize,
    /// ADC conversions performed.
    pub conversions: u64,
    /// Bytes on the MIPI link (RLE output for sparse variants).
    pub mipi_bytes: u64,
    /// Occupied ViT tokens (0 for CNN variants).
    pub tokens: usize,
    /// Per-frame energy under this variant's hardware model.
    pub energy: EnergyBreakdown,
}

/// Summary of an executable run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Which variant ran.
    pub variant: SystemVariant,
    /// Per-frame results.
    pub frames: Vec<FrameResult>,
    /// The Fig. 8 pipeline schedule for this variant.
    pub latency: PipelineReport,
    /// Sensor pixels per frame (for compression accounting).
    pub pixels: usize,
}

/// Mean per-axis angular error of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanAngularError {
    /// Mean absolute horizontal error in degrees.
    pub horizontal: f32,
    /// Mean absolute vertical error in degrees.
    pub vertical: f32,
}

impl SystemReport {
    /// Mean per-axis angular error across frames.
    pub fn mean_angular_error(&self) -> MeanAngularError {
        let n = self.frames.len().max(1) as f32;
        MeanAngularError {
            horizontal: self
                .frames
                .iter()
                .map(|f| f.horizontal_error_deg)
                .sum::<f32>()
                / n,
            vertical: self
                .frames
                .iter()
                .map(|f| f.vertical_error_deg)
                .sum::<f32>()
                / n,
        }
    }

    /// Mean per-frame energy in microjoules.
    pub fn mean_energy_uj(&self) -> f64 {
        let n = self.frames.len().max(1) as f64;
        self.frames.iter().map(|f| f.energy.total_j()).sum::<f64>() / n * 1e6
    }

    /// Mean pixel-volume compression rate versus the full frame.
    pub fn mean_compression(&self) -> f32 {
        let total: usize = self.frames.iter().map(|f| f.sampled_pixels).sum();
        let full = self.frames.len().max(1) * self.pixels;
        full as f32 / total.max(1) as f32
    }

    fn new(variant: SystemVariant, latency: PipelineReport, pixels: usize) -> Self {
        SystemReport {
            variant,
            frames: Vec::new(),
            latency,
            pixels,
        }
    }
}

/// The assembled, executable BlissCam system at miniature scale.
///
/// `EyeTrackingSystem` wires the full hardware path: rendered frames pass
/// through the imaging-noise model into the [`DigitalPixelSensor`]
/// (exposure → eventification → ROI → SRAM-metastability sampling → sparse
/// readout → RLE), across the modelled MIPI link, and into the trained
/// networks on the host (run-length decode → sparse ViT → geometric gaze).
/// Dense variants (`NpuFull`, `NpuRoi`) run the dense readout path with a
/// trained CNN baseline instead.
///
/// Construction renders a training sequence and trains the variant's
/// networks (seconds at miniature scale).
#[derive(Debug)]
pub struct EyeTrackingSystem {
    variant: SystemVariant,
    config: SystemConfig,
    pipeline: HostPipeline,
}

/// The trained host networks plus the per-stream sensor-side state each
/// pipeline flavour owns. The sparse arm's sensor/noise/RNG state lives
/// inside the shared [`SparseFrontEnd`] — the same component `bliss_serve`
/// drives — so the two execution paths cannot drift apart.
#[derive(Debug)]
enum HostPipeline {
    Sparse {
        trainer: Box<JointTrainer>,
        front: Box<SparseFrontEnd>,
    },
    Dense {
        trainer: Box<DenseTrainer>,
        sensor: Box<DigitalPixelSensor>,
        noise: ImagingNoise,
        rng: StdRng,
    },
}

impl EyeTrackingSystem {
    /// Builds and trains the system for `variant`.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from training.
    pub fn new(variant: SystemVariant, config: SystemConfig) -> Result<Self, TensorError> {
        let train_seq = render_sequence(&SequenceConfig {
            width: config.width,
            height: config.height,
            frames: config.train_frames.max(8),
            fps: config.fps as f32,
            seed: config.seed,
        });
        let pipeline = if variant.in_sensor_sampling() {
            let mut trainer = JointTrainer::new(config.train_config())?;
            trainer.train_on(&train_seq)?;
            HostPipeline::Sparse {
                trainer: Box::new(trainer),
                front: Box::new(SparseFrontEnd::new(
                    config.width,
                    config.height,
                    config.seed,
                )),
            }
        } else {
            let mut trainer = DenseTrainer::new(
                "ritnet",
                config.width,
                config.height,
                1,
                variant.host_roi(),
                config.seed,
            );
            trainer.set_epochs(config.train_epochs.max(1));
            trainer.train_on(&train_seq)?;
            let mut sensor_cfg = SensorConfig::miniature(config.width, config.height);
            sensor_cfg.seed = config.seed ^ 0xD5;
            HostPipeline::Dense {
                trainer: Box::new(trainer),
                sensor: Box::new(DigitalPixelSensor::new(sensor_cfg)),
                noise: ImagingNoise::default(),
                rng: StdRng::seed_from_u64(config.seed ^ 0xE7A1),
            }
        };
        Ok(EyeTrackingSystem {
            variant,
            config,
            pipeline,
        })
    }

    /// The variant being simulated.
    pub fn variant(&self) -> SystemVariant {
        self.variant
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The trained sparse ViT segmenter (`None` for dense variants). The
    /// serving layers wrap these shared networks via
    /// `ServeRuntime::with_networks`-style constructors.
    pub fn vit(&self) -> Option<&SparseViT> {
        match &self.pipeline {
            HostPipeline::Sparse { trainer, .. } => Some(trainer.vit()),
            HostPipeline::Dense { .. } => None,
        }
    }

    /// The trained in-sensor ROI-prediction network (`None` for dense
    /// variants).
    pub fn roi_net(&self) -> Option<&RoiPredictionNet> {
        match &self.pipeline {
            HostPipeline::Sparse { trainer, .. } => Some(trainer.roi_net()),
            HostPipeline::Dense { .. } => None,
        }
    }

    /// Runs `n` frames of a fresh evaluation sequence end-to-end.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors from the networks.
    pub fn run_frames(&mut self, n: usize) -> Result<SystemReport, TensorError> {
        let seq = render_sequence(&SequenceConfig {
            width: self.config.width,
            height: self.config.height,
            frames: n + 1,
            fps: self.config.fps as f32,
            seed: self.config.seed + 1,
        });
        let latency = simulate_pipeline(&self.config, self.variant, n.max(4));
        let mut report = SystemReport::new(self.variant, latency, self.config.pixels());
        match &mut self.pipeline {
            HostPipeline::Sparse { trainer, front } => {
                front.begin_stream(seq.model.clone(), &seq.frames[0].clean);
                run_sparse(
                    &mut report,
                    &self.config,
                    self.variant,
                    front,
                    trainer,
                    &seq,
                )?;
            }
            HostPipeline::Dense {
                trainer,
                sensor,
                noise,
                rng,
            } => {
                run_dense(
                    &mut report,
                    &self.config,
                    self.variant,
                    sensor,
                    trainer,
                    &seq,
                    noise,
                    rng,
                )?;
            }
        }
        Ok(report)
    }

    /// Runs `n` frames of a [`Scenario`]-parameterised sequence identified
    /// by `seed`, through a **fresh** front-end stream seeded exactly like a
    /// `bliss_serve` session with the same `(scenario, seed)` — which is what
    /// makes the lock-step and streaming paths comparable bit-for-bit (the
    /// serve equivalence suite pins this).
    ///
    /// # Errors
    ///
    /// Returns an error for dense variants (the streaming runtime serves the
    /// sparse pipeline only) and propagates tensor errors from the networks.
    pub fn run_scenario_frames(
        &mut self,
        scenario: Scenario,
        seed: u64,
        n: usize,
    ) -> Result<SystemReport, TensorError> {
        let latency = simulate_pipeline(&self.config, self.variant, n.max(4));
        let mut report = SystemReport::new(self.variant, latency, self.config.pixels());
        match &mut self.pipeline {
            HostPipeline::Sparse { trainer, .. } => {
                // The one shared stream recipe — identical to a serve
                // session's — already primed with frame 0.
                let (seq, mut front) =
                    SparseFrontEnd::scenario_stream(&self.config, scenario, seed, n);
                run_sparse(
                    &mut report,
                    &self.config,
                    self.variant,
                    &mut front,
                    trainer,
                    &seq,
                )?;
            }
            HostPipeline::Dense { .. } => {
                return Err(TensorError::InvalidArgument {
                    op: "run_scenario_frames",
                    message: format!(
                        "scenario replay drives the sparse front-end; {} is a dense variant",
                        self.variant.label()
                    ),
                });
            }
        }
        Ok(report)
    }
}

/// Drives the shared [`SparseFrontEnd`] lock-step over a rendered sequence —
/// the same stages `bliss_serve` schedules asynchronously, composed by
/// [`SparseFrontEnd::run_frame`]. The caller has already begun the stream
/// (frame 0 primed) so that priming happens exactly once per stream on
/// every path.
fn run_sparse(
    report: &mut SystemReport,
    cfg: &SystemConfig,
    variant: SystemVariant,
    front: &mut SparseFrontEnd,
    trainer: &JointTrainer,
    seq: &EyeSequence,
) -> Result<(), TensorError> {
    for (t, frame) in seq.frames.iter().enumerate().skip(1) {
        let served = front.run_frame(
            &frame.clean,
            trainer.roi_net(),
            trainer.vit(),
            cfg.sample_rate,
        )?;
        let counts = served.sensed.counts(served.tokens);
        let gaze = served.gaze;
        report.frames.push(FrameResult {
            index: t - 1,
            gaze_prediction: gaze,
            gaze_truth: frame.gaze,
            horizontal_error_deg: (gaze.horizontal_deg - frame.gaze.horizontal_deg).abs(),
            vertical_error_deg: (gaze.vertical_deg - frame.gaze.vertical_deg).abs(),
            sampled_pixels: served.sensed.sampled,
            conversions: served.sensed.conversions,
            mipi_bytes: served.sensed.mipi_bytes,
            tokens: served.tokens,
            energy: energy_breakdown_with_counts(cfg, variant, &counts),
        });
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_dense(
    report: &mut SystemReport,
    cfg: &SystemConfig,
    variant: SystemVariant,
    sensor: &mut DigitalPixelSensor,
    trainer: &mut DenseTrainer,
    seq: &EyeSequence,
    noise: &ImagingNoise,
    rng: &mut StdRng,
) -> Result<(), TensorError> {
    let (w, h) = (cfg.width, cfg.height);
    let mut estimator = GazeEstimator::new(seq.model.clone());
    let mut prev_noisy = noise.apply(&seq.frames[0].clean, 1.0, rng);

    for (t, frame) in seq.frames.iter().enumerate().skip(1) {
        let noisy = noise.apply(&frame.clean, 1.0, rng);
        sensor.expose(&noisy);
        let readout = sensor.dense_readout(RoiBox::full(w, h));
        let (mut image, _) = readout.sparse_image(w, h, sensor.config().adc_bits);

        // NPU-ROI masks everything outside the (host-derived) ROI before
        // segmentation; the ROI comes from frame differencing on the host.
        let transmitted = if variant.host_roi() {
            let events = frame_difference_events(&image, &prev_noisy, 15.0 / 255.0);
            let boxed = event_bbox(&events, w, h).unwrap_or(RoiBox::full(w, h));
            for y in 0..h {
                for x in 0..w {
                    if !boxed.contains(x, y) {
                        image[y * w + x] = 0.0;
                    }
                }
            }
            boxed.area()
        } else {
            w * h
        };

        let logits = trainer.network().forward_dense(&image)?;
        let arg = logits.value().argmax_rows().expect("rank-2 logits");
        let seg: Vec<u8> = arg.iter().map(|&c| c as u8).collect();
        let gaze = estimator.estimate_from_map(&seg, w, 1.0);

        let counts = FrameCounts {
            conversions: readout.conversions,
            sampled: transmitted as u64,
            mipi_payload_bytes: cfg.energy.mipi.frame_bytes(w * h),
            tokens: 0,
            roi_pixels: transmitted as u64,
        };
        report.frames.push(FrameResult {
            index: t - 1,
            gaze_prediction: gaze,
            gaze_truth: frame.gaze,
            horizontal_error_deg: (gaze.horizontal_deg - frame.gaze.horizontal_deg).abs(),
            vertical_error_deg: (gaze.vertical_deg - frame.gaze.vertical_deg).abs(),
            sampled_pixels: transmitted,
            conversions: readout.conversions,
            mipi_bytes: cfg.energy.mipi.frame_bytes(w * h),
            tokens: 0,
            energy: energy_breakdown_with_counts(cfg, variant, &counts),
        });
        prev_noisy = noisy;
    }
    Ok(())
}

fn event_bbox(events: &[f32], w: usize, h: usize) -> Option<RoiBox> {
    let mut x1 = w;
    let mut y1 = h;
    let mut x2 = 0usize;
    let mut y2 = 0usize;
    for (i, &e) in events.iter().enumerate() {
        if e > 0.0 {
            let x = i % w;
            let y = i / w;
            x1 = x1.min(x);
            y1 = y1.min(y);
            x2 = x2.max(x + 1);
            y2 = y2.max(y + 1);
        }
    }
    if x2 > x1 && y2 > y1 {
        Some(RoiBox::new(x1, y1, x2, y2).expand(4, w, h))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> SystemConfig {
        let mut cfg = SystemConfig::miniature();
        cfg.train_frames = 30;
        cfg.vit.dim = 24;
        cfg.vit.enc_depth = 1;
        cfg.roi_net.hidden = 32;
        cfg
    }

    #[test]
    fn blisscam_system_runs_end_to_end() {
        let mut sys = EyeTrackingSystem::new(SystemVariant::BlissCam, fast_config()).unwrap();
        let report = sys.run_frames(8).unwrap();
        assert_eq!(report.frames.len(), 8);
        let err = report.mean_angular_error();
        assert!(err.horizontal.is_finite() && err.vertical.is_finite());
        assert!(report.mean_energy_uj() > 0.0);
        assert!(report.mean_compression() > 3.0);
        // Every frame actually moved fewer pixels than the frame size.
        for f in &report.frames {
            assert!(f.sampled_pixels < 160 * 100);
            assert!(f.mipi_bytes < (160 * 100 * 10 / 8) as u64);
        }
    }

    #[test]
    fn system_report_serialises_to_json() {
        use serde::Serialize as _;
        let cfg = fast_config();
        let latency = simulate_pipeline(&cfg, SystemVariant::BlissCam, 4);
        let mut report = SystemReport::new(SystemVariant::BlissCam, latency, cfg.pixels());
        report.frames.push(FrameResult {
            index: 0,
            gaze_prediction: Gaze::new(1.0, -2.0),
            gaze_truth: Gaze::new(1.5, -2.0),
            horizontal_error_deg: 0.5,
            vertical_error_deg: 0.0,
            sampled_pixels: 800,
            conversions: 800,
            mipi_bytes: 1000,
            tokens: 12,
            energy: energy_breakdown_with_counts(
                &cfg,
                SystemVariant::BlissCam,
                &FrameCounts {
                    conversions: 800,
                    sampled: 800,
                    mipi_payload_bytes: 1000,
                    tokens: 12,
                    roi_pixels: 4000,
                },
            ),
        });
        let json = report.to_json();
        for key in [
            "\"variant\":\"BlissCam\"",
            "\"frames\":[{\"index\":0",
            "\"horizontal_deg\":1",
            "\"latency\":{",
            "\"achieved_fps\":",
            "\"pixels\":16000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn npu_full_system_runs_end_to_end() {
        let mut sys = EyeTrackingSystem::new(SystemVariant::NpuFull, fast_config()).unwrap();
        let report = sys.run_frames(4).unwrap();
        assert_eq!(report.frames.len(), 4);
        for f in &report.frames {
            assert_eq!(f.sampled_pixels, 160 * 100);
            assert_eq!(f.conversions, 160 * 100);
        }
    }

    #[test]
    fn blisscam_moves_fewer_bytes_and_joules_than_npu_full() {
        let cfg = fast_config();
        let mut bliss = EyeTrackingSystem::new(SystemVariant::BlissCam, cfg).unwrap();
        let rb = bliss.run_frames(10).unwrap();
        let mut full = EyeTrackingSystem::new(SystemVariant::NpuFull, cfg).unwrap();
        let rf = full.run_frames(10).unwrap();
        assert!(rb.mean_energy_uj() < rf.mean_energy_uj());
        // Skip the cold-start bootstrap frames (full-frame readout) when
        // comparing steady-state traffic.
        let bytes_b: u64 = rb.frames.iter().skip(3).map(|f| f.mipi_bytes).sum();
        let bytes_f: u64 = rf.frames.iter().skip(3).map(|f| f.mipi_bytes).sum();
        assert!(
            bytes_b * 2 < bytes_f,
            "bliss {bytes_b} B vs full {bytes_f} B"
        );
        assert!(rb.latency.mean_latency_s <= rf.latency.mean_latency_s * 1.02);
    }
}
