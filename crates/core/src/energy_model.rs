use crate::config::{SystemConfig, SystemVariant};
use bliss_npu::{Precision, SystolicArray};
use bliss_track::CnnSegConfig;
use serde::{Deserialize, Serialize};

/// Bytes-on-the-wire estimate for a run-length-encoded sparse stream
/// (2 bytes per literal plus token overhead).
pub(crate) const RLE_BYTES_PER_SAMPLE: f64 = 3.2;

/// Per-frame energy of one system variant, split by hardware component
/// (the stacked bars of the paper's Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Analog readout chain (single-slope ADC conversions), joules.
    pub analog_readout_j: f64,
    /// Eventification (analog for BlissCam, digital for S+NPU), joules.
    pub eventification_j: f64,
    /// Analog-memory retention over the frame interval (BlissCam), joules.
    pub analog_hold_j: f64,
    /// Digital frame-buffer leakage (S+NPU only — cannot be power-gated
    /// because it must retain the previous frame), joules.
    pub frame_buffer_leak_j: f64,
    /// In-sensor ROI-prediction NPU (S+NPU, BlissCam), joules.
    pub roi_prediction_j: f64,
    /// SRAM power-up random-bit generation, joules.
    pub sampling_rng_j: f64,
    /// Run-length encoder, joules.
    pub rle_j: f64,
    /// Forward MIPI transfer, joules.
    pub mipi_j: f64,
    /// Segmentation-map feedback transfer, joules.
    pub feedback_j: f64,
    /// Host NPU compute (MAC array + buffers), incl. host-side ROI
    /// prediction for NPU-ROI, joules.
    pub host_compute_j: f64,
    /// DRAM traffic (weights that exceed the buffer + frame staging), joules.
    pub dram_j: f64,
    /// Host run-length decoder, joules.
    pub rld_j: f64,
}

impl EnergyBreakdown {
    /// Total frame energy in joules.
    pub fn total_j(&self) -> f64 {
        self.analog_readout_j
            + self.eventification_j
            + self.analog_hold_j
            + self.frame_buffer_leak_j
            + self.roi_prediction_j
            + self.sampling_rng_j
            + self.rle_j
            + self.mipi_j
            + self.feedback_j
            + self.host_compute_j
            + self.dram_j
            + self.rld_j
    }

    /// Sensor-side energy (everything on the sensor die).
    pub fn sensor_j(&self) -> f64 {
        self.analog_readout_j
            + self.eventification_j
            + self.analog_hold_j
            + self.frame_buffer_leak_j
            + self.roi_prediction_j
            + self.sampling_rng_j
            + self.rle_j
    }

    /// Communication energy (MIPI both directions).
    pub fn communication_j(&self) -> f64 {
        self.mipi_j + self.feedback_j
    }

    /// Host-side (off-sensor) energy.
    pub fn off_sensor_j(&self) -> f64 {
        self.host_compute_j + self.dram_j + self.rld_j
    }

    /// Component rows as `(label, joules)` for tabular output.
    pub fn components(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("analog readout", self.analog_readout_j),
            ("eventification", self.eventification_j),
            ("analog hold", self.analog_hold_j),
            ("frame buffer leak", self.frame_buffer_leak_j),
            ("ROI prediction", self.roi_prediction_j),
            ("sampling RNG", self.sampling_rng_j),
            ("RLE", self.rle_j),
            ("MIPI", self.mipi_j),
            ("feedback", self.feedback_j),
            ("host compute", self.host_compute_j),
            ("DRAM", self.dram_j),
            ("RLD", self.rld_j),
        ]
    }
}

/// Dense CNN configuration covering only the ROI (area-scaled resolution).
pub(crate) fn cnn_on_roi(cnn: &CnnSegConfig, roi_fraction: f64) -> CnnSegConfig {
    let scale = roi_fraction.sqrt();
    CnnSegConfig {
        width: ((cnn.width as f64 * scale).round() as usize).max(8),
        height: ((cnn.height as f64 * scale).round() as usize).max(8),
        channels: cnn.channels,
        num_classes: cnn.num_classes,
    }
}

/// Number of ViT tokens (occupied patches) for the sparse variants: all
/// patches intersecting the ROI, since at ≈20 % in-ROI sampling every ROI
/// patch receives samples.
pub(crate) fn sparse_tokens(cfg: &SystemConfig) -> usize {
    ((cfg.vit.num_patches() as f64 * cfg.roi_fraction).ceil() as usize).max(1)
}

/// Measured (or expected) per-frame activity counts driving the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameCounts {
    /// ADC conversions actually performed.
    pub conversions: u64,
    /// Pixels transmitted (sampled).
    pub sampled: u64,
    /// MIPI payload bytes for the sparse variants (RLE output).
    pub mipi_payload_bytes: u64,
    /// Occupied ViT patch tokens.
    pub tokens: usize,
    /// ROI pixel count (feedback map size).
    pub roi_pixels: u64,
}

impl FrameCounts {
    /// Expected counts under the configuration's `roi_fraction` and
    /// `sample_rate` (used by the analytic Fig. 13 model).
    pub fn expected(cfg: &SystemConfig) -> Self {
        let sampled = cfg.expected_sampled_pixels();
        FrameCounts {
            conversions: sampled,
            sampled,
            mipi_payload_bytes: (sampled as f64 * RLE_BYTES_PER_SAMPLE) as u64 + 8,
            tokens: sparse_tokens(cfg),
            roi_pixels: cfg.expected_roi_pixels(),
        }
    }
}

/// Analytic per-frame energy of `variant` under `cfg` (paper Fig. 13),
/// using the expected ROI size and sampling rate.
pub fn energy_breakdown(cfg: &SystemConfig, variant: SystemVariant) -> EnergyBreakdown {
    energy_breakdown_with_counts(cfg, variant, &FrameCounts::expected(cfg))
}

/// Per-frame energy of `variant` under `cfg` with *measured* activity
/// counts (used by the executable simulation, which knows the real ROI
/// size, sample count and RLE payload of every frame).
pub fn energy_breakdown_with_counts(
    cfg: &SystemConfig,
    variant: SystemVariant,
    counts: &FrameCounts,
) -> EnergyBreakdown {
    energy_breakdown_with_counts_at(cfg, variant, counts, Precision::F32)
}

/// [`energy_breakdown_with_counts`] with the host **segmentation** network
/// executed at an explicit precision (the serving stack's f32/int8 switch).
///
/// Precision applies to the segmentation GEMMs only: the ROI-prediction net
/// and every sensor-side analog/digital component are precision-independent
/// in this model, and `Precision::F32` reproduces the default breakdown
/// bit-exactly.
pub fn energy_breakdown_with_counts_at(
    cfg: &SystemConfig,
    variant: SystemVariant,
    counts: &FrameCounts,
    precision: Precision,
) -> EnergyBreakdown {
    let p = &cfg.energy;
    let pixels = cfg.pixels() as u64;
    let period = cfg.frame_period_s();
    let sampled = counts.sampled;
    let host = SystolicArray::host().at_node(cfg.host_node);
    let in_sensor = SystolicArray::in_sensor().at_node(cfg.sensor_logic_node);
    let full_frame_bytes = p.mipi.frame_bytes(cfg.pixels());
    let feedback_bytes = counts.roi_pixels.div_ceil(4); // 2-bit class map
    let sparse_bytes = counts.mipi_payload_bytes;

    let mut e = EnergyBreakdown::default();
    match variant {
        SystemVariant::NpuFull => {
            e.analog_readout_j = p.readout.adc_energy_j(pixels, cfg.analog_node);
            e.mipi_j = p.mipi.transfer_energy_j(full_frame_bytes);
            let seg = host.run_at(&cfg.cnn.workload(false), p, true, precision);
            e.host_compute_j = seg.mac_energy_j + seg.sram_energy_j;
            // Frame staged through DRAM on its way into the NPU buffer.
            e.dram_j = seg.dram_energy_j + p.dram.traffic_energy_j(2 * full_frame_bytes);
        }
        SystemVariant::NpuRoi => {
            e.analog_readout_j = p.readout.adc_energy_j(pixels, cfg.analog_node);
            e.mipi_j = p.mipi.transfer_energy_j(full_frame_bytes);
            let roi_pred = host.run(&cfg.roi_net.workload(), p, true);
            let seg = host.run_at(
                &cnn_on_roi(&cfg.cnn, cfg.roi_fraction).workload(false),
                p,
                true,
                precision,
            );
            e.host_compute_j = roi_pred.mac_energy_j
                + roi_pred.sram_energy_j
                + seg.mac_energy_j
                + seg.sram_energy_j;
            e.dram_j = roi_pred.dram_energy_j
                + seg.dram_energy_j
                + p.dram.traffic_energy_j(2 * full_frame_bytes);
        }
        SystemVariant::SNpu | SystemVariant::BlissCam => {
            e.analog_readout_j = p.readout.adc_energy_j(counts.conversions, cfg.analog_node);
            if variant == SystemVariant::SNpu {
                e.eventification_j = p
                    .readout
                    .digital_event_energy_j(pixels, cfg.sensor_logic_node);
                // Digital frame buffer: 10 bits/pixel retained all frame.
                let buffer_bytes = (pixels * 10).div_ceil(8);
                e.frame_buffer_leak_j =
                    p.sram_leakage_energy_j(buffer_bytes, period, cfg.sensor_logic_node);
            } else {
                e.eventification_j = p.readout.analog_event_energy_j(pixels, cfg.analog_node);
                e.analog_hold_j = p
                    .readout
                    .analog_hold_energy_j(pixels, period, cfg.analog_node);
            }
            let roi_pred = in_sensor.run(&cfg.roi_net.workload(), p, true);
            e.roi_prediction_j =
                roi_pred.mac_energy_j + roi_pred.sram_energy_j + roi_pred.dram_energy_j;
            e.sampling_rng_j = p.sram_rng_energy_j(pixels, cfg.sensor_logic_node);
            e.rle_j = p.rle_energy_j(sparse_bytes, cfg.sensor_logic_node);
            e.mipi_j = p.mipi.transfer_energy_j(sparse_bytes);
            e.feedback_j = p.mipi.transfer_energy_j(feedback_bytes);
            let seg = host.run_at(
                &cfg.vit.workload(counts.tokens, sampled as usize),
                p,
                true,
                precision,
            );
            e.host_compute_j = seg.mac_energy_j + seg.sram_energy_j;
            e.dram_j = seg.dram_energy_j;
            e.rld_j = p.rld_energy_j(sparse_bytes, cfg.host_node);
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_breakdowns() -> [(SystemVariant, EnergyBreakdown); 4] {
        let cfg = SystemConfig::paper();
        SystemVariant::ALL.map(|v| (v, energy_breakdown(&cfg, v)))
    }

    #[test]
    fn blisscam_vs_npu_full_matches_fig13_ratio() {
        let cfg = SystemConfig::paper();
        let full = energy_breakdown(&cfg, SystemVariant::NpuFull).total_j();
        let bliss = energy_breakdown(&cfg, SystemVariant::BlissCam).total_j();
        let ratio = full / bliss;
        // Paper Fig. 13: 4.0x at 120 FPS (we accept a band around it).
        assert!(
            (3.0..5.5).contains(&ratio),
            "NPU-Full/BlissCam = {ratio:.2}"
        );
    }

    #[test]
    fn blisscam_vs_snpu_matches_fig13_ratio() {
        let cfg = SystemConfig::paper();
        let snpu = energy_breakdown(&cfg, SystemVariant::SNpu).total_j();
        let bliss = energy_breakdown(&cfg, SystemVariant::BlissCam).total_j();
        let ratio = snpu / bliss;
        // Paper: 1.7x.
        assert!((1.3..2.2).contains(&ratio), "S+NPU/BlissCam = {ratio:.2}");
    }

    #[test]
    fn blisscam_vs_npu_roi_matches_fig13_ratio() {
        let cfg = SystemConfig::paper();
        let roi = energy_breakdown(&cfg, SystemVariant::NpuRoi).total_j();
        let bliss = energy_breakdown(&cfg, SystemVariant::BlissCam).total_j();
        let ratio = roi / bliss;
        // Paper: 1.6x.
        assert!((1.3..2.3).contains(&ratio), "NPU-ROI/BlissCam = {ratio:.2}");
    }

    #[test]
    fn snpu_worse_than_npu_roi_due_to_leakage() {
        // Paper: S+NPU increases energy 1.1x over NPU-ROI — the digital
        // frame buffer's leakage outweighs the readout/MIPI savings.
        let cfg = SystemConfig::paper();
        let snpu = energy_breakdown(&cfg, SystemVariant::SNpu);
        let roi = energy_breakdown(&cfg, SystemVariant::NpuRoi);
        let ratio = snpu.total_j() / roi.total_j();
        assert!((0.85..1.4).contains(&ratio), "S+NPU/NPU-ROI = {ratio:.2}");
        assert!(snpu.frame_buffer_leak_j > 0.3 * snpu.total_j() * 0.5);
    }

    #[test]
    fn off_sensor_share_of_npu_full_matches_paper() {
        // Paper §VI-B: off-sensor work is 60.1 % of NPU-Full energy.
        let cfg = SystemConfig::paper();
        let full = energy_breakdown(&cfg, SystemVariant::NpuFull);
        let share = full.off_sensor_j() / full.total_j();
        assert!((0.50..0.75).contains(&share), "off-sensor share {share:.3}");
    }

    #[test]
    fn overheads_are_negligible() {
        // Paper §VI-B: feedback 0.6 %, RLE 0.04 % of total energy.
        let cfg = SystemConfig::paper();
        let bliss = energy_breakdown(&cfg, SystemVariant::BlissCam);
        assert!(bliss.feedback_j / bliss.total_j() < 0.02);
        assert!(bliss.rle_j / bliss.total_j() < 0.005);
        assert!(bliss.rld_j / bliss.total_j() < 0.005);
    }

    #[test]
    fn components_sum_to_total() {
        for (v, e) in all_breakdowns() {
            let sum: f64 = e.components().iter().map(|(_, j)| j).sum();
            assert!(
                (sum - e.total_j()).abs() < 1e-12,
                "{}: components {} != total {}",
                v.label(),
                sum,
                e.total_j()
            );
        }
    }

    #[test]
    fn f32_precision_variant_is_bit_exact() {
        let cfg = SystemConfig::paper();
        let counts = FrameCounts::expected(&cfg);
        for v in SystemVariant::ALL {
            assert_eq!(
                energy_breakdown_with_counts(&cfg, v, &counts),
                energy_breakdown_with_counts_at(&cfg, v, &counts, Precision::F32),
                "{}",
                v.label()
            );
        }
    }

    #[test]
    fn int8_strictly_cuts_blisscam_frame_energy() {
        let cfg = SystemConfig::paper();
        let counts = FrameCounts::expected(&cfg);
        let f32 = energy_breakdown_with_counts(&cfg, SystemVariant::BlissCam, &counts);
        let i8 = energy_breakdown_with_counts_at(
            &cfg,
            SystemVariant::BlissCam,
            &counts,
            Precision::Int8,
        );
        assert!(i8.host_compute_j < f32.host_compute_j);
        assert!(i8.total_j() < f32.total_j());
        // Only the host segmentation arm moves; the sensor side is
        // precision-independent.
        assert_eq!(i8.sensor_j(), f32.sensor_j());
        assert_eq!(i8.communication_j(), f32.communication_j());
    }

    #[test]
    fn blisscam_readout_energy_drops_with_pixel_volume() {
        let cfg = SystemConfig::paper();
        let full = energy_breakdown(&cfg, SystemVariant::NpuFull);
        let bliss = energy_breakdown(&cfg, SystemVariant::BlissCam);
        // ~95 % fewer conversions -> ~20x less readout energy.
        let ratio = full.analog_readout_j / bliss.analog_readout_j;
        assert!((15.0..50.0).contains(&ratio), "readout ratio {ratio:.1}");
        let mipi_ratio = full.mipi_j / bliss.mipi_j;
        assert!(mipi_ratio > 8.0, "MIPI ratio {mipi_ratio:.1}");
    }

    #[test]
    fn higher_fps_increases_blisscam_savings() {
        // Paper Fig. 16: savings grow from ~3.6x at 30 FPS to ~6.7x at 500.
        let mut lo = SystemConfig::paper();
        lo.fps = 30.0;
        let mut hi = SystemConfig::paper();
        hi.fps = 500.0;
        let saving = |c: &SystemConfig| {
            energy_breakdown(c, SystemVariant::NpuFull).total_j()
                / energy_breakdown(c, SystemVariant::BlissCam).total_j()
        };
        let s_lo = saving(&lo);
        let s_hi = saving(&hi);
        assert!(
            s_hi > s_lo + 0.5,
            "saving at 30fps {s_lo:.2}, at 500fps {s_hi:.2}"
        );
        assert!((2.0..4.2).contains(&s_lo), "30 FPS saving {s_lo:.2}");
        assert!((3.2..8.5).contains(&s_hi), "500 FPS saving {s_hi:.2}");
    }

    #[test]
    fn older_logic_node_erodes_savings() {
        // Paper Fig. 17 trend: moving the sensor logic layer to an older
        // node raises BlissCam's in-sensor cost and lowers the saving.
        use bliss_energy::ProcessNode;
        let saving_at = |node: ProcessNode| {
            let mut c = SystemConfig::paper();
            c.sensor_logic_node = node;
            energy_breakdown(&c, SystemVariant::NpuFull).total_j()
                / energy_breakdown(&c, SystemVariant::BlissCam).total_j()
        };
        assert!(saving_at(ProcessNode::NM16) > saving_at(ProcessNode::NM65));
    }
}
