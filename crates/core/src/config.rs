use bliss_energy::{EnergyParams, ProcessNode};
use bliss_track::{CnnSegConfig, RoiNetConfig, TrainConfig, ViTConfig};
use serde::{Deserialize, Serialize};

/// The four system organisations compared throughout the paper's evaluation
/// (§V "System Variants").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemVariant {
    /// Conventional system: dumb sensor, full-frame readout and transfer,
    /// dense segmentation on the host NPU.
    NpuFull,
    /// Like `NpuFull`, but the host first predicts an ROI and segments only
    /// the ROI.
    NpuRoi,
    /// BlissCam's sampling pipeline executed in the *digital* domain inside
    /// the sensor — pays for a digital frame buffer that cannot be
    /// power-gated.
    SNpu,
    /// The full proposal: analog eventification + in-sensor ROI prediction +
    /// SRAM-metastability sampling + sparse readout.
    BlissCam,
}

impl SystemVariant {
    /// All variants in the paper's presentation order.
    pub const ALL: [SystemVariant; 4] = [
        SystemVariant::NpuFull,
        SystemVariant::NpuRoi,
        SystemVariant::SNpu,
        SystemVariant::BlissCam,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemVariant::NpuFull => "NPU-Full",
            SystemVariant::NpuRoi => "NPU-ROI",
            SystemVariant::SNpu => "S+NPU",
            SystemVariant::BlissCam => "BlissCam",
        }
    }

    /// Whether the sensor performs eventification/ROI/sampling in-sensor.
    pub fn in_sensor_sampling(&self) -> bool {
        matches!(self, SystemVariant::SNpu | SystemVariant::BlissCam)
    }

    /// Whether ROI prediction executes on the host SoC.
    pub fn host_roi(&self) -> bool {
        matches!(self, SystemVariant::NpuRoi)
    }
}

/// Full configuration of an eye-tracking system instance.
///
/// Carries both the hardware profile (geometry, process nodes, energy
/// constants) and the network architectures, so the *same* configuration
/// drives the analytic energy/latency models and the executable
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Sensor width in pixels.
    pub width: usize,
    /// Sensor height in pixels.
    pub height: usize,
    /// Tracking rate in frames/second.
    pub fps: f64,
    /// In-ROI random sampling rate (paper default ≈ 0.2).
    pub sample_rate: f32,
    /// Expected ROI area as a fraction of the frame (paper: mean ROI
    /// 34 257.8 px on 640x400 ≈ 0.134). Used by the analytic models; the
    /// executable simulation measures it.
    pub roi_fraction: f64,
    /// Process node of the sensor's analog layers (paper: 65 nm).
    pub analog_node: ProcessNode,
    /// Process node of the sensor's digital logic layer (paper: 22 nm).
    pub sensor_logic_node: ProcessNode,
    /// Process node of the host SoC (paper: 7 nm).
    pub host_node: ProcessNode,
    /// Energy constants.
    pub energy: EnergyParams,
    /// Sparse ViT architecture.
    pub vit: ViTConfig,
    /// ROI-prediction network architecture.
    pub roi_net: RoiNetConfig,
    /// Dense CNN baseline architecture (NPU-Full / NPU-ROI segmentation).
    pub cnn: CnnSegConfig,
    /// Frames rendered for training the executable system.
    pub train_frames: usize,
    /// Training epochs for the executable system.
    pub train_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's hardware point: 640x400 @ 120 FPS, 65/22/7 nm, paper-scale
    /// networks. Intended for the analytic energy/latency models — training
    /// the paper-scale networks on a CPU is not practical.
    pub fn paper() -> Self {
        SystemConfig {
            width: 640,
            height: 400,
            fps: 120.0,
            sample_rate: 0.2,
            roi_fraction: 0.134,
            analog_node: ProcessNode::NM65,
            sensor_logic_node: ProcessNode::NM22,
            host_node: ProcessNode::NM7,
            energy: EnergyParams::default(),
            vit: ViTConfig::paper(),
            roi_net: RoiNetConfig::paper(),
            cnn: CnnSegConfig::paper(),
            train_frames: 0,
            train_epochs: 0,
            seed: 0xB1155,
        }
    }

    /// A 160x100 miniature whose networks train on a laptop CPU in seconds;
    /// the default for the executable simulation and accuracy experiments.
    pub fn miniature() -> Self {
        SystemConfig {
            width: 160,
            height: 100,
            fps: 120.0,
            sample_rate: 0.2,
            roi_fraction: 0.134,
            analog_node: ProcessNode::NM65,
            sensor_logic_node: ProcessNode::NM22,
            host_node: ProcessNode::NM7,
            energy: EnergyParams::default(),
            vit: ViTConfig::miniature(160, 100),
            roi_net: RoiNetConfig::miniature(160, 100),
            cnn: CnnSegConfig::miniature(160, 100),
            train_frames: 140,
            train_epochs: 2,
            seed: 0xB1155,
        }
    }

    /// Total pixel count.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Frame period in seconds.
    pub fn frame_period_s(&self) -> f64 {
        1.0 / self.fps
    }

    /// Expected ROI pixel count under `roi_fraction`.
    pub fn expected_roi_pixels(&self) -> u64 {
        (self.pixels() as f64 * self.roi_fraction).round() as u64
    }

    /// Expected sampled pixel count (ROI x in-ROI rate).
    pub fn expected_sampled_pixels(&self) -> u64 {
        (self.expected_roi_pixels() as f64 * self.sample_rate as f64).round() as u64
    }

    /// The training configuration used by the executable system.
    pub fn train_config(&self) -> TrainConfig {
        let mut cfg = TrainConfig::miniature(self.width, self.height);
        cfg.vit = self.vit;
        cfg.roi = self.roi_net;
        cfg.sample_rate = self.sample_rate;
        cfg.epochs = self.train_epochs.max(1);
        cfg.seed = self.seed;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_quoted_numbers() {
        let c = SystemConfig::paper();
        assert_eq!(c.pixels(), 256_000);
        // Mean ROI ≈ 34 258 px (paper §VI-C).
        assert!((c.expected_roi_pixels() as f64 - 34_304.0).abs() < 500.0);
        // ~5 % of pixels survive: 20.6x data reduction (paper §VI-A).
        let kept = c.expected_sampled_pixels() as f64 / c.pixels() as f64;
        assert!((0.02..0.07).contains(&kept), "kept fraction {kept}");
    }

    #[test]
    fn variant_labels_and_flags() {
        assert_eq!(SystemVariant::BlissCam.label(), "BlissCam");
        assert!(SystemVariant::BlissCam.in_sensor_sampling());
        assert!(!SystemVariant::NpuFull.in_sensor_sampling());
        assert!(SystemVariant::NpuRoi.host_roi());
        assert_eq!(SystemVariant::ALL.len(), 4);
    }

    #[test]
    fn miniature_train_config_inherits_dims() {
        let c = SystemConfig::miniature();
        let t = c.train_config();
        assert_eq!(t.vit.frame_width, 160);
        assert_eq!(t.roi.frame_width, 160);
        assert_eq!(t.sample_rate, c.sample_rate);
    }
}
