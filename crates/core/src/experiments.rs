//! Regeneration of every table and figure in the paper's evaluation
//! (§VI). Each function returns a serialisable result; the `bliss-bench`
//! binaries print them in the paper's row/series format.
//!
//! Accuracy experiments (Figs. 12, 15, 16, Tbl. I) run the miniature
//! executable pipeline — training included — so they take seconds to a few
//! minutes depending on [`ExperimentScale`]. Hardware experiments (Figs. 13,
//! 14, 16-energy, 17) use the analytic paper-scale models and are instant.

use crate::config::{SystemConfig, SystemVariant};
use crate::energy_model::{energy_breakdown, EnergyBreakdown};
use crate::latency_model::simulate_pipeline;
use bliss_energy::ProcessNode;
use bliss_eye::{render_sequence, EyeClass, EyeSequence, SequenceConfig};
use bliss_tensor::TensorError;
use bliss_timing::StageKind;
use bliss_track::{
    AngularErrorStats, DenseTrainer, EvalResult, GazeEstimator, JointTrainer, SamplingStrategy,
    TrainConfig,
};
use serde::{Deserialize, Serialize};

/// Workload size of the accuracy experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Frames in the training sequence.
    pub train_frames: usize,
    /// Frames in the held-out evaluation sequence.
    pub eval_frames: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Fast setting for CI and smoke runs (~seconds per point).
    pub fn quick() -> Self {
        ExperimentScale {
            train_frames: 90,
            eval_frames: 48,
            epochs: 1,
            seed: 21,
        }
    }

    /// The default setting used by the benchmark harness.
    pub fn standard() -> Self {
        ExperimentScale {
            train_frames: 220,
            eval_frames: 96,
            epochs: 2,
            seed: 21,
        }
    }

    fn train_seq(&self, cfg: &SystemConfig) -> EyeSequence {
        render_sequence(&SequenceConfig {
            width: cfg.width,
            height: cfg.height,
            frames: self.train_frames,
            fps: cfg.fps as f32,
            seed: self.seed,
        })
    }

    fn eval_seq(&self, cfg: &SystemConfig) -> EyeSequence {
        render_sequence(&SequenceConfig {
            width: cfg.width,
            height: cfg.height,
            frames: self.eval_frames,
            fps: cfg.fps as f32,
            seed: self.seed ^ 0xEEE,
        })
    }

    fn train_config(&self, cfg: &SystemConfig) -> TrainConfig {
        let mut t = cfg.train_config();
        t.epochs = self.epochs;
        t.seed = self.seed;
        t
    }
}

/// One accuracy-vs-compression point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Measured pixel-volume compression rate.
    pub compression: f32,
    /// Horizontal angular error.
    pub horizontal: AngularErrorStats,
    /// Vertical angular error.
    pub vertical: AngularErrorStats,
    /// Mean segmentation accuracy over evaluated pixels.
    pub seg_accuracy: f32,
}

impl AccuracyPoint {
    fn from_eval(eval: &EvalResult) -> Self {
        AccuracyPoint {
            compression: eval.mean_compression,
            horizontal: eval.horizontal,
            vertical: eval.vertical,
            seg_accuracy: eval.seg_accuracy,
        }
    }
}

/// A named accuracy-vs-compression series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracySeries {
    /// Series label (matches the paper's legends).
    pub label: String,
    /// Points in increasing compression order.
    pub points: Vec<AccuracyPoint>,
}

/// Fig. 12: end-to-end gaze error vs compression rate for NPU-Full,
/// NPU-ROI and ours (NPU-ROI-Sample).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// The three series.
    pub series: Vec<AccuracySeries>,
    /// MAC reduction of our sparse ViT versus the RITnet-class baseline at
    /// the default operating point (paper §VI-A quotes 4x).
    pub mac_reduction_vs_ritnet: f64,
}

/// Runs the Fig. 12 experiment.
///
/// # Errors
///
/// Propagates tensor errors from training/evaluation.
pub fn fig12_accuracy(scale: &ExperimentScale) -> Result<Fig12Result, TensorError> {
    let cfg = SystemConfig::miniature();
    let train = scale.train_seq(&cfg);
    let eval = scale.eval_seq(&cfg);

    // Ours: sweep the in-ROI sampling rate.
    let mut ours = AccuracySeries {
        label: "NPU-ROI-Sample (ours)".into(),
        points: Vec::new(),
    };
    for &rate in &[1.0f32, 0.5, 0.25, 0.12, 0.06] {
        let mut tc = scale.train_config(&cfg);
        tc.sample_rate = rate;
        let mut trainer = JointTrainer::new(tc)?;
        trainer.train_on(&train)?;
        let result = trainer.evaluate(&eval)?;
        ours.points.push(AccuracyPoint::from_eval(&result));
    }

    // Dense baselines: compression through image downsampling.
    let mut npu_full = AccuracySeries {
        label: "NPU-Full".into(),
        points: Vec::new(),
    };
    let mut npu_roi = AccuracySeries {
        label: "NPU-ROI".into(),
        points: Vec::new(),
    };
    for &(ds, roi_only) in &[
        (1usize, false),
        (2, false),
        (3, false),
        (4, false),
        (5, false),
        (1, true),
        (2, true),
        (3, true),
    ] {
        let mut trainer =
            DenseTrainer::new("ritnet", cfg.width, cfg.height, ds, roi_only, scale.seed);
        trainer.set_epochs(scale.epochs);
        trainer.train_on(&train)?;
        let result = trainer.evaluate(&eval)?;
        let point = AccuracyPoint::from_eval(&result);
        if roi_only {
            npu_roi.points.push(point);
        } else {
            npu_full.points.push(point);
        }
    }

    // MAC comparison at paper scale (§VI-A).
    let paper = SystemConfig::paper();
    let sparse = paper
        .vit
        .workload(
            crate::energy_model::sparse_tokens(&paper),
            paper.expected_sampled_pixels() as usize,
        )
        .total_macs() as f64;
    let ritnet = paper.cnn.workload(false).total_macs() as f64;

    Ok(Fig12Result {
        series: vec![ours, npu_full, npu_roi],
        mac_reduction_vs_ritnet: ritnet / sparse,
    })
}

/// Fig. 15: horizontal gaze error under the seven sampling alternatives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig15Result {
    /// One series per strategy.
    pub series: Vec<AccuracySeries>,
}

/// Runs the Fig. 15 experiment.
///
/// A joint pipeline is trained once per compression point with our in-ROI
/// random sampling; every strategy is then evaluated with those weights —
/// strategies whose sample distribution diverges from the training
/// distribution degrade, which is exactly the robustness the figure probes.
///
/// # Errors
///
/// Propagates tensor errors from training/evaluation.
pub fn fig15_sampling(scale: &ExperimentScale) -> Result<Fig15Result, TensorError> {
    let cfg = SystemConfig::miniature();
    let train = scale.train_seq(&cfg);
    let eval = scale.eval_seq(&cfg);
    let importance = foreground_importance(&train);
    let pixels = cfg.pixels() as f32;

    // (our in-ROI rate, matched full-frame rate) pairs per compression point.
    let rates = [0.5f32, 0.25, 0.12, 0.06];
    let mut series: Vec<AccuracySeries> = Vec::new();

    for &rate in &rates {
        let mut tc = scale.train_config(&cfg);
        tc.sample_rate = rate;
        let mut trainer = JointTrainer::new(tc)?;
        trainer.train_on(&train)?;

        // Match every strategy's pixel budget to ours for this point.
        let ours_eval = trainer.evaluate(&eval)?;
        let budget = pixels / ours_eval.mean_compression; // pixels per frame
        let full_rate = budget / pixels;
        let stride = (pixels / budget).sqrt().round().max(1.0) as usize;
        let strategies: Vec<(SamplingStrategy, Option<&[f32]>)> = vec![
            (SamplingStrategy::RoiRandom { rate }, None),
            (SamplingStrategy::FullRandom { rate: full_rate }, None),
            (SamplingStrategy::FullDownsample { stride }, None),
            (
                SamplingStrategy::RoiDownsample {
                    stride: (1.0 / rate).sqrt().round().max(1.0) as usize,
                },
                None,
            ),
            (SamplingStrategy::RoiFixed { rate }, Some(&importance)),
            (SamplingStrategy::RoiLearned { rate }, Some(&importance)),
            (
                SamplingStrategy::Skip {
                    density_threshold: (rate * 0.12).min(0.05),
                },
                None,
            ),
        ];

        for (strategy, imp) in strategies {
            let result = if matches!(strategy, SamplingStrategy::RoiRandom { .. }) {
                ours_eval
            } else {
                trainer.evaluate_with_strategy(&eval, &strategy, imp)?
            };
            let label = strategy.label().to_string();
            let point = AccuracyPoint::from_eval(&result);
            match series.iter_mut().find(|s| s.label == label) {
                Some(s) => s.points.push(point),
                None => series.push(AccuracySeries {
                    label,
                    points: vec![point],
                }),
            }
        }
    }
    Ok(Fig15Result { series })
}

/// Per-pixel foreground frequency over a sequence — the "dataset statistics"
/// importance map for the ROI+Fixed / ROI+Learned baselines.
pub fn foreground_importance(seq: &EyeSequence) -> Vec<f32> {
    let mut imp = vec![0.0f32; seq.pixels()];
    for frame in &seq.frames {
        for (i, &c) in frame.mask.iter().enumerate() {
            if c != EyeClass::Skin as u8 {
                imp[i] += 1.0;
            }
        }
    }
    let n = seq.frames.len().max(1) as f32;
    for v in &mut imp {
        *v /= n;
    }
    imp
}

/// One row of the Fig. 13 energy comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Variant label.
    pub variant: String,
    /// Component breakdown.
    pub breakdown: EnergyBreakdown,
    /// Energy relative to BlissCam (the paper's headline ratios).
    pub ratio_vs_blisscam: f64,
}

/// Fig. 13: per-frame energy of the four variants at 120 FPS, paper scale.
pub fn fig13_energy(cfg: &SystemConfig) -> Vec<EnergyRow> {
    let bliss = energy_breakdown(cfg, SystemVariant::BlissCam).total_j();
    SystemVariant::ALL
        .iter()
        .map(|&v| {
            let breakdown = energy_breakdown(cfg, v);
            EnergyRow {
                variant: v.label().to_string(),
                ratio_vs_blisscam: breakdown.total_j() / bliss,
                breakdown,
            }
        })
        .collect()
}

/// One row of the Fig. 14 latency comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Variant label.
    pub variant: String,
    /// Mean end-to-end tracking latency in seconds.
    pub latency_s: f64,
    /// Achieved tracking rate.
    pub achieved_fps: f64,
    /// Mean time per stage `(label, seconds)`.
    pub stages: Vec<(String, f64)>,
}

/// Fig. 14: end-to-end latency of the four variants at 120 FPS, paper scale.
pub fn fig14_latency(cfg: &SystemConfig) -> Vec<LatencyRow> {
    SystemVariant::ALL
        .iter()
        .map(|&v| {
            let report = simulate_pipeline(cfg, v, 32);
            let stages = [
                StageKind::Exposure,
                StageKind::Eventification,
                StageKind::RoiPrediction,
                StageKind::Sampling,
                StageKind::Readout,
                StageKind::Mipi,
                StageKind::Segmentation,
                StageKind::GazePrediction,
                StageKind::Feedback,
            ]
            .iter()
            .map(|&k| (format!("{k:?}"), report.mean_stage_s(k)))
            .collect();
            LatencyRow {
                variant: v.label().to_string(),
                latency_s: report.mean_latency_s,
                achieved_fps: report.achieved_fps,
                stages,
            }
        })
        .collect()
}

/// One row of the Fig. 16 frame-rate sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig16Row {
    /// Frame rate swept.
    pub fps: f64,
    /// Horizontal gaze error at this frame rate's exposure (miniature run).
    pub horizontal_error_deg: f32,
    /// Analytic energy saving over NPU-Full at paper scale.
    pub energy_saving: f64,
}

/// Runs the Fig. 16 experiment (30–500 FPS).
///
/// # Errors
///
/// Propagates tensor errors from training/evaluation.
pub fn fig16_framerate(scale: &ExperimentScale) -> Result<Vec<Fig16Row>, TensorError> {
    let cfg = SystemConfig::miniature();
    let train = scale.train_seq(&cfg);
    let eval = scale.eval_seq(&cfg);
    let mut trainer = JointTrainer::new(scale.train_config(&cfg))?;
    trainer.train_on(&train)?;

    let mut rows = Vec::new();
    for &fps in &[30.0f64, 60.0, 120.0, 240.0, 500.0] {
        // Accuracy: exposure (and therefore SNR) shrinks with frame rate.
        let exposure_scale = (1.0 / fps) / (1.0 / 120.0);
        trainer.set_exposure_scale(exposure_scale as f32);
        let result = trainer.evaluate(&eval)?;
        // Energy: analytic, paper scale.
        let mut paper = SystemConfig::paper();
        paper.fps = fps;
        let saving = energy_breakdown(&paper, SystemVariant::NpuFull).total_j()
            / energy_breakdown(&paper, SystemVariant::BlissCam).total_j();
        rows.push(Fig16Row {
            fps,
            horizontal_error_deg: result.horizontal.mean,
            energy_saving: saving,
        });
    }
    trainer.set_exposure_scale(1.0);
    Ok(rows)
}

/// One point of the Fig. 17 process-node sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig17Row {
    /// Host SoC node.
    pub soc_nm: u32,
    /// Sensor logic-layer node.
    pub logic_nm: u32,
    /// Energy saving over NPU-Full.
    pub energy_saving: f64,
}

/// Fig. 17: energy saving as the sensor logic node sweeps 65→16 nm under a
/// 7 nm and a 22 nm host SoC.
pub fn fig17_process_node() -> Vec<Fig17Row> {
    let mut rows = Vec::new();
    for &soc in &[7u32, 22] {
        for &logic in &[65u32, 40, 22, 16] {
            let mut cfg = SystemConfig::paper();
            cfg.host_node = ProcessNode::new(soc).expect("valid soc node");
            cfg.sensor_logic_node = ProcessNode::new(logic).expect("valid logic node");
            let saving = energy_breakdown(&cfg, SystemVariant::NpuFull).total_j()
                / energy_breakdown(&cfg, SystemVariant::BlissCam).total_j();
            rows.push(Fig17Row {
                soc_nm: soc,
                logic_nm: logic,
                energy_saving: saving,
            });
        }
    }
    rows
}

/// One row of the Table I ROI-reuse study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tab1Row {
    /// ROI reuse window (1 = predict every frame).
    pub reuse_window: usize,
    /// Vertical angular error.
    pub vertical: AngularErrorStats,
    /// Energy saving relative to window 1, as a fraction.
    pub energy_saving_fraction: f64,
}

/// Runs the Table I experiment: reuse a predicted ROI for `window` frames.
///
/// # Errors
///
/// Propagates tensor errors from training/evaluation.
pub fn tab1_roi_reuse(scale: &ExperimentScale) -> Result<Vec<Tab1Row>, TensorError> {
    let cfg = SystemConfig::miniature();
    let train = scale.train_seq(&cfg);
    let eval = scale.eval_seq(&cfg);
    let mut trainer = JointTrainer::new(scale.train_config(&cfg))?;
    trainer.train_on(&train)?;

    // Energy: the only saving is skipping the ROI-prediction inferences.
    let paper = SystemConfig::paper();
    let base = energy_breakdown(&paper, SystemVariant::BlissCam);
    let mut rows = Vec::new();
    for &window in &[1usize, 4, 16] {
        let result = evaluate_with_roi_reuse(&mut trainer, &eval, window)?;
        let saved = base.roi_prediction_j * (1.0 - 1.0 / window as f64);
        rows.push(Tab1Row {
            reuse_window: window,
            vertical: result.vertical,
            energy_saving_fraction: saved / base.total_j(),
        });
    }
    Ok(rows)
}

/// Closed-loop evaluation where the ROI prediction runs only every
/// `window`-th frame and is reused in between.
fn evaluate_with_roi_reuse(
    trainer: &mut JointTrainer,
    seq: &EyeSequence,
    window: usize,
) -> Result<EvalResult, TensorError> {
    use bliss_track::util::frame_difference_events;
    use rand::Rng;
    use rand::{rngs::StdRng, SeedableRng};

    let (w, h) = (seq.width, seq.height);
    let cfg = *trainer.config();
    let noise = bliss_eye::ImagingNoise::new(cfg.noise);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0F0F);
    let mut estimator = GazeEstimator::new(seq.model.clone());
    let mut prev = noise.apply(&seq.frames[0].clean, cfg.exposure_scale, &mut rng);
    let mut prev_seg = vec![0u8; w * h];
    let mut have_seg = false;
    let mut held_box: Option<bliss_sensor::RoiBox> = None;
    let mut err_h = Vec::new();
    let mut err_v = Vec::new();
    let mut seg_accs = Vec::new();
    let mut sampled_total = 0u64;
    let mut tokens_total = 0usize;

    for t in 1..seq.frames.len() {
        let frame = &seq.frames[t];
        let cur = noise.apply(&frame.clean, cfg.exposure_scale, &mut rng);
        let events = frame_difference_events(&cur, &prev, cfg.event_sigma);

        if (t - 1) % window == 0 || held_box.is_none() {
            let input = trainer.roi_net().make_input(&events, &prev_seg);
            let out = trainer.roi_net().forward(&input)?;
            held_box = Some(if have_seg {
                trainer.roi_net().predict_box(&out)
            } else {
                bliss_sensor::RoiBox::full(w, h)
            });
        }
        let roi = held_box.expect("roi box set above");

        let mut mask = vec![0.0f32; w * h];
        let mut values = vec![0.0f32; w * h];
        let mut sampled = 0usize;
        for y in roi.y1..roi.y2.min(h) {
            for x in roi.x1..roi.x2.min(w) {
                if rng.gen::<f32>() < cfg.sample_rate {
                    let i = y * w + x;
                    mask[i] = 1.0;
                    values[i] = cur[i];
                    sampled += 1;
                }
            }
        }
        sampled_total += sampled as u64;

        let gaze = match trainer.vit().forward(&values, &mask)? {
            Some(pred) => {
                tokens_total += pred.tokens;
                let classes = pred.classes();
                seg_accs.push(bliss_track::seg_accuracy(&classes, &frame.mask));
                let seg = pred.seg_map(w, h);
                if seg.iter().any(|&c| c != 0) {
                    prev_seg = seg;
                    have_seg = true;
                }
                estimator.estimate_from_pairs(&classes, w)
            }
            None => estimator.last(),
        };
        err_h.push((gaze.horizontal_deg - frame.gaze.horizontal_deg).abs());
        err_v.push((gaze.vertical_deg - frame.gaze.vertical_deg).abs());
        prev = cur;
    }

    let frames = seq.frames.len() - 1;
    Ok(EvalResult {
        horizontal: AngularErrorStats::from_errors(&err_h),
        vertical: AngularErrorStats::from_errors(&err_v),
        seg_accuracy: seg_accs.iter().sum::<f32>() / seg_accs.len().max(1) as f32,
        mean_compression: (w * h * frames) as f32 / sampled_total.max(1) as f32,
        mean_tokens: tokens_total as f32 / frames.max(1) as f32,
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            train_frames: 24,
            eval_frames: 12,
            epochs: 1,
            seed: 5,
        }
    }

    #[test]
    fn fig13_rows_cover_all_variants() {
        let rows = fig13_energy(&SystemConfig::paper());
        assert_eq!(rows.len(), 4);
        let bliss = rows.iter().find(|r| r.variant == "BlissCam").unwrap();
        assert!((bliss.ratio_vs_blisscam - 1.0).abs() < 1e-9);
        let full = rows.iter().find(|r| r.variant == "NPU-Full").unwrap();
        assert!(full.ratio_vs_blisscam > 3.0);
    }

    #[test]
    fn fig14_rows_have_stages() {
        let rows = fig14_latency(&SystemConfig::paper());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.latency_s > 0.0);
            assert!(!r.stages.is_empty());
        }
    }

    #[test]
    fn fig17_sweep_shape() {
        let rows = fig17_process_node();
        assert_eq!(rows.len(), 8);
        // Saving improves monotonically as the logic layer shrinks, for
        // both SoC nodes.
        for soc in [7u32, 22] {
            let series: Vec<f64> = rows
                .iter()
                .filter(|r| r.soc_nm == soc)
                .map(|r| r.energy_saving)
                .collect();
            for w in series.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "non-monotonic at soc {soc}: {series:?}"
                );
            }
        }
    }

    #[test]
    fn fig16_energy_trend_is_increasing() {
        let rows = fig16_framerate(&tiny_scale()).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.last().unwrap().energy_saving > rows[0].energy_saving);
    }

    #[test]
    fn tab1_reuse_degrades_accuracy() {
        let rows = tab1_roi_reuse(&tiny_scale()).unwrap();
        assert_eq!(rows.len(), 3);
        // Energy saving from reuse is tiny (paper: <0.05 %).
        for r in &rows {
            assert!(r.energy_saving_fraction < 0.2);
        }
        assert!(rows[2].energy_saving_fraction > rows[0].energy_saving_fraction);
    }

    #[test]
    fn foreground_importance_highlights_eye() {
        let seq = render_sequence(&SequenceConfig::miniature(6, 3));
        let imp = foreground_importance(&seq);
        let center = imp[50 * 160 + 80];
        let corner = imp[0];
        assert!(center > corner);
    }
}
