//! The assembled BlissCam system: sensor/algorithm co-simulation, system
//! variants, and the paper's experiments.
//!
//! Three layers:
//!
//! * **Analytic models** — [`energy_breakdown`] and [`simulate_pipeline`]
//!   compute per-frame energy (Fig. 13) and pipeline timing (Figs. 8/14) for
//!   any [`SystemConfig`] x [`SystemVariant`] point, at paper scale.
//! * **Executable simulation** — [`EyeTrackingSystem`] runs the full
//!   hardware path at miniature scale: renderer → noise → DPS sensor
//!   (eventify/ROI/sample/readout/RLE) → MIPI → sparse ViT → gaze, with
//!   per-frame measured energy.
//! * **Experiments** — [`experiments`] regenerates every table and figure of
//!   the paper's evaluation section.
//!
//! # Example
//!
//! ```no_run
//! use blisscam_core::{EyeTrackingSystem, SystemConfig, SystemVariant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = EyeTrackingSystem::new(SystemVariant::BlissCam, SystemConfig::miniature())?;
//! let report = system.run_frames(24)?;
//! println!(
//!     "gaze error {:.2}°/{:.2}°, {:.1} uJ/frame, {:.1}x compression",
//!     report.mean_angular_error().horizontal,
//!     report.mean_angular_error().vertical,
//!     report.mean_energy_uj(),
//!     report.mean_compression(),
//! );
//! # Ok(())
//! # }
//! ```

mod config;
mod energy_model;
pub mod experiments;
pub mod frontend;
mod latency_model;
mod system;

pub use bliss_npu::Precision;
pub use config::{SystemConfig, SystemVariant};
pub use energy_model::{
    energy_breakdown, energy_breakdown_with_counts, energy_breakdown_with_counts_at,
    EnergyBreakdown, FrameCounts,
};
pub use frontend::{FrontEndSnapshot, SensedFrame, ServedFrame, SparseFrontEnd};
pub use latency_model::{
    host_batched_segmentation_time_s, host_batched_segmentation_time_s_at,
    host_segmentation_time_s, simulate_pipeline, stage_durations,
};
pub use system::{EyeTrackingSystem, FrameResult, MeanAngularError, SystemReport};
