//! Analytical systolic-array NPU simulator.
//!
//! The paper assumes "a standard systolic array architecture to execute any
//! DNNs and claims no novelty for the neural processing unit design" (§II):
//! a 32x32 MAC array at 1 GHz with a 2 MB global buffer on the host SoC, and
//! an 8x8 MAC array at 0.5 GHz with 512 KB of SRAM on the sensor's logic
//! layer. This crate reproduces that methodology with an analytical
//! loop-nest model in the style of SCALE-Sim: networks are lowered to GEMMs
//! ([`WorkloadDesc`]), and per-GEMM cycle counts, utilisation, SRAM/DRAM
//! traffic and energy are computed in closed form.
//!
//! # Example
//!
//! ```
//! use bliss_npu::{SystolicArray, WorkloadDesc};
//! use bliss_energy::EnergyParams;
//!
//! let host = SystolicArray::host();
//! let mut seg = WorkloadDesc::new("vit-tiny");
//! seg.push_transformer_block(196, 192, 3);
//! let report = host.run(&seg, &EnergyParams::default(), true);
//! assert!(report.utilization > 0.0 && report.utilization <= 1.0);
//! println!("{:.3} ms, {:.1} uJ", report.time_s * 1e3, report.total_energy_j() * 1e6);
//! ```

mod systolic;
mod workload;

pub use systolic::{Precision, RunReport, SystolicArray, DEFAULT_DISPATCH_CYCLES};
pub use workload::{GemmShape, WorkloadDesc};
