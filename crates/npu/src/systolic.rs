use crate::workload::{GemmShape, WorkloadDesc};
use bliss_energy::{EnergyParams, ProcessNode};
use serde::{Deserialize, Serialize};

/// Per-kernel dispatch/DMA setup cost of the host-class NPU, in cycles.
///
/// Real NPUs pay a fixed per-launch overhead before the array computes
/// anything: the driver enqueues the kernel, descriptors are fetched, DMA
/// engines are programmed and the first operand tile is staged. Mobile-class
/// parts sit around a microsecond per kernel, which at 1 GHz is ~1000
/// cycles. This constant is what cross-launch fusion amortises: one GEMM
/// over the concatenated batch pays it once where K per-session launches pay
/// it K times.
pub const DEFAULT_DISPATCH_CYCLES: u64 = 1000;

/// Arithmetic precision a workload executes at on the array.
///
/// The array's MAC lanes are f32-wide; in int8 mode each lane packs **two**
/// i8 multiply-accumulates along the reduction dimension per cycle (the
/// standard DOTP-style pairing), so the reduction streams in half the
/// cycles and the effective peak doubles. An int8 MAC also costs roughly a
/// quarter of an f32 MAC's switching energy (scaling with operand width
/// squared, 8²/32² rounded up for accumulator overhead). Operand bytes are
/// modelled unchanged: the serving stack quantises activations on the fly,
/// and keeping the traffic model conservative isolates the compute-side
/// win.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point (the default everywhere).
    F32,
    /// Signed 8-bit integer operands with i32 accumulation.
    Int8,
}

impl Precision {
    /// i8 MACs issued per f32-wide lane per cycle.
    fn macs_per_lane(self) -> u64 {
        match self {
            Precision::F32 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Per-MAC energy relative to an f32 MAC.
    fn mac_energy_factor(self) -> f64 {
        match self {
            Precision::F32 => 1.0,
            Precision::Int8 => 0.25,
        }
    }
}

/// An output-stationary systolic MAC array with a scratchpad hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystolicArray {
    /// MAC rows.
    pub rows: usize,
    /// MAC columns.
    pub cols: usize,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// On-chip buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// Buffer bank granularity in bytes (affects access energy class).
    pub bank_bytes: u64,
    /// Implementation process node.
    pub node: ProcessNode,
    /// Fixed per-GEMM dispatch/DMA setup cost in cycles (see
    /// [`DEFAULT_DISPATCH_CYCLES`]); set 0 for the idealised
    /// zero-launch-cost model.
    pub dispatch_cycles: u64,
}

impl SystolicArray {
    /// The paper's host NPU: 32x32 MACs @ 1 GHz, 2 MB buffer banked at
    /// 128 KB, 7 nm.
    pub fn host() -> Self {
        SystolicArray {
            rows: 32,
            cols: 32,
            frequency_hz: 1e9,
            buffer_bytes: 2 * 1024 * 1024,
            bank_bytes: 128 * 1024,
            node: ProcessNode::NM7,
            dispatch_cycles: DEFAULT_DISPATCH_CYCLES,
        }
    }

    /// The paper's in-sensor NPU: 8x8 MACs @ 0.5 GHz with 512 KB SRAM,
    /// sharing the 22 nm sensor logic layer.
    pub fn in_sensor() -> Self {
        SystolicArray {
            rows: 8,
            cols: 8,
            frequency_hz: 0.5e9,
            buffer_bytes: 512 * 1024,
            bank_bytes: 512 * 1024,
            node: ProcessNode::NM22,
            dispatch_cycles: DEFAULT_DISPATCH_CYCLES,
        }
    }

    /// Same design re-targeted to a different process node (Fig. 17 sweep).
    pub fn at_node(mut self, node: ProcessNode) -> Self {
        self.node = node;
        self
    }

    /// Same design with an explicit per-GEMM dispatch cost (0 recovers the
    /// idealised no-launch-overhead model the pre-fleet figures used).
    pub fn with_dispatch_cycles(mut self, cycles: u64) -> Self {
        self.dispatch_cycles = cycles;
        self
    }

    /// Peak MACs per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Cycle count for one GEMM under output-stationary tiling: every
    /// `[rows x cols]` output tile streams the full reduction dimension plus
    /// an array fill/drain bubble, and the launch itself pays the fixed
    /// [`SystolicArray::dispatch_cycles`] dispatch/DMA setup once.
    pub fn gemm_cycles(&self, g: &GemmShape) -> u64 {
        self.gemm_cycles_at(g, Precision::F32)
    }

    /// [`SystolicArray::gemm_cycles`] at an explicit precision: int8 packs
    /// two MACs per lane along the reduction dimension, so `k` streams in
    /// `ceil(k / 2)` cycles. `Precision::F32` is exactly `gemm_cycles`.
    pub fn gemm_cycles_at(&self, g: &GemmShape, precision: Precision) -> u64 {
        let tiles_m = g.m.div_ceil(self.rows) as u64;
        let tiles_n = g.n.div_ceil(self.cols) as u64;
        let fill_drain = (self.rows + self.cols) as u64;
        let k_cycles = (g.k as u64).div_ceil(precision.macs_per_lane());
        self.dispatch_cycles + tiles_m * tiles_n * (k_cycles + fill_drain)
    }

    /// Runs a whole lowered network and accounts time, energy and traffic.
    ///
    /// `weights_resident` models weights pinned in the on-chip buffer across
    /// frames (true for steady-state inference when they fit); otherwise all
    /// weight bytes stream from DRAM every frame.
    pub fn run(
        &self,
        w: &WorkloadDesc,
        params: &EnergyParams,
        weights_resident: bool,
    ) -> RunReport {
        self.run_at(w, params, weights_resident, Precision::F32)
    }

    /// [`SystolicArray::run`] at an explicit precision.
    ///
    /// `Precision::F32` reproduces `run` **bit-exactly** (every factor is
    /// the identity). `Precision::Int8` halves reduction cycles, charges a
    /// quarter of the f32 per-MAC energy and doubles the utilisation
    /// denominator's peak; SRAM/DRAM byte counts are left unchanged
    /// (conservative — see [`Precision`]).
    pub fn run_at(
        &self,
        w: &WorkloadDesc,
        params: &EnergyParams,
        weights_resident: bool,
        precision: Precision,
    ) -> RunReport {
        let mut report = RunReport::new(w.name.clone());
        for g in &w.gemms {
            let cycles = self.gemm_cycles_at(g, precision);
            let macs = g.macs();
            let tiles_m = g.m.div_ceil(self.rows) as u64;
            let tiles_n = g.n.div_ceil(self.cols) as u64;
            // Output-stationary operand re-streaming: weights stream once per
            // column tile, activations once per row tile.
            let sram_reads = g.weight_bytes() * tiles_n + g.input_bytes() * tiles_m;
            let sram_writes = g.output_bytes();

            // Weight residency: if the whole network's weights fit in the
            // buffer (minus working set), they are read from DRAM only at
            // load time, not per frame.
            let weights_fit =
                w.total_weight_bytes() + g.input_bytes() + g.output_bytes() <= self.buffer_bytes;
            let dram_bytes = if weights_resident && weights_fit {
                0
            } else {
                g.weight_bytes()
            };

            let large_bank = self.bank_bytes > 128 * 1024;
            let sram_energy = if large_bank {
                params.sram_large_energy_j(sram_reads + sram_writes, self.node)
            } else {
                params.sram_small_energy_j(sram_reads + sram_writes, self.node)
            };

            report.cycles += cycles;
            report.macs += macs;
            report.sram_bytes += sram_reads + sram_writes;
            report.dram_bytes += dram_bytes;
            report.mac_energy_j +=
                macs as f64 * params.mac_energy_j(self.node) * precision.mac_energy_factor();
            report.sram_energy_j += sram_energy;
            report.dram_energy_j += params.dram.traffic_energy_j(dram_bytes);
        }
        report.time_s = report.cycles as f64 / self.frequency_hz;
        let peak = self.peak_macs_per_cycle() * precision.macs_per_lane();
        report.utilization = if report.cycles == 0 {
            0.0
        } else {
            report.macs as f64 / (report.cycles as f64 * peak as f64)
        };
        report
    }
}

/// Aggregate statistics of executing a workload on a [`SystolicArray`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// Total cycles.
    pub cycles: u64,
    /// Execution time in seconds.
    pub time_s: f64,
    /// Total multiply-accumulates.
    pub macs: u64,
    /// Achieved MAC utilisation in `(0, 1]`.
    pub utilization: f64,
    /// On-chip buffer traffic in bytes.
    pub sram_bytes: u64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Energy of the MAC array, joules.
    pub mac_energy_j: f64,
    /// Energy of buffer accesses, joules.
    pub sram_energy_j: f64,
    /// Energy of DRAM traffic, joules.
    pub dram_energy_j: f64,
}

impl RunReport {
    fn new(name: String) -> Self {
        RunReport {
            name,
            cycles: 0,
            time_s: 0.0,
            macs: 0,
            utilization: 0.0,
            sram_bytes: 0,
            dram_bytes: 0,
            mac_energy_j: 0.0,
            sram_energy_j: 0.0,
            dram_energy_j: 0.0,
        }
    }

    /// Total energy across MACs, SRAM and DRAM, in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.mac_energy_j + self.sram_energy_j + self.dram_energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_workload(tokens: usize, inf: usize, outf: usize) -> WorkloadDesc {
        let mut w = WorkloadDesc::new("lin");
        w.push_linear(tokens, inf, outf);
        w
    }

    #[test]
    fn utilization_bounded() {
        let host = SystolicArray::host();
        let w = linear_workload(128, 256, 512);
        let r = host.run(&w, &EnergyParams::default(), true);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn bigger_array_is_faster_on_big_gemms() {
        let small = SystolicArray::in_sensor();
        let big = SystolicArray::host();
        let w = linear_workload(512, 512, 512);
        let rs = small.run(&w, &EnergyParams::default(), true);
        let rb = big.run(&w, &EnergyParams::default(), true);
        assert!(rb.time_s < rs.time_s);
    }

    #[test]
    fn tiny_gemm_underutilises() {
        let host = SystolicArray::host();
        let w = linear_workload(4, 8, 4); // much smaller than 32x32
        let r = host.run(&w, &EnergyParams::default(), true);
        assert!(r.utilization < 0.1);
    }

    #[test]
    fn energy_scales_with_node() {
        let w = linear_workload(256, 256, 256);
        let p = EnergyParams::default();
        let at7 = SystolicArray::host().run(&w, &p, true);
        let at22 = SystolicArray::host()
            .at_node(ProcessNode::NM22)
            .run(&w, &p, true);
        assert!(at22.mac_energy_j > 2.0 * at7.mac_energy_j);
    }

    #[test]
    fn resident_weights_skip_dram() {
        let w = linear_workload(64, 128, 128); // 16 KB of weights: fits
        let p = EnergyParams::default();
        let host = SystolicArray::host();
        let resident = host.run(&w, &p, true);
        let streaming = host.run(&w, &p, false);
        assert_eq!(resident.dram_bytes, 0);
        assert_eq!(streaming.dram_bytes, 128 * 128);
        assert!(streaming.total_energy_j() > resident.total_energy_j());
    }

    #[test]
    fn oversized_weights_stream_even_when_resident_requested() {
        // 4 M weight bytes > 2 MB buffer: must hit DRAM.
        let w = linear_workload(16, 2048, 2048 * 1024 / 2048);
        let mut big = WorkloadDesc::new("big");
        big.push_linear(16, 2048, 2048);
        for _ in 0..2 {
            let mut l = WorkloadDesc::new("l");
            l.push_linear(16, 1024, 1024);
            big.extend(&l);
        }
        // Construct a clearly oversized single layer instead:
        let mut huge = WorkloadDesc::new("huge");
        huge.push_linear(8, 4096, 1024); // 4 MB weights
        let r = SystolicArray::host().run(&huge, &EnergyParams::default(), true);
        assert!(r.dram_bytes > 0);
        let _ = w;
    }

    #[test]
    fn in_sensor_roi_net_latency_scale() {
        // The paper's ROI net is 2.1e7 MACs; on an 8x8 array at 0.5 GHz the
        // analytic bound is >= 656 us of pure MAC time. Verify the simulator
        // stays within 3x of the ideal (tiling bubbles only).
        let mut w = WorkloadDesc::new("roi");
        // 3 conv + 2 FC summing to ~2.1e7 MACs at paper scale (see track).
        w.push_conv(8, 2, 3, 80, 50); // 8*18*4000 = 576k
        w.push_conv(16, 8, 3, 40, 25); // 16*72*1000 = 1.15M
        w.push_conv(32, 16, 3, 20, 13); // 32*144*260 = 1.2M
        w.push_linear(1, 32 * 20 * 13, 2048);
        w.push_linear(1, 2048, 4);
        let r = SystolicArray::in_sensor().run(&w, &EnergyParams::default(), true);
        let ideal = r.macs as f64 / (64.0 * 0.5e9);
        assert!(r.time_s >= ideal);
        assert!(
            r.time_s < 20.0 * ideal,
            "time {} vs ideal {}",
            r.time_s,
            ideal
        );
    }

    #[test]
    fn dispatch_overhead_amortises_with_fused_launches() {
        // One fused GEMM over 8x the output rows covers exactly the same
        // tile grid as eight separate launches, so the only difference is
        // seven saved dispatches.
        let host = SystolicArray::host();
        let fused = GemmShape::new(8 * host.rows, 128, 64);
        let solo = GemmShape::new(host.rows, 128, 64);
        assert_eq!(
            host.gemm_cycles(&fused) + 7 * host.dispatch_cycles,
            8 * host.gemm_cycles(&solo)
        );
        // The amortisation trend is the dispatch model's doing: with the
        // idealised zero-cost launches the two forms tie exactly.
        let ideal = host.with_dispatch_cycles(0);
        assert_eq!(ideal.gemm_cycles(&fused), 8 * ideal.gemm_cycles(&solo));
        assert!(host.gemm_cycles(&fused) < 8 * host.gemm_cycles(&solo));
    }

    #[test]
    fn dispatch_overhead_counts_into_run_time() {
        let w = linear_workload(64, 128, 128);
        let p = EnergyParams::default();
        let with = SystolicArray::host().run(&w, &p, true);
        let without = SystolicArray::host()
            .with_dispatch_cycles(0)
            .run(&w, &p, true);
        assert_eq!(
            with.cycles - without.cycles,
            w.launches() as u64 * DEFAULT_DISPATCH_CYCLES
        );
        // Dispatch costs time, not energy: the array idles while the DMA
        // engines are programmed.
        assert_eq!(with.total_energy_j(), without.total_energy_j());
        assert!(with.utilization < without.utilization);
    }

    #[test]
    fn f32_precision_reproduces_default_run_bitwise() {
        let w = linear_workload(96, 192, 384);
        let p = EnergyParams::default();
        let host = SystolicArray::host();
        let default = host.run(&w, &p, true);
        let explicit = host.run_at(&w, &p, true, Precision::F32);
        assert_eq!(default, explicit, "F32 run_at must be bit-exact vs run");
        assert_eq!(
            host.gemm_cycles(&GemmShape::new(17, 33, 65)),
            host.gemm_cycles_at(&GemmShape::new(17, 33, 65), Precision::F32)
        );
    }

    #[test]
    fn int8_is_faster_and_cheaper_with_same_traffic() {
        let w = linear_workload(256, 384, 384);
        let p = EnergyParams::default();
        let host = SystolicArray::host();
        let f32 = host.run_at(&w, &p, true, Precision::F32);
        let i8 = host.run_at(&w, &p, true, Precision::Int8);
        assert!(i8.cycles < f32.cycles, "int8 must save reduction cycles");
        assert!(i8.mac_energy_j < f32.mac_energy_j);
        assert_eq!(i8.mac_energy_j, 0.25 * f32.mac_energy_j);
        // Conservative traffic model: byte counts identical.
        assert_eq!(i8.sram_bytes, f32.sram_bytes);
        assert_eq!(i8.dram_bytes, f32.dram_bytes);
        assert_eq!(i8.sram_energy_j, f32.sram_energy_j);
        assert!(i8.total_energy_j() < f32.total_energy_j());
        assert!(i8.utilization > 0.0 && i8.utilization <= 1.0);
    }

    #[test]
    fn int8_halves_reduction_cycles_exactly() {
        let host = SystolicArray::host().with_dispatch_cycles(0);
        // Even k: the packed reduction is exactly half.
        let even = GemmShape::new(32, 128, 32);
        let fill_drain = (host.rows + host.cols) as u64;
        assert_eq!(host.gemm_cycles_at(&even, Precision::Int8), 64 + fill_drain);
        // Odd k rounds up: ceil(7 / 2) = 4.
        let odd = GemmShape::new(32, 7, 32);
        assert_eq!(host.gemm_cycles_at(&odd, Precision::Int8), 4 + fill_drain);
    }

    #[test]
    fn cycles_additive_over_layers() {
        let host = SystolicArray::host();
        let a = linear_workload(64, 64, 64);
        let mut ab = a.clone();
        ab.extend(&linear_workload(32, 32, 32));
        let ra = host.run(&a, &EnergyParams::default(), true);
        let rab = host.run(&ab, &EnergyParams::default(), true);
        assert!(rab.cycles > ra.cycles);
        assert_eq!(
            rab.cycles - ra.cycles,
            host.gemm_cycles(&GemmShape::new(32, 32, 32))
        );
    }
}
