use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Work description of a single network layer as seen by a systolic array.
///
/// All layers are described post-lowering (im2col), i.e. as a GEMM of
/// `[m, k] x [k, n]`. Operands are int8 (1 byte/element), the standard
/// deployment precision for mobile NPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmShape {
    /// Output rows (e.g. output channels).
    pub m: usize,
    /// Reduction dimension (e.g. `ic * kh * kw`).
    pub k: usize,
    /// Output columns (e.g. output pixels, or tokens).
    pub n: usize,
    /// Whether the `[m, k]` operand is a trained weight matrix (false for
    /// activation-activation products such as attention's `QK^T` and `AV`,
    /// which never touch DRAM-resident weights).
    pub has_weights: bool,
}

impl GemmShape {
    /// Creates a GEMM shape whose `[m, k]` operand is a weight matrix.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        GemmShape {
            m,
            k,
            n,
            has_weights: true,
        }
    }

    /// Creates an activation-activation GEMM (no weight operand).
    pub fn activation(m: usize, k: usize, n: usize) -> Self {
        GemmShape {
            m,
            k,
            n,
            has_weights: false,
        }
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Bytes of weight data (0 for activation-activation GEMMs).
    pub fn weight_bytes(&self) -> u64 {
        if self.has_weights {
            self.m as u64 * self.k as u64
        } else {
            0
        }
    }

    /// Bytes of input activations.
    pub fn input_bytes(&self) -> u64 {
        self.k as u64 * self.n as u64
    }

    /// Bytes of output activations.
    pub fn output_bytes(&self) -> u64 {
        self.m as u64 * self.n as u64
    }
}

// Workload descriptors are rebuilt from scratch on every analytic timing or
// energy evaluation — once per fused batch and twice per served frame in the
// streaming runtime's hot path. A small thread-local freelist recycles the
// layer storage between descriptors so steady-state serving performs no
// buffer-class heap allocation here (the same contract the `bliss_tensor`
// scratch pools give the data plane).
thread_local! {
    static GEMM_FREELIST: RefCell<Vec<Vec<GemmShape>>> = const { RefCell::new(Vec::new()) };
}

/// Recycled layer vectors retained per thread — only a handful of workload
/// descriptors are ever alive at once.
const GEMM_FREELIST_CAP: usize = 8;

/// A whole network lowered into a sequence of GEMMs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadDesc {
    /// Human-readable network name (appears in experiment output).
    pub name: String,
    /// Lowered layers in execution order.
    pub gemms: Vec<GemmShape>,
}

impl Drop for WorkloadDesc {
    fn drop(&mut self) {
        if self.gemms.capacity() == 0 {
            return;
        }
        let mut gemms = std::mem::take(&mut self.gemms);
        gemms.clear();
        // Defensive accessors: drops can run during thread teardown, and a
        // recycling failure must never turn into a panic.
        let _ = GEMM_FREELIST.try_with(|fl| {
            if let Ok(mut fl) = fl.try_borrow_mut() {
                if fl.len() < GEMM_FREELIST_CAP {
                    fl.push(gemms);
                }
            }
        });
    }
}

impl WorkloadDesc {
    /// Creates an empty workload, reusing recycled layer storage from this
    /// thread's freelist when available (descriptors return their storage
    /// on drop).
    pub fn new(name: impl Into<String>) -> Self {
        let gemms = GEMM_FREELIST
            .with(|fl| fl.borrow_mut().pop())
            .unwrap_or_default();
        WorkloadDesc {
            name: name.into(),
            gemms,
        }
    }

    /// Appends a lowered convolution: `[oc, ic*kh*kw] x [ic*kh*kw, oh*ow]`.
    pub fn push_conv(
        &mut self,
        oc: usize,
        ic: usize,
        kernel: usize,
        oh: usize,
        ow: usize,
    ) -> &mut Self {
        self.gemms
            .push(GemmShape::new(oc, ic * kernel * kernel, oh * ow));
        self
    }

    /// Appends a depthwise+pointwise separable convolution pair.
    pub fn push_depthwise_separable(
        &mut self,
        channels: usize,
        out_channels: usize,
        kernel: usize,
        oh: usize,
        ow: usize,
    ) -> &mut Self {
        // Depthwise: per-channel [1, k*k] x [k*k, oh*ow] GEMMs are mapped as
        // one tall GEMM with unit reuse; model as [channels, k*k, oh*ow]/ch.
        self.gemms
            .push(GemmShape::new(channels, kernel * kernel, oh * ow));
        // Pointwise 1x1.
        self.gemms
            .push(GemmShape::new(out_channels, channels, oh * ow));
        self
    }

    /// Appends a fully-connected layer over `tokens` rows, lowered with the
    /// weight matrix as the stationary `[out, in]` operand.
    pub fn push_linear(&mut self, tokens: usize, in_f: usize, out_f: usize) -> &mut Self {
        self.gemms.push(GemmShape::new(out_f, in_f, tokens));
        self
    }

    /// Appends one multi-head self-attention module over `tokens` tokens.
    pub fn push_attention(&mut self, tokens: usize, dim: usize, heads: usize) -> &mut Self {
        let hd = dim / heads.max(1);
        for _ in 0..heads {
            self.push_linear(tokens, dim, hd); // Q
            self.push_linear(tokens, dim, hd); // K
            self.push_linear(tokens, dim, hd); // V
            self.gemms.push(GemmShape::activation(tokens, hd, tokens)); // QK^T
            self.gemms.push(GemmShape::activation(tokens, tokens, hd)); // AV
        }
        self.push_linear(tokens, dim, dim) // output projection
    }

    /// Appends a full transformer block (attention + 4x-expansion MLP).
    pub fn push_transformer_block(&mut self, tokens: usize, dim: usize, heads: usize) -> &mut Self {
        self.push_transformer_block_ratio(tokens, dim, heads, 4)
    }

    /// Appends a transformer block with an explicit MLP expansion ratio.
    pub fn push_transformer_block_ratio(
        &mut self,
        tokens: usize,
        dim: usize,
        heads: usize,
        mlp_ratio: usize,
    ) -> &mut Self {
        self.push_attention(tokens, dim, heads);
        self.push_linear(tokens, dim, dim * mlp_ratio);
        self.push_linear(tokens, dim * mlp_ratio, dim)
    }

    /// Total multiply-accumulate count.
    pub fn total_macs(&self) -> u64 {
        self.gemms.iter().map(GemmShape::macs).sum()
    }

    /// Number of kernel launches this workload dispatches (one per lowered
    /// GEMM). Each pays [`crate::SystolicArray::dispatch_cycles`], which is
    /// what cross-session batching amortises: a batched workload fuses its
    /// weight GEMMs across frames and therefore launches fewer kernels than
    /// the per-frame workloads it replaces.
    pub fn launches(&self) -> usize {
        self.gemms.len()
    }

    /// Total weight bytes (int8).
    pub fn total_weight_bytes(&self) -> u64 {
        self.gemms.iter().map(GemmShape::weight_bytes).sum()
    }

    /// Concatenates another workload after this one.
    pub fn extend(&mut self, other: &WorkloadDesc) -> &mut Self {
        self.gemms.extend(other.gemms.iter().copied());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_counts() {
        let g = GemmShape::new(2, 3, 4);
        assert_eq!(g.macs(), 24);
        assert_eq!(g.weight_bytes(), 6);
        assert_eq!(g.input_bytes(), 12);
        assert_eq!(g.output_bytes(), 8);
    }

    #[test]
    fn conv_lowering() {
        let mut w = WorkloadDesc::new("c");
        w.push_conv(16, 8, 3, 10, 10);
        assert_eq!(w.total_macs(), 16 * 72 * 100);
        assert_eq!(w.total_weight_bytes(), 16 * 72);
    }

    #[test]
    fn attention_macs_formula() {
        let mut w = WorkloadDesc::new("a");
        let (t, d, h) = (9usize, 12usize, 3usize);
        w.push_attention(t, d, h);
        let hd = d / h;
        let expected = (3 * h * t * d * hd) + (2 * h * t * t * hd) + t * d * d;
        assert_eq!(w.total_macs(), expected as u64);
    }

    #[test]
    fn attention_macs_shrink_superlinearly_with_tokens() {
        let mk = |t: usize| {
            let mut w = WorkloadDesc::new("a");
            w.push_attention(t, 192, 3);
            w.total_macs()
        };
        // Dropping half the tokens (sparse sampling!) removes MORE than half
        // the attention compute.
        assert!(mk(100) * 2 < mk(200));
    }

    #[test]
    fn depthwise_separable_cheaper_than_full() {
        let mut sep = WorkloadDesc::new("s");
        sep.push_depthwise_separable(32, 64, 3, 20, 20);
        let mut full = WorkloadDesc::new("f");
        full.push_conv(64, 32, 3, 20, 20);
        assert!(sep.total_macs() < full.total_macs());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = WorkloadDesc::new("a");
        a.push_linear(1, 2, 3);
        let mut b = WorkloadDesc::new("b");
        b.push_linear(4, 5, 6);
        a.extend(&b);
        assert_eq!(a.gemms.len(), 2);
        assert_eq!(a.total_macs(), 6 + 120);
    }
}
