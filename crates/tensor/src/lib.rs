//! N-dimensional tensors and reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate of the BlissCam reproduction. It
//! provides two layers:
//!
//! * [`NdArray`] — a plain row-major `f32` array with shape-checked linear
//!   algebra (matmul, im2col convolution helpers, reductions, softmax…). This
//!   is used directly by the non-learned parts of the system (sensor
//!   simulation, renderer).
//! * [`Tensor`] — a define-by-run autograd wrapper around [`NdArray`]. Every
//!   operation records a backward closure; [`Tensor::backward`] walks the tape
//!   in reverse topological order and accumulates gradients. This powers the
//!   joint training of the ROI-prediction network and the sparse ViT
//!   segmenter (paper §III-C).
//!
//! # Scratch pool and workspaces
//!
//! Steady-state inference and training reuse their buffers instead of
//! allocating: every `NdArray` returns its backing store to a bounded,
//! size-class-binned, thread-local pool on drop, and the constructors draw
//! from it first (see the `scratch` module docs for the full contract).
//! Other crates join the same economy through [`take_f32_buffer`] /
//! [`recycle_f32_buffer`] and [`take_index_buffer`] /
//! [`recycle_index_buffer`] for explicit staging buffers, or [`IndexVec`] — a
//! pooled `Vec<usize>` that recycles itself on drop — for index lists that
//! escape into caller-held results. The register-blocked matmul additionally
//! keeps a dedicated per-thread operand-packing workspace for
//! [`NdArray::matmul_transposed`], so attention-score products pack without
//! any pool traffic at all.
//!
//! # Planned inference (trace → plan → execute)
//!
//! The tape is the right tool for training but pays per-op machinery —
//! `Rc` node headers, parents vectors, boxed backward closures — that
//! steady-state inference re-creates identically every frame. The
//! [`GraphBuilder`] / [`ExecPlan`] layer removes it: record the forward
//! pass once as a typed, shape-checked DAG; compile it into a
//! lifetime-planned single-arena schedule; then execute the plan each frame
//! with **zero heap allocations** and no refcount traffic, dispatching to
//! the *same* slice-level kernels as the tape ops (which is what makes
//! planned and taped execution bit-identical at any thread count). Plans
//! are cached per shape class in a [`PlanCache`]; [`inference_mode`] is the
//! thread-local switch network forwards use to choose the planned path when
//! no gradient is required.
//!
//! # Example
//!
//! ```
//! use bliss_tensor::{NdArray, Tensor};
//!
//! # fn main() -> Result<(), bliss_tensor::TensorError> {
//! let w = Tensor::parameter(NdArray::from_vec(vec![2.0, -1.0], &[1, 2])?);
//! let x = Tensor::constant(NdArray::from_vec(vec![3.0, 4.0], &[2, 1])?);
//! let y = w.matmul(&x)?; // 2*3 - 1*4 = 2
//! y.backward()?;
//! assert_eq!(y.value().data()[0], 2.0);
//! assert_eq!(w.grad().unwrap().data(), &[3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod array;
mod autograd;
mod error;
mod exec;
mod gradcheck;
mod graph;
mod plan;
pub mod quant;
mod scratch;
mod workspace;

pub use array::NdArray;
pub use autograd::Tensor;
pub use error::TensorError;
pub use exec::{
    in_inference_mode, inference_mode, ExecPlan, PlanCache, PlanCacheStats, MAX_CACHED_ARENA_ELEMS,
    MAX_CACHED_PLANS,
};
pub use gradcheck::{check_gradients, GradCheckReport};
pub use graph::{DType, GraphBuilder, IndexSlot, NodeId};
pub use quant::{CalTap, QuantCalibration, QuantEntry, QuantSpec, QuantizedWeights};

/// Slice-level kernel entry points shared by the tape ops and the planned
/// executor.
///
/// These operate on caller-provided buffers with **zero allocations**, so
/// hot paths that stage data in pooled buffers (e.g. the sparse ViT's
/// per-pixel refinement tail, whose row count changes every frame and so
/// cannot live inside a shape-keyed [`ExecPlan`]) can run the exact same
/// arithmetic as the corresponding [`NdArray`] / [`Tensor`] ops —
/// bit-identical results at any thread count.
pub mod kernels {
    pub use crate::array::{add_row_assign, gather_rows_into, matmul_into};
}
pub use scratch::{
    pool_stats, recycle_f32_buffer, recycle_i32_buffer, recycle_i8_buffer, recycle_index_buffer,
    shelf_stats, take_f32_buffer, take_i32_buffer, take_i8_buffer, take_index_buffer, IndexVec,
    PoolStats, ShelfStats,
};
