use crate::array::conv_out_dims;
use crate::{NdArray, TensorError};
use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

type BackwardFn = Box<dyn Fn(&NdArray, &[Tensor])>;

struct TensorNode {
    id: u64,
    value: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward_fn: Option<BackwardFn>,
}

/// A node in a define-by-run autograd graph.
///
/// `Tensor` wraps an [`NdArray`] value together with the backward closure
/// that produced it. Cloning a `Tensor` is cheap (reference-counted); the
/// graph lives as long as any tensor referencing it.
///
/// Graphs are rebuilt on every forward pass; parameters (created with
/// [`Tensor::parameter`]) persist across passes and accumulate gradients
/// until [`Tensor::zero_grad`] is called.
///
/// `Tensor` is intentionally **not** `Send`: each training thread owns its
/// own graph.
#[derive(Clone)]
pub struct Tensor {
    node: Rc<TensorNode>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor(id={}, shape={:?}, requires_grad={})",
            self.node.id,
            self.node.value.borrow().shape(),
            self.node.requires_grad
        )
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a trainable leaf tensor (gradients will be accumulated).
    pub fn parameter(value: NdArray) -> Self {
        Self::leaf(value, true)
    }

    /// Creates a non-trainable leaf tensor (no gradients flow into it).
    pub fn constant(value: NdArray) -> Self {
        Self::leaf(value, false)
    }

    /// Creates a rank-2 constant from a scalar value.
    pub fn scalar(value: f32) -> Self {
        Self::constant(NdArray::from_vec(vec![value], &[1]).expect("scalar shape"))
    }

    fn leaf(value: NdArray, requires_grad: bool) -> Self {
        Tensor {
            node: Rc::new(TensorNode {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents: Vec::new(),
                backward_fn: None,
            }),
        }
    }

    /// Creates a graph node from an externally computed value and a custom
    /// backward closure — the extension point for fused operators defined
    /// outside this crate (e.g. `bliss_nn`'s parallel multi-head attention).
    ///
    /// `backward` receives the node's output gradient and its parents in the
    /// order given here; it must push gradients into the parents with
    /// [`Tensor::add_grad`] (which silently ignores constants). The closure is
    /// only retained when at least one parent requires gradients.
    ///
    /// # Example
    ///
    /// ```
    /// use bliss_tensor::{NdArray, Tensor};
    ///
    /// // A custom "times four" op: forward computes 4x, backward scales the
    /// // incoming gradient by 4.
    /// let x = Tensor::parameter(NdArray::from_vec(vec![1.5], &[1]).unwrap());
    /// let y = Tensor::from_custom_op(
    ///     x.value().scale(4.0),
    ///     vec![x.clone()],
    ///     |grad, parents| {
    ///         parents[0].add_grad(&grad.scale(4.0)).expect("shape matches");
    ///     },
    /// );
    /// y.backward().unwrap();
    /// assert_eq!(y.value().data(), &[6.0]);
    /// assert_eq!(x.grad().unwrap().data(), &[4.0]);
    /// ```
    pub fn from_custom_op(
        value: NdArray,
        parents: Vec<Tensor>,
        backward: impl Fn(&NdArray, &[Tensor]) + 'static,
    ) -> Self {
        Self::from_op(value, parents, Box::new(backward))
    }

    fn from_op(value: NdArray, parents: Vec<Tensor>, backward_fn: BackwardFn) -> Self {
        let requires_grad = parents.iter().any(|p| p.requires_grad());
        Tensor {
            node: Rc::new(TensorNode {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents,
                backward_fn: if requires_grad {
                    Some(backward_fn)
                } else {
                    None
                },
            }),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Unique identifier of this node within the process.
    pub fn id(&self) -> u64 {
        self.node.id
    }

    /// Borrow of the current value.
    ///
    /// # Panics
    ///
    /// Panics if the value is concurrently borrowed mutably (only possible
    /// from within an optimizer update closure).
    pub fn value(&self) -> Ref<'_, NdArray> {
        self.node.value.borrow()
    }

    /// Shape of the current value (cloned to avoid borrow lifetimes).
    pub fn shape(&self) -> Vec<usize> {
        self.node.value.borrow().shape().to_vec()
    }

    /// Whether gradients flow into this tensor.
    pub fn requires_grad(&self) -> bool {
        self.node.requires_grad
    }

    /// A clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.node.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.node.grad.borrow_mut() = None;
    }

    /// Replaces the stored value (used by optimizers).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the new value's shape differs
    /// from the current one.
    pub fn set_value(&self, value: NdArray) -> Result<(), TensorError> {
        let current = self.node.value.borrow().shape().to_vec();
        if current != value.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "set_value",
                lhs: current,
                rhs: value.shape().to_vec(),
            });
        }
        *self.node.value.borrow_mut() = value;
        Ok(())
    }

    /// Applies an in-place mutation to the stored value (used by optimizers).
    pub fn update_value(&self, f: impl FnOnce(&mut NdArray)) {
        f(&mut self.node.value.borrow_mut());
    }

    /// Returns a constant tensor sharing this tensor's current value
    /// (cuts the graph).
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.node.value.borrow().clone())
    }

    /// Accumulates an externally computed gradient into this tensor.
    ///
    /// Intended for optimizers and gradient surgery (clipping, masking).
    /// Ignored for tensors that do not require gradients.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `g` has a different shape
    /// from the tensor's value.
    pub fn add_grad(&self, g: &NdArray) -> Result<(), TensorError> {
        let shape = self.node.value.borrow().shape().to_vec();
        if shape != g.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_grad",
                lhs: shape,
                rhs: g.shape().to_vec(),
            });
        }
        self.accumulate_grad(g);
        Ok(())
    }

    fn accumulate_grad(&self, g: &NdArray) {
        if !self.node.requires_grad {
            return;
        }
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => {
                existing
                    .add_assign(g)
                    .expect("gradient shape must match value shape");
            }
            None => *slot = Some(g.clone()),
        }
    }

    // ------------------------------------------------------------------
    // Backward pass
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from this tensor.
    ///
    /// The seed gradient is all-ones (for scalar losses this is the usual
    /// `dL/dL = 1`). Gradients accumulate into every reachable tensor with
    /// `requires_grad`.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` to keep the signature
    /// stable if graph validation is added.
    pub fn backward(&self) -> Result<(), TensorError> {
        let topo = self.topo_order();
        self.accumulate_seed();
        for node in topo.iter().rev() {
            let grad = node.node.grad.borrow().clone();
            if let (Some(grad), Some(f)) = (grad, node.node.backward_fn.as_ref()) {
                f(&grad, &node.node.parents);
            }
        }
        Ok(())
    }

    fn accumulate_seed(&self) {
        let seed = NdArray::ones(self.node.value.borrow().shape());
        // The seed bypasses requires_grad so constants can seed their parents.
        let mut slot = self.node.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign(&seed).expect("seed shape"),
            None => *slot = Some(seed),
        }
    }

    fn topo_order(&self) -> Vec<Tensor> {
        let mut order = Vec::new();
        let mut visited = HashSet::new();
        // Iterative post-order DFS to avoid stack overflow on deep graphs.
        enum Frame {
            Enter(Tensor),
            Exit(Tensor),
        }
        let mut stack = vec![Frame::Enter(self.clone())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(t) => {
                    if !visited.insert(t.id()) {
                        continue;
                    }
                    stack.push(Frame::Exit(t.clone()));
                    for p in &t.node.parents {
                        if !visited.contains(&p.id()) {
                            stack.push(Frame::Enter(p.clone()));
                        }
                    }
                }
                Frame::Exit(t) => order.push(t),
            }
        }
        order
    }

    // ------------------------------------------------------------------
    // Elementwise ops
    // ------------------------------------------------------------------

    /// Elementwise sum. See [`NdArray::add`] for shape requirements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let value = self.value().add(&other.value())?;
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(g);
                parents[1].accumulate_grad(g);
            }),
        ))
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let value = self.value().sub(&other.value())?;
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(g);
                parents[1].accumulate_grad(&g.neg());
            }),
        ))
    }

    /// Elementwise product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let value = self.value().mul(&other.value())?;
        let a = self.value().clone();
        let b = other.value().clone();
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&g.mul(&b).expect("mul grad shape"));
                parents[1].accumulate_grad(&g.mul(&a).expect("mul grad shape"));
            }),
        ))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(&self, c: f32) -> Tensor {
        let value = self.value().scale(c);
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| parents[0].accumulate_grad(&g.scale(c))),
        )
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let value = self.value().add_scalar(c);
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| parents[0].accumulate_grad(g)),
        )
    }

    /// Elementwise product with a constant mask (no gradient to the mask).
    ///
    /// This implements the paper's gradient masking (§III-C): gradients at
    /// un-sampled pixels are zeroed by the mask on the way back.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mask shape differs.
    pub fn mul_mask(&self, mask: &NdArray) -> Result<Tensor, TensorError> {
        let value = self.value().mul(mask)?;
        let m = mask.clone();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&g.mul(&m).expect("mask grad shape"));
            }),
        ))
    }

    /// Broadcasts a single-element tensor to an arbitrary shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `self` has more than one
    /// element.
    pub fn broadcast_to(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        if self.value().len() != 1 {
            return Err(TensorError::InvalidArgument {
                op: "broadcast_to",
                message: format!("expected single element, got {:?}", self.shape()),
            });
        }
        let v = self.value().data()[0];
        let value = NdArray::full(shape, v);
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                let total = NdArray::from_vec(vec![g.sum()], &[1]).expect("scalar");
                let pshape = parents[0].shape();
                parents[0].accumulate_grad(&total.reshape(&pshape).expect("reshape scalar"));
            }),
        ))
    }

    /// Adds a length-`n` bias row to every row of an `[m, n]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on rank/length mismatch.
    pub fn add_row(&self, row: &Tensor) -> Result<Tensor, TensorError> {
        let value = self.value().add_row(&row.value())?;
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), row.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(g);
                parents[1].accumulate_grad(&g.sum_rows().expect("bias grad"));
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let x = self.value().clone();
        let value = x.map(|v| v.max(0.0));
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let dg = g.zip_with(&x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                parents[0].accumulate_grad(&dg);
            }),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let value = self.value().map(crate::array::sigmoid_scalar);
        let y = value.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let dg = g.zip_with(&y, |gv, yv| gv * yv * (1.0 - yv));
                parents[0].accumulate_grad(&dg);
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let value = self.value().map(f32::tanh);
        let y = value.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let dg = g.zip_with(&y, |gv, yv| gv * (1.0 - yv * yv));
                parents[0].accumulate_grad(&dg);
            }),
        )
    }

    /// Gaussian error linear unit (tanh approximation), as used in ViT MLPs.
    pub fn gelu(&self) -> Tensor {
        use crate::array::{GELU_A as A, GELU_B as B};
        let x = self.value().clone();
        let value = x.map(crate::array::gelu_scalar);
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let dg = g.zip_with(&x, |gv, v| {
                    let u = A * (v + B * v * v * v);
                    let t = u.tanh();
                    let du = A * (1.0 + 3.0 * B * v * v);
                    gv * (0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du)
                });
                parents[0].accumulate_grad(&dg);
            }),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product; see [`NdArray::matmul`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying matmul.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        let value = self.value().matmul(&other.value())?;
        let a = self.value().clone();
        let b = other.value().clone();
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                if parents[0].requires_grad() {
                    // dA = g B^T, without materialising the transpose.
                    parents[0].accumulate_grad(&g.matmul_transposed(&b).expect("matmul grad a"));
                }
                if parents[1].requires_grad() {
                    let at = a.transpose().expect("matmul grad transpose");
                    parents[1].accumulate_grad(&at.matmul(g).expect("matmul grad b"));
                }
            }),
        ))
    }

    /// Matrix transpose.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        let value = self.value().transpose()?;
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(&g.transpose().expect("transpose grad"));
            }),
        ))
    }

    /// Reshape preserving element order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let value = self.value().reshape(shape)?;
        let original = self.shape();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&g.reshape(&original).expect("reshape grad"));
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Softmax / normalisation
    // ------------------------------------------------------------------

    /// Row-wise softmax of an `[m, n]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors.
    pub fn softmax_rows(&self) -> Result<Tensor, TensorError> {
        let value = self.value().softmax_rows()?;
        let s = value.clone();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let (m, n) = (s.shape()[0], s.shape()[1]);
                let mut dg = vec![0.0f32; m * n];
                for i in 0..m {
                    let srow = &s.data()[i * n..(i + 1) * n];
                    let grow = &g.data()[i * n..(i + 1) * n];
                    let dot: f32 = srow.iter().zip(grow.iter()).map(|(&a, &b)| a * b).sum();
                    for j in 0..n {
                        dg[i * n + j] = srow[j] * (grow[j] - dot);
                    }
                }
                let dg = NdArray::from_vec(dg, &[m, n]).expect("softmax grad shape");
                parents[0].accumulate_grad(&dg);
            }),
        ))
    }

    /// Per-row layer normalisation with learnable scale and shift.
    ///
    /// `self` is `[m, n]`; `gamma` and `beta` are `[n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on rank/length mismatch.
    pub fn layer_norm(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<Tensor, TensorError> {
        let x = self.value().clone();
        if x.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "layer_norm",
                expected: 2,
                actual: x.ndim(),
            });
        }
        let (m, n) = (x.shape()[0], x.shape()[1]);
        let gv = gamma.value().clone();
        let bv = beta.value().clone();
        if gv.shape() != [n] || bv.shape() != [n] {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: x.shape().to_vec(),
                rhs: gv.shape().to_vec(),
            });
        }
        let mut out = crate::scratch::take_zeroed(m * n);
        let mut xhat = crate::scratch::take_zeroed(m * n);
        let mut inv_std = crate::scratch::take_zeroed(m);
        for i in 0..m {
            let row = &x.data()[i * n..(i + 1) * n];
            let (mu, istd) = crate::array::layer_norm_row_stats(row, eps);
            inv_std[i] = istd;
            for j in 0..n {
                let xh = (row[j] - mu) * istd;
                xhat[i * n + j] = xh;
                out[i * n + j] = xh * gv.data()[j] + bv.data()[j];
            }
        }
        let value = NdArray::from_vec(out, &[m, n])?;
        let xhat = NdArray::from_vec(xhat, &[m, n])?;
        let inv_std = NdArray::from_vec(inv_std, &[m])?;
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g, parents| {
                let mut dx = vec![0.0f32; m * n];
                let mut dgamma = vec![0.0f32; n];
                let mut dbeta = vec![0.0f32; n];
                for i in 0..m {
                    let grow = &g.data()[i * n..(i + 1) * n];
                    let xrow = &xhat.data()[i * n..(i + 1) * n];
                    // dL/dxhat = g * gamma
                    let dxhat: Vec<f32> = (0..n).map(|j| grow[j] * gv.data()[j]).collect();
                    let sum_dxhat: f32 = dxhat.iter().sum();
                    let sum_dxhat_xhat: f32 =
                        dxhat.iter().zip(xrow.iter()).map(|(&a, &b)| a * b).sum();
                    for j in 0..n {
                        dgamma[j] += grow[j] * xrow[j];
                        dbeta[j] += grow[j];
                        dx[i * n + j] = inv_std.data()[i] / n as f32
                            * (n as f32 * dxhat[j] - sum_dxhat - xrow[j] * sum_dxhat_xhat);
                    }
                }
                parents[0]
                    .accumulate_grad(&NdArray::from_vec(dx, &[m, n]).expect("layer_norm dx shape"));
                parents[1]
                    .accumulate_grad(&NdArray::from_vec(dgamma, &[n]).expect("layer_norm dgamma"));
                parents[2]
                    .accumulate_grad(&NdArray::from_vec(dbeta, &[n]).expect("layer_norm dbeta"));
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Convolution
    // ------------------------------------------------------------------

    /// 2-D convolution of a `[ic, h, w]` input with weights `[oc, ic, kh, kw]`
    /// and optional bias `[oc]`, producing `[oc, oh, ow]`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the operands do not line up.
    pub fn conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor, TensorError> {
        let x = self.value().clone();
        let w = weight.value().clone();
        if x.ndim() != 3 {
            return Err(TensorError::RankMismatch {
                op: "conv2d",
                expected: 3,
                actual: x.ndim(),
            });
        }
        if w.ndim() != 4 || w.shape()[1] != x.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: x.shape().to_vec(),
                rhs: w.shape().to_vec(),
            });
        }
        let (ic, h, win) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (oc, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
        let (oh, ow) = conv_out_dims(h, win, kh, kw, stride, pad)?;
        let cols = x.im2col(kh, kw, stride, pad)?;
        let w2 = w.reshape(&[oc, ic * kh * kw])?;
        let mut out2 = w2.matmul(&cols)?;
        if let Some(b) = bias {
            let bv = b.value().clone();
            if bv.shape() != [oc] {
                return Err(TensorError::ShapeMismatch {
                    op: "conv2d bias",
                    lhs: vec![oc],
                    rhs: bv.shape().to_vec(),
                });
            }
            for c in 0..oc {
                for v in &mut out2.data_mut()[c * oh * ow..(c + 1) * oh * ow] {
                    *v += bv.data()[c];
                }
            }
        }
        let value = out2.reshape(&[oc, oh, ow])?;
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        let has_bias = bias.is_some();
        Ok(Tensor::from_op(
            value,
            parents,
            Box::new(move |g, parents| {
                let g2 = g.reshape(&[oc, oh * ow]).expect("conv grad reshape");
                if parents[0].requires_grad() {
                    let w2t = w2.transpose().expect("conv w2 transpose");
                    let dcols = w2t.matmul(&g2).expect("conv dcols");
                    let dx = dcols
                        .col2im(ic, h, win, kh, kw, stride, pad)
                        .expect("conv col2im");
                    parents[0].accumulate_grad(&dx);
                }
                if parents[1].requires_grad() {
                    let colst = cols.transpose().expect("conv cols transpose");
                    let dw2 = g2.matmul(&colst).expect("conv dw");
                    let dw = dw2.reshape(&[oc, ic, kh, kw]).expect("conv dw reshape");
                    parents[1].accumulate_grad(&dw);
                }
                if has_bias && parents[2].requires_grad() {
                    let mut db = vec![0.0f32; oc];
                    for c in 0..oc {
                        db[c] = g2.data()[c * oh * ow..(c + 1) * oh * ow].iter().sum();
                    }
                    parents[2]
                        .accumulate_grad(&NdArray::from_vec(db, &[oc]).expect("conv db shape"));
                }
            }),
        ))
    }

    /// Depthwise 2-D convolution: input `[c, h, w]`, weights `[c, kh, kw]`,
    /// optional bias `[c]`, producing `[c, oh, ow]`. Used by the
    /// EdGaze-style depthwise-separable baseline.
    ///
    /// # Errors
    ///
    /// Returns shape errors if operands do not line up.
    pub fn depthwise_conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Result<Tensor, TensorError> {
        let x = self.value().clone();
        let w = weight.value().clone();
        if x.ndim() != 3 || w.ndim() != 3 || w.shape()[0] != x.shape()[0] {
            return Err(TensorError::ShapeMismatch {
                op: "depthwise_conv2d",
                lhs: x.shape().to_vec(),
                rhs: w.shape().to_vec(),
            });
        }
        let (c, h, win) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let (kh, kw) = (w.shape()[1], w.shape()[2]);
        let (oh, ow) = conv_out_dims(h, win, kh, kw, stride, pad)?;
        let bv = match bias {
            Some(b) => {
                let bv = b.value().clone();
                if bv.shape() != [c] {
                    return Err(TensorError::ShapeMismatch {
                        op: "depthwise_conv2d bias",
                        lhs: vec![c],
                        rhs: bv.shape().to_vec(),
                    });
                }
                Some(bv)
            }
            None => None,
        };
        let mut out = vec![0.0f32; c * oh * ow];
        for ci in 0..c {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = bv.as_ref().map_or(0.0, |b| b.data()[ci]);
                    for ki in 0..kh {
                        let ii = (oi * stride + ki) as isize - pad as isize;
                        if ii < 0 || ii as usize >= h {
                            continue;
                        }
                        for kj in 0..kw {
                            let jj = (oj * stride + kj) as isize - pad as isize;
                            if jj < 0 || jj as usize >= win {
                                continue;
                            }
                            acc += x.data()[(ci * h + ii as usize) * win + jj as usize]
                                * w.data()[(ci * kh + ki) * kw + kj];
                        }
                    }
                    out[(ci * oh + oi) * ow + oj] = acc;
                }
            }
        }
        let value = NdArray::from_vec(out, &[c, oh, ow])?;
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        let has_bias = bias.is_some();
        Ok(Tensor::from_op(
            value,
            parents,
            Box::new(move |g, parents| {
                let mut dx = vec![0.0f32; c * h * win];
                let mut dw = vec![0.0f32; c * kh * kw];
                let mut db = vec![0.0f32; c];
                for ci in 0..c {
                    for oi in 0..oh {
                        for oj in 0..ow {
                            let gv = g.data()[(ci * oh + oi) * ow + oj];
                            db[ci] += gv;
                            for ki in 0..kh {
                                let ii = (oi * stride + ki) as isize - pad as isize;
                                if ii < 0 || ii as usize >= h {
                                    continue;
                                }
                                for kj in 0..kw {
                                    let jj = (oj * stride + kj) as isize - pad as isize;
                                    if jj < 0 || jj as usize >= win {
                                        continue;
                                    }
                                    let xi = (ci * h + ii as usize) * win + jj as usize;
                                    let wi = (ci * kh + ki) * kw + kj;
                                    dx[xi] += gv * w.data()[wi];
                                    dw[wi] += gv * x.data()[xi];
                                }
                            }
                        }
                    }
                }
                parents[0].accumulate_grad(
                    &NdArray::from_vec(dx, &[c, h, win]).expect("dw conv dx shape"),
                );
                parents[1].accumulate_grad(
                    &NdArray::from_vec(dw, &[c, kh, kw]).expect("dw conv dw shape"),
                );
                if has_bias {
                    parents[2]
                        .accumulate_grad(&NdArray::from_vec(db, &[c]).expect("dw conv db shape"));
                }
            }),
        ))
    }

    /// Nearest-neighbour 2x upsampling of a `[c, h, w]` tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-CHW tensors.
    pub fn upsample2x(&self) -> Result<Tensor, TensorError> {
        let value = self.value().upsample2x()?;
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(|g, parents| {
                parents[0].accumulate_grad(&g.block_sum2x().expect("upsample grad"));
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Structural ops
    // ------------------------------------------------------------------

    /// Concatenates rank-2 tensors along the row axis.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdArray::concat_rows`].
    pub fn concat_rows(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let values: Vec<_> = parts.iter().map(|p| p.value().clone()).collect();
        let refs: Vec<&NdArray> = values.iter().collect();
        let value = NdArray::concat_rows(&refs)?;
        let row_counts: Vec<usize> = values.iter().map(|v| v.shape()[0]).collect();
        Ok(Tensor::from_op(
            value,
            parts.to_vec(),
            Box::new(move |g, parents| {
                let mut start = 0;
                for (p, &rows) in parents.iter().zip(row_counts.iter()) {
                    let part = g.slice_rows(start, start + rows).expect("concat grad");
                    p.accumulate_grad(&part);
                    start += rows;
                }
            }),
        ))
    }

    /// Concatenates rank-2 tensors along the column axis.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdArray::concat_cols`].
    pub fn concat_cols(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let values: Vec<_> = parts.iter().map(|p| p.value().clone()).collect();
        let refs: Vec<&NdArray> = values.iter().collect();
        let value = NdArray::concat_cols(&refs)?;
        let col_counts: Vec<usize> = values.iter().map(|v| v.shape()[1]).collect();
        let rows = value.shape()[0];
        Ok(Tensor::from_op(
            value,
            parts.to_vec(),
            Box::new(move |g, parents| {
                let total: usize = col_counts.iter().sum();
                let mut start = 0;
                for (p, &cols) in parents.iter().zip(col_counts.iter()) {
                    let mut part = vec![0.0f32; rows * cols];
                    for r in 0..rows {
                        part[r * cols..(r + 1) * cols].copy_from_slice(
                            &g.data()[r * total + start..r * total + start + cols],
                        );
                    }
                    p.accumulate_grad(
                        &NdArray::from_vec(part, &[rows, cols]).expect("concat_cols grad"),
                    );
                    start += cols;
                }
            }),
        ))
    }

    /// Gathers rows of a rank-2 tensor by index (duplicates allowed).
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdArray::gather_rows`].
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor, TensorError> {
        let value = self.value().gather_rows(indices)?;
        // Pooled copy: the backward closure holds the indices for the life
        // of the graph, and recycles them when the graph drops.
        let idx = crate::scratch::IndexVec::from_slice(indices);
        let parent_shape = self.shape();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let n = parent_shape[1];
                let mut dg = NdArray::zeros(&parent_shape);
                for (r, &i) in idx.iter().enumerate() {
                    for j in 0..n {
                        dg.data_mut()[i * n + j] += g.data()[r * n + j];
                    }
                }
                parents[0].accumulate_grad(&dg);
            }),
        ))
    }

    /// Copies rows `[start, end)` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NdArray::slice_rows`].
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor, TensorError> {
        let value = self.value().slice_rows(start, end)?;
        let parent_shape = self.shape();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let n = parent_shape[1];
                let mut dg = NdArray::zeros(&parent_shape);
                dg.data_mut()[start * n..start * n + g.len()].copy_from_slice(g.data());
                parents[0].accumulate_grad(&dg);
            }),
        ))
    }

    // ------------------------------------------------------------------
    // Reductions & losses
    // ------------------------------------------------------------------

    /// Sum of all elements, producing a `[1]` tensor.
    pub fn sum_all(&self) -> Tensor {
        let value = NdArray::from_vec(vec![self.value().sum()], &[1]).expect("scalar");
        let shape = self.shape();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                parents[0].accumulate_grad(&NdArray::full(&shape, g.data()[0]));
            }),
        )
    }

    /// Mean of all elements, producing a `[1]` tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.value().len().max(1) as f32;
        self.sum_all().scale(1.0 / n)
    }

    /// Mean squared error against a constant target, producing `[1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mse_loss(&self, target: &NdArray) -> Result<Tensor, TensorError> {
        let diff = self.value().sub(target)?;
        let n = diff.len().max(1) as f32;
        let value = NdArray::from_vec(vec![diff.map(|v| v * v).sum() / n], &[1])?;
        let d = diff;
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let c = 2.0 * g.data()[0] / n;
                parents[0].accumulate_grad(&d.scale(c));
            }),
        ))
    }

    /// Softmax cross-entropy with a *differentiable* per-row weight tensor.
    ///
    /// `self` is `[n, c]` logits, `weights` is `[n]`. The loss is the
    /// weighted mean `L = sum_i w_i * ce_i / C` with `C = max(sum_i w_i,
    /// eps)`; gradients flow both into the logits (scaled by `w_i / C`) and
    /// into the weights (`dL/dw_i = (ce_i - L) / C`, the exact quotient
    /// rule).
    ///
    /// This implements the paper's joint-training gradient path (§III-C,
    /// Fig. 5): with `w` a soft, differentiable ROI gate, the segmentation
    /// loss back-propagates into the ROI-prediction network, while pixels
    /// outside the random-sampling mask carry zero weight — the "gradient
    /// masking" of unsampled pixels.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `targets`/`weights` do not match the rows, or
    /// [`TensorError::IndexOutOfBounds`] for an out-of-range class index.
    pub fn cross_entropy_rows_gated(
        &self,
        targets: &[usize],
        weights: &Tensor,
    ) -> Result<Tensor, TensorError> {
        let x = self.value().clone();
        if x.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "cross_entropy_rows_gated",
                expected: 2,
                actual: x.ndim(),
            });
        }
        let (n, c) = (x.shape()[0], x.shape()[1]);
        let w = weights.value().clone();
        if targets.len() != n || w.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "cross_entropy_rows_gated",
                lhs: vec![n],
                rhs: vec![targets.len().max(w.len())],
            });
        }
        for &t in targets {
            if t >= c {
                return Err(TensorError::IndexOutOfBounds {
                    op: "cross_entropy_rows_gated",
                    index: t,
                    bound: c,
                });
            }
        }
        let probs = x.softmax_rows()?;
        let denom = w.data().iter().sum::<f32>().max(1e-6);
        let mut ce = vec![0.0f32; n];
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            ce[i] = -probs.data()[i * c + t].max(1e-12).ln();
            loss += w.data()[i] * ce[i];
        }
        let loss_value = loss / denom;
        let value = NdArray::from_vec(vec![loss_value], &[1])?;
        let tgt = targets.to_vec();
        let w_shape = w.shape().to_vec();
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), weights.clone()],
            Box::new(move |g, parents| {
                let gs = g.data()[0] / denom;
                if parents[0].requires_grad() {
                    let mut dx = probs.clone();
                    for (i, &t) in tgt.iter().enumerate() {
                        let row = &mut dx.data_mut()[i * c..(i + 1) * c];
                        row[t] -= 1.0;
                        for v in row.iter_mut() {
                            *v *= w.data()[i] * gs;
                        }
                    }
                    parents[0].accumulate_grad(&dx);
                }
                if parents[1].requires_grad() {
                    let dw: Vec<f32> = ce.iter().map(|&e| (e - loss_value) * gs).collect();
                    parents[1].accumulate_grad(
                        &NdArray::from_vec(dw, &w_shape).expect("gated ce dw shape"),
                    );
                }
            }),
        ))
    }

    /// Weighted softmax cross-entropy over rows of an `[n, c]` logit tensor.
    ///
    /// `targets[i]` is the class index of row `i`; `weights` (if given) is a
    /// per-row weight of shape `[n]` — rows with weight 0 are ignored. The
    /// loss is normalised by the total weight, producing a `[1]` tensor.
    ///
    /// This single op implements both the dense segmentation loss and the
    /// *sparse* loss (weights = sampling mask) used for gradient masking in
    /// the paper's joint training (§III-C).
    ///
    /// # Errors
    ///
    /// Returns shape errors if `targets`/`weights` do not match the rows, or
    /// [`TensorError::IndexOutOfBounds`] for an out-of-range class index.
    pub fn cross_entropy_rows(
        &self,
        targets: &[usize],
        weights: Option<&[f32]>,
    ) -> Result<Tensor, TensorError> {
        let x = self.value().clone();
        if x.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                op: "cross_entropy_rows",
                expected: 2,
                actual: x.ndim(),
            });
        }
        let (n, c) = (x.shape()[0], x.shape()[1]);
        if targets.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "cross_entropy_rows",
                lhs: vec![n],
                rhs: vec![targets.len()],
            });
        }
        if let Some(w) = weights {
            if w.len() != n {
                return Err(TensorError::ShapeMismatch {
                    op: "cross_entropy_rows weights",
                    lhs: vec![n],
                    rhs: vec![w.len()],
                });
            }
        }
        for &t in targets {
            if t >= c {
                return Err(TensorError::IndexOutOfBounds {
                    op: "cross_entropy_rows",
                    index: t,
                    bound: c,
                });
            }
        }
        let probs = x.softmax_rows()?;
        let total_weight: f32 = match weights {
            Some(w) => w.iter().sum(),
            None => n as f32,
        };
        let denom = if total_weight > 0.0 {
            total_weight
        } else {
            1.0
        };
        let mut loss = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            let w = weights.map_or(1.0, |w| w[i]);
            if w == 0.0 {
                continue;
            }
            loss -= w * probs.data()[i * c + t].max(1e-12).ln();
        }
        let value = NdArray::from_vec(vec![loss / denom], &[1])?;
        let tgt = targets.to_vec();
        let wts = weights.map(|w| w.to_vec());
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let gs = g.data()[0] / denom;
                let mut dx = probs.clone();
                for (i, &t) in tgt.iter().enumerate() {
                    let w = wts.as_ref().map_or(1.0, |w| w[i]);
                    let row = &mut dx.data_mut()[i * c..(i + 1) * c];
                    if w == 0.0 {
                        for v in row.iter_mut() {
                            *v = 0.0;
                        }
                        continue;
                    }
                    row[t] -= 1.0;
                    for v in row.iter_mut() {
                        *v *= w * gs;
                    }
                }
                parents[0].accumulate_grad(&dx);
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arr(data: Vec<f32>, shape: &[usize]) -> NdArray {
        NdArray::from_vec(data, shape).unwrap()
    }

    #[test]
    fn add_backward_accumulates_to_both_parents() {
        let a = Tensor::parameter(arr(vec![1.0, 2.0], &[2]));
        let b = Tensor::parameter(arr(vec![3.0, 4.0], &[2]));
        let c = a.add(&b).unwrap();
        c.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn sub_backward_negates_rhs() {
        let a = Tensor::parameter(arr(vec![1.0], &[1]));
        let b = Tensor::parameter(arr(vec![2.0], &[1]));
        let c = a.sub(&b).unwrap();
        c.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[1.0]);
        assert_eq!(b.grad().unwrap().data(), &[-1.0]);
    }

    #[test]
    fn mul_backward_cross_terms() {
        let a = Tensor::parameter(arr(vec![2.0], &[1]));
        let b = Tensor::parameter(arr(vec![5.0], &[1]));
        a.mul(&b).unwrap().backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[5.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // f = sum(A @ B); dA = ones @ B^T, dB = A^T @ ones
        let a = Tensor::parameter(arr(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Tensor::parameter(arr(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let f = a.matmul(&b).unwrap().sum_all();
        f.backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn grad_reuse_accumulates() {
        // y = x + x => dy/dx = 2
        let x = Tensor::parameter(arr(vec![3.0], &[1]));
        let y = x.add(&x).unwrap();
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn diamond_graph_single_visit() {
        // z = (x*x) + (x*x) using two separate mul nodes
        let x = Tensor::parameter(arr(vec![3.0], &[1]));
        let a = x.mul(&x).unwrap();
        let b = x.mul(&x).unwrap();
        let z = a.add(&b).unwrap();
        z.backward().unwrap();
        // dz/dx = 2*2x = 12
        assert_eq!(x.grad().unwrap().data(), &[12.0]);
    }

    #[test]
    fn constants_do_not_accumulate() {
        let x = Tensor::constant(arr(vec![1.0], &[1]));
        let y = x.scale(3.0);
        y.backward().unwrap();
        assert!(x.grad().is_none());
    }

    #[test]
    fn relu_gates_gradient() {
        let x = Tensor::parameter(arr(vec![-1.0, 2.0], &[2]));
        x.relu().sum_all().backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_value_and_grad() {
        let x = Tensor::parameter(arr(vec![0.0], &[1]));
        let y = x.sigmoid();
        assert!((y.value().data()[0] - 0.5).abs() < 1e-6);
        y.backward().unwrap();
        assert!((x.grad().unwrap().data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sums_to_one_and_grad_is_zero_for_uniform_seed() {
        // With g = ones, softmax gradient is exactly zero (shift invariance).
        let x = Tensor::parameter(arr(vec![0.3, -0.7, 1.5], &[1, 3]));
        let y = x.softmax_rows().unwrap();
        let s: f32 = y.value().data().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        y.backward().unwrap();
        for &g in x.grad().unwrap().data() {
            assert!(g.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_matches_manual() {
        // Uniform logits over 4 classes: loss = ln(4)
        let x = Tensor::parameter(NdArray::zeros(&[2, 4]));
        let loss = x.cross_entropy_rows(&[1, 2], None).unwrap();
        assert!((loss.value().data()[0] - 4.0f32.ln()).abs() < 1e-5);
        loss.backward().unwrap();
        let g = x.grad().unwrap();
        // gradient: (softmax - onehot)/n = (0.25 - [0|1])/2
        assert!((g.at(0, 0) - 0.125).abs() < 1e-6);
        assert!((g.at(0, 1) + 0.375).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_zero_weight_rows_are_ignored() {
        let x = Tensor::parameter(arr(vec![5.0, 0.0, 0.0, 5.0], &[2, 2]));
        let w = vec![1.0, 0.0];
        let loss = x.cross_entropy_rows(&[0, 0], Some(&w)).unwrap();
        loss.backward().unwrap();
        let g = x.grad().unwrap();
        assert_eq!(g.at(1, 0), 0.0);
        assert_eq!(g.at(1, 1), 0.0);
        assert!(g.at(0, 1) != 0.0);
    }

    #[test]
    fn cross_entropy_rejects_bad_target() {
        let x = Tensor::parameter(NdArray::zeros(&[1, 3]));
        assert!(x.cross_entropy_rows(&[3], None).is_err());
    }

    #[test]
    fn gated_cross_entropy_matches_constant_weights() {
        let logits = arr(vec![1.0, -0.5, 0.2, 0.3, 2.0, -1.0], &[2, 3]);
        let x1 = Tensor::parameter(logits.clone());
        let x2 = Tensor::parameter(logits);
        let wv = vec![0.5f32, 2.0];
        let w = Tensor::constant(arr(wv.clone(), &[2]));
        let gated = x1.cross_entropy_rows_gated(&[0, 1], &w).unwrap();
        let fixed = x2.cross_entropy_rows(&[0, 1], Some(&wv)).unwrap();
        assert!((gated.value().data()[0] - fixed.value().data()[0]).abs() < 1e-6);
        gated.backward().unwrap();
        fixed.backward().unwrap();
        assert!(x1.grad().unwrap().approx_eq(&x2.grad().unwrap(), 1e-6));
    }

    #[test]
    fn gated_cross_entropy_weight_gradient_quotient_rule() {
        // Two rows with different ce: dL/dw_i = (ce_i - L)/C.
        // Row 0: uniform over 4 -> ce = ln 4. Row 1: confident correct.
        let logits = arr(vec![0.0, 0.0, 0.0, 0.0, 10.0, 0.0, 0.0, 0.0], &[2, 4]);
        let x = Tensor::constant(logits);
        let w = Tensor::parameter(arr(vec![1.0, 1.0], &[2]));
        let loss = x.cross_entropy_rows_gated(&[2, 0], &w).unwrap();
        let l = loss.value().data()[0];
        loss.backward().unwrap();
        let g = w.grad().unwrap();
        let ce0 = (4.0f32).ln();
        assert!((g.data()[0] - (ce0 - l) / 2.0).abs() < 1e-5);
        // increasing weight on the well-classified row lowers the loss
        assert!(g.data()[1] < 0.0);
    }

    #[test]
    fn gated_cross_entropy_gradcheck() {
        let mut rng = StdRng::seed_from_u64(21);
        let logits = NdArray::randn(&mut rng, &[4, 3], 1.0);
        let x = Tensor::parameter(logits);
        let w = Tensor::parameter(arr(vec![0.9, 0.1, 0.5, 1.4], &[4]));
        let report = crate::check_gradients(
            &[x.clone(), w.clone()],
            || x.cross_entropy_rows_gated(&[0, 2, 1, 0], &w),
            1e-3,
            16,
        )
        .unwrap();
        assert!(report.passes(2e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn mse_loss_value_and_grad() {
        let x = Tensor::parameter(arr(vec![1.0, 3.0], &[2]));
        let t = arr(vec![0.0, 1.0], &[2]);
        let loss = x.mse_loss(&t).unwrap();
        // ((1)^2 + (2)^2)/2 = 2.5
        assert!((loss.value().data()[0] - 2.5).abs() < 1e-6);
        loss.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn conv2d_known_output() {
        // 1x1 input channel, 2x2 image, identity-ish kernel
        let x = Tensor::parameter(arr(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]));
        let w = Tensor::parameter(arr(vec![1.0, 0.0, 0.0, 1.0], &[1, 1, 2, 2]));
        let y = x.conv2d(&w, None, 1, 0).unwrap();
        assert_eq!(y.shape(), vec![1, 1, 1]);
        assert_eq!(y.value().data()[0], 5.0); // 1*1 + 4*1
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(w.grad().unwrap().data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv2d_bias_grad_is_spatial_sum() {
        let x = Tensor::constant(NdArray::ones(&[1, 3, 3]));
        let w = Tensor::constant(NdArray::zeros(&[2, 1, 1, 1]));
        let b = Tensor::parameter(NdArray::zeros(&[2]));
        let y = x.conv2d(&w, Some(&b), 1, 0).unwrap();
        y.sum_all().backward().unwrap();
        assert_eq!(b.grad().unwrap().data(), &[9.0, 9.0]);
    }

    #[test]
    fn depthwise_conv_matches_full_conv_for_single_channel() {
        let mut rng = StdRng::seed_from_u64(11);
        let img = NdArray::randn(&mut rng, &[1, 4, 4], 1.0);
        let ker = NdArray::randn(&mut rng, &[1, 3, 3], 1.0);
        let x1 = Tensor::parameter(img.clone());
        let wd = Tensor::parameter(ker.clone());
        let yd = x1.depthwise_conv2d(&wd, None, 1, 1).unwrap();
        let x2 = Tensor::parameter(img);
        let wf = Tensor::parameter(ker.reshape(&[1, 1, 3, 3]).unwrap());
        let yf = x2.conv2d(&wf, None, 1, 1).unwrap();
        assert!(yd.value().approx_eq(&yf.value(), 1e-5));
        yd.sum_all().backward().unwrap();
        yf.sum_all().backward().unwrap();
        assert!(x1.grad().unwrap().approx_eq(&x2.grad().unwrap(), 1e-5));
    }

    #[test]
    fn gather_rows_backward_scatters() {
        let x = Tensor::parameter(arr(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        // Row 0 gathered twice: its gradient should be 2.
        let y = x.gather_rows(&[0, 0, 1]).unwrap();
        y.sum_all().backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_rows_splits_gradient() {
        let a = Tensor::parameter(NdArray::ones(&[1, 2]));
        let b = Tensor::parameter(NdArray::ones(&[2, 2]));
        let c = Tensor::concat_rows(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(c.shape(), vec![3, 2]);
        c.scale(3.0).sum_all().backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[3.0, 3.0]);
        assert_eq!(b.grad().unwrap().shape(), &[2, 2]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let a = Tensor::parameter(NdArray::ones(&[2, 1]));
        let b = Tensor::parameter(NdArray::ones(&[2, 3]));
        let c = Tensor::concat_cols(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(c.shape(), vec![2, 4]);
        c.sum_all().backward().unwrap();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data().len(), 6);
    }

    #[test]
    fn slice_rows_backward_zero_pads() {
        let x = Tensor::parameter(NdArray::ones(&[3, 2]));
        let y = x.slice_rows(1, 2).unwrap();
        y.sum_all().backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn mul_mask_blocks_gradient() {
        let x = Tensor::parameter(arr(vec![1.0, 2.0], &[2]));
        let mask = arr(vec![0.0, 1.0], &[2]);
        x.mul_mask(&mask).unwrap().sum_all().backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn broadcast_to_sums_gradient() {
        let x = Tensor::parameter(arr(vec![2.0], &[1]));
        let y = x.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(y.value().data(), &[2.0; 6]);
        y.sum_all().backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[6.0]);
    }

    #[test]
    fn layer_norm_output_is_normalised() {
        let x = Tensor::parameter(arr(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]));
        let g = Tensor::parameter(NdArray::ones(&[4]));
        let b = Tensor::parameter(NdArray::zeros(&[4]));
        let y = x.layer_norm(&g, &b, 1e-5).unwrap();
        let v = y.value();
        let mean: f32 = v.data().iter().sum::<f32>() / 4.0;
        let var: f32 = v
            .data()
            .iter()
            .map(|&a| (a - mean) * (a - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn upsample2x_backward_is_block_sum() {
        let x = Tensor::parameter(NdArray::ones(&[1, 2, 2]));
        let y = x.upsample2x().unwrap();
        assert_eq!(y.shape(), vec![1, 4, 4]);
        y.sum_all().backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[4.0; 4]);
    }

    #[test]
    fn set_value_validates_shape() {
        let x = Tensor::parameter(NdArray::zeros(&[2]));
        assert!(x.set_value(NdArray::zeros(&[3])).is_err());
        assert!(x.set_value(NdArray::ones(&[2])).is_ok());
        assert_eq!(x.value().data(), &[1.0, 1.0]);
    }

    #[test]
    fn detach_cuts_graph() {
        let x = Tensor::parameter(arr(vec![2.0], &[1]));
        let y = x.scale(3.0).detach();
        let z = y.scale(2.0);
        z.backward().unwrap();
        assert!(x.grad().is_none());
    }

    #[test]
    fn zero_grad_clears() {
        let x = Tensor::parameter(arr(vec![1.0], &[1]));
        x.scale(2.0).backward().unwrap();
        assert!(x.grad().is_some());
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let x = Tensor::parameter(arr(vec![1.0], &[1]));
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.add_scalar(0.0);
        }
        y.backward().unwrap();
        assert_eq!(x.grad().unwrap().data(), &[1.0]);
    }

    #[test]
    fn tensor_debug_nonempty() {
        let x = Tensor::parameter(arr(vec![1.0], &[1]));
        assert!(format!("{x:?}").contains("Tensor"));
    }
}
