//! Post-training static symmetric int8 quantisation as a graph compile pass.
//!
//! The pipeline has three phases, all operating on the same [`GraphBuilder`]
//! IR the f32 planner consumes (the tape/training path is untouched):
//!
//! 1. **Calibration** ([`QuantCalibration`]): [`QuantCalibration::instrument`]
//!    marks the activation input of every quantisable matmul as an extra plan
//!    output; the caller executes the instrumented plan over a representative
//!    batch set and feeds each tap back through
//!    [`QuantCalibration::observe_plan`], which folds running absolute maxima
//!    per weight site.
//! 2. **Spec build** ([`QuantCalibration::finish`]): per-output-channel
//!    symmetric weight scales (`absmax / 127`, degenerate all-zero channels
//!    fall back to scale 1.0 so nothing divides by zero) and a per-tensor
//!    static activation scale per site, packaged as a [`QuantSpec`].
//! 3. **Graph rewrite** ([`quantize_graph`], exposed through
//!    `ExecPlan::compile_quantized`): every matmul whose right operand is a
//!    parameter (or a column-concatenation of parameters, the fused-QKV
//!    layout) and whose site is in the spec is replaced by
//!    `quantize_sym → quant_matmul → dequantize_cols`; the now-dead f32
//!    weight nodes are pruned by a liveness pass so the planner never
//!    materialises them.
//!
//! Only weight GEMMs quantise. Attention score/value products (activation ×
//! activation), softmax, layer norm and GELU stay f32 — that is the standard
//! post-training-quantisation split and keeps the error budget in the parts
//! the differential harness can actually bound.
//!
//! Determinism: quantisation, the integer GEMM and dequantisation are exact
//! or scalar-sequenced, so a quantised plan is bit-identical across thread
//! counts (see `bliss_parallel::matmul_i8t_into`) and across
//! snapshot/restore as long as the spec is re-derived from the same weights
//! and calibration stream — which is exactly how the serving layer uses it.
#![warn(missing_docs)]

use crate::exec::ExecPlan;
use crate::graph::{GraphBuilder, NodeId, Op};
use crate::TensorError;
use std::collections::HashMap;
use std::rc::Rc;

/// Largest representable magnitude of the symmetric i8 grid. `-128` is
/// deliberately unused so the grid is symmetric and negation is exact.
pub const QMAX: f32 = 127.0;

/// Symmetric scale for a value range with absolute maximum `absmax`.
///
/// Degenerate ranges (all-zero channels, non-finite maxima) map to `1.0`
/// so downstream `1/scale` never divides by zero.
pub fn symmetric_scale(absmax: f32) -> f32 {
    if absmax.is_finite() && absmax > 0.0 {
        absmax / QMAX
    } else {
        1.0
    }
}

/// Quantises one value: round-to-nearest on the `1/scale` grid, saturating
/// at `±127`.
#[inline]
pub fn quantize_one(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round().clamp(-QMAX, QMAX) as i8
}

/// Symmetric quantisation of a slice under a fixed scale (as `inv_scale =
/// 1/scale`). Scalar and sequential — the op is memory-bound and keeping it
/// serial makes bit-identity trivial.
pub fn quantize_sym_into(src: &[f32], inv_scale: f32, out: &mut [i8]) {
    assert_eq!(src.len(), out.len(), "quantize_sym_into length mismatch");
    for (o, &x) in out.iter_mut().zip(src) {
        *o = quantize_one(x, inv_scale);
    }
}

/// A weight matrix quantised per output channel and stored transposed
/// (`[out_features, in_features]` row-major) so the integer GEMM streams
/// both operands contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    data: Vec<i8>,
    in_features: usize,
    out_features: usize,
    scales: Vec<f32>,
}

impl QuantizedWeights {
    /// Quantises a `[k, n]` row-major f32 weight matrix (the `matmul` right
    /// operand layout) with one symmetric scale per output channel (column).
    pub fn from_cols(w: &[f32], k: usize, n: usize) -> Self {
        Self::from_col_blocks(k, &[(w, n)])
    }

    /// Quantises a horizontal concatenation of `[k, n_i]` blocks (the fused
    /// QKV layout: per-head weight columns stacked left to right) without
    /// materialising the concatenated f32 matrix.
    ///
    /// # Panics
    ///
    /// Panics if any block's data length is not `k * n_i`.
    pub fn from_col_blocks(k: usize, blocks: &[(&[f32], usize)]) -> Self {
        let out_features: usize = blocks.iter().map(|&(_, n)| n).sum();
        let mut data = vec![0i8; out_features * k];
        let mut scales = Vec::with_capacity(out_features);
        let mut row = 0;
        for &(w, n) in blocks {
            assert_eq!(w.len(), k * n, "weight block length must be k * n");
            for oc in 0..n {
                let mut absmax = 0f32;
                for i in 0..k {
                    absmax = absmax.max(w[i * n + oc].abs());
                }
                let scale = symmetric_scale(absmax);
                let inv = 1.0 / scale;
                for i in 0..k {
                    data[row * k + i] = quantize_one(w[i * n + oc], inv);
                }
                scales.push(scale);
                row += 1;
            }
        }
        Self {
            data,
            in_features: k,
            out_features,
            scales,
        }
    }

    /// The quantised weights, transposed row-major
    /// (`[out_features, in_features]`) — the `bt` operand of
    /// `bliss_parallel::matmul_i8t_into`.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Reduction dimension (`k`).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output channels (`n`).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Per-output-channel symmetric scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the f32 weight matrix in `[k, n]` layout — test support
    /// for round-trip error bounds.
    pub fn dequantize(&self) -> Vec<f32> {
        let (k, n) = (self.in_features, self.out_features);
        let mut out = vec![0f32; k * n];
        for oc in 0..n {
            let s = self.scales[oc];
            for i in 0..k {
                out[i * n + oc] = self.data[oc * k + i] as f32 * s;
            }
        }
        out
    }
}

/// One quantised weight site: the quantised block, the static activation
/// scale calibrated for its input, and the pre-multiplied per-column
/// dequantisation scales.
#[derive(Debug, Clone)]
pub struct QuantEntry {
    pub(crate) weights: Rc<QuantizedWeights>,
    pub(crate) act_scale: f32,
    pub(crate) dequant_scales: Rc<Vec<f32>>,
}

impl QuantEntry {
    /// The static activation scale for this site.
    pub fn act_scale(&self) -> f32 {
        self.act_scale
    }

    /// The quantised weight block.
    pub fn weights(&self) -> &QuantizedWeights {
        &self.weights
    }
}

/// Calibrated quantisation parameters for a network, keyed by the identity
/// (`Tensor::id`) of each site's first weight tensor. Because keys are
/// weight identities, one spec built from any batch layout applies to every
/// plan recorded from the same live parameters.
#[derive(Debug, Clone, Default)]
pub struct QuantSpec {
    entries: HashMap<u64, QuantEntry>,
}

impl QuantSpec {
    /// Number of quantised weight sites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the spec quantises nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for a weight-site key, if calibrated.
    pub fn get(&self, key: u64) -> Option<&QuantEntry> {
        self.entries.get(&key)
    }

    pub(crate) fn insert(&mut self, key: u64, entry: QuantEntry) {
        self.entries.insert(key, entry);
    }

    /// Drops a weight site from the spec, returning whether it was present.
    /// Matmuls against that weight then stay in f32 — the standard escape
    /// hatch for precision-critical layers (e.g. a network's input
    /// embedding, whose activation range is dominated by rare bright frames
    /// while its typical inputs are dim).
    pub fn remove(&mut self, key: u64) -> bool {
        self.entries.remove(&key).is_some()
    }
}

/// Where a calibration tap reads its activation from after executing the
/// instrumented plan.
#[derive(Debug, Clone, Copy)]
enum TapSource {
    /// Extra plan output at this index (activation is a computed node).
    Output(usize),
    /// The raw input slot (activation is a graph input, which cannot be
    /// marked as an output; its absolute maximum is read from the bound
    /// input slice directly).
    Input(usize),
}

/// A single instrumented activation: which weight site it calibrates and
/// where to read it.
#[derive(Debug, Clone, Copy)]
pub struct CalTap {
    key: u64,
    source: TapSource,
}

/// A quantisable matmul site discovered in a graph.
struct QuantSite {
    /// Node index of the `MatMul`.
    matmul: usize,
    /// Spec key: identity of the first weight tensor.
    key: u64,
    /// The activation operand.
    a: NodeId,
}

/// Finds every matmul whose right operand is a parameter matrix or a
/// column-concatenation of parameter matrices (fused QKV).
fn find_sites(g: &GraphBuilder) -> Vec<QuantSite> {
    let mut sites = Vec::new();
    for (idx, node) in g.nodes.iter().enumerate() {
        let Op::MatMul { a, b } = node.op else {
            continue;
        };
        let Some(key) = site_key(g, b) else { continue };
        sites.push(QuantSite {
            matmul: idx,
            key,
            a,
        });
    }
    sites
}

/// The spec key for a matmul right operand, if it is quantisable: the
/// identity of its (first) parameter tensor.
fn site_key(g: &GraphBuilder, b: NodeId) -> Option<u64> {
    let param_id = |id: NodeId| -> Option<u64> {
        if let Op::Param { slot } = g.nodes[id.0].op {
            if g.nodes[id.0].shape.len() == 2 {
                return Some(g.params[slot].id());
            }
        }
        None
    };
    match &g.nodes[b.0].op {
        Op::Param { .. } => param_id(b),
        Op::ConcatCols { parts } => {
            if parts.iter().all(|&p| param_id(p).is_some()) {
                param_id(parts[0])
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Resolves a node through alias ops (`Reshape`, `SliceRows`) to its
/// computed/source root.
fn alias_root(g: &GraphBuilder, mut id: NodeId) -> NodeId {
    loop {
        match g.nodes[id.0].op {
            Op::Reshape { a } | Op::SliceRows { a, .. } => id = a,
            _ => return id,
        }
    }
}

/// Running per-site activation ranges, folded over calibration batches.
#[derive(Debug, Clone, Default)]
pub struct QuantCalibration {
    ranges: HashMap<u64, f32>,
}

impl QuantCalibration {
    /// An empty calibration (no sites observed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the activation of every quantisable matmul in `g` as an extra
    /// plan output and returns the taps to read back after execution.
    /// Activations that *are* graph inputs are tapped from the bound input
    /// slice instead (inputs cannot be plan outputs).
    ///
    /// Call once per batch layout, compile the instrumented builder, execute
    /// it over representative data, then feed each execution through
    /// [`QuantCalibration::observe_plan`].
    pub fn instrument(g: &mut GraphBuilder) -> Vec<CalTap> {
        let mut taps = Vec::new();
        for site in find_sites(g) {
            let root = alias_root(g, site.a);
            let source = match g.nodes[root.0].op {
                Op::Input { slot } => TapSource::Input(slot),
                // A parameter activation cannot occur in a real forward pass;
                // skip rather than pin a weight as an output.
                Op::Param { .. } => continue,
                _ => {
                    let idx = g.outputs.len();
                    g.mark_output(site.a);
                    TapSource::Output(idx)
                }
            };
            taps.push(CalTap {
                key: site.key,
                source,
            });
        }
        taps
    }

    /// Folds one value slice into the running range for a site key.
    pub fn observe(&mut self, key: u64, data: &[f32]) {
        let absmax = data.iter().fold(0f32, |m, &x| m.max(x.abs()));
        let entry = self.ranges.entry(key).or_insert(0.0);
        *entry = entry.max(absmax);
    }

    /// Reads every tap of one executed instrumented plan (with the inputs it
    /// was executed on) into the running ranges.
    pub fn observe_plan(&mut self, plan: &ExecPlan, inputs: &[&[f32]], taps: &[CalTap]) {
        for tap in taps {
            match tap.source {
                TapSource::Output(i) => {
                    let key = tap.key;
                    plan.with_output(i, |data| self.observe(key, data));
                }
                TapSource::Input(slot) => self.observe(tap.key, inputs[slot]),
            }
        }
    }

    /// Number of distinct sites observed so far.
    pub fn observed_sites(&self) -> usize {
        self.ranges.len()
    }

    /// Builds the quantisation spec for a graph from the folded ranges:
    /// per-output-channel weight scales from the live parameter values,
    /// activation scale per site from the observed absolute maximum. Sites
    /// never observed (no calibration data reached them) are left
    /// unquantised.
    pub fn finish(&self, g: &GraphBuilder) -> QuantSpec {
        let mut spec = QuantSpec::default();
        for site in find_sites(g) {
            if spec.get(site.key).is_some() {
                continue;
            }
            let Some(&absmax) = self.ranges.get(&site.key) else {
                continue;
            };
            let Op::MatMul { b, .. } = g.nodes[site.matmul].op else {
                unreachable!("find_sites only returns matmuls");
            };
            let weights = match &g.nodes[b.0].op {
                Op::Param { slot } => {
                    let shape = &g.nodes[b.0].shape;
                    let (k, n) = (shape[0], shape[1]);
                    let v = g.params[*slot].value();
                    Rc::new(QuantizedWeights::from_cols(v.data(), k, n))
                }
                Op::ConcatCols { parts } => {
                    let k = g.nodes[parts[0].0].shape[0];
                    let values: Vec<_> = parts
                        .iter()
                        .map(|&p| {
                            let Op::Param { slot } = g.nodes[p.0].op else {
                                unreachable!("site_key verified all parts are params");
                            };
                            (g.params[slot].value(), g.nodes[p.0].shape[1])
                        })
                        .collect();
                    let blocks: Vec<(&[f32], usize)> =
                        values.iter().map(|(v, n)| (v.data(), *n)).collect();
                    Rc::new(QuantizedWeights::from_col_blocks(k, &blocks))
                }
                _ => unreachable!("site_key only accepts Param/ConcatCols"),
            };
            let act_scale = symmetric_scale(absmax);
            let dequant_scales = Rc::new(weights.scales().iter().map(|&s| s * act_scale).collect());
            spec.insert(
                site.key,
                QuantEntry {
                    weights,
                    act_scale,
                    dequant_scales,
                },
            );
        }
        spec
    }
}

/// Clones `op` with every operand id remapped through `map`.
fn remap_op(op: &Op, map: &[Option<NodeId>]) -> Op {
    let m = |id: NodeId| map[id.0].expect("operand of a live node must be live");
    match op {
        Op::Input { slot } => Op::Input { slot: *slot },
        Op::Param { slot } => Op::Param { slot: *slot },
        Op::MatMul { a, b } => Op::MatMul { a: m(*a), b: m(*b) },
        Op::MatMulT { a, b } => Op::MatMulT { a: m(*a), b: m(*b) },
        Op::Add { a, b } => Op::Add { a: m(*a), b: m(*b) },
        Op::AddRow { a, row } => Op::AddRow {
            a: m(*a),
            row: m(*row),
        },
        Op::AddColBias { a, bias } => Op::AddColBias {
            a: m(*a),
            bias: m(*bias),
        },
        Op::Scale { a, factor } => Op::Scale {
            a: m(*a),
            factor: *factor,
        },
        Op::Relu { a } => Op::Relu { a: m(*a) },
        Op::Sigmoid { a } => Op::Sigmoid { a: m(*a) },
        Op::Gelu { a } => Op::Gelu { a: m(*a) },
        Op::SoftmaxRows { a } => Op::SoftmaxRows { a: m(*a) },
        Op::LayerNorm {
            a,
            gamma,
            beta,
            eps,
        } => Op::LayerNorm {
            a: m(*a),
            gamma: m(*gamma),
            beta: m(*beta),
            eps: *eps,
        },
        Op::Transpose { a } => Op::Transpose { a: m(*a) },
        Op::Reshape { a } => Op::Reshape { a: m(*a) },
        Op::SliceRows { a, start } => Op::SliceRows {
            a: m(*a),
            start: *start,
        },
        Op::SliceCols { a, start, end } => Op::SliceCols {
            a: m(*a),
            start: *start,
            end: *end,
        },
        Op::ConcatRows { parts } => Op::ConcatRows {
            parts: parts.iter().map(|&p| m(p)).collect(),
        },
        Op::ConcatCols { parts } => Op::ConcatCols {
            parts: parts.iter().map(|&p| m(p)).collect(),
        },
        Op::ConcatFlat { parts } => Op::ConcatFlat {
            parts: parts.iter().map(|&p| m(p)).collect(),
        },
        Op::Im2Col {
            a,
            kh,
            kw,
            stride,
            pad,
        } => Op::Im2Col {
            a: m(*a),
            kh: *kh,
            kw: *kw,
            stride: *stride,
            pad: *pad,
        },
        Op::GatherRows { a, indices } => Op::GatherRows {
            a: m(*a),
            indices: *indices,
        },
        Op::QuantizeSym { a, inv_scale } => Op::QuantizeSym {
            a: m(*a),
            inv_scale: *inv_scale,
        },
        Op::MatMulI8 { a, w } => Op::MatMulI8 { a: m(*a), w: *w },
        Op::DequantizeCols { a, scales } => Op::DequantizeCols {
            a: m(*a),
            scales: Rc::clone(scales),
        },
    }
}

/// Rewrites a graph under a [`QuantSpec`]: every calibrated weight-GEMM is
/// replaced by a `quantize_sym → quant_matmul → dequantize_cols` chain and
/// the dead f32 weight nodes are pruned so the planner never lays them out.
/// Input/index slots, parameter slots and output order are preserved, so a
/// rewritten plan executes on exactly the same bound data as the original.
///
/// # Errors
///
/// Shape/validity errors from the quantised builder ops (a spec built by
/// [`QuantCalibration::finish`] against the same graph cannot trigger them).
pub fn quantize_graph(g: &GraphBuilder, spec: &QuantSpec) -> Result<GraphBuilder, TensorError> {
    // Sites that will actually be rewritten (calibrated + shape-consistent).
    let mut rewrites: HashMap<usize, &QuantEntry> = HashMap::new();
    for site in find_sites(g) {
        if let Some(entry) = spec.get(site.key) {
            let k = g.nodes[site.a.0].shape[1];
            if entry.weights.in_features() == k {
                rewrites.insert(site.matmul, entry);
            }
        }
    }

    // Liveness: outputs are live; live nodes keep their operands live,
    // except a rewritten matmul no longer reads its f32 weight operand.
    // Input nodes always survive so input slot numbering is stable.
    let n = g.nodes.len();
    let mut live = vec![false; n];
    for &o in &g.outputs {
        live[o.0] = true;
    }
    for idx in (0..n).rev() {
        if matches!(g.nodes[idx].op, Op::Input { .. }) {
            live[idx] = true;
        }
        if !live[idx] {
            continue;
        }
        match (&g.nodes[idx].op, rewrites.contains_key(&idx)) {
            (Op::MatMul { a, .. }, true) => live[a.0] = true,
            (op, _) => op.for_each_operand(|i| live[i] = true),
        }
    }

    // Rebuild: copy live nodes in order, splicing quantised chains in place
    // of rewritten matmuls.
    let mut ng = GraphBuilder::new();
    ng.params = g.params.clone();
    ng.param_slots = g.param_slots.clone();
    ng.input_shapes = g.input_shapes.clone();
    ng.index_input_lens = g.index_input_lens.clone();
    let mut map: Vec<Option<NodeId>> = vec![None; n];
    for idx in 0..n {
        if !live[idx] {
            continue;
        }
        if let Some(entry) = rewrites.get(&idx) {
            let Op::MatMul { a, .. } = g.nodes[idx].op else {
                unreachable!("rewrites only hold matmuls");
            };
            let a_new = map[a.0].expect("matmul activation must be live");
            let qx = ng.quantize_sym(a_new, entry.act_scale)?;
            let w = ng.add_qweight(Rc::clone(&entry.weights));
            let acc = ng.quant_matmul(qx, w)?;
            let dq = ng.dequantize_cols(acc, Rc::clone(&entry.dequant_scales))?;
            map[idx] = Some(dq);
        } else {
            let node = &g.nodes[idx];
            map[idx] =
                Some(ng.push_typed(remap_op(&node.op, &map), node.shape.clone(), node.dtype));
        }
    }
    ng.outputs = g
        .outputs
        .iter()
        .map(|&o| map[o.0].expect("graph outputs are live by construction"))
        .collect();
    // param_nodes (dedup cache for future `param` calls) is left empty: the
    // rewritten graph is sealed and handed straight to the planner.
    Ok(ng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NdArray, Tensor};

    fn param(shape: &[usize], data: Vec<f32>) -> Tensor {
        Tensor::parameter(NdArray::from_vec(data, shape).unwrap())
    }

    fn absmax(v: &[f32]) -> f32 {
        v.iter().fold(0f32, |m, &x| m.max(x.abs()))
    }

    #[test]
    fn weight_round_trip_error_bounded_by_half_scale() {
        let (k, n) = (13, 5);
        let w: Vec<f32> = (0..k * n)
            .map(|i| ((i as f32 * 0.731).sin()) * (1.0 + i as f32 * 0.01))
            .collect();
        let q = QuantizedWeights::from_cols(&w, k, n);
        let back = q.dequantize();
        for oc in 0..n {
            let bound = q.scales()[oc] / 2.0 + 1e-6;
            for i in 0..k {
                let err = (w[i * n + oc] - back[i * n + oc]).abs();
                assert!(err <= bound, "channel {oc} err {err} > {bound}");
            }
        }
    }

    #[test]
    fn zero_maps_to_zero_and_degenerate_channels_do_not_divide_by_zero() {
        // Channel 1 is all zeros: scale falls back to 1.0, values stay 0.
        let w = [0.5f32, 0.0, -0.25, 0.0, 1.0, 0.0];
        let q = QuantizedWeights::from_cols(&w, 3, 2);
        assert_eq!(q.scales()[1], 1.0);
        for i in 0..3 {
            assert_eq!(q.data()[q.in_features() + i], 0);
        }
        assert_eq!(quantize_one(0.0, 123.0), 0);
    }

    #[test]
    fn saturation_clamps_to_i8_extremes() {
        assert_eq!(quantize_one(1e30, 1.0), 127);
        assert_eq!(quantize_one(-1e30, 1.0), -127);
        let s = symmetric_scale(2.0);
        assert_eq!(quantize_one(2.0, 1.0 / s), 127);
        assert_eq!(quantize_one(-2.0, 1.0 / s), -127);
    }

    #[test]
    fn calibration_and_rewrite_match_f32_within_quant_error() {
        // x [4,6] -> matmul param w [6,3] -> add_row bias -> relu
        let w: Vec<f32> = (0..18).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
        let bias = [0.05f32, -0.1, 0.2];
        let wt = param(&[6, 3], w.clone());
        let bt = param(&[3], bias.to_vec());
        let x: Vec<f32> = (0..24).map(|i| ((i * 5 % 17) as f32 - 8.0) / 4.0).collect();

        let build = |mark: bool| {
            let mut g = GraphBuilder::new();
            let xi = g.input(&[4, 6]);
            let wp = g.param(&wt);
            let bp = g.param(&bt);
            let mm = g.matmul(xi, wp).unwrap();
            let ad = g.add_row(mm, bp).unwrap();
            let out = g.relu(ad);
            if mark {
                g.mark_output(out);
            }
            g
        };

        // f32 reference.
        let plan = ExecPlan::compile(build(true)).unwrap();
        plan.execute(&[&x], &[]).unwrap();
        let reference = plan.with_output(0, |d| d.to_vec());

        // Calibrate (input-slot tap: the activation is the graph input).
        let mut cal = QuantCalibration::new();
        let mut gi = build(true);
        let taps = QuantCalibration::instrument(&mut gi);
        assert_eq!(taps.len(), 1);
        let iplan = ExecPlan::compile(gi).unwrap();
        iplan.execute(&[&x], &[]).unwrap();
        cal.observe_plan(&iplan, &[&x], &taps);
        assert_eq!(cal.observed_sites(), 1);

        let gq = build(true);
        let spec = cal.finish(&gq);
        assert_eq!(spec.len(), 1);
        let qplan = ExecPlan::compile_quantized(build(true), &spec).unwrap();
        qplan.execute(&[&x], &[]).unwrap();
        let quantised = qplan.with_output(0, |d| d.to_vec());

        // Error bound: k * (act_err * |w| + w_err * |x|) per element, loose.
        let entry = spec.get(wt.id()).unwrap();
        let bound = 6.0
            * (entry.act_scale() / 2.0 * absmax(&w)
                + entry
                    .weights()
                    .scales()
                    .iter()
                    .cloned()
                    .fold(0f32, f32::max)
                    / 2.0
                    * absmax(&x))
            + 1e-4;
        assert_eq!(reference.len(), quantised.len());
        for (r, q) in reference.iter().zip(&quantised) {
            assert!((r - q).abs() <= bound, "f32 {r} vs int8 {q}, bound {bound}");
        }
    }

    #[test]
    fn rewrite_prunes_dead_weight_nodes_and_handles_fused_qkv() {
        // Fused layout: matmul(x, concat_cols(w0, w1)) like the attention
        // QKV assembly. After rewrite the Param/ConcatCols weight nodes must
        // be gone and the plan must still match f32 closely.
        let w0 = param(&[4, 2], (0..8).map(|i| i as f32 / 8.0 - 0.4).collect());
        let w1 = param(&[4, 3], (0..12).map(|i| 0.3 - i as f32 / 11.0).collect());
        let x: Vec<f32> = (0..12).map(|i| (i as f32 - 5.0) / 3.0).collect();

        let build = || {
            let mut g = GraphBuilder::new();
            let xi = g.input(&[3, 4]);
            let p0 = g.param(&w0);
            let p1 = g.param(&w1);
            let wc = g.concat_cols(&[p0, p1]).unwrap();
            let mm = g.matmul(xi, wc).unwrap();
            g.mark_output(mm);
            g
        };

        let plan = ExecPlan::compile(build()).unwrap();
        plan.execute(&[&x], &[]).unwrap();
        let reference = plan.with_output(0, |d| d.to_vec());

        let mut cal = QuantCalibration::new();
        cal.observe(w0.id(), &x);
        let spec = cal.finish(&build());
        assert_eq!(spec.len(), 1);

        let g = build();
        let before = g.nodes.len();
        let ng = quantize_graph(&g, &spec).unwrap();
        // Original: input, p0, p1, concat, matmul = 5 nodes. Rewritten:
        // input, quantize, matmul_i8, dequantize = 4, weights pruned.
        assert_eq!(before, 5);
        assert_eq!(ng.nodes.len(), 4);
        assert_eq!(ng.qweights.len(), 1);

        let qplan = ExecPlan::compile(ng).unwrap();
        qplan.execute(&[&x], &[]).unwrap();
        let quantised = qplan.with_output(0, |d| d.to_vec());
        let entry = spec.get(w0.id()).unwrap();
        let wmax = entry
            .weights()
            .scales()
            .iter()
            .cloned()
            .fold(0f32, f32::max);
        let bound = 4.0 * (entry.act_scale() / 2.0 * 0.5 + wmax / 2.0 * absmax(&x)) + 1e-4;
        for (r, q) in reference.iter().zip(&quantised) {
            assert!((r - q).abs() <= bound, "f32 {r} vs int8 {q}, bound {bound}");
        }
    }
}
