//! Static graph IR for planned inference execution.
//!
//! The autograd [`crate::Tensor`] builds a define-by-run tape: every op
//! allocates an `Rc` node, a parents vector and a boxed backward closure,
//! and steady-state serving rebuilds that identical machinery every frame.
//! This module is the first stage of the replacement pipeline
//! (trace → plan → execute): a [`GraphBuilder`] captures the *structure* of
//! a forward pass once — op kind, operand ids, shapes — with no `Rc`, no
//! closures and no values. Shapes are checked at build time with the same
//! rules (and the same [`TensorError`] variants) as the corresponding
//! `NdArray`/`Tensor` operations, so a graph that builds cleanly cannot
//! shape-fault during planning.
//!
//! Values enter a graph three ways:
//!
//! * **Inputs** ([`GraphBuilder::input`]): per-execution `f32` slices, bound
//!   positionally at execute time.
//! * **Index inputs** ([`GraphBuilder::index_input`]): per-execution `usize`
//!   slices feeding [`GraphBuilder::gather_rows`].
//! * **Parameters** ([`GraphBuilder::param`]): live [`Tensor`] weights,
//!   captured by reference and re-read on every execution — mutating a
//!   weight (training, snapshot restore into the same tensors) is picked up
//!   without replanning because the plan stores the tensor, not a copy.
//!
//! The graph is consumed by `ExecPlan::compile` (see the `exec` module),
//! which topologically orders it (creation order is already topological —
//! operands must exist before the node that uses them), lays out buffer
//! lifetimes into one arena, and produces a reusable execution plan.
#![warn(missing_docs)]

use crate::quant::QuantizedWeights;
use crate::{Tensor, TensorError};
use std::collections::HashMap;
use std::rc::Rc;

/// Element type of a graph node's value.
///
/// The tape and almost every graph op are `f32`; the `I8`/`I32` types exist
/// only on the short quantise → integer-matmul → dequantise chains the
/// quantisation compile pass splices in (see the `quant` module). Non-`F32`
/// nodes live in their own arenas, may not be aliased, and may not be marked
/// as plan outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 32-bit float (the default for every public builder op).
    F32,
    /// Quantised 8-bit activations.
    I8,
    /// 32-bit integer GEMM accumulators.
    I32,
}

/// Handle to a node in a [`GraphBuilder`] DAG.
///
/// Only meaningful for the builder that issued it; ids are dense indices in
/// creation order (which is therefore also a topological order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// Handle to a runtime index-input slot (gather indices), issued by
/// [`GraphBuilder::index_input`]. Slots are bound positionally at execute
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSlot(pub(crate) usize);

/// One traced operation. Operand shapes were validated at build time.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Runtime `f32` input bound positionally at execute time.
    Input { slot: usize },
    /// A live parameter tensor (possibly viewed under a different shape via
    /// [`GraphBuilder::param_view`]); `slot` indexes the builder's deduped
    /// parameter list.
    Param { slot: usize },
    /// `a x b` for `a: [m, k]`, `b: [k, n]`.
    MatMul { a: NodeId, b: NodeId },
    /// `a x b^T` for `a: [m, k]`, `b: [p, k]` (attention scores).
    MatMulT { a: NodeId, b: NodeId },
    /// Elementwise sum of same-shaped operands.
    Add { a: NodeId, b: NodeId },
    /// Row-broadcast sum: `a: [m, n]` plus `row: [n]`.
    AddRow { a: NodeId, row: NodeId },
    /// Per-row scalar bias: `a: [r, w]` plus `bias: [r]` added to every
    /// element of row `r` (convolution bias over flattened spatial dims).
    AddColBias { a: NodeId, bias: NodeId },
    /// Elementwise multiply by a compile-time constant.
    Scale { a: NodeId, factor: f32 },
    /// Rectified linear unit.
    Relu { a: NodeId },
    /// Logistic sigmoid.
    Sigmoid { a: NodeId },
    /// Tanh-approximated GELU.
    Gelu { a: NodeId },
    /// Row-wise softmax of an `[m, n]` operand.
    SoftmaxRows { a: NodeId },
    /// Per-row layer normalisation with learnable scale/shift.
    LayerNorm {
        a: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    },
    /// Matrix transpose.
    Transpose { a: NodeId },
    /// Same elements, different shape — resolved as an alias (no copy, no
    /// execution step).
    Reshape { a: NodeId },
    /// Contiguous row range of an `[m, n]` operand — resolved as an alias
    /// (the range length is the node's own row count).
    SliceRows { a: NodeId, start: usize },
    /// Column range of an `[m, n]` operand (strided, so a real copy step).
    SliceCols { a: NodeId, start: usize, end: usize },
    /// Vertical stack of same-width matrices.
    ConcatRows { parts: Vec<NodeId> },
    /// Horizontal stack of same-height matrices.
    ConcatCols { parts: Vec<NodeId> },
    /// Flat concatenation of arbitrary operands into a vector.
    ConcatFlat { parts: Vec<NodeId> },
    /// Convolution lowering of a `[c, h, w]` operand to columns.
    Im2Col {
        a: NodeId,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    },
    /// Row gather from `a: [m, n]` by a runtime index input.
    GatherRows { a: NodeId, indices: IndexSlot },
    /// Symmetric quantisation of an `f32` matrix to `i8` under a fixed
    /// (calibration-time) activation scale: `q = clamp(round(x / scale))`.
    /// Produces a [`DType::I8`] node.
    QuantizeSym { a: NodeId, inv_scale: f32 },
    /// `i8 x i8 -> i32` matrix product of a quantised activation against a
    /// pre-quantised, pre-transposed weight slot (see
    /// [`GraphBuilder::add_qweight`]). Produces a [`DType::I32`] node.
    MatMulI8 { a: NodeId, w: usize },
    /// Dequantisation of an `i32` accumulator matrix back to `f32` with one
    /// combined scale per output column (`act_scale * weight_scale[col]`).
    DequantizeCols { a: NodeId, scales: Rc<Vec<f32>> },
}

/// A node: its operation plus its (build-time validated) output shape.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) op: Op,
    pub(crate) shape: Vec<usize>,
    pub(crate) dtype: DType,
}

impl Node {
    pub(crate) fn numel(&self) -> usize {
        self.shape.iter().product()
    }
}

/// Records a typed operation DAG with build-time shape checking.
///
/// Creation order is the topological order; every method that consumes
/// operand nodes validates their shapes with the same rules as the
/// corresponding tape operation and returns the new node's id. Call
/// [`GraphBuilder::mark_output`] on the nodes whose values the caller needs,
/// then hand the builder to `ExecPlan::compile`.
#[derive(Default)]
pub struct GraphBuilder {
    pub(crate) nodes: Vec<Node>,
    /// Parameter tensors, deduplicated by tensor identity.
    pub(crate) params: Vec<Tensor>,
    pub(crate) param_slots: HashMap<u64, usize>,
    pub(crate) param_nodes: HashMap<u64, NodeId>,
    pub(crate) input_shapes: Vec<Vec<usize>>,
    pub(crate) index_input_lens: Vec<usize>,
    pub(crate) outputs: Vec<NodeId>,
    /// Pre-quantised weight blocks referenced by [`Op::MatMulI8`] nodes.
    pub(crate) qweights: Vec<Rc<QuantizedWeights>>,
}

impl GraphBuilder {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is still empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The build-time shape of a node.
    pub fn shape(&self, id: NodeId) -> &[usize] {
        &self.nodes[id.0].shape
    }

    /// The element type of a node ([`DType::F32`] for everything except the
    /// quantised chains).
    pub fn dtype(&self, id: NodeId) -> DType {
        self.nodes[id.0].dtype
    }

    fn push(&mut self, op: Op, shape: Vec<usize>) -> NodeId {
        self.push_typed(op, shape, DType::F32)
    }

    pub(crate) fn push_typed(&mut self, op: Op, shape: Vec<usize>, dtype: DType) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { op, shape, dtype });
        id
    }

    fn require_matrix(&self, id: NodeId, op: &'static str) -> Result<(usize, usize), TensorError> {
        let shape = self.shape(id);
        if shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                op,
                expected: 2,
                actual: shape.len(),
            });
        }
        Ok((shape[0], shape[1]))
    }

    // ------------------------------------------------------------------
    // Sources
    // ------------------------------------------------------------------

    /// Declares a runtime `f32` input of fixed `shape`. Inputs are bound
    /// positionally (in declaration order) at execute time.
    pub fn input(&mut self, shape: &[usize]) -> NodeId {
        self.input_shapes.push(shape.to_vec());
        self.push(
            Op::Input {
                slot: self.input_shapes.len() - 1,
            },
            shape.to_vec(),
        )
    }

    /// Declares a runtime index input of exactly `len` indices, for
    /// [`GraphBuilder::gather_rows`]. Bound positionally at execute time.
    pub fn index_input(&mut self, len: usize) -> IndexSlot {
        self.index_input_lens.push(len);
        IndexSlot(self.index_input_lens.len() - 1)
    }

    /// Captures a parameter tensor. The same tensor (by identity) always
    /// maps to the same node, so repeated captures are free; its *current*
    /// value is re-read on every plan execution.
    pub fn param(&mut self, t: &Tensor) -> NodeId {
        if let Some(&node) = self.param_nodes.get(&t.id()) {
            return node;
        }
        let slot = self.param_slot(t);
        let shape = t.value().shape().to_vec();
        let node = self.push(Op::Param { slot }, shape);
        self.param_nodes.insert(t.id(), node);
        node
    }

    /// Captures a parameter tensor viewed under a different shape with the
    /// same element count (e.g. a conv weight `[oc, ic, kh, kw]` viewed as
    /// the matmul operand `[oc, ic*kh*kw]`).
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeDataMismatch`] if the element counts differ.
    pub fn param_view(&mut self, t: &Tensor, shape: &[usize]) -> Result<NodeId, TensorError> {
        let numel = t.value().data().len();
        if shape.iter().product::<usize>() != numel {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: numel,
            });
        }
        let slot = self.param_slot(t);
        Ok(self.push(Op::Param { slot }, shape.to_vec()))
    }

    fn param_slot(&mut self, t: &Tensor) -> usize {
        if let Some(&slot) = self.param_slots.get(&t.id()) {
            return slot;
        }
        self.params.push(t.clone());
        let slot = self.params.len() - 1;
        self.param_slots.insert(t.id(), slot);
        slot
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `a x b`; see [`crate::NdArray::matmul`].
    ///
    /// # Errors
    ///
    /// Rank/shape errors exactly as the tape op raises them.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let (m, k) = self.require_matrix(a, "matmul")?;
        let (k2, n) = self.require_matrix(b, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(a).to_vec(),
                rhs: self.shape(b).to_vec(),
            });
        }
        Ok(self.push(Op::MatMul { a, b }, vec![m, n]))
    }

    /// Matrix product against a transposed right operand, `a x b^T`; see
    /// [`crate::NdArray::matmul_transposed`].
    ///
    /// # Errors
    ///
    /// Rank/shape errors exactly as the tape op raises them.
    pub fn matmul_transposed(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        let (m, k) = self.require_matrix(a, "matmul_transposed")?;
        let (p, k2) = self.require_matrix(b, "matmul_transposed")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_transposed",
                lhs: self.shape(a).to_vec(),
                rhs: self.shape(b).to_vec(),
            });
        }
        Ok(self.push(Op::MatMulT { a, b }, vec![m, p]))
    }

    /// Matrix transpose of an `[m, n]` node.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] for non-matrix operands.
    pub fn transpose(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "transpose")?;
        Ok(self.push(Op::Transpose { a }, vec![n, m]))
    }

    // ------------------------------------------------------------------
    // Elementwise / broadcast
    // ------------------------------------------------------------------

    /// Elementwise sum of two same-shaped nodes.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> Result<NodeId, TensorError> {
        if self.shape(a) != self.shape(b) {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: self.shape(a).to_vec(),
                rhs: self.shape(b).to_vec(),
            });
        }
        let shape = self.shape(a).to_vec();
        Ok(self.push(Op::Add { a, b }, shape))
    }

    /// Adds a `[n]` row vector to every row of an `[m, n]` node.
    ///
    /// # Errors
    ///
    /// Rank/shape errors exactly as [`crate::NdArray::add_row`] raises them.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "add_row")?;
        if self.shape(row) != [n] {
            return Err(TensorError::ShapeMismatch {
                op: "add_row",
                lhs: self.shape(a).to_vec(),
                rhs: self.shape(row).to_vec(),
            });
        }
        Ok(self.push(Op::AddRow { a, row }, vec![m, n]))
    }

    /// Adds `bias[r]` to every element of row `r` of an `[r, w]` node — the
    /// convolution bias broadcast over flattened spatial dimensions.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] if `bias` is not `[r]`.
    pub fn add_col_bias(&mut self, a: NodeId, bias: NodeId) -> Result<NodeId, TensorError> {
        let (r, w) = self.require_matrix(a, "add_col_bias")?;
        if self.shape(bias) != [r] {
            return Err(TensorError::ShapeMismatch {
                op: "add_col_bias",
                lhs: self.shape(a).to_vec(),
                rhs: self.shape(bias).to_vec(),
            });
        }
        Ok(self.push(Op::AddColBias { a, bias }, vec![r, w]))
    }

    /// Elementwise multiply by a compile-time constant.
    pub fn scale(&mut self, a: NodeId, factor: f32) -> NodeId {
        let shape = self.shape(a).to_vec();
        self.push(Op::Scale { a, factor }, shape)
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let shape = self.shape(a).to_vec();
        self.push(Op::Relu { a }, shape)
    }

    /// Logistic sigmoid, elementwise.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let shape = self.shape(a).to_vec();
        self.push(Op::Sigmoid { a }, shape)
    }

    /// Tanh-approximated GELU, elementwise.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let shape = self.shape(a).to_vec();
        self.push(Op::Gelu { a }, shape)
    }

    // ------------------------------------------------------------------
    // Softmax / normalisation
    // ------------------------------------------------------------------

    /// Row-wise softmax of an `[m, n]` node.
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] for non-matrix operands.
    pub fn softmax_rows(&mut self, a: NodeId) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "softmax_rows")?;
        Ok(self.push(Op::SoftmaxRows { a }, vec![m, n]))
    }

    /// Per-row layer normalisation; `a: [m, n]`, `gamma`/`beta: [n]`.
    ///
    /// # Errors
    ///
    /// Rank/shape errors exactly as [`crate::Tensor::layer_norm`] raises
    /// them.
    pub fn layer_norm(
        &mut self,
        a: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
    ) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "layer_norm")?;
        if self.shape(gamma) != [n] || self.shape(beta) != [n] {
            return Err(TensorError::ShapeMismatch {
                op: "layer_norm",
                lhs: self.shape(a).to_vec(),
                rhs: self.shape(gamma).to_vec(),
            });
        }
        Ok(self.push(
            Op::LayerNorm {
                a,
                gamma,
                beta,
                eps,
            },
            vec![m, n],
        ))
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Same elements under a new shape. Compiles to an alias of the
    /// operand's storage — no copy, no execution step.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeDataMismatch`] if element counts differ.
    pub fn reshape(&mut self, a: NodeId, shape: &[usize]) -> Result<NodeId, TensorError> {
        let numel = self.nodes[a.0].numel();
        if shape.iter().product::<usize>() != numel {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                data_len: numel,
            });
        }
        Ok(self.push(Op::Reshape { a }, shape.to_vec()))
    }

    /// Rows `start..end` of an `[m, n]` node. Row-major rows are
    /// contiguous, so this compiles to an alias — no copy, no step.
    ///
    /// # Errors
    ///
    /// Bounds errors exactly as [`crate::NdArray::slice_rows`] raises them.
    pub fn slice_rows(
        &mut self,
        a: NodeId,
        start: usize,
        end: usize,
    ) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "slice_rows")?;
        if start > end || end > m {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_rows",
                index: end,
                bound: m + 1,
            });
        }
        Ok(self.push(Op::SliceRows { a, start }, vec![end - start, n]))
    }

    /// Columns `start..end` of an `[m, n]` node (strided — a real copy
    /// step).
    ///
    /// # Errors
    ///
    /// Bounds errors exactly as [`crate::NdArray::slice_cols`] raises them.
    pub fn slice_cols(
        &mut self,
        a: NodeId,
        start: usize,
        end: usize,
    ) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "slice_cols")?;
        if start > end || end > n {
            return Err(TensorError::IndexOutOfBounds {
                op: "slice_cols",
                index: end,
                bound: n + 1,
            });
        }
        Ok(self.push(Op::SliceCols { a, start, end }, vec![m, end - start]))
    }

    /// Vertical stack of same-width matrices.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for an empty part list,
    /// [`TensorError::ShapeMismatch`] on width disagreement.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> Result<NodeId, TensorError> {
        let (rows, cols) = self.concat_check(parts, "concat_rows", 1)?;
        Ok(self.push(
            Op::ConcatRows {
                parts: parts.to_vec(),
            },
            vec![rows, cols],
        ))
    }

    /// Horizontal stack of same-height matrices.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for an empty part list,
    /// [`TensorError::ShapeMismatch`] on height disagreement.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> Result<NodeId, TensorError> {
        let (rows, cols) = self.concat_check(parts, "concat_cols", 0)?;
        Ok(self.push(
            Op::ConcatCols {
                parts: parts.to_vec(),
            },
            vec![rows, cols],
        ))
    }

    /// Shared/concat validation; `fixed_axis` is the axis all parts must
    /// agree on (0 = rows for concat_cols, 1 = cols for concat_rows).
    fn concat_check(
        &self,
        parts: &[NodeId],
        op: &'static str,
        fixed_axis: usize,
    ) -> Result<(usize, usize), TensorError> {
        let first = *parts.first().ok_or_else(|| TensorError::InvalidArgument {
            op,
            message: "need at least one part".to_string(),
        })?;
        let (mut rows, mut cols) = self.require_matrix(first, op)?;
        for &p in &parts[1..] {
            let (r, c) = self.require_matrix(p, op)?;
            let agrees = if fixed_axis == 0 {
                r == rows
            } else {
                c == cols
            };
            if !agrees {
                return Err(TensorError::ShapeMismatch {
                    op,
                    lhs: self.shape(first).to_vec(),
                    rhs: self.shape(p).to_vec(),
                });
            }
            if fixed_axis == 0 {
                cols += c;
            } else {
                rows += r;
            }
        }
        Ok((rows, cols))
    }

    /// Flat concatenation of arbitrary nodes into a `[total]` vector (used
    /// to mirror fused bias assembly).
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for an empty part list.
    pub fn concat_flat(&mut self, parts: &[NodeId]) -> Result<NodeId, TensorError> {
        if parts.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "concat_flat",
                message: "need at least one part".to_string(),
            });
        }
        let total: usize = parts.iter().map(|&p| self.nodes[p.0].numel()).sum();
        Ok(self.push(
            Op::ConcatFlat {
                parts: parts.to_vec(),
            },
            vec![total],
        ))
    }

    // ------------------------------------------------------------------
    // Convolution lowering / gather
    // ------------------------------------------------------------------

    /// Lowers a `[c, h, w]` node to convolution columns
    /// `[c*kh*kw, oh*ow]`; see [`crate::NdArray::im2col`].
    ///
    /// # Errors
    ///
    /// Rank/geometry errors exactly as the tape op raises them.
    pub fn im2col(
        &mut self,
        a: NodeId,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Result<NodeId, TensorError> {
        let shape = self.shape(a);
        if shape.len() != 3 {
            return Err(TensorError::RankMismatch {
                op: "im2col",
                expected: 3,
                actual: shape.len(),
            });
        }
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = crate::array::conv_out_dims(h, w, kh, kw, stride, pad)?;
        Ok(self.push(
            Op::Im2Col {
                a,
                kh,
                kw,
                stride,
                pad,
            },
            vec![c * kh * kw, oh * ow],
        ))
    }

    /// Gathers rows of an `[m, n]` node by a runtime index input. Index
    /// values are bounds-checked against `m` at execute time (the slice
    /// length was fixed by [`GraphBuilder::index_input`]).
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] for non-matrix operands.
    pub fn gather_rows(&mut self, a: NodeId, indices: IndexSlot) -> Result<NodeId, TensorError> {
        let (_m, n) = self.require_matrix(a, "gather_rows")?;
        let rows = self.index_input_lens[indices.0];
        Ok(self.push(Op::GatherRows { a, indices }, vec![rows, n]))
    }

    // ------------------------------------------------------------------
    // Quantised chains
    // ------------------------------------------------------------------

    /// Registers a pre-quantised weight block for [`GraphBuilder::quant_matmul`]
    /// and returns its slot index. Blocks are shared (`Rc`), so registering a
    /// [`crate::quant::QuantSpec`] entry is cheap.
    pub fn add_qweight(&mut self, w: Rc<QuantizedWeights>) -> usize {
        self.qweights.push(w);
        self.qweights.len() - 1
    }

    /// Symmetric quantisation of an `f32` matrix node to `i8` under a fixed
    /// activation scale. The resulting node has [`DType::I8`].
    ///
    /// # Errors
    ///
    /// [`TensorError::RankMismatch`] for non-matrix operands,
    /// [`TensorError::InvalidArgument`] for a non-`F32` operand or a
    /// non-finite/non-positive scale.
    pub fn quantize_sym(&mut self, a: NodeId, scale: f32) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "quantize_sym")?;
        if self.dtype(a) != DType::F32 {
            return Err(TensorError::InvalidArgument {
                op: "quantize_sym",
                message: "operand must be f32".to_string(),
            });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TensorError::InvalidArgument {
                op: "quantize_sym",
                message: format!("scale must be finite and positive, got {scale}"),
            });
        }
        Ok(self.push_typed(
            Op::QuantizeSym {
                a,
                inv_scale: 1.0 / scale,
            },
            vec![m, n],
            DType::I8,
        ))
    }

    /// `i8 x i8 -> i32` matrix product of a quantised `[m, k]` activation
    /// against weight slot `w` (shape `[k, out_features]` logically; stored
    /// transposed). The resulting node has [`DType::I32`].
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for a non-`I8` operand or an unknown
    /// weight slot, [`TensorError::ShapeMismatch`] if the reduction
    /// dimensions disagree.
    pub fn quant_matmul(&mut self, a: NodeId, w: usize) -> Result<NodeId, TensorError> {
        let (m, k) = self.require_matrix(a, "quant_matmul")?;
        if self.dtype(a) != DType::I8 {
            return Err(TensorError::InvalidArgument {
                op: "quant_matmul",
                message: "operand must be i8 (quantize_sym it first)".to_string(),
            });
        }
        let qw = self
            .qweights
            .get(w)
            .ok_or_else(|| TensorError::InvalidArgument {
                op: "quant_matmul",
                message: format!("unknown weight slot {w}"),
            })?;
        if qw.in_features() != k {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matmul",
                lhs: vec![m, k],
                rhs: vec![qw.in_features(), qw.out_features()],
            });
        }
        let n = qw.out_features();
        Ok(self.push_typed(Op::MatMulI8 { a, w }, vec![m, n], DType::I32))
    }

    /// Dequantises an `i32` accumulator matrix back to `f32`, multiplying
    /// column `j` by `scales[j]` (the combined activation × per-channel
    /// weight scale).
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] for a non-`I32` operand,
    /// [`TensorError::ShapeMismatch`] if `scales` does not match the column
    /// count.
    pub fn dequantize_cols(
        &mut self,
        a: NodeId,
        scales: Rc<Vec<f32>>,
    ) -> Result<NodeId, TensorError> {
        let (m, n) = self.require_matrix(a, "dequantize_cols")?;
        if self.dtype(a) != DType::I32 {
            return Err(TensorError::InvalidArgument {
                op: "dequantize_cols",
                message: "operand must be i32 (a quant_matmul accumulator)".to_string(),
            });
        }
        if scales.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "dequantize_cols",
                lhs: vec![m, n],
                rhs: vec![scales.len()],
            });
        }
        Ok(self.push_typed(Op::DequantizeCols { a, scales }, vec![m, n], DType::F32))
    }

    // ------------------------------------------------------------------
    // Outputs
    // ------------------------------------------------------------------

    /// Marks a node as a plan output: its buffer is pinned for the whole
    /// execution (never reused in place) and readable afterwards through
    /// the compiled plan's output accessors, in `mark_output` order.
    pub fn mark_output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }
}
