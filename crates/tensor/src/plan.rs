//! Lifetime planning: from a traced graph to an arena execution schedule.
//!
//! This is the middle stage of the trace → plan → execute pipeline. The
//! planner walks a [`GraphBuilder`]'s nodes in creation order (already
//! topological) and produces a [`Plan`]:
//!
//! * **Aliases first.** `Reshape` and `SliceRows` never move data in
//!   row-major storage, so they compile to *views*: the node resolves to a
//!   sub-range of its root's storage and emits no step. Uses of an alias
//!   count as uses of its root.
//! * **Lifetimes.** Every computed node's buffer is live from its defining
//!   step to its last use (a simple reference count, since the walk order is
//!   the execution order). Output nodes are pinned — their intervals extend
//!   to the end of the plan so results survive execution.
//! * **Arena layout.** Buffers are placed by a best-fit free-list allocator
//!   with coalescing over one flat `f32` arena; a freed interval is
//!   immediately reusable by later nodes. The resulting `arena_len` is the
//!   plan's entire per-execution working set.
//! * **In-place reuse.** When an elementwise-style op's primary operand is
//!   a full (non-aliased) arena buffer that *dies at that node*, the output
//!   steals the operand's interval and the step is emitted as a distinct
//!   in-place variant (`ReluIp`, `AddIp`, …) whose executor arm touches only
//!   the output slice — the in-place and out-of-place arms can therefore
//!   never alias by construction.
//!
//! The planner asserts, at build time, that every emitted step's read
//! operands are disjoint from its output interval (in-place variants encode
//! the one intentional overlap in the op itself). The executor's `unsafe`
//! slice derivation leans on exactly this invariant.
#![warn(missing_docs)]

use crate::graph::{DType, GraphBuilder, Op};
use crate::TensorError;
use std::rc::Rc;

/// Where a step operand's data lives.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SrcLoc {
    /// Offset into the plan's arena.
    Arena(usize),
    /// Offset into a positionally bound runtime input.
    Input { slot: usize, off: usize },
    /// Offset into a captured parameter's current value.
    Param { slot: usize, off: usize },
}

/// A resolved read operand: location plus element count.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Operand {
    pub(crate) loc: SrcLoc,
    pub(crate) len: usize,
}

/// One executable step, with all shapes/offsets resolved at plan time.
///
/// `*Ip` variants execute in place: the step's output interval *is* the
/// primary operand (which died at this node), so the arm reads and writes
/// only the output slice.
#[derive(Debug, Clone)]
pub(crate) enum StepOp {
    MatMul {
        a: Operand,
        b: Operand,
        k: usize,
        n: usize,
    },
    MatMulT {
        a: Operand,
        b: Operand,
        k: usize,
        p: usize,
    },
    Add {
        a: Operand,
        b: Operand,
    },
    AddIp {
        b: Operand,
    },
    AddRow {
        a: Operand,
        row: Operand,
    },
    AddRowIp {
        row: Operand,
    },
    AddColBias {
        a: Operand,
        bias: Operand,
        rows: usize,
    },
    AddColBiasIp {
        bias: Operand,
        rows: usize,
    },
    Scale {
        a: Operand,
        factor: f32,
    },
    ScaleIp {
        factor: f32,
    },
    Relu {
        a: Operand,
    },
    ReluIp,
    Sigmoid {
        a: Operand,
    },
    SigmoidIp,
    Gelu {
        a: Operand,
    },
    GeluIp,
    SoftmaxRows {
        a: Operand,
        cols: usize,
    },
    LayerNorm {
        a: Operand,
        gamma: Operand,
        beta: Operand,
        cols: usize,
        eps: f32,
    },
    Transpose {
        a: Operand,
        rows: usize,
        cols: usize,
    },
    SliceCols {
        a: Operand,
        a_cols: usize,
        start: usize,
        end: usize,
        rows: usize,
    },
    /// Sequential copy of parts into the output (also covers `ConcatFlat`).
    ConcatRows {
        parts: Vec<Operand>,
    },
    /// Interleaved per-row copy; each part carries its column count.
    ConcatCols {
        parts: Vec<(Operand, usize)>,
        rows: usize,
    },
    Im2Col {
        a: Operand,
        h: usize,
        w: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        oh: usize,
        ow: usize,
    },
    GatherRows {
        a: Operand,
        a_rows: usize,
        cols: usize,
        slot: usize,
    },
    /// f32 arena/input → i8 arena; cross-arena, so never in place and never
    /// part of the disjointness proof (distinct arenas cannot alias).
    QuantizeSym {
        a: Operand,
        inv_scale: f32,
    },
    /// i8 arena → i32 arena against pre-quantised weight slot `w`.
    MatMulI8 {
        a: Operand,
        w: usize,
        k: usize,
        p: usize,
    },
    /// i32 arena → f32 arena with per-column combined scales.
    DequantizeCols {
        a: Operand,
        scales: Rc<Vec<f32>>,
        cols: usize,
    },
}

/// A step: the op plus its output interval in the arena.
#[derive(Debug, Clone)]
pub(crate) struct Step {
    pub(crate) op: StepOp,
    pub(crate) out_off: usize,
    pub(crate) out_len: usize,
}

/// A plan output: pinned arena interval plus the node's build-time shape.
#[derive(Debug, Clone)]
pub(crate) struct PlanOutput {
    pub(crate) off: usize,
    pub(crate) len: usize,
    pub(crate) shape: Vec<usize>,
}

/// The schedule produced by [`plan_graph`]: steps in execution order, the
/// arena size, and the validation contract (expected input shapes, index
/// input lengths and parameter lengths) the executor re-checks on every
/// call so a stale plan fails loudly instead of reading garbage.
#[derive(Debug)]
pub(crate) struct Plan {
    pub(crate) steps: Vec<Step>,
    pub(crate) arena_len: usize,
    /// Working set of the quantised `i8` activation arena (0 for pure-f32
    /// plans).
    pub(crate) arena_i8_len: usize,
    /// Working set of the `i32` accumulator arena (0 for pure-f32 plans).
    pub(crate) arena_i32_len: usize,
    pub(crate) input_shapes: Vec<Vec<usize>>,
    pub(crate) index_input_lens: Vec<usize>,
    pub(crate) param_lens: Vec<usize>,
    pub(crate) outputs: Vec<PlanOutput>,
}

/// Storage root of a node after alias resolution.
#[derive(Debug, Clone, Copy)]
enum Base {
    /// Computed node index (arena storage).
    Node(usize),
    /// Runtime input slot.
    Input(usize),
    /// Parameter slot.
    Param(usize),
}

/// A node resolved to (root storage, element offset, element count).
#[derive(Debug, Clone, Copy)]
struct Res {
    base: Base,
    off: usize,
    len: usize,
}

/// Best-fit free-list allocator with coalescing over a growable arena.
#[derive(Debug, Default)]
struct ArenaAlloc {
    /// Free intervals `(off, len)`, kept sorted by offset and coalesced.
    free: Vec<(usize, usize)>,
    high: usize,
}

impl ArenaAlloc {
    fn alloc(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        // Best fit: the smallest free interval that satisfies the request
        // (ties to the lowest offset, since the scan is in offset order).
        let mut best: Option<usize> = None;
        for (i, &(_, flen)) in self.free.iter().enumerate() {
            if flen >= len && best.is_none_or(|b| flen < self.free[b].1) {
                best = Some(i);
            }
        }
        if let Some(i) = best {
            let (off, flen) = self.free[i];
            if flen == len {
                self.free.remove(i);
            } else {
                self.free[i] = (off + len, flen - len);
            }
            return off;
        }
        let off = self.high;
        self.high += len;
        off
    }

    fn free(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let i = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(i, (off, len));
        // Coalesce with the successor, then the predecessor.
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
    }
}

/// Panics if a read operand's arena interval overlaps the output interval —
/// the planner invariant the executor's raw-slice derivation relies on.
fn assert_disjoint(out_off: usize, out_len: usize, o: &Operand) {
    if let SrcLoc::Arena(off) = o.loc {
        let disjoint = off + o.len <= out_off || out_off + out_len <= off;
        assert!(
            disjoint || o.len == 0 || out_len == 0,
            "planner bug: read interval [{off}, {}) overlaps output [{out_off}, {})",
            off + o.len,
            out_off + out_len,
        );
    }
}

/// The dtype-homogeneous arenas a plan lays buffers into.
const ARENA_F32: usize = 0;
const ARENA_I8: usize = 1;
const ARENA_I32: usize = 2;

fn arena_ix(dt: DType) -> usize {
    match dt {
        DType::F32 => ARENA_F32,
        DType::I8 => ARENA_I8,
        DType::I32 => ARENA_I32,
    }
}

/// Compiles a finished graph into an executable [`Plan`].
pub(crate) fn plan_graph(b: &GraphBuilder) -> Result<Plan, TensorError> {
    let n = b.nodes.len();

    // Pass 0: dtype discipline. Quantised ops consume exactly the dtype the
    // builder produced for their operand; every classic op (including the
    // alias ops — non-f32 buffers may not be aliased) is f32-only. Graphs
    // built through `GraphBuilder`'s methods cannot fail this; hand-spliced
    // graphs (the quantisation rewrite) are re-checked here.
    for node in &b.nodes {
        let mut ok = true;
        match &node.op {
            Op::QuantizeSym { a, .. } => ok = b.nodes[a.0].dtype == DType::F32,
            Op::MatMulI8 { a, .. } => ok = b.nodes[a.0].dtype == DType::I8,
            Op::DequantizeCols { a, .. } => ok = b.nodes[a.0].dtype == DType::I32,
            op => op.for_each_operand(|i| ok &= b.nodes[i].dtype == DType::F32),
        }
        if !ok {
            return Err(TensorError::InvalidArgument {
                op: "plan_graph",
                message: "operand dtype does not match the op's contract".to_string(),
            });
        }
    }
    for &out in &b.outputs {
        if b.nodes[out.0].dtype != DType::F32 {
            return Err(TensorError::InvalidArgument {
                op: "plan_graph",
                message: "graph outputs must be f32 (dequantize before marking)".to_string(),
            });
        }
    }

    // Pass 1: alias resolution. Creation order guarantees operands resolve
    // before their consumers.
    let mut res: Vec<Res> = Vec::with_capacity(n);
    for (idx, node) in b.nodes.iter().enumerate() {
        let len = node.numel();
        let r = match &node.op {
            Op::Input { slot } => Res {
                base: Base::Input(*slot),
                off: 0,
                len,
            },
            Op::Param { slot } => Res {
                base: Base::Param(*slot),
                off: 0,
                len,
            },
            Op::Reshape { a } => Res { len, ..res[a.0] },
            Op::SliceRows { a, start, .. } => {
                let cols = b.nodes[a.0].shape[1];
                let ar = res[a.0];
                Res {
                    base: ar.base,
                    off: ar.off + start * cols,
                    len,
                }
            }
            _ => Res {
                base: Base::Node(idx),
                off: 0,
                len,
            },
        };
        res.push(r);
    }

    // Pass 2: use counts per computed root, and output pinning. Aliases
    // (reshape, row slices) never read their operand — only the compute
    // nodes that consume them do, and those resolve through to the root —
    // so counting them would inflate lifetimes and block in-place reuse.
    let mut uses = vec![0usize; n];
    let mut pinned = vec![false; n];
    for node in &b.nodes {
        if matches!(node.op, Op::Reshape { .. } | Op::SliceRows { .. }) {
            continue;
        }
        node.op.for_each_operand(|a| {
            if let Base::Node(r) = res[a].base {
                uses[r] += 1;
            }
        });
    }
    let mut outputs_meta = Vec::with_capacity(b.outputs.len());
    for &out in &b.outputs {
        match res[out.0].base {
            Base::Node(r) => pinned[r] = true,
            _ => {
                return Err(TensorError::InvalidArgument {
                    op: "plan_graph",
                    message: "graph output must be a computed node, not a raw input or parameter"
                        .to_string(),
                })
            }
        }
        outputs_meta.push(out);
    }

    // Pass 3: allocation sweep in execution order. One allocator per dtype
    // arena; a node's buffer lives in its dtype's arena, so cross-dtype
    // steps (the quantised chain) read and write disjoint storage by
    // construction.
    let mut allocs = [
        ArenaAlloc::default(),
        ArenaAlloc::default(),
        ArenaAlloc::default(),
    ];
    // Arena offset of each computed root's buffer (usize::MAX = not placed),
    // relative to its dtype's arena.
    let mut arena_off = vec![usize::MAX; n];
    let mut steps = Vec::new();

    let operand_of = |res: &[Res], arena_off: &[usize], a: usize| -> Operand {
        let r = res[a];
        let loc = match r.base {
            Base::Node(root) => SrcLoc::Arena(arena_off[root] + r.off),
            Base::Input(slot) => SrcLoc::Input { slot, off: r.off },
            Base::Param(slot) => SrcLoc::Param { slot, off: r.off },
        };
        Operand { loc, len: r.len }
    };
    // In-place eligibility: `a` must be the *entire* live buffer of a
    // computed, unpinned root that dies at this node.
    let eligible_ip = |res: &[Res], uses: &[usize], pinned: &[bool], a: usize| -> Option<usize> {
        match res[a].base {
            Base::Node(root)
                if res[a].off == 0
                    && res[a].len == res[root].len
                    && uses[root] == 1
                    && !pinned[root] =>
            {
                Some(root)
            }
            _ => None,
        }
    };
    let root_of = |res: &[Res], a: usize| -> Option<usize> {
        match res[a].base {
            Base::Node(r) => Some(r),
            _ => None,
        }
    };

    for (idx, node) in b.nodes.iter().enumerate() {
        let out_len = node.numel();
        // `stolen` is the root whose buffer this node takes over in place;
        // its interval must not be freed by the decrement pass below.
        let mut stolen: Option<usize> = None;

        let step_op = match &node.op {
            Op::Input { .. } | Op::Param { .. } | Op::Reshape { .. } | Op::SliceRows { .. } => None,
            Op::MatMul { a, b: rhs } => {
                let k = b.nodes[a.0].shape[1];
                let nn = b.nodes[rhs.0].shape[1];
                Some(StepOp::MatMul {
                    a: operand_of(&res, &arena_off, a.0),
                    b: operand_of(&res, &arena_off, rhs.0),
                    k,
                    n: nn,
                })
            }
            Op::MatMulT { a, b: rhs } => {
                let k = b.nodes[a.0].shape[1];
                let p = b.nodes[rhs.0].shape[0];
                Some(StepOp::MatMulT {
                    a: operand_of(&res, &arena_off, a.0),
                    b: operand_of(&res, &arena_off, rhs.0),
                    k,
                    p,
                })
            }
            Op::Add { a, b: rhs } => {
                // In place only when b lives in a different buffer than a —
                // otherwise the accumulating arm would read what it writes.
                if root_of(&res, rhs.0) != root_of(&res, a.0) {
                    if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                        stolen = Some(root);
                    }
                }
                match stolen {
                    Some(_) => Some(StepOp::AddIp {
                        b: operand_of(&res, &arena_off, rhs.0),
                    }),
                    None => Some(StepOp::Add {
                        a: operand_of(&res, &arena_off, a.0),
                        b: operand_of(&res, &arena_off, rhs.0),
                    }),
                }
            }
            Op::AddRow { a, row } => {
                if root_of(&res, row.0) != root_of(&res, a.0) {
                    if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                        stolen = Some(root);
                    }
                }
                let row_op = operand_of(&res, &arena_off, row.0);
                match stolen {
                    Some(_) => Some(StepOp::AddRowIp { row: row_op }),
                    None => Some(StepOp::AddRow {
                        a: operand_of(&res, &arena_off, a.0),
                        row: row_op,
                    }),
                }
            }
            Op::AddColBias { a, bias } => {
                let rows = node.shape[0];
                if root_of(&res, bias.0) != root_of(&res, a.0) {
                    if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                        stolen = Some(root);
                    }
                }
                let bias_op = operand_of(&res, &arena_off, bias.0);
                match stolen {
                    Some(_) => Some(StepOp::AddColBiasIp {
                        bias: bias_op,
                        rows,
                    }),
                    None => Some(StepOp::AddColBias {
                        a: operand_of(&res, &arena_off, a.0),
                        bias: bias_op,
                        rows,
                    }),
                }
            }
            Op::Scale { a, factor } => {
                if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                    stolen = Some(root);
                }
                match stolen {
                    Some(_) => Some(StepOp::ScaleIp { factor: *factor }),
                    None => Some(StepOp::Scale {
                        a: operand_of(&res, &arena_off, a.0),
                        factor: *factor,
                    }),
                }
            }
            Op::Relu { a } => {
                if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                    stolen = Some(root);
                }
                match stolen {
                    Some(_) => Some(StepOp::ReluIp),
                    None => Some(StepOp::Relu {
                        a: operand_of(&res, &arena_off, a.0),
                    }),
                }
            }
            Op::Sigmoid { a } => {
                if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                    stolen = Some(root);
                }
                match stolen {
                    Some(_) => Some(StepOp::SigmoidIp),
                    None => Some(StepOp::Sigmoid {
                        a: operand_of(&res, &arena_off, a.0),
                    }),
                }
            }
            Op::Gelu { a } => {
                if let Some(root) = eligible_ip(&res, &uses, &pinned, a.0) {
                    stolen = Some(root);
                }
                match stolen {
                    Some(_) => Some(StepOp::GeluIp),
                    None => Some(StepOp::Gelu {
                        a: operand_of(&res, &arena_off, a.0),
                    }),
                }
            }
            // Softmax reads its source row while writing the output row, so
            // it is never executed in place.
            Op::SoftmaxRows { a } => Some(StepOp::SoftmaxRows {
                a: operand_of(&res, &arena_off, a.0),
                cols: node.shape[1],
            }),
            Op::LayerNorm {
                a,
                gamma,
                beta,
                eps,
            } => Some(StepOp::LayerNorm {
                a: operand_of(&res, &arena_off, a.0),
                gamma: operand_of(&res, &arena_off, gamma.0),
                beta: operand_of(&res, &arena_off, beta.0),
                cols: node.shape[1],
                eps: *eps,
            }),
            Op::Transpose { a } => Some(StepOp::Transpose {
                a: operand_of(&res, &arena_off, a.0),
                rows: b.nodes[a.0].shape[0],
                cols: b.nodes[a.0].shape[1],
            }),
            Op::SliceCols { a, start, end } => Some(StepOp::SliceCols {
                a: operand_of(&res, &arena_off, a.0),
                a_cols: b.nodes[a.0].shape[1],
                start: *start,
                end: *end,
                rows: node.shape[0],
            }),
            Op::ConcatRows { parts } | Op::ConcatFlat { parts } => Some(StepOp::ConcatRows {
                parts: parts
                    .iter()
                    .map(|p| operand_of(&res, &arena_off, p.0))
                    .collect(),
            }),
            Op::ConcatCols { parts } => Some(StepOp::ConcatCols {
                parts: parts
                    .iter()
                    .map(|p| (operand_of(&res, &arena_off, p.0), b.nodes[p.0].shape[1]))
                    .collect(),
                rows: node.shape[0],
            }),
            Op::Im2Col {
                a,
                kh,
                kw,
                stride,
                pad,
            } => {
                let (h, w) = (b.nodes[a.0].shape[1], b.nodes[a.0].shape[2]);
                let (oh, ow) = crate::array::conv_out_dims(h, w, *kh, *kw, *stride, *pad)?;
                Some(StepOp::Im2Col {
                    a: operand_of(&res, &arena_off, a.0),
                    h,
                    w,
                    kh: *kh,
                    kw: *kw,
                    stride: *stride,
                    pad: *pad,
                    oh,
                    ow,
                })
            }
            Op::GatherRows { a, indices } => Some(StepOp::GatherRows {
                a: operand_of(&res, &arena_off, a.0),
                a_rows: b.nodes[a.0].shape[0],
                cols: node.shape[1],
                slot: indices.0,
            }),
            // Quantised chain: cross-arena, never in place.
            Op::QuantizeSym { a, inv_scale } => Some(StepOp::QuantizeSym {
                a: operand_of(&res, &arena_off, a.0),
                inv_scale: *inv_scale,
            }),
            Op::MatMulI8 { a, w } => Some(StepOp::MatMulI8 {
                a: operand_of(&res, &arena_off, a.0),
                w: *w,
                k: b.nodes[a.0].shape[1],
                p: node.shape[1],
            }),
            Op::DequantizeCols { a, scales } => Some(StepOp::DequantizeCols {
                a: operand_of(&res, &arena_off, a.0),
                scales: Rc::clone(scales),
                cols: node.shape[1],
            }),
        };

        let Some(step_op) = step_op else {
            continue;
        };

        // Place the output: steal the dying operand's interval (in place)
        // or allocate while all operands are still live, so the allocator
        // cannot hand back an interval overlapping any of them.
        let out_off = match stolen {
            Some(root) => {
                uses[root] = 0;
                arena_off[root]
            }
            None => allocs[arena_ix(node.dtype)].alloc(out_len),
        };
        arena_off[idx] = out_off;

        // Build-time proof of the executor's aliasing contract.
        step_op.for_each_read_operand(|o| assert_disjoint(out_off, out_len, o));

        steps.push(Step {
            op: step_op,
            out_off,
            out_len,
        });

        // Retire this step's operands; a root whose last use this was gives
        // its interval back (unless pinned as an output or stolen above).
        node.op.for_each_operand(|a| {
            if let Base::Node(r) = res[a].base {
                if Some(r) == stolen {
                    return;
                }
                uses[r] -= 1;
                if uses[r] == 0 && !pinned[r] {
                    allocs[arena_ix(b.nodes[r].dtype)].free(arena_off[r], res[r].len);
                }
            }
        });
    }

    let outputs = outputs_meta
        .iter()
        .map(|&out| {
            let r = res[out.0];
            let root = match r.base {
                Base::Node(root) => root,
                _ => unreachable!("outputs validated as computed nodes above"),
            };
            PlanOutput {
                off: arena_off[root] + r.off,
                len: r.len,
                shape: b.nodes[out.0].shape.clone(),
            }
        })
        .collect();

    bliss_telemetry::metrics::PLANS_COMPILED.add(1);
    Ok(Plan {
        steps,
        arena_len: allocs[ARENA_F32].high,
        arena_i8_len: allocs[ARENA_I8].high,
        arena_i32_len: allocs[ARENA_I32].high,
        input_shapes: b.input_shapes.clone(),
        index_input_lens: b.index_input_lens.clone(),
        param_lens: b.params.iter().map(|p| p.value().data().len()).collect(),
        outputs,
    })
}

impl Op {
    /// Visits every operand node index (aliases included, in tape order).
    pub(crate) fn for_each_operand(&self, mut f: impl FnMut(usize)) {
        match self {
            Op::Input { .. } | Op::Param { .. } => {}
            Op::MatMul { a, b } | Op::MatMulT { a, b } | Op::Add { a, b } => {
                f(a.0);
                f(b.0);
            }
            Op::AddRow { a, row } => {
                f(a.0);
                f(row.0);
            }
            Op::AddColBias { a, bias } => {
                f(a.0);
                f(bias.0);
            }
            Op::Scale { a, .. }
            | Op::Relu { a }
            | Op::Sigmoid { a }
            | Op::Gelu { a }
            | Op::SoftmaxRows { a }
            | Op::Transpose { a }
            | Op::Reshape { a }
            | Op::SliceRows { a, .. }
            | Op::SliceCols { a, .. }
            | Op::Im2Col { a, .. }
            | Op::GatherRows { a, .. }
            | Op::QuantizeSym { a, .. }
            | Op::MatMulI8 { a, .. }
            | Op::DequantizeCols { a, .. } => f(a.0),
            Op::LayerNorm { a, gamma, beta, .. } => {
                f(a.0);
                f(gamma.0);
                f(beta.0);
            }
            Op::ConcatRows { parts } | Op::ConcatCols { parts } | Op::ConcatFlat { parts } => {
                for p in parts {
                    f(p.0);
                }
            }
        }
    }
}

impl StepOp {
    /// Visits every operand this step *reads* (in-place variants read only
    /// their extra operand — the output slice is the primary operand).
    fn for_each_read_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            StepOp::MatMul { a, b, .. } | StepOp::MatMulT { a, b, .. } | StepOp::Add { a, b } => {
                f(a);
                f(b);
            }
            StepOp::AddIp { b } => f(b),
            StepOp::AddRow { a, row } => {
                f(a);
                f(row);
            }
            StepOp::AddRowIp { row } => f(row),
            StepOp::AddColBias { a, bias, .. } => {
                f(a);
                f(bias);
            }
            StepOp::AddColBiasIp { bias, .. } => f(bias),
            StepOp::Scale { a, .. }
            | StepOp::Relu { a }
            | StepOp::Sigmoid { a }
            | StepOp::Gelu { a }
            | StepOp::SoftmaxRows { a, .. }
            | StepOp::Transpose { a, .. }
            | StepOp::SliceCols { a, .. }
            | StepOp::Im2Col { a, .. }
            | StepOp::GatherRows { a, .. } => f(a),
            StepOp::ScaleIp { .. } | StepOp::ReluIp | StepOp::SigmoidIp | StepOp::GeluIp => {}
            // Quantised steps read and write *different* arenas; their
            // offsets are not comparable with the output interval, so the
            // disjointness proof skips them (disjoint by construction).
            StepOp::QuantizeSym { .. }
            | StepOp::MatMulI8 { .. }
            | StepOp::DequantizeCols { .. } => {}
            StepOp::LayerNorm { a, gamma, beta, .. } => {
                f(a);
                f(gamma);
                f(beta);
            }
            StepOp::ConcatRows { parts } => {
                for p in parts {
                    f(p);
                }
            }
            StepOp::ConcatCols { parts, .. } => {
                for (p, _) in parts {
                    f(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_fit_prefers_smallest_adequate_hole() {
        let mut a = ArenaAlloc::default();
        let big = a.alloc(100);
        let _guard1 = a.alloc(1); // keeps the two holes from coalescing
        let small = a.alloc(10);
        let _guard2 = a.alloc(5);
        a.free(big, 100);
        a.free(small, 10);
        // A 10-element request must take the 10-hole, not carve the 100-hole.
        assert_eq!(a.alloc(10), small);
        assert_eq!(a.alloc(100), big);
    }

    #[test]
    fn freeing_coalesces_neighbours() {
        let mut a = ArenaAlloc::default();
        let x = a.alloc(10);
        let y = a.alloc(10);
        let z = a.alloc(10);
        let high = a.high;
        a.free(x, 10);
        a.free(z, 10);
        a.free(y, 10);
        assert_eq!(a.free.len(), 1, "three adjacent frees must coalesce");
        assert_eq!(a.free[0], (x, 30));
        // The coalesced hole satisfies a request that none of the pieces
        // could have; the arena does not grow.
        assert_eq!(a.alloc(30), x);
        assert_eq!(a.high, high);
    }
}
