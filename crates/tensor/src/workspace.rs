//! Reusable thread-local workspace for the matmul kernel's operand packing.
//!
//! [`crate::NdArray::matmul_transposed`] feeds the register-blocked matmul a
//! row-major copy of its transposed right operand (the "pack": the kernel
//! streams `b` rows, so `Q K^T`-style products need `K` laid out `[k, p]`).
//! Before this module the pack was an intermediate `NdArray` per call —
//! pool-recycled, but still paying a pool lookup, a shape header and a
//! tensor construction on every attention score/gradient product. The
//! workspace instead keeps **one** dedicated buffer per thread, taken and
//! put back around the kernel call, so steady-state packing touches no
//! allocator and no pool search.
//!
//! The buffer is *taken* out of the thread-local slot for the duration of
//! the closure (not borrowed), so a re-entrant use — e.g. a nested kernel
//! that also packs — falls back to a fresh allocation instead of a
//! `RefCell` panic; only the outermost pack gets the cached buffer, which is
//! exactly the hot case.

use std::cell::Cell;

thread_local! {
    static PACK: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` over a zero-length-then-resized packing buffer of exactly `len`
/// elements (contents unspecified on entry; `f` must fully overwrite what it
/// reads), returning the buffer to the thread-local slot afterwards.
pub(crate) fn with_pack_buf<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = PACK.with(Cell::take);
    // `resize` over a kept allocation: no-op once the high-water mark is
    // reached (the pack is always fully overwritten before being read).
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let out = f(&mut buf[..len]);
    PACK.with(|cell| cell.set(buf));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_buffer_is_reused_across_calls() {
        let first = with_pack_buf(4096, |b| {
            b[0] = 1.0;
            b.as_ptr()
        });
        let second = with_pack_buf(1024, |b| b.as_ptr());
        assert_eq!(first, second, "workspace must reuse its buffer");
    }

    #[test]
    fn reentrant_use_falls_back_gracefully() {
        with_pack_buf(64, |outer| {
            outer[0] = 2.0;
            with_pack_buf(64, |inner| {
                inner[0] = 3.0;
            });
            assert_eq!(outer[0], 2.0, "nested pack must not alias the outer");
        });
    }
}
