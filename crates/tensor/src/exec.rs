//! Arena executor: runs a compiled plan with zero per-call allocations.
//!
//! The final stage of the trace → plan → execute pipeline. An [`ExecPlan`]
//! owns the planner's step schedule, the captured parameter tensors and one
//! flat `f32` arena sized to the plan's working set. [`ExecPlan::execute`]
//! walks the steps, dispatching each to the *same* slice-level kernels the
//! tape ops call (`matmul_into`, `softmax_rows_into`, `layer_norm_row_stats`
//! …), reading and writing arena offsets — no `NdArray` construction, no
//! `Rc` traffic, no pool lookups, no heap allocation of any size once the
//! plan exists. Sharing the kernel cores (rather than reimplementing them)
//! is what makes planned execution bit-identical to the tape at any thread
//! count: both paths run the exact same floating-point expression trees in
//! the exact same order.
//!
//! # Safety
//!
//! Each step needs `&mut` to its output interval and `&` to its read
//! intervals, all inside the one arena — which safe Rust cannot express.
//! The slices are derived from raw pointers instead; soundness rests on the
//! planner's build-time `assert_disjoint` proof that no step's read interval
//! overlaps its output interval (in-place steps encode the single
//! intentional overlap in the op variant itself and read nothing else from
//! the output range).
//!
//! # Stale-plan protection
//!
//! A plan is only valid for the exact input shapes, index lengths and
//! parameter lengths it was compiled against. [`ExecPlan::execute`]
//! re-validates all three on every call and fails with a loud
//! [`TensorError`] — never undefined behaviour — if a caller (or a cache
//! bug) presents mismatched data. Gather indices are additionally
//! bounds-checked at execution time because their *values* are per-call.
#![allow(unsafe_code)]
#![warn(missing_docs)]

use crate::array::{
    add_row_assign, gather_rows_into, gelu_scalar, im2col_into, layer_norm_row_stats, matmul_into,
    matmul_transposed_into, sigmoid_scalar, softmax_rows_into, transpose_into,
};
use crate::graph::GraphBuilder;
use crate::plan::{plan_graph, Operand, Plan, SrcLoc, StepOp};
use crate::quant::{quantize_graph, quantize_sym_into, QuantSpec, QuantizedWeights};
use crate::{Tensor, TensorError};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// A compiled, reusable execution plan: step schedule, captured parameters
/// and a pre-sized arena.
///
/// Compile once per (model, shape class) with [`ExecPlan::compile`], then
/// [`ExecPlan::execute`] any number of times. Parameters are captured as
/// live [`Tensor`] references — weight updates (training between serving
/// phases, snapshot restore into the same tensors) are picked up on the
/// next execution without recompiling.
pub struct ExecPlan {
    plan: Plan,
    params: Vec<Tensor>,
    /// Pre-quantised weight blocks for `MatMulI8` steps (empty for pure-f32
    /// plans).
    qweights: Vec<Rc<QuantizedWeights>>,
    arena: RefCell<Vec<f32>>,
    /// Quantised activation arena, drawn from the i8 scratch pool at
    /// compile time and recycled on drop (empty for pure-f32 plans).
    arena_i8: RefCell<Vec<i8>>,
    /// Integer accumulator arena, drawn from the i32 scratch pool at
    /// compile time and recycled on drop (empty for pure-f32 plans).
    arena_i32: RefCell<Vec<i32>>,
}

impl Drop for ExecPlan {
    fn drop(&mut self) {
        crate::scratch::recycle_i8_buffer(std::mem::take(self.arena_i8.get_mut()));
        crate::scratch::recycle_i32_buffer(std::mem::take(self.arena_i32.get_mut()));
    }
}

impl std::fmt::Debug for ExecPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPlan")
            .field("steps", &self.plan.steps.len())
            .field("arena_len", &self.plan.arena_len)
            .field("params", &self.params.len())
            .field("outputs", &self.plan.outputs.len())
            .finish()
    }
}

impl ExecPlan {
    /// Compiles a finished graph: plans buffer lifetimes into an arena
    /// layout and allocates the arena (the last allocation this plan ever
    /// performs).
    ///
    /// # Errors
    ///
    /// Propagates planner shape errors; [`TensorError::InvalidArgument`] if
    /// a marked output is a raw input or parameter.
    pub fn compile(graph: GraphBuilder) -> Result<ExecPlan, TensorError> {
        let plan = plan_graph(&graph)?;
        let arena = RefCell::new(vec![0.0; plan.arena_len]);
        let mut i8_buf = crate::scratch::take_i8_buffer(plan.arena_i8_len);
        i8_buf.resize(plan.arena_i8_len, 0);
        let mut i32_buf = crate::scratch::take_i32_buffer(plan.arena_i32_len);
        i32_buf.resize(plan.arena_i32_len, 0);
        Ok(ExecPlan {
            plan,
            params: graph.params,
            qweights: graph.qweights,
            arena,
            arena_i8: RefCell::new(i8_buf),
            arena_i32: RefCell::new(i32_buf),
        })
    }

    /// Rewrites the graph under a calibrated [`QuantSpec`] (see
    /// [`crate::quant`]) and compiles the quantised result: every calibrated
    /// weight GEMM runs as `quantize_sym → i8×i8→i32 → dequantize_cols`,
    /// everything else — and the training tape — is untouched.
    ///
    /// # Errors
    ///
    /// Propagates rewrite and planner errors.
    pub fn compile_quantized(
        graph: GraphBuilder,
        spec: &QuantSpec,
    ) -> Result<ExecPlan, TensorError> {
        let rewritten = quantize_graph(&graph, spec)?;
        Self::compile(rewritten)
    }

    /// Arena size in `f32` elements — the plan's entire per-execution
    /// working set (soak tests gate on this staying constant).
    pub fn arena_len(&self) -> usize {
        self.plan.arena_len
    }

    /// Quantised `i8` activation arena size in elements (0 for pure-f32
    /// plans).
    pub fn arena_i8_len(&self) -> usize {
        self.plan.arena_i8_len
    }

    /// `i32` accumulator arena size in elements (0 for pure-f32 plans).
    pub fn arena_i32_len(&self) -> usize {
        self.plan.arena_i32_len
    }

    /// Number of quantised weight GEMM steps in the plan (0 for pure-f32
    /// plans) — the differential harness uses this to prove the int8 path
    /// actually runs quantised.
    pub fn num_quantized_matmuls(&self) -> usize {
        self.plan
            .steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::MatMulI8 { .. }))
            .count()
    }

    /// Number of execution steps (aliases compile away and do not count).
    pub fn num_steps(&self) -> usize {
        self.plan.steps.len()
    }

    /// Number of marked outputs.
    pub fn num_outputs(&self) -> usize {
        self.plan.outputs.len()
    }

    /// Build-time shape of output `i`.
    pub fn output_shape(&self, i: usize) -> &[usize] {
        &self.plan.outputs[i].shape
    }

    /// Reads output `i` after an [`ExecPlan::execute`] call. The slice
    /// borrows the arena, so the closure must not re-enter `execute`.
    pub fn with_output<R>(&self, i: usize, f: impl FnOnce(&[f32]) -> R) -> R {
        let arena = self.arena.borrow();
        let o = &self.plan.outputs[i];
        f(&arena[o.off..o.off + o.len])
    }

    /// Validates the call against the plan's compile-time contract; every
    /// failure is a loud error (stale-plan protection, never UB).
    fn validate(&self, inputs: &[&[f32]], index_inputs: &[&[usize]]) -> Result<(), TensorError> {
        if inputs.len() != self.plan.input_shapes.len() {
            return Err(TensorError::InvalidArgument {
                op: "exec_plan",
                message: format!(
                    "plan expects {} inputs, got {}",
                    self.plan.input_shapes.len(),
                    inputs.len()
                ),
            });
        }
        for (slot, (input, shape)) in inputs.iter().zip(&self.plan.input_shapes).enumerate() {
            let want: usize = shape.iter().product();
            if input.len() != want {
                return Err(TensorError::InvalidArgument {
                    op: "exec_plan",
                    message: format!(
                        "input {slot}: plan was compiled for shape {shape:?} ({want} elements), \
                         got {} elements — stale plan for this shape class",
                        input.len()
                    ),
                });
            }
        }
        if index_inputs.len() != self.plan.index_input_lens.len() {
            return Err(TensorError::InvalidArgument {
                op: "exec_plan",
                message: format!(
                    "plan expects {} index inputs, got {}",
                    self.plan.index_input_lens.len(),
                    index_inputs.len()
                ),
            });
        }
        for (slot, (idx, &want)) in index_inputs
            .iter()
            .zip(&self.plan.index_input_lens)
            .enumerate()
        {
            if idx.len() != want {
                return Err(TensorError::InvalidArgument {
                    op: "exec_plan",
                    message: format!(
                        "index input {slot}: plan was compiled for {want} indices, got {} — \
                         stale plan for this shape class",
                        idx.len()
                    ),
                });
            }
        }
        for (slot, (param, &want)) in self.params.iter().zip(&self.plan.param_lens).enumerate() {
            let got = param.value().data().len();
            if got != want {
                return Err(TensorError::InvalidArgument {
                    op: "exec_plan",
                    message: format!(
                        "parameter {slot}: plan was compiled for {want} elements, got {got}"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Resolves a read operand to a slice for the duration of `f`.
    ///
    /// `arena` is the borrowed arena's base pointer; parameter operands
    /// borrow the tensor's value cell for the closure's duration only.
    fn with_src<R>(
        &self,
        o: &Operand,
        inputs: &[&[f32]],
        arena: *const f32,
        f: impl FnOnce(&[f32]) -> R,
    ) -> R {
        match o.loc {
            SrcLoc::Arena(off) => {
                // SAFETY: `off + len` lies within the arena (planner
                // layout), and the planner asserted at build time that this
                // read interval is disjoint from the step's output interval,
                // the only `&mut` slice alive here.
                let s = unsafe { std::slice::from_raw_parts(arena.add(off), o.len) };
                f(s)
            }
            SrcLoc::Input { slot, off } => f(&inputs[slot][off..off + o.len]),
            SrcLoc::Param { slot, off } => {
                let v = self.params[slot].value();
                f(&v.data()[off..off + o.len])
            }
        }
    }

    /// Executes the plan: `inputs` and `index_inputs` bind positionally to
    /// the graph's declarations; outputs are then readable through
    /// [`ExecPlan::with_output`]. Performs **zero** heap allocations.
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] when the call does not match the
    /// plan's compiled shapes (see the module docs on stale-plan
    /// protection); [`TensorError::IndexOutOfBounds`] for out-of-range
    /// gather indices.
    ///
    /// # Panics
    ///
    /// Panics (`RefCell` borrow) if called re-entrantly from a
    /// [`ExecPlan::with_output`] closure.
    pub fn execute(&self, inputs: &[&[f32]], index_inputs: &[&[usize]]) -> Result<(), TensorError> {
        self.validate(inputs, index_inputs)?;
        let mut arena_ref = self.arena.borrow_mut();
        let arena = &mut **arena_ref;
        let base = arena.as_mut_ptr();
        let mut arena_i8_ref = self.arena_i8.borrow_mut();
        let arena_i8 = &mut **arena_i8_ref;
        let mut arena_i32_ref = self.arena_i32.borrow_mut();
        let arena_i32 = &mut **arena_i32_ref;

        for step in &self.plan.steps {
            // Quantised steps first: they read and write *different* arenas
            // (f32 → i8 → i32 → f32), so every access is a plain safe slice
            // of a distinct Vec.
            match &step.op {
                StepOp::QuantizeSym { a, inv_scale } => {
                    let out = &mut arena_i8[step.out_off..step.out_off + step.out_len];
                    self.with_src(a, inputs, base, |av| quantize_sym_into(av, *inv_scale, out));
                    continue;
                }
                StepOp::MatMulI8 { a, w, k, p } => {
                    let out = &mut arena_i32[step.out_off..step.out_off + step.out_len];
                    let av = match a.loc {
                        SrcLoc::Arena(off) => &arena_i8[off..off + a.len],
                        _ => unreachable!("i8 operands always live in the i8 arena"),
                    };
                    bliss_parallel::matmul_i8t_into(av, self.qweights[*w].data(), *k, *p, out);
                    continue;
                }
                StepOp::DequantizeCols { a, scales, cols } => {
                    let av = match a.loc {
                        SrcLoc::Arena(off) => &arena_i32[off..off + a.len],
                        _ => unreachable!("i32 operands always live in the i32 arena"),
                    };
                    // SAFETY: the output interval lies within the f32 arena
                    // (planner layout) and the read slice is in a different
                    // arena entirely.
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(base.add(step.out_off), step.out_len)
                    };
                    for (r, orow) in out.chunks_mut(*cols).enumerate() {
                        let irow = &av[r * cols..r * cols + orow.len()];
                        for (j, (o, &acc)) in orow.iter_mut().zip(irow).enumerate() {
                            *o = acc as f32 * scales[j];
                        }
                    }
                    continue;
                }
                _ => {}
            }
            // SAFETY: the output interval lies within the arena (planner
            // layout); all read slices derived below are build-time-proved
            // disjoint from it, and `arena` itself is not touched while
            // these raw-derived slices are alive.
            let out =
                unsafe { std::slice::from_raw_parts_mut(base.add(step.out_off), step.out_len) };
            match &step.op {
                StepOp::MatMul { a, b, k, n } => {
                    self.with_src(a, inputs, base, |av| {
                        self.with_src(b, inputs, base, |bv| matmul_into(av, bv, *k, *n, out))
                    });
                }
                StepOp::MatMulT { a, b, k, p } => {
                    self.with_src(a, inputs, base, |av| {
                        self.with_src(b, inputs, base, |bv| {
                            matmul_transposed_into(av, bv, *k, *p, out)
                        })
                    });
                }
                StepOp::Add { a, b } => {
                    self.with_src(a, inputs, base, |av| {
                        self.with_src(b, inputs, base, |bv| {
                            for ((o, &x), &y) in out.iter_mut().zip(av).zip(bv) {
                                *o = x + y;
                            }
                        })
                    });
                }
                StepOp::AddIp { b } => {
                    self.with_src(b, inputs, base, |bv| {
                        for (o, &y) in out.iter_mut().zip(bv) {
                            *o += y;
                        }
                    });
                }
                StepOp::AddRow { a, row } => {
                    self.with_src(a, inputs, base, |av| out.copy_from_slice(av));
                    self.with_src(row, inputs, base, |rv| add_row_assign(out, rv));
                }
                StepOp::AddRowIp { row } => {
                    self.with_src(row, inputs, base, |rv| add_row_assign(out, rv));
                }
                StepOp::AddColBias { a, bias, rows } => {
                    self.with_src(a, inputs, base, |av| out.copy_from_slice(av));
                    self.with_src(bias, inputs, base, |bv| add_col_bias(out, bv, *rows));
                }
                StepOp::AddColBiasIp { bias, rows } => {
                    self.with_src(bias, inputs, base, |bv| add_col_bias(out, bv, *rows));
                }
                StepOp::Scale { a, factor } => {
                    self.with_src(a, inputs, base, |av| {
                        for (o, &x) in out.iter_mut().zip(av) {
                            *o = x * factor;
                        }
                    });
                }
                StepOp::ScaleIp { factor } => {
                    for o in out.iter_mut() {
                        *o *= factor;
                    }
                }
                StepOp::Relu { a } => {
                    self.with_src(a, inputs, base, |av| {
                        for (o, &x) in out.iter_mut().zip(av) {
                            *o = x.max(0.0);
                        }
                    });
                }
                StepOp::ReluIp => {
                    for o in out.iter_mut() {
                        *o = o.max(0.0);
                    }
                }
                StepOp::Sigmoid { a } => {
                    self.with_src(a, inputs, base, |av| {
                        for (o, &x) in out.iter_mut().zip(av) {
                            *o = sigmoid_scalar(x);
                        }
                    });
                }
                StepOp::SigmoidIp => {
                    for o in out.iter_mut() {
                        *o = sigmoid_scalar(*o);
                    }
                }
                StepOp::Gelu { a } => {
                    self.with_src(a, inputs, base, |av| {
                        for (o, &x) in out.iter_mut().zip(av) {
                            *o = gelu_scalar(x);
                        }
                    });
                }
                StepOp::GeluIp => {
                    for o in out.iter_mut() {
                        *o = gelu_scalar(*o);
                    }
                }
                StepOp::SoftmaxRows { a, cols } => {
                    self.with_src(a, inputs, base, |av| softmax_rows_into(av, *cols, out));
                }
                StepOp::LayerNorm {
                    a,
                    gamma,
                    beta,
                    cols,
                    eps,
                } => {
                    let n = *cols;
                    self.with_src(a, inputs, base, |av| {
                        self.with_src(gamma, inputs, base, |gv| {
                            self.with_src(beta, inputs, base, |bv| {
                                for i in 0..av.len() / n.max(1) {
                                    let row = &av[i * n..(i + 1) * n];
                                    let (mu, istd) = layer_norm_row_stats(row, *eps);
                                    let orow = &mut out[i * n..(i + 1) * n];
                                    for j in 0..n {
                                        let xh = (row[j] - mu) * istd;
                                        orow[j] = xh * gv[j] + bv[j];
                                    }
                                }
                            })
                        })
                    });
                }
                StepOp::Transpose { a, rows, cols } => {
                    self.with_src(a, inputs, base, |av| transpose_into(av, *rows, *cols, out));
                }
                StepOp::SliceCols {
                    a,
                    a_cols,
                    start,
                    end,
                    rows,
                } => {
                    let width = end - start;
                    self.with_src(a, inputs, base, |av| {
                        for r in 0..*rows {
                            out[r * width..(r + 1) * width]
                                .copy_from_slice(&av[r * a_cols + start..r * a_cols + end]);
                        }
                    });
                }
                StepOp::ConcatRows { parts } => {
                    let mut cursor = 0;
                    for p in parts {
                        self.with_src(p, inputs, base, |s| {
                            out[cursor..cursor + s.len()].copy_from_slice(s);
                        });
                        cursor += p.len;
                    }
                }
                StepOp::ConcatCols { parts, rows } => {
                    let total = if *rows > 0 { out.len() / rows } else { 0 };
                    let mut col = 0;
                    for (p, cols) in parts {
                        self.with_src(p, inputs, base, |s| {
                            for r in 0..*rows {
                                out[r * total + col..r * total + col + cols]
                                    .copy_from_slice(&s[r * cols..(r + 1) * cols]);
                            }
                        });
                        col += cols;
                    }
                }
                StepOp::Im2Col {
                    a,
                    h,
                    w,
                    kh,
                    kw,
                    stride,
                    pad,
                    oh,
                    ow,
                } => {
                    self.with_src(a, inputs, base, |av| {
                        im2col_into(av, *h, *w, *kh, *kw, *stride, *pad, *oh, *ow, out);
                    });
                }
                StepOp::GatherRows {
                    a,
                    a_rows,
                    cols,
                    slot,
                } => {
                    self.with_src(a, inputs, base, |av| {
                        gather_rows_into(av, *a_rows, *cols, index_inputs[*slot], out)
                    })?;
                }
                StepOp::QuantizeSym { .. }
                | StepOp::MatMulI8 { .. }
                | StepOp::DequantizeCols { .. } => {
                    unreachable!("quantised steps are dispatched before the f32 match")
                }
            }
        }
        Ok(())
    }
}

/// Per-row scalar bias add shared by the in-place and copying conv-bias
/// arms; matches the tape's serial per-channel loop exactly.
fn add_col_bias(out: &mut [f32], bias: &[f32], rows: usize) {
    if rows == 0 {
        return;
    }
    let w = out.len() / rows;
    for (c, &bv) in bias.iter().enumerate().take(rows) {
        for v in &mut out[c * w..(c + 1) * w] {
            *v += bv;
        }
    }
}

// ----------------------------------------------------------------------
// Inference mode
// ----------------------------------------------------------------------

thread_local! {
    static INFERENCE: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with planned-inference mode enabled on this thread.
///
/// Network forward passes that support planned execution (the sparse ViT's
/// batched forward, the ROI net's inference call) check
/// [`in_inference_mode`] and route through their compiled plan instead of
/// the autograd tape. The flag is thread-local and restored on exit (also
/// on panic), so training code on the same thread — or other threads — is
/// unaffected.
pub fn inference_mode<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            INFERENCE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(INFERENCE.with(|c| c.replace(true)));
    f()
}

/// Whether the current thread is inside an [`inference_mode`] scope.
pub fn in_inference_mode() -> bool {
    INFERENCE.with(Cell::get)
}

// ----------------------------------------------------------------------
// Plan cache
// ----------------------------------------------------------------------

/// Point-in-time [`PlanCache`] occupancy and traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served by an existing plan.
    pub hits: u64,
    /// Lookups that compiled a new plan.
    pub misses: u64,
    /// Plans evicted by the FIFO bound since the cache was created.
    pub evictions: u64,
    /// Plans currently cached.
    pub plans: usize,
    /// Total arena elements retained across cached plans — the soak gauge
    /// for arena growth (must go flat once the shape classes have been
    /// seen).
    pub arena_elems: usize,
}

/// Maximum plans a [`PlanCache`] retains before evicting the oldest.
pub const MAX_CACHED_PLANS: usize = 1024;
/// Maximum total arena elements a [`PlanCache`] retains across its plans
/// (~256 MiB of `f32` at the cap) before evicting the oldest.
pub const MAX_CACHED_ARENA_ELEMS: usize = 64 << 20;

/// Cache of compiled plans keyed by shape class.
///
/// The key is the caller's shape-class fingerprint (for the sparse ViT: the
/// batch's per-frame token counts). A key seen before returns the cached
/// plan without allocating — the probe borrows the caller's key slice; a
/// new key compiles, stores and returns a fresh plan ("invalidation" is
/// therefore per shape class: old plans stay valid for their own class and
/// are never executed against another, which [`ExecPlan::execute`]'s
/// validation enforces independently).
///
/// The cache is **bounded**: at most [`MAX_CACHED_PLANS`] plans and
/// [`MAX_CACHED_ARENA_ELEMS`] total arena elements, enforced by
/// deterministic FIFO eviction (insertion order, so results cannot depend
/// on timing or thread count). Long-horizon serving under layout-rotating
/// load therefore holds plan memory flat; an evicted layout simply
/// recompiles on next sight. Plans handed out earlier stay alive through
/// their own `Rc` until their users drop them.
#[derive(Default)]
pub struct PlanCache {
    plans: HashMap<Vec<usize>, Rc<ExecPlan>>,
    /// Insertion order of the keys in `plans` (the FIFO eviction queue).
    order: std::collections::VecDeque<Vec<usize>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the plan for `key`, compiling it with `build` on first
    /// sight. The hot path (hit) performs no allocation.
    ///
    /// # Errors
    ///
    /// Propagates `build` errors; nothing is cached on failure.
    pub fn get_or_build(
        &mut self,
        key: &[usize],
        build: impl FnOnce() -> Result<ExecPlan, TensorError>,
    ) -> Result<Rc<ExecPlan>, TensorError> {
        if let Some(plan) = self.plans.get(key) {
            self.hits += 1;
            bliss_telemetry::metrics::PLAN_CACHE_HITS.add(1);
            return Ok(plan.clone());
        }
        self.misses += 1;
        bliss_telemetry::metrics::PLAN_CACHE_MISSES.add(1);
        let plan = Rc::new(build()?);
        // Bound the cache before admitting the new plan: FIFO over the
        // insertion order, so eviction is deterministic and independent of
        // hit patterns, timing or thread count. Misses are already the
        // slow (compiling) path, so the O(plans) arena sum is immaterial.
        let mut arena_total: usize =
            self.plans.values().map(|p| p.arena_len()).sum::<usize>() + plan.arena_len();
        while !self.plans.is_empty()
            && (self.plans.len() >= MAX_CACHED_PLANS || arena_total > MAX_CACHED_ARENA_ELEMS)
        {
            let oldest = self.order.pop_front().expect("order mirrors plans");
            let evicted = self.plans.remove(&oldest).expect("order mirrors plans");
            arena_total -= evicted.arena_len();
            self.evictions += 1;
            bliss_telemetry::metrics::PLAN_CACHE_EVICTIONS.add(1);
        }
        self.order.push_back(key.to_vec());
        self.plans.insert(key.to_vec(), plan.clone());
        bliss_telemetry::metrics::PLAN_CACHE_PLANS.set(self.plans.len() as f64);
        bliss_telemetry::metrics::PLAN_ARENA_ELEMS.set(arena_total as f64);
        Ok(plan)
    }

    /// Drops every cached plan (used on weight-shape changes; weight
    /// *value* changes need no invalidation — plans read live tensors).
    pub fn clear(&mut self) {
        self.plans.clear();
        self.order.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Traffic and occupancy counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            plans: self.plans.len(),
            arena_elems: self.plans.values().map(|p| p.arena_len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NdArray;

    fn nd(data: &[f32], shape: &[usize]) -> NdArray {
        NdArray::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn linear_relu_graph_matches_tape_bitwise() {
        let x = nd(&[0.5, -1.0, 2.0, 0.25, 3.0, -0.75], &[2, 3]);
        let w = Tensor::parameter(nd(
            &[
                0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8, 0.9, 1.0, -1.1, 1.2,
            ],
            &[3, 4],
        ));
        let bias = Tensor::parameter(nd(&[0.01, -0.02, 0.03, -0.04], &[4]));

        let mut g = GraphBuilder::new();
        let xi = g.input(&[2, 3]);
        let wn = g.param(&w);
        let bn = g.param(&bias);
        let mm = g.matmul(xi, wn).unwrap();
        let biased = g.add_row(mm, bn).unwrap();
        let out = g.relu(biased);
        g.mark_output(out);
        let plan = ExecPlan::compile(g).unwrap();

        let xt = Tensor::constant(x.clone());
        let tape = xt.matmul(&w).unwrap().add_row(&bias).unwrap().relu();

        plan.execute(&[x.data()], &[]).unwrap();
        plan.with_output(0, |planned| {
            assert_eq!(planned, tape.value().data(), "planned != tape bitwise");
        });
        assert_eq!(plan.output_shape(0), &[2, 4]);
    }

    #[test]
    fn attention_style_graph_matches_ndarray_reference() {
        // q k^t -> scale -> softmax -> *v, with row slices as aliases.
        let q = nd(
            &(0..12).map(|i| i as f32 * 0.3 - 1.0).collect::<Vec<_>>(),
            &[4, 3],
        );
        let k = nd(
            &(0..12).map(|i| (i as f32).sin()).collect::<Vec<_>>(),
            &[4, 3],
        );
        let v = nd(
            &(0..12).map(|i| (i as f32).cos()).collect::<Vec<_>>(),
            &[4, 3],
        );

        let mut g = GraphBuilder::new();
        let qi = g.input(&[4, 3]);
        let ki = g.input(&[4, 3]);
        let vi = g.input(&[4, 3]);
        let qs = g.slice_rows(qi, 1, 3).unwrap();
        let ks = g.slice_rows(ki, 1, 3).unwrap();
        let vs = g.slice_rows(vi, 1, 3).unwrap();
        let scores = g.matmul_transposed(qs, ks).unwrap();
        let scaled = g.scale(scores, 0.57735);
        let attn = g.softmax_rows(scaled).unwrap();
        let out = g.matmul(attn, vs).unwrap();
        g.mark_output(out);
        let plan = ExecPlan::compile(g).unwrap();
        plan.execute(&[q.data(), k.data(), v.data()], &[]).unwrap();

        let qs = q.slice_rows(1, 3).unwrap();
        let ks = k.slice_rows(1, 3).unwrap();
        let vs = v.slice_rows(1, 3).unwrap();
        let reference = qs
            .matmul_transposed(&ks)
            .unwrap()
            .scale(0.57735)
            .softmax_rows()
            .unwrap()
            .matmul(&vs)
            .unwrap();
        plan.with_output(0, |planned| {
            assert_eq!(planned, reference.data());
        });
    }

    #[test]
    fn aliases_compile_away_and_in_place_reuses_buffers() {
        let mut g = GraphBuilder::new();
        let x = g.input(&[2, 4]);
        let a = g.scale(x, 2.0); // cannot be in place (input operand)
        let b = g.relu(a); // in place: a dies here
        let c = g.reshape(b, &[4, 2]).unwrap(); // alias: no step
        let d = g.gelu(c); // in place again
        g.mark_output(d);
        let plan = ExecPlan::compile(g).unwrap();
        assert_eq!(plan.num_steps(), 3, "reshape must not emit a step");
        assert_eq!(
            plan.arena_len(),
            8,
            "chain of dying elementwise ops must reuse one buffer"
        );

        let x = nd(&[-1.0, 0.5, 2.0, -0.25, 1.5, -3.0, 0.0, 4.0], &[2, 4]);
        plan.execute(&[x.data()], &[]).unwrap();
        let reference = x
            .scale(2.0)
            .map(|v| v.max(0.0))
            .map(crate::array::gelu_scalar);
        plan.with_output(0, |planned| assert_eq!(planned, reference.data()));
    }

    #[test]
    fn multi_use_operand_is_not_overwritten() {
        // x feeds both branches; the residual add must see the original x.
        let mut g = GraphBuilder::new();
        let x = g.input(&[2, 2]);
        let a = g.scale(x, 3.0);
        let r = g.relu(a); // a dies -> in place is fine
        let out = g.add(x, r).unwrap();
        g.mark_output(out);
        let plan = ExecPlan::compile(g).unwrap();

        let x = nd(&[1.0, -2.0, 3.0, -4.0], &[2, 2]);
        plan.execute(&[x.data()], &[]).unwrap();
        let reference = x.add(&x.scale(3.0).map(|v| v.max(0.0))).unwrap();
        plan.with_output(0, |planned| assert_eq!(planned, reference.data()));
    }

    #[test]
    fn gather_concat_slice_cols_match_reference() {
        let table = Tensor::parameter(nd(
            &(0..15).map(|i| i as f32 * 0.5).collect::<Vec<_>>(),
            &[5, 3],
        ));
        let mut g = GraphBuilder::new();
        let t = g.param(&table);
        let idx = g.index_input(4);
        let gathered = g.gather_rows(t, idx).unwrap(); // [4, 3]
        let left = g.slice_cols(gathered, 0, 2).unwrap(); // [4, 2]
        let joined = g.concat_cols(&[gathered, left]).unwrap(); // [4, 5]
        let stacked = g.concat_rows(&[joined, joined]).unwrap(); // [8, 5]
        g.mark_output(stacked);
        let plan = ExecPlan::compile(g).unwrap();

        let indices = [4usize, 0, 2, 2];
        plan.execute(&[], &[&indices]).unwrap();

        let gath = table.value().gather_rows(&indices).unwrap();
        let left = gath.slice_cols(0, 2).unwrap();
        let joined = NdArray::concat_cols(&[&gath, &left]).unwrap();
        let reference = NdArray::concat_rows(&[&joined, &joined]).unwrap();
        plan.with_output(0, |planned| assert_eq!(planned, reference.data()));
    }

    #[test]
    fn stale_shapes_fail_loudly() {
        let mut g = GraphBuilder::new();
        let x = g.input(&[2, 3]);
        let y = g.scale(x, 1.0);
        g.mark_output(y);
        let plan = ExecPlan::compile(g).unwrap();

        let wrong = [0.0f32; 4];
        let err = plan.execute(&[&wrong], &[]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidArgument { .. }));
        assert!(err.to_string().contains("stale plan"), "{err}");

        let err = plan.execute(&[], &[]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidArgument { .. }));
    }

    #[test]
    fn gather_indices_are_bounds_checked_per_call() {
        let table = Tensor::parameter(nd(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let mut g = GraphBuilder::new();
        let t = g.param(&table);
        let idx = g.index_input(1);
        let out = g.gather_rows(t, idx).unwrap();
        g.mark_output(out);
        let plan = ExecPlan::compile(g).unwrap();

        plan.execute(&[], &[&[1usize]]).unwrap();
        let err = plan.execute(&[], &[&[2usize]]).unwrap_err();
        assert!(matches!(err, TensorError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn raw_outputs_are_rejected_at_compile_time() {
        let w = Tensor::parameter(nd(&[1.0], &[1, 1]));
        let mut g = GraphBuilder::new();
        let p = g.param(&w);
        g.mark_output(p);
        let err = ExecPlan::compile(g).unwrap_err();
        assert!(matches!(err, TensorError::InvalidArgument { .. }));
    }

    #[test]
    fn parameter_updates_flow_into_existing_plans() {
        let w = Tensor::parameter(nd(&[2.0, 0.0, 0.0, 2.0], &[2, 2]));
        let mut g = GraphBuilder::new();
        let x = g.input(&[1, 2]);
        let wn = g.param(&w);
        let y = g.matmul(x, wn).unwrap();
        g.mark_output(y);
        let plan = ExecPlan::compile(g).unwrap();

        let x = [1.0f32, 1.0];
        plan.execute(&[&x], &[]).unwrap();
        plan.with_output(0, |o| assert_eq!(o, &[2.0, 2.0]));

        w.set_value(nd(&[3.0, 0.0, 0.0, 3.0], &[2, 2])).unwrap();
        plan.execute(&[&x], &[]).unwrap();
        plan.with_output(0, |o| assert_eq!(o, &[3.0, 3.0]));
    }

    #[test]
    fn plan_cache_hits_do_not_rebuild() {
        let mut cache = PlanCache::new();
        let build = || {
            let mut g = GraphBuilder::new();
            let x = g.input(&[1, 2]);
            let y = g.scale(x, 2.0);
            g.mark_output(y);
            ExecPlan::compile(g)
        };
        let p1 = cache.get_or_build(&[2], build).unwrap();
        let p2 = cache.get_or_build(&[2], build).unwrap();
        assert!(Rc::ptr_eq(&p1, &p2), "second lookup must hit");
        let _p3 = cache.get_or_build(&[3], build).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.plans), (1, 2, 2));
        assert_eq!(stats.evictions, 0, "under-cap cache must never evict");
        assert_eq!(stats.arena_elems, p1.arena_len() + _p3.arena_len());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn plan_cache_evicts_oldest_when_full() {
        let mut cache = PlanCache::new();
        let build = || {
            let mut g = GraphBuilder::new();
            let x = g.input(&[1, 2]);
            let y = g.scale(x, 2.0);
            g.mark_output(y);
            ExecPlan::compile(g)
        };
        // Fill past the plan-count cap: occupancy must stay bounded and the
        // survivors must be the newest keys.
        for key in 0..MAX_CACHED_PLANS + 8 {
            cache.get_or_build(&[key], build).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.plans, MAX_CACHED_PLANS, "cache exceeded its bound");
        assert_eq!(stats.misses, (MAX_CACHED_PLANS + 8) as u64);
        assert_eq!(stats.evictions, 8, "one eviction per plan past the cap");
        // The eight oldest keys were evicted in insertion order ...
        for evicted in 0..8 {
            let before = cache.stats().misses;
            cache.get_or_build(&[evicted], build).unwrap();
            assert_eq!(
                cache.stats().misses,
                before + 1,
                "evicted key must recompile"
            );
        }
        // ... while the newest keys are still hits.
        let before = cache.stats().hits;
        cache.get_or_build(&[MAX_CACHED_PLANS + 7], build).unwrap();
        assert_eq!(
            cache.stats().hits,
            before + 1,
            "newest key must remain cached"
        );
        assert_eq!(cache.stats().plans, MAX_CACHED_PLANS);
    }

    #[test]
    fn inference_mode_is_scoped_and_panic_safe() {
        assert!(!in_inference_mode());
        inference_mode(|| {
            assert!(in_inference_mode());
            inference_mode(|| assert!(in_inference_mode()));
            assert!(in_inference_mode());
        });
        assert!(!in_inference_mode());
        let _ = std::panic::catch_unwind(|| inference_mode(|| panic!("boom")));
        assert!(!in_inference_mode(), "mode must reset after a panic");
    }
}
