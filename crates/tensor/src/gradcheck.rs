use crate::{Tensor, TensorError};

/// Outcome of a finite-difference gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error observed across all checked elements.
    pub max_rel_error: f32,
    /// Number of individual partial derivatives compared.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether every checked partial derivative agreed within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.checked > 0 && self.max_rel_error <= tol
    }
}

/// Compares analytic gradients against central finite differences.
///
/// `forward` must rebuild the scalar loss graph from the *same* parameter
/// tensors on every call (define-by-run). Each parameter element is perturbed
/// by `±eps` and the numeric derivative `(f(x+eps) - f(x-eps)) / (2 eps)` is
/// compared with the analytic gradient from [`Tensor::backward`].
///
/// At most `max_per_param` elements are checked per parameter (evenly
/// strided) to keep large layers affordable.
///
/// # Errors
///
/// Propagates any error from `forward` or from the backward pass.
///
/// # Example
///
/// ```
/// use bliss_tensor::{check_gradients, NdArray, Tensor};
///
/// # fn main() -> Result<(), bliss_tensor::TensorError> {
/// let w = Tensor::parameter(NdArray::from_vec(vec![0.5, -0.3], &[1, 2])?);
/// let x = NdArray::from_vec(vec![1.0, 2.0], &[2, 1])?;
/// let report = check_gradients(
///     &[w.clone()],
///     || {
///         let xs = Tensor::constant(x.clone());
///         Ok(w.matmul(&xs)?.sum_all())
///     },
///     1e-3,
///     16,
/// )?;
/// assert!(report.passes(1e-2));
/// # Ok(())
/// # }
/// ```
pub fn check_gradients(
    params: &[Tensor],
    forward: impl Fn() -> Result<Tensor, TensorError>,
    eps: f32,
    max_per_param: usize,
) -> Result<GradCheckReport, TensorError> {
    for p in params {
        p.zero_grad();
    }
    let loss = forward()?;
    loss.backward()?;
    let analytic: Vec<_> = params.iter().map(|p| p.grad()).collect();

    let mut max_rel_error = 0.0f32;
    let mut checked = 0usize;

    for (p, grad) in params.iter().zip(analytic.iter()) {
        let grad = match grad {
            Some(g) => g.clone(),
            None => continue,
        };
        let n = p.value().len();
        let stride = (n / max_per_param.max(1)).max(1);
        for i in (0..n).step_by(stride) {
            let original = p.value().data()[i];
            p.update_value(|v| v.data_mut()[i] = original + eps);
            let f_plus = forward()?.value().data()[0];
            p.update_value(|v| v.data_mut()[i] = original - eps);
            let f_minus = forward()?.value().data()[0];
            p.update_value(|v| v.data_mut()[i] = original);

            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = grad.data()[i];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            let rel = (a - numeric).abs() / denom;
            if rel > max_rel_error {
                max_rel_error = rel;
            }
            checked += 1;
        }
    }

    for p in params {
        p.zero_grad();
    }
    Ok(GradCheckReport {
        max_rel_error,
        checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quadratic_gradient_checks() {
        let x = Tensor::parameter(NdArray::from_vec(vec![1.5, -2.0], &[2]).unwrap());
        let report = check_gradients(
            std::slice::from_ref(&x),
            || Ok(x.mul(&x)?.sum_all()),
            1e-3,
            8,
        )
        .unwrap();
        assert!(report.passes(1e-3), "max rel err {}", report.max_rel_error);
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn mlp_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(5);
        let w1 = Tensor::parameter(NdArray::randn(&mut rng, &[4, 3], 0.5));
        let b1 = Tensor::parameter(NdArray::zeros(&[3]));
        let w2 = Tensor::parameter(NdArray::randn(&mut rng, &[3, 2], 0.5));
        let x = NdArray::randn(&mut rng, &[5, 4], 1.0);
        let params = [w1.clone(), b1.clone(), w2.clone()];
        let report = check_gradients(
            &params,
            || {
                let xin = Tensor::constant(x.clone());
                let h = xin.matmul(&w1)?.add_row(&b1)?.gelu();
                let y = h.matmul(&w2)?;
                y.cross_entropy_rows(&[0, 1, 0, 1, 0], None)
            },
            1e-2,
            10,
        )
        .unwrap();
        assert!(report.passes(2e-2), "max rel err {}", report.max_rel_error);
        assert!(report.checked > 0);
    }

    #[test]
    fn conv_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = Tensor::parameter(NdArray::randn(&mut rng, &[2, 1, 3, 3], 0.5));
        let b = Tensor::parameter(NdArray::zeros(&[2]));
        let x = NdArray::randn(&mut rng, &[1, 5, 5], 1.0);
        let t = NdArray::zeros(&[2, 3, 3]);
        let report = check_gradients(
            &[w.clone(), b.clone()],
            || {
                let xin = Tensor::constant(x.clone());
                let y = xin.conv2d(&w, Some(&b), 1, 0)?.tanh();
                y.mse_loss(&t)
            },
            1e-2,
            12,
        )
        .unwrap();
        assert!(report.passes(2e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn layer_norm_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = Tensor::parameter(NdArray::randn(&mut rng, &[6], 0.5).add_scalar(1.0));
        let b = Tensor::parameter(NdArray::zeros(&[6]));
        let x = Tensor::parameter(NdArray::randn(&mut rng, &[3, 6], 1.0));
        let report = check_gradients(
            &[x.clone(), g.clone(), b.clone()],
            || {
                let y = x.layer_norm(&g, &b, 1e-5)?;
                Ok(y.mul(&y)?.mean_all())
            },
            1e-2,
            12,
        )
        .unwrap();
        assert!(report.passes(3e-2), "max rel err {}", report.max_rel_error);
    }

    #[test]
    fn report_fails_when_nothing_checked() {
        let r = GradCheckReport {
            max_rel_error: 0.0,
            checked: 0,
        };
        assert!(!r.passes(1.0));
    }
}
